file(REMOVE_RECURSE
  "CMakeFiles/ext_fluid_step.dir/ext_fluid_step.cpp.o"
  "CMakeFiles/ext_fluid_step.dir/ext_fluid_step.cpp.o.d"
  "ext_fluid_step"
  "ext_fluid_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fluid_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
