# Empty compiler generated dependencies file for ext_fluid_step.
# This may be replaced when dependencies are built.
