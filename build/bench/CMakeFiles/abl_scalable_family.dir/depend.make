# Empty dependencies file for abl_scalable_family.
# This may be replaced when dependencies are built.
