file(REMOVE_RECURSE
  "CMakeFiles/abl_scalable_family.dir/abl_scalable_family.cpp.o"
  "CMakeFiles/abl_scalable_family.dir/abl_scalable_family.cpp.o.d"
  "abl_scalable_family"
  "abl_scalable_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scalable_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
