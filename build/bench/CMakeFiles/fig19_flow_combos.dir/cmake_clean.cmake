file(REMOVE_RECURSE
  "CMakeFiles/fig19_flow_combos.dir/fig19_flow_combos.cpp.o"
  "CMakeFiles/fig19_flow_combos.dir/fig19_flow_combos.cpp.o.d"
  "fig19_flow_combos"
  "fig19_flow_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_flow_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
