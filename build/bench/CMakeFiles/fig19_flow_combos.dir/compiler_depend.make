# Empty compiler generated dependencies file for fig19_flow_combos.
# This may be replaced when dependencies are built.
