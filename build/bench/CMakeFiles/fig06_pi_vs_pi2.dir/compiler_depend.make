# Empty compiler generated dependencies file for fig06_pi_vs_pi2.
# This may be replaced when dependencies are built.
