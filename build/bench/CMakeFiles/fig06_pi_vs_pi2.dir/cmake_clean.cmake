file(REMOVE_RECURSE
  "CMakeFiles/fig06_pi_vs_pi2.dir/fig06_pi_vs_pi2.cpp.o"
  "CMakeFiles/fig06_pi_vs_pi2.dir/fig06_pi_vs_pi2.cpp.o.d"
  "fig06_pi_vs_pi2"
  "fig06_pi_vs_pi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pi_vs_pi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
