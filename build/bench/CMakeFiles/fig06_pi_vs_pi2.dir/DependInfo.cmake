
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_pi_vs_pi2.cpp" "bench/CMakeFiles/fig06_pi_vs_pi2.dir/fig06_pi_vs_pi2.cpp.o" "gcc" "bench/CMakeFiles/fig06_pi_vs_pi2.dir/fig06_pi_vs_pi2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/pi2_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pi2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/aqm/CMakeFiles/pi2_aqm.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/pi2_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pi2_control.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pi2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pi2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pi2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
