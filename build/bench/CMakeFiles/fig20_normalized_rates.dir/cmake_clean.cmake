file(REMOVE_RECURSE
  "CMakeFiles/fig20_normalized_rates.dir/fig20_normalized_rates.cpp.o"
  "CMakeFiles/fig20_normalized_rates.dir/fig20_normalized_rates.cpp.o.d"
  "fig20_normalized_rates"
  "fig20_normalized_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_normalized_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
