# Empty dependencies file for fig20_normalized_rates.
# This may be replaced when dependencies are built.
