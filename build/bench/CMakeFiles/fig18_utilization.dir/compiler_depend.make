# Empty compiler generated dependencies file for fig18_utilization.
# This may be replaced when dependencies are built.
