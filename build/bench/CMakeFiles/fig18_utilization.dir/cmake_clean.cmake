file(REMOVE_RECURSE
  "CMakeFiles/fig18_utilization.dir/fig18_utilization.cpp.o"
  "CMakeFiles/fig18_utilization.dir/fig18_utilization.cpp.o.d"
  "fig18_utilization"
  "fig18_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
