file(REMOVE_RECURSE
  "CMakeFiles/ext_dualpi2.dir/ext_dualpi2.cpp.o"
  "CMakeFiles/ext_dualpi2.dir/ext_dualpi2.cpp.o.d"
  "ext_dualpi2"
  "ext_dualpi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dualpi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
