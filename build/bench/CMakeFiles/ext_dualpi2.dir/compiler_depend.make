# Empty compiler generated dependencies file for ext_dualpi2.
# This may be replaced when dependencies are built.
