# Empty dependencies file for fig11_traffic_loads.
# This may be replaced when dependencies are built.
