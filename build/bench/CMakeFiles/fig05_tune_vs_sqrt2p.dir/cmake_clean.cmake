file(REMOVE_RECURSE
  "CMakeFiles/fig05_tune_vs_sqrt2p.dir/fig05_tune_vs_sqrt2p.cpp.o"
  "CMakeFiles/fig05_tune_vs_sqrt2p.dir/fig05_tune_vs_sqrt2p.cpp.o.d"
  "fig05_tune_vs_sqrt2p"
  "fig05_tune_vs_sqrt2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_tune_vs_sqrt2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
