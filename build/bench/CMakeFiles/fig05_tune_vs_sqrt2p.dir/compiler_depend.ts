# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_tune_vs_sqrt2p.
