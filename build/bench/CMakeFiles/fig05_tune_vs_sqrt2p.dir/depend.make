# Empty dependencies file for fig05_tune_vs_sqrt2p.
# This may be replaced when dependencies are built.
