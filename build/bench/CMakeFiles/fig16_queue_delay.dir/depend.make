# Empty dependencies file for fig16_queue_delay.
# This may be replaced when dependencies are built.
