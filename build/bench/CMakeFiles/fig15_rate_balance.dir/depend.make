# Empty dependencies file for fig15_rate_balance.
# This may be replaced when dependencies are built.
