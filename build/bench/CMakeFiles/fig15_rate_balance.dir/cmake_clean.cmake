file(REMOVE_RECURSE
  "CMakeFiles/fig15_rate_balance.dir/fig15_rate_balance.cpp.o"
  "CMakeFiles/fig15_rate_balance.dir/fig15_rate_balance.cpp.o.d"
  "fig15_rate_balance"
  "fig15_rate_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_rate_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
