# Empty dependencies file for fig14_delay_cdf.
# This may be replaced when dependencies are built.
