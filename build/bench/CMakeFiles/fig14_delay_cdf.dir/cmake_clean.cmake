file(REMOVE_RECURSE
  "CMakeFiles/fig14_delay_cdf.dir/fig14_delay_cdf.cpp.o"
  "CMakeFiles/fig14_delay_cdf.dir/fig14_delay_cdf.cpp.o.d"
  "fig14_delay_cdf"
  "fig14_delay_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_delay_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
