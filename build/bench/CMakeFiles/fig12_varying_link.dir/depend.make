# Empty dependencies file for fig12_varying_link.
# This may be replaced when dependencies are built.
