file(REMOVE_RECURSE
  "CMakeFiles/fig12_varying_link.dir/fig12_varying_link.cpp.o"
  "CMakeFiles/fig12_varying_link.dir/fig12_varying_link.cpp.o.d"
  "fig12_varying_link"
  "fig12_varying_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_varying_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
