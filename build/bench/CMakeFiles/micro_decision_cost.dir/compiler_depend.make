# Empty compiler generated dependencies file for micro_decision_cost.
# This may be replaced when dependencies are built.
