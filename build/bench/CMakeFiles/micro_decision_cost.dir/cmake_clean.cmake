file(REMOVE_RECURSE
  "CMakeFiles/micro_decision_cost.dir/micro_decision_cost.cpp.o"
  "CMakeFiles/micro_decision_cost.dir/micro_decision_cost.cpp.o.d"
  "micro_decision_cost"
  "micro_decision_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_decision_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
