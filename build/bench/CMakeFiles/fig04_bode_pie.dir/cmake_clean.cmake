file(REMOVE_RECURSE
  "CMakeFiles/fig04_bode_pie.dir/fig04_bode_pie.cpp.o"
  "CMakeFiles/fig04_bode_pie.dir/fig04_bode_pie.cpp.o.d"
  "fig04_bode_pie"
  "fig04_bode_pie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bode_pie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
