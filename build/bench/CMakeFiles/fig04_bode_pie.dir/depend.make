# Empty dependencies file for fig04_bode_pie.
# This may be replaced when dependencies are built.
