# Empty compiler generated dependencies file for abl_curvy_red.
# This may be replaced when dependencies are built.
