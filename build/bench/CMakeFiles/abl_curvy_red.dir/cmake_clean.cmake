file(REMOVE_RECURSE
  "CMakeFiles/abl_curvy_red.dir/abl_curvy_red.cpp.o"
  "CMakeFiles/abl_curvy_red.dir/abl_curvy_red.cpp.o.d"
  "abl_curvy_red"
  "abl_curvy_red.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_curvy_red.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
