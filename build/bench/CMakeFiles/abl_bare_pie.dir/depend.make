# Empty dependencies file for abl_bare_pie.
# This may be replaced when dependencies are built.
