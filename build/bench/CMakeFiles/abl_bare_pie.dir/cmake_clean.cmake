file(REMOVE_RECURSE
  "CMakeFiles/abl_bare_pie.dir/abl_bare_pie.cpp.o"
  "CMakeFiles/abl_bare_pie.dir/abl_bare_pie.cpp.o.d"
  "abl_bare_pie"
  "abl_bare_pie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bare_pie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
