# Empty compiler generated dependencies file for fig13_varying_intensity.
# This may be replaced when dependencies are built.
