file(REMOVE_RECURSE
  "CMakeFiles/fig13_varying_intensity.dir/fig13_varying_intensity.cpp.o"
  "CMakeFiles/fig13_varying_intensity.dir/fig13_varying_intensity.cpp.o.d"
  "fig13_varying_intensity"
  "fig13_varying_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_varying_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
