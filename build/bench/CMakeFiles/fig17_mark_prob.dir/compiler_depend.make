# Empty compiler generated dependencies file for fig17_mark_prob.
# This may be replaced when dependencies are built.
