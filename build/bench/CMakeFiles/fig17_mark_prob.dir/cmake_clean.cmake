file(REMOVE_RECURSE
  "CMakeFiles/fig17_mark_prob.dir/fig17_mark_prob.cpp.o"
  "CMakeFiles/fig17_mark_prob.dir/fig17_mark_prob.cpp.o.d"
  "fig17_mark_prob"
  "fig17_mark_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_mark_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
