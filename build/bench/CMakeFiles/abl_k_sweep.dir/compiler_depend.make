# Empty compiler generated dependencies file for abl_k_sweep.
# This may be replaced when dependencies are built.
