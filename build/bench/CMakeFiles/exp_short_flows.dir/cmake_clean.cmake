file(REMOVE_RECURSE
  "CMakeFiles/exp_short_flows.dir/exp_short_flows.cpp.o"
  "CMakeFiles/exp_short_flows.dir/exp_short_flows.cpp.o.d"
  "exp_short_flows"
  "exp_short_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_short_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
