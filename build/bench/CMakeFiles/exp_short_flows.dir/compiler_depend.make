# Empty compiler generated dependencies file for exp_short_flows.
# This may be replaced when dependencies are built.
