# Empty dependencies file for fig07_bode_pi2.
# This may be replaced when dependencies are built.
