file(REMOVE_RECURSE
  "CMakeFiles/fig07_bode_pi2.dir/fig07_bode_pi2.cpp.o"
  "CMakeFiles/fig07_bode_pi2.dir/fig07_bode_pi2.cpp.o.d"
  "fig07_bode_pi2"
  "fig07_bode_pi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bode_pi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
