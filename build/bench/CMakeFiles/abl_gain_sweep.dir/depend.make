# Empty dependencies file for abl_gain_sweep.
# This may be replaced when dependencies are built.
