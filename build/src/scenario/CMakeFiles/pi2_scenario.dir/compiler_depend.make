# Empty compiler generated dependencies file for pi2_scenario.
# This may be replaced when dependencies are built.
