file(REMOVE_RECURSE
  "libpi2_scenario.a"
)
