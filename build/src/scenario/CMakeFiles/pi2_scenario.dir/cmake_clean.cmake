file(REMOVE_RECURSE
  "CMakeFiles/pi2_scenario.dir/aqm_factory.cpp.o"
  "CMakeFiles/pi2_scenario.dir/aqm_factory.cpp.o.d"
  "CMakeFiles/pi2_scenario.dir/dumbbell.cpp.o"
  "CMakeFiles/pi2_scenario.dir/dumbbell.cpp.o.d"
  "CMakeFiles/pi2_scenario.dir/short_flows.cpp.o"
  "CMakeFiles/pi2_scenario.dir/short_flows.cpp.o.d"
  "libpi2_scenario.a"
  "libpi2_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
