file(REMOVE_RECURSE
  "libpi2_sim.a"
)
