file(REMOVE_RECURSE
  "CMakeFiles/pi2_sim.dir/rng.cpp.o"
  "CMakeFiles/pi2_sim.dir/rng.cpp.o.d"
  "CMakeFiles/pi2_sim.dir/scheduler.cpp.o"
  "CMakeFiles/pi2_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/pi2_sim.dir/simulator.cpp.o"
  "CMakeFiles/pi2_sim.dir/simulator.cpp.o.d"
  "libpi2_sim.a"
  "libpi2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
