# Empty dependencies file for pi2_sim.
# This may be replaced when dependencies are built.
