file(REMOVE_RECURSE
  "libpi2_core.a"
)
