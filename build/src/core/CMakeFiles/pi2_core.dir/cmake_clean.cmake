file(REMOVE_RECURSE
  "CMakeFiles/pi2_core.dir/coupled_pi2.cpp.o"
  "CMakeFiles/pi2_core.dir/coupled_pi2.cpp.o.d"
  "CMakeFiles/pi2_core.dir/dualpi2.cpp.o"
  "CMakeFiles/pi2_core.dir/dualpi2.cpp.o.d"
  "CMakeFiles/pi2_core.dir/pi2.cpp.o"
  "CMakeFiles/pi2_core.dir/pi2.cpp.o.d"
  "libpi2_core.a"
  "libpi2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
