
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coupled_pi2.cpp" "src/core/CMakeFiles/pi2_core.dir/coupled_pi2.cpp.o" "gcc" "src/core/CMakeFiles/pi2_core.dir/coupled_pi2.cpp.o.d"
  "/root/repo/src/core/dualpi2.cpp" "src/core/CMakeFiles/pi2_core.dir/dualpi2.cpp.o" "gcc" "src/core/CMakeFiles/pi2_core.dir/dualpi2.cpp.o.d"
  "/root/repo/src/core/pi2.cpp" "src/core/CMakeFiles/pi2_core.dir/pi2.cpp.o" "gcc" "src/core/CMakeFiles/pi2_core.dir/pi2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pi2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pi2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/aqm/CMakeFiles/pi2_aqm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
