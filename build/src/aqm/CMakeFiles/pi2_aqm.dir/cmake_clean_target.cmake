file(REMOVE_RECURSE
  "libpi2_aqm.a"
)
