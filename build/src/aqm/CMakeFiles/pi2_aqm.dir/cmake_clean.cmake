file(REMOVE_RECURSE
  "CMakeFiles/pi2_aqm.dir/codel.cpp.o"
  "CMakeFiles/pi2_aqm.dir/codel.cpp.o.d"
  "CMakeFiles/pi2_aqm.dir/curvy_red.cpp.o"
  "CMakeFiles/pi2_aqm.dir/curvy_red.cpp.o.d"
  "CMakeFiles/pi2_aqm.dir/pi.cpp.o"
  "CMakeFiles/pi2_aqm.dir/pi.cpp.o.d"
  "CMakeFiles/pi2_aqm.dir/pie.cpp.o"
  "CMakeFiles/pi2_aqm.dir/pie.cpp.o.d"
  "CMakeFiles/pi2_aqm.dir/red.cpp.o"
  "CMakeFiles/pi2_aqm.dir/red.cpp.o.d"
  "CMakeFiles/pi2_aqm.dir/step_marker.cpp.o"
  "CMakeFiles/pi2_aqm.dir/step_marker.cpp.o.d"
  "libpi2_aqm.a"
  "libpi2_aqm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_aqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
