
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqm/codel.cpp" "src/aqm/CMakeFiles/pi2_aqm.dir/codel.cpp.o" "gcc" "src/aqm/CMakeFiles/pi2_aqm.dir/codel.cpp.o.d"
  "/root/repo/src/aqm/curvy_red.cpp" "src/aqm/CMakeFiles/pi2_aqm.dir/curvy_red.cpp.o" "gcc" "src/aqm/CMakeFiles/pi2_aqm.dir/curvy_red.cpp.o.d"
  "/root/repo/src/aqm/pi.cpp" "src/aqm/CMakeFiles/pi2_aqm.dir/pi.cpp.o" "gcc" "src/aqm/CMakeFiles/pi2_aqm.dir/pi.cpp.o.d"
  "/root/repo/src/aqm/pie.cpp" "src/aqm/CMakeFiles/pi2_aqm.dir/pie.cpp.o" "gcc" "src/aqm/CMakeFiles/pi2_aqm.dir/pie.cpp.o.d"
  "/root/repo/src/aqm/red.cpp" "src/aqm/CMakeFiles/pi2_aqm.dir/red.cpp.o" "gcc" "src/aqm/CMakeFiles/pi2_aqm.dir/red.cpp.o.d"
  "/root/repo/src/aqm/step_marker.cpp" "src/aqm/CMakeFiles/pi2_aqm.dir/step_marker.cpp.o" "gcc" "src/aqm/CMakeFiles/pi2_aqm.dir/step_marker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pi2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pi2_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
