# Empty dependencies file for pi2_aqm.
# This may be replaced when dependencies are built.
