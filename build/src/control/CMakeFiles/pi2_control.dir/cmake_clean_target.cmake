file(REMOVE_RECURSE
  "libpi2_control.a"
)
