# Empty compiler generated dependencies file for pi2_control.
# This may be replaced when dependencies are built.
