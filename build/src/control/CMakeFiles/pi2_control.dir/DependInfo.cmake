
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/fluid_model.cpp" "src/control/CMakeFiles/pi2_control.dir/fluid_model.cpp.o" "gcc" "src/control/CMakeFiles/pi2_control.dir/fluid_model.cpp.o.d"
  "/root/repo/src/control/fluid_sim.cpp" "src/control/CMakeFiles/pi2_control.dir/fluid_sim.cpp.o" "gcc" "src/control/CMakeFiles/pi2_control.dir/fluid_sim.cpp.o.d"
  "/root/repo/src/control/window_laws.cpp" "src/control/CMakeFiles/pi2_control.dir/window_laws.cpp.o" "gcc" "src/control/CMakeFiles/pi2_control.dir/window_laws.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aqm/CMakeFiles/pi2_aqm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pi2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pi2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
