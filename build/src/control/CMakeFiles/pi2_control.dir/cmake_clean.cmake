file(REMOVE_RECURSE
  "CMakeFiles/pi2_control.dir/fluid_model.cpp.o"
  "CMakeFiles/pi2_control.dir/fluid_model.cpp.o.d"
  "CMakeFiles/pi2_control.dir/fluid_sim.cpp.o"
  "CMakeFiles/pi2_control.dir/fluid_sim.cpp.o.d"
  "CMakeFiles/pi2_control.dir/window_laws.cpp.o"
  "CMakeFiles/pi2_control.dir/window_laws.cpp.o.d"
  "libpi2_control.a"
  "libpi2_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
