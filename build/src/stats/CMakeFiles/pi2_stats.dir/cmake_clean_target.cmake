file(REMOVE_RECURSE
  "libpi2_stats.a"
)
