
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/csv.cpp" "src/stats/CMakeFiles/pi2_stats.dir/csv.cpp.o" "gcc" "src/stats/CMakeFiles/pi2_stats.dir/csv.cpp.o.d"
  "/root/repo/src/stats/meters.cpp" "src/stats/CMakeFiles/pi2_stats.dir/meters.cpp.o" "gcc" "src/stats/CMakeFiles/pi2_stats.dir/meters.cpp.o.d"
  "/root/repo/src/stats/online_stats.cpp" "src/stats/CMakeFiles/pi2_stats.dir/online_stats.cpp.o" "gcc" "src/stats/CMakeFiles/pi2_stats.dir/online_stats.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/stats/CMakeFiles/pi2_stats.dir/percentile.cpp.o" "gcc" "src/stats/CMakeFiles/pi2_stats.dir/percentile.cpp.o.d"
  "/root/repo/src/stats/time_series.cpp" "src/stats/CMakeFiles/pi2_stats.dir/time_series.cpp.o" "gcc" "src/stats/CMakeFiles/pi2_stats.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pi2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
