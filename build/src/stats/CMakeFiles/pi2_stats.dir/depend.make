# Empty dependencies file for pi2_stats.
# This may be replaced when dependencies are built.
