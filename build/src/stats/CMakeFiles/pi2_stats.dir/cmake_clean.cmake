file(REMOVE_RECURSE
  "CMakeFiles/pi2_stats.dir/csv.cpp.o"
  "CMakeFiles/pi2_stats.dir/csv.cpp.o.d"
  "CMakeFiles/pi2_stats.dir/meters.cpp.o"
  "CMakeFiles/pi2_stats.dir/meters.cpp.o.d"
  "CMakeFiles/pi2_stats.dir/online_stats.cpp.o"
  "CMakeFiles/pi2_stats.dir/online_stats.cpp.o.d"
  "CMakeFiles/pi2_stats.dir/percentile.cpp.o"
  "CMakeFiles/pi2_stats.dir/percentile.cpp.o.d"
  "CMakeFiles/pi2_stats.dir/time_series.cpp.o"
  "CMakeFiles/pi2_stats.dir/time_series.cpp.o.d"
  "libpi2_stats.a"
  "libpi2_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
