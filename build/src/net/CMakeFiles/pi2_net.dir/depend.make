# Empty dependencies file for pi2_net.
# This may be replaced when dependencies are built.
