file(REMOVE_RECURSE
  "libpi2_net.a"
)
