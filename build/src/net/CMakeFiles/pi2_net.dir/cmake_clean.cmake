file(REMOVE_RECURSE
  "CMakeFiles/pi2_net.dir/bottleneck_link.cpp.o"
  "CMakeFiles/pi2_net.dir/bottleneck_link.cpp.o.d"
  "CMakeFiles/pi2_net.dir/trace.cpp.o"
  "CMakeFiles/pi2_net.dir/trace.cpp.o.d"
  "libpi2_net.a"
  "libpi2_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
