file(REMOVE_RECURSE
  "CMakeFiles/pi2_tcp.dir/cubic.cpp.o"
  "CMakeFiles/pi2_tcp.dir/cubic.cpp.o.d"
  "CMakeFiles/pi2_tcp.dir/dctcp.cpp.o"
  "CMakeFiles/pi2_tcp.dir/dctcp.cpp.o.d"
  "CMakeFiles/pi2_tcp.dir/endpoint.cpp.o"
  "CMakeFiles/pi2_tcp.dir/endpoint.cpp.o.d"
  "CMakeFiles/pi2_tcp.dir/factory.cpp.o"
  "CMakeFiles/pi2_tcp.dir/factory.cpp.o.d"
  "CMakeFiles/pi2_tcp.dir/reno.cpp.o"
  "CMakeFiles/pi2_tcp.dir/reno.cpp.o.d"
  "CMakeFiles/pi2_tcp.dir/scalable.cpp.o"
  "CMakeFiles/pi2_tcp.dir/scalable.cpp.o.d"
  "CMakeFiles/pi2_tcp.dir/udp_sender.cpp.o"
  "CMakeFiles/pi2_tcp.dir/udp_sender.cpp.o.d"
  "libpi2_tcp.a"
  "libpi2_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
