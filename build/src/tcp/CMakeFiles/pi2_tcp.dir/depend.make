# Empty dependencies file for pi2_tcp.
# This may be replaced when dependencies are built.
