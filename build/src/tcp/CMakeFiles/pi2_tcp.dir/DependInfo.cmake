
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/cubic.cpp" "src/tcp/CMakeFiles/pi2_tcp.dir/cubic.cpp.o" "gcc" "src/tcp/CMakeFiles/pi2_tcp.dir/cubic.cpp.o.d"
  "/root/repo/src/tcp/dctcp.cpp" "src/tcp/CMakeFiles/pi2_tcp.dir/dctcp.cpp.o" "gcc" "src/tcp/CMakeFiles/pi2_tcp.dir/dctcp.cpp.o.d"
  "/root/repo/src/tcp/endpoint.cpp" "src/tcp/CMakeFiles/pi2_tcp.dir/endpoint.cpp.o" "gcc" "src/tcp/CMakeFiles/pi2_tcp.dir/endpoint.cpp.o.d"
  "/root/repo/src/tcp/factory.cpp" "src/tcp/CMakeFiles/pi2_tcp.dir/factory.cpp.o" "gcc" "src/tcp/CMakeFiles/pi2_tcp.dir/factory.cpp.o.d"
  "/root/repo/src/tcp/reno.cpp" "src/tcp/CMakeFiles/pi2_tcp.dir/reno.cpp.o" "gcc" "src/tcp/CMakeFiles/pi2_tcp.dir/reno.cpp.o.d"
  "/root/repo/src/tcp/scalable.cpp" "src/tcp/CMakeFiles/pi2_tcp.dir/scalable.cpp.o" "gcc" "src/tcp/CMakeFiles/pi2_tcp.dir/scalable.cpp.o.d"
  "/root/repo/src/tcp/udp_sender.cpp" "src/tcp/CMakeFiles/pi2_tcp.dir/udp_sender.cpp.o" "gcc" "src/tcp/CMakeFiles/pi2_tcp.dir/udp_sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pi2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pi2_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
