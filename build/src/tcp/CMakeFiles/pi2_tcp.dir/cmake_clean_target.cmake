file(REMOVE_RECURSE
  "libpi2_tcp.a"
)
