# Empty compiler generated dependencies file for l4s_preview.
# This may be replaced when dependencies are built.
