file(REMOVE_RECURSE
  "CMakeFiles/l4s_preview.dir/l4s_preview.cpp.o"
  "CMakeFiles/l4s_preview.dir/l4s_preview.cpp.o.d"
  "l4s_preview"
  "l4s_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l4s_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
