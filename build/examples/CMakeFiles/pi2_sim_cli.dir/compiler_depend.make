# Empty compiler generated dependencies file for pi2_sim_cli.
# This may be replaced when dependencies are built.
