file(REMOVE_RECURSE
  "CMakeFiles/pi2_sim_cli.dir/pi2_sim_cli.cpp.o"
  "CMakeFiles/pi2_sim_cli.dir/pi2_sim_cli.cpp.o.d"
  "pi2_sim_cli"
  "pi2_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
