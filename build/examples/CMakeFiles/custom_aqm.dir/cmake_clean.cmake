file(REMOVE_RECURSE
  "CMakeFiles/custom_aqm.dir/custom_aqm.cpp.o"
  "CMakeFiles/custom_aqm.dir/custom_aqm.cpp.o.d"
  "custom_aqm"
  "custom_aqm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_aqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
