file(REMOVE_RECURSE
  "CMakeFiles/gaming_latency.dir/gaming_latency.cpp.o"
  "CMakeFiles/gaming_latency.dir/gaming_latency.cpp.o.d"
  "gaming_latency"
  "gaming_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaming_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
