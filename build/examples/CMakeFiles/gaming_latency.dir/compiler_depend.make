# Empty compiler generated dependencies file for gaming_latency.
# This may be replaced when dependencies are built.
