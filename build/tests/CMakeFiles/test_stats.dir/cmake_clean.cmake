file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_csv.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_csv.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_meters.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_meters.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_online_stats.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_online_stats.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_percentile.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_percentile.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_time_series.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_time_series.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
