file(REMOVE_RECURSE
  "CMakeFiles/test_control.dir/control/test_fluid_model.cpp.o"
  "CMakeFiles/test_control.dir/control/test_fluid_model.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_fluid_sim.cpp.o"
  "CMakeFiles/test_control.dir/control/test_fluid_sim.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_window_laws.cpp.o"
  "CMakeFiles/test_control.dir/control/test_window_laws.cpp.o.d"
  "test_control"
  "test_control.pdb"
  "test_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
