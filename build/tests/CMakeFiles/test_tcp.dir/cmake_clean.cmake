file(REMOVE_RECURSE
  "CMakeFiles/test_tcp.dir/tcp/test_congestion_controls.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_congestion_controls.cpp.o.d"
  "CMakeFiles/test_tcp.dir/tcp/test_delayed_acks.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_delayed_acks.cpp.o.d"
  "CMakeFiles/test_tcp.dir/tcp/test_endpoint.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_endpoint.cpp.o.d"
  "CMakeFiles/test_tcp.dir/tcp/test_scalable_controls.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_scalable_controls.cpp.o.d"
  "CMakeFiles/test_tcp.dir/tcp/test_sender_edges.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_sender_edges.cpp.o.d"
  "CMakeFiles/test_tcp.dir/tcp/test_udp_sender.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_udp_sender.cpp.o.d"
  "test_tcp"
  "test_tcp.pdb"
  "test_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
