file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_bottleneck_link.cpp.o"
  "CMakeFiles/test_net.dir/net/test_bottleneck_link.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_ecn.cpp.o"
  "CMakeFiles/test_net.dir/net/test_ecn.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_trace.cpp.o"
  "CMakeFiles/test_net.dir/net/test_trace.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
