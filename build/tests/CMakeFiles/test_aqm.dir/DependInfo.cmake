
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aqm/test_curvy_red.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_curvy_red.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_curvy_red.cpp.o.d"
  "/root/repo/tests/aqm/test_pi.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_pi.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_pi.cpp.o.d"
  "/root/repo/tests/aqm/test_pi_core.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_pi_core.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_pi_core.cpp.o.d"
  "/root/repo/tests/aqm/test_pie.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_pie.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_pie.cpp.o.d"
  "/root/repo/tests/aqm/test_pie_drate.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_pie_drate.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_pie_drate.cpp.o.d"
  "/root/repo/tests/aqm/test_pie_pi2_equivalence.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_pie_pi2_equivalence.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_pie_pi2_equivalence.cpp.o.d"
  "/root/repo/tests/aqm/test_red_codel.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_red_codel.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_red_codel.cpp.o.d"
  "/root/repo/tests/aqm/test_signal_frequency.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_signal_frequency.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_signal_frequency.cpp.o.d"
  "/root/repo/tests/aqm/test_step_marker.cpp" "tests/CMakeFiles/test_aqm.dir/aqm/test_step_marker.cpp.o" "gcc" "tests/CMakeFiles/test_aqm.dir/aqm/test_step_marker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/pi2_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pi2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/aqm/CMakeFiles/pi2_aqm.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/pi2_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pi2_control.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pi2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pi2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pi2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
