# Empty compiler generated dependencies file for test_aqm.
# This may be replaced when dependencies are built.
