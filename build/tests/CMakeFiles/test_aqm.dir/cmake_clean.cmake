file(REMOVE_RECURSE
  "CMakeFiles/test_aqm.dir/aqm/test_curvy_red.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_curvy_red.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_pi.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_pi.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_pi_core.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_pi_core.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_pie.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_pie.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_pie_drate.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_pie_drate.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_pie_pi2_equivalence.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_pie_pi2_equivalence.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_red_codel.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_red_codel.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_signal_frequency.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_signal_frequency.cpp.o.d"
  "CMakeFiles/test_aqm.dir/aqm/test_step_marker.cpp.o"
  "CMakeFiles/test_aqm.dir/aqm/test_step_marker.cpp.o.d"
  "test_aqm"
  "test_aqm.pdb"
  "test_aqm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
