// Figure 13: queue delay under varying traffic intensity (PIE vs PI2),
// 10:30:50:30:10 Reno flows over 50 s stages, link = 10 Mb/s, RTT = 100 ms.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Figure 13", "PIE vs PI2 under varying traffic intensity",
                      opts);

  const double stage_s = opts.full ? 50.0 : 20.0;
  const int counts[5] = {10, 30, 50, 30, 10};

  auto run_one = [&](AqmType type) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 10e6;
    cfg.duration = sim::from_seconds(stage_s * 5);
    cfg.seed = opts.seed;
    cfg.aqm.type = type;
    cfg.aqm.ecn = false;
    TcpFlowSpec base;
    base.cc = tcp::CcType::kReno;
    base.count = 10;
    base.base_rtt = sim::from_millis(100);
    TcpFlowSpec mid = base;
    mid.count = 20;
    mid.start = sim::from_seconds(stage_s);
    mid.stop = sim::from_seconds(stage_s * 4);
    TcpFlowSpec peak = base;
    peak.count = 20;
    peak.start = sim::from_seconds(stage_s * 2);
    peak.stop = sim::from_seconds(stage_s * 3);
    cfg.tcp_flows = {base, mid, peak};
    return run_dumbbell(cfg);
  };

  const auto pie = run_one(AqmType::kPie);
  const auto pi2r = run_one(AqmType::kPi2);

  std::printf("%-8s %-10s %-10s\n", "t[s]", "pie[ms]", "pi2[ms]");
  const auto qd_pie = pie.qdelay_ms_series.binned_mean(
      sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(stage_s * 5));
  const auto qd_pi2 = pi2r.qdelay_ms_series.binned_mean(
      sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(stage_s * 5));
  for (std::size_t i = 0; i < qd_pie.size(); ++i) {
    std::printf("%-8.1f %-10.2f %-10.2f\n", qd_pie[i].first, qd_pie[i].second,
                i < qd_pi2.size() ? qd_pi2[i].second : 0.0);
  }

  std::printf("\n%-8s %-8s %-18s %-18s\n", "stage", "flows", "pie peak[ms]",
              "pi2 peak[ms]");
  for (int stage = 0; stage < 5; ++stage) {
    const auto lo = sim::from_seconds(stage_s * stage);
    const auto hi = sim::from_seconds(stage_s * (stage + 1));
    std::printf("%-8d %-8d %-18.1f %-18.1f\n", stage + 1, counts[stage],
                pie.qdelay_ms_series.max_over(lo, hi),
                pi2r.qdelay_ms_series.max_over(lo, hi));
  }
  std::printf(
      "# expectation: PI2 reduces overshoot at each load change and upward\n"
      "# fluctuations during the steady periods.\n");
  return 0;
}
