// Figure 20: normalized per-flow rate (rate divided by the equal-share fair
// rate) with P1/mean/P99 across flows, for the Figure 19 combinations at
// link = 40 Mb/s, RTT = 10 ms.
#include <cstdio>

#include "sweep.hpp"
#include "stats/percentile.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::bench;
  const auto opts = parse_options(argc, argv);
  print_header("Figure 20", "normalized per-flow rates, P1/mean/P99", opts);

  struct Combo {
    int a;
    int b;
  };
  const std::vector<Combo> combos = opts.full
      ? std::vector<Combo>{{1, 1}, {9, 2}, {8, 3}, {7, 4}, {6, 6}, {4, 7},
                           {3, 8}, {2, 9}, {1, 10}, {10, 1}, {5, 5}}
      : std::vector<Combo>{{1, 1}, {9, 2}, {5, 5}, {2, 9}, {1, 10}};

  for (const auto aqm : {scenario::AqmType::kPie, scenario::AqmType::kCoupledPi2}) {
    for (const auto mix : {MixKind::kCubicVsEcnCubic, MixKind::kCubicVsDctcp}) {
      std::printf("\n== %s, %s ==\n",
                  aqm == scenario::AqmType::kPie ? "PIE" : "PI2(coupled)",
                  to_string(mix));
      std::printf("%-10s | %-22s | %-22s\n", "A-B", "cubic P1/mean/P99",
                  "other P1/mean/P99");
      for (const Combo& combo : combos) {
        const auto cfg = mix_config(aqm, mix, 40.0, 10.0, opts, combo.a, combo.b);
        const auto r = scenario::run_dumbbell(cfg);
        const double fair = 40.0 / (combo.a + combo.b);
        stats::PercentileSampler a_norm;
        stats::PercentileSampler b_norm;
        for (const auto& f : r.flows) {
          if (f.is_udp) continue;
          (f.cc == tcp::CcType::kCubic ? a_norm : b_norm).add(f.goodput_mbps / fair);
        }
        std::printf("A%d-B%-7d | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
                    combo.a, combo.b, a_norm.p01(), a_norm.mean(), a_norm.p99(),
                    b_norm.p01(), b_norm.mean(), b_norm.p99());
      }
    }
  }
  std::printf(
      "\n# expectation: under PI2 both classes sit near 1.0 with tight\n"
      "# percentiles for every combination; under PIE the DCTCP class sits\n"
      "# far above 1 and Cubic far below.\n");
  return 0;
}
