// Parking-lot fairness campaign: one long flow crosses a chain of 1..3
// AQM-managed 10 Mb/s bottlenecks while each hop also carries its own
// one-hop cross flow. Classic end-to-end congestion control pays once per
// congested hop, so the long flow's share must fall below the cross flows'
// as soon as hops > 1 — the per-hop table shows each bottleneck's queue
// delay and marking doing that work.
//
// Durable like the sweep binaries: each completed point is journaled
// (codec v4 keeps the per-link slices) before its row prints, SIGINT/
// SIGTERM stop at a point boundary (exit 75), --resume replays journaled
// points byte-identically, and --json is written atomically. The --smoke
// --seed 1 --json output is a committed golden figure
// (tests/golden/fig_parking_lot.json); the hops axis is ordered {3, 1, 2}
// so the cap keeps the acceptance case (3 hops) and the single-hop control.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign_templates.hpp"
#include "sweep.hpp"
#include "topology/topology.hpp"

namespace {

using namespace pi2;
using namespace pi2::bench;

struct ParkingPoint {
  int hops;
  scenario::AqmType aqm;
  const char* aqm_name;
};

double duration_s(const Options& opts) {
  if (opts.duration_s_override > 0) return opts.duration_s_override;
  return opts.full ? 60.0 : 20.0;
}

std::uint64_t parking_campaign_key(const Options& opts, double total_s,
                                   std::size_t points) {
  durable::Fnv1a h;
  h.mix_string("pi2-parking-campaign-v1");
  h.mix_u64(opts.seed);
  h.mix_double(total_s);
  h.mix_u64(points);
  return h.state;
}

std::uint64_t parking_point_key(std::size_t index, const ParkingPoint& p,
                                std::uint64_t derived_seed) {
  durable::Fnv1a h;
  h.mix_string("pi2-parking-point-v1");
  h.mix_u64(index);
  h.mix_u64(static_cast<std::uint64_t>(p.hops));
  h.mix_u64(static_cast<std::uint64_t>(p.aqm));
  h.mix_u64(derived_seed);
  return h.state;
}

template <typename T>
void cap_axis(std::vector<T>& axis, int cap) {
  if (cap > 0 && axis.size() > static_cast<std::size_t>(cap)) {
    axis.resize(static_cast<std::size_t>(cap));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  print_header("Parking lot",
               "long flow vs per-hop cross flows over 1-3 chained bottlenecks",
               opts);
  durable::ShutdownController::install();

  const double total_s = duration_s(opts);
  const double stats_start_s = opts.stats_start_s_override > 0
                                   ? opts.stats_start_s_override
                                   : total_s / 4.0;
  const double link_mbps = 10.0;
  const double rtt_ms = 10.0;

  // Hops ordered so --smoke's cap of 2 keeps the acceptance case (3 hops,
  // where the long flow must lose) next to the single-hop control.
  std::vector<int> hops{3, 1, 2};
  std::vector<std::pair<scenario::AqmType, const char*>> aqms{
      {scenario::AqmType::kCoupledPi2, "coupled-pi2"},
      {scenario::AqmType::kPie, "pie"},
  };
  cap_axis(hops, opts.grid_cap);
  cap_axis(aqms, opts.grid_cap);

  std::vector<ParkingPoint> grid;
  for (const auto& [aqm, name] : aqms) {
    for (const int h : hops) {
      grid.push_back({h, aqm, name});
    }
  }

  std::printf("# chain of 10 Mb/s links, RTT %.0f ms, %.0f s/run; 1 long "
              "Cubic + 1 Cubic cross flow per hop\n",
              rtt_ms, total_s);
  std::printf("%-12s %-5s %-7s %-7s %-7s %-8s %-21s %-21s\n", "aqm", "hops",
              "long", "cross", "ratio", "util", "qdelay/hop (ms)",
              "signals/hop");

  const runner::ParallelRunner pool{opts.jobs};
  bool healthy = true;
  const bool telemetry_on = !opts.telemetry_dir.empty();

  const std::uint64_t campaign =
      parking_campaign_key(opts, total_s, grid.size());
  const std::string journal_file = bench::detail::journal_path(opts);
  std::vector<std::uint64_t> keys(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    keys[i] =
        parking_point_key(i, grid[i], sim::Rng::derive_seed(opts.seed, i));
  }

  // --resume: codec v4 round-trips the per-link slices, so replayed points
  // print the same per-hop columns as fresh runs.
  std::vector<std::unique_ptr<scenario::RunResult>> replay(grid.size());
  bool journal_keep = false;
  if (opts.resume) {
    const durable::LoadedJournal loaded =
        durable::load_journal(journal_file, campaign);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different campaign; "
                   "ignoring it\n",
                   journal_file.c_str());
    }
    if (loaded.header_ok) {
      journal_keep = true;
      std::size_t replayed = 0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto it = loaded.points.find(keys[i]);
        if (it == loaded.points.end()) continue;
        auto result = std::make_unique<scenario::RunResult>();
        if (durable::decode_result(it->second, *result).ok()) {
          replay[i] = std::move(result);
          ++replayed;
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %zu run(s) from %s\n",
                   replayed, grid.size(), journal_file.c_str());
    }
  }
  durable::JournalWriter journal{journal_file, campaign, journal_keep};

  std::unique_ptr<durable::AtomicFile> json;
  bool json_first = true;
  if (!opts.json_path.empty()) {
    json = std::make_unique<durable::AtomicFile>(opts.json_path);
    if (!json->healthy()) {
      std::fprintf(stderr, "warning: %s; no JSON written\n",
                   json->status().message().c_str());
      json.reset();
    } else {
      json->write("[");
    }
  }

  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  std::size_t interrupted_points = 0;
  runner::GuardOptions guard;
  guard.cancel = durable::ShutdownController::flag();

  const auto report = pool.run_ordered_guarded<PointOutcome>(
      grid.size(),
      [&](std::size_t i) {
        if (replay[i] != nullptr) {
          PointOutcome outcome;
          outcome.result = *replay[i];
          return outcome;
        }
        auto cfg = parking_lot_config(grid[i].aqm, grid[i].hops, link_mbps,
                                      rtt_ms, total_s, stats_start_s,
                                      sim::Rng::derive_seed(opts.seed, i));
        cfg.stop = durable::ShutdownController::flag();
        PointOutcome outcome;
        if (telemetry_on) {
          outcome.recorder = std::make_shared<telemetry::Recorder>(
              bench::detail::point_recorder_config(opts, i));
          cfg.recorder = outcome.recorder.get();
        }
        outcome.result = topology::to_run_result(topology::run_topology(cfg));
        return outcome;
      },
      [&](std::size_t i, runner::TaskStatus status, PointOutcome* outcome) {
        const ParkingPoint& p = grid[i];
        if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_points;
          return;
        }
        if (status != runner::TaskStatus::kOk || outcome == nullptr) {
          std::printf("%-12s %-5d point %s\n", p.aqm_name, p.hops,
                      runner::to_string(status));
          if (json != nullptr) {
            parking_json_failed(*json, json_first, i, status, p.aqm_name,
                                p.hops);
          }
          healthy = false;
          return;
        }
        scenario::RunResult* result = &outcome->result;
        if (replay[i] == nullptr && journal.healthy()) {
          (void)journal.append_point(keys[i], durable::encode_result(*result));
        }
        if (outcome->recorder != nullptr) {
          std::printf("# telemetry: %s\n",
                      outcome->recorder->manifest_path().c_str());
          outcome->recorder.reset();
        }
        const ParkingSummary summary = parking_summary(*result, p.hops);
        parking_print_row(p.aqm_name, p.hops, summary, *result);
        if (json != nullptr) {
          parking_json_record(*json, json_first, i, p.aqm_name, p.hops,
                              sim::Rng::derive_seed(opts.seed, i), link_mbps,
                              rtt_ms, summary, *result);
        }
        // Health covers the machinery and the headline ordering: beyond one
        // hop the long flow must not out-throughput the cross flows.
        if (!machinery_healthy(*result)) healthy = false;
        if (!parking_check_headline(p.hops, summary)) healthy = false;
      },
      guard);

  if (durable::ShutdownController::requested()) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    if (json != nullptr) json->abort();
    std::fprintf(stderr,
                 "parking-lot: interrupted — %zu run(s) unfinished; re-run "
                 "with --resume to finish (journal: %s)\n",
                 interrupted_points, journal_file.c_str());
    return durable::ShutdownController::kExitInterrupted;
  }
  if (json != nullptr) {
    json->write("\n]\n");
    const durable::Status status = json->commit();
    if (!status.ok()) {
      std::fprintf(stderr, "error: JSON not written: %s\n",
                   status.message().c_str());
    }
  }

  std::printf(
      "\n# expectation: the ratio column sits near 1.0 at one hop and falls "
      "below 1.0\n"
      "# beyond it — the long flow pays every hop's marking while each cross "
      "flow pays one.\n");
  std::printf("# points ok: %zu/%zu\n", report.ok_count(),
              report.status.size());
  return report.all_ok() && healthy ? 0 : 1;
}
