// Extension: time-domain integration of the Appendix B fluid model — the
// third view connecting the Bode margins (fig04/fig07) to the packet
// simulator. Prints step responses for the three loop configurations at a
// stable and an unstable operating point.
#include <cstdio>

#include "bench_common.hpp"
#include "control/fluid_sim.hpp"

int main(int argc, char** argv) {
  using namespace pi2::control;
  const auto opts = pi2::bench::parse_options(argc, argv);
  pi2::bench::print_header("Extension",
                           "fluid-model step responses (Appendix B in time domain)",
                           opts);

  struct Case {
    const char* name;
    LoopType type;
    PiGains gains;
    double n;
    double link_mbps;
  };
  const Case cases[] = {
      {"reno fixed-PI light load (unstable)", LoopType::kRenoP,
       {0.125, 1.25, 0.032}, 2, 100},
      {"reno PI2 light load", LoopType::kRenoPSquared, {0.3125, 3.125, 0.032}, 2,
       100},
      {"reno PI2 heavy load", LoopType::kRenoPSquared, {0.3125, 3.125, 0.032}, 50,
       10},
      {"scalable PI (2x gains)", LoopType::kScalableP, {0.625, 6.25, 0.032}, 5,
       40},
  };

  std::printf("%-38s %-12s %-14s %-14s %-12s\n", "configuration", "peak[ms]",
              "settled[ms]", "residual[ms]", "W_end");
  for (const Case& c : cases) {
    FluidConfig cfg;
    cfg.type = c.type;
    cfg.gains = c.gains;
    cfg.n_flows = c.n;
    cfg.capacity_pps = c.link_mbps * 1e6 / 8.0 / 1500.0;
    cfg.base_rtt_s = 0.1;
    cfg.duration_s = opts.full ? 120.0 : 60.0;
    const auto trace = simulate_fluid(cfg);
    std::printf("%-38s %-12.1f %-14.1f %-14.1f %-12.1f\n", c.name,
                trace.peak_qdelay_s() * 1000.0,
                trace.settled_qdelay_s(10.0) * 1000.0,
                trace.residual_oscillation_s(10.0) * 1000.0,
                trace.window.back());
  }

  // Load-step response of PI2 (the fluid version of Figure 13).
  std::printf("\nload step 5 -> 25 flows at t=30s (PI2, 10 Mb/s):\n");
  FluidConfig step;
  step.type = LoopType::kRenoPSquared;
  step.gains = {0.3125, 3.125, 0.032};
  step.n_flows = 5;
  step.capacity_pps = 10e6 / 8.0 / 1500.0;
  step.n_step_at_s = 30.0;
  step.n_step_to = 25.0;
  step.duration_s = opts.full ? 120.0 : 70.0;
  const auto trace = simulate_fluid(step);
  std::printf("  overshoot peak after step: %.1f ms\n",
              trace.peak_qdelay_s(30.0) * 1000.0);
  std::printf("  settled delay (last 10 s): %.1f ms\n",
              trace.settled_qdelay_s(10.0) * 1000.0);
  std::printf(
      "\n# expectation: the fixed-gain PI case shows sustained oscillation\n"
      "# (its gain margin is negative there — see fig04); every PI2/scal-PI\n"
      "# case settles to the 20 ms target, matching fig07's margins.\n");
  return 0;
}
