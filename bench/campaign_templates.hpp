// Shared per-point builders for the campaign-style figures (overload,
// parking lot, RTT mix): scenario config construction, the printed table
// row, the --json record, and the health predicates. Both the standalone
// fig binaries and bench/pi2_campaign (the declarative campaign driver)
// call these, so a spec-driven run of the same grid is *byte-identical* to
// the fig binary's output — the golden_campaign_* ctests gate exactly that.
//
// Format strings here are the committed golden baselines' schema; change
// them only together with tests/golden/*.json.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>

#include "faults/fault_presets.hpp"
#include "sweep.hpp"
#include "topology/topology.hpp"

namespace pi2::bench {

/// Maps a campaign-spec axis value onto an AqmType. Names follow
/// scenario::to_string(AqmType); callers pass validated spec values.
inline scenario::AqmType aqm_from_name(const std::string& name) {
  using scenario::AqmType;
  if (name == "fifo") return AqmType::kFifo;
  if (name == "pie") return AqmType::kPie;
  if (name == "bare-pie") return AqmType::kBarePie;
  if (name == "pi") return AqmType::kPi;
  if (name == "pi2") return AqmType::kPi2;
  if (name == "coupled-pi2") return AqmType::kCoupledPi2;
  if (name == "red") return AqmType::kRed;
  if (name == "codel") return AqmType::kCodel;
  if (name == "curvy-red") return AqmType::kCurvyRed;
  if (name == "step") return AqmType::kStep;
  return AqmType::kDualPi2;
}

inline MixKind mix_from_name(const std::string& name) {
  return name == "cubic/dctcp" ? MixKind::kCubicVsDctcp
                               : MixKind::kCubicVsEcnCubic;
}

inline net::Ecn ecn_from_name(const std::string& name) {
  if (name == "ect0") return net::Ecn::kEct0;
  if (name == "ect1") return net::Ecn::kEct1;
  return net::Ecn::kNotEct;
}

/// The machinery half of every figure's health check: a clean run has no
/// invariant violations, no clamped events and no guard trips.
inline bool machinery_healthy(const scenario::RunResult& result) {
  return result.violations.empty() && result.clamped_events == 0 &&
         result.guard_events == 0;
}

// ---- overload (RFC 9332 §4.2 UDP floods vs DualPI2) ------------------------

inline scenario::DumbbellConfig overload_config(net::Ecn ecn, double udp_mult,
                                                double link_mbps, double rtt_ms,
                                                double total_s,
                                                double stats_start_s,
                                                std::uint64_t seed) {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = link_mbps * 1e6;
  cfg.aqm.type = scenario::AqmType::kDualPi2;
  // RFC 9332 overload protection assumes the Classic drop probability can
  // ramp all the way to 1: a 2x unresponsive flood needs 50%+ drop to keep
  // the queue governed, which the paper's single-queue 25% cap
  // (kDefaultMaxClassicProb) would forbid.
  cfg.aqm.max_classic_prob = 1.0;
  cfg.duration = sim::from_seconds(total_s);
  cfg.stats_start = sim::from_seconds(stats_start_s);
  cfg.seed = seed;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = sim::from_millis(rtt_ms);
  cfg.tcp_flows.push_back(cubic);
  scenario::TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = sim::from_millis(rtt_ms);
  cfg.tcp_flows.push_back(dctcp);
  scenario::UdpFlowSpec flood;
  flood.rate_bps = udp_mult * cfg.link_rate_bps;
  flood.ecn = ecn;
  flood.base_rtt = sim::from_millis(rtt_ms);
  cfg.udp_flows.push_back(flood);
  return cfg;
}

inline void overload_print_row(const char* ecn_name, double udp_mult,
                               const scenario::RunResult& result) {
  const auto& l = result.window_band_l;
  const auto& c = result.window_band_c;
  std::printf(
      "%-9s %-9.2f %-7.2f %-7.2f %-7.2f %-9.2f %-9.2f %5lld/%-5lld "
      "%5lld/%-5lld %4lld/%-4lld %-7llu\n",
      ecn_name, udp_mult, result.mean_goodput_mbps(tcp::CcType::kCubic),
      result.mean_goodput_mbps(tcp::CcType::kDctcp),
      result.mean_udp_goodput_mbps(), result.mean_qdelay_ms,
      result.p99_qdelay_ms, static_cast<long long>(l.marked),
      static_cast<long long>(l.aqm_dropped), static_cast<long long>(c.marked),
      static_cast<long long>(c.aqm_dropped),
      static_cast<long long>(l.tail_dropped),
      static_cast<long long>(c.tail_dropped),
      static_cast<unsigned long long>(result.guard_events));
}

inline void overload_json_record(durable::AtomicFile& json, bool& first,
                                 std::size_t index, const char* ecn_name,
                                 std::uint64_t seed, double link_mbps,
                                 double rtt_ms, double udp_mult,
                                 const scenario::RunResult& result) {
  const auto& l = result.window_band_l;
  const auto& c = result.window_band_c;
  json.printf(
      "%s\n  {\"index\": %zu, \"status\": \"ok\", \"ecn\": \"%s\", "
      "\"seed\": %llu, \"link_mbps\": %.6g, \"rtt_ms\": %.6g, "
      "\"udp_mult\": %.6g, "
      "\"cubic_mbps\": %.6g, \"dctcp_mbps\": %.6g, \"udp_mbps\": %.6g, "
      "\"utilization\": %.6g, \"mean_qdelay_ms\": %.6g, "
      "\"p99_qdelay_ms\": %.6g, "
      "\"l_enqueued\": %lld, \"l_marked\": %lld, \"l_dropped\": %lld, "
      "\"l_tail_dropped\": %lld, "
      "\"c_enqueued\": %lld, \"c_marked\": %lld, \"c_dropped\": %lld, "
      "\"c_tail_dropped\": %lld, "
      "\"invariant_violations\": %llu, \"guard_events\": %llu}",
      first ? "" : ",", index, ecn_name,
      static_cast<unsigned long long>(seed), link_mbps, rtt_ms, udp_mult,
      result.mean_goodput_mbps(tcp::CcType::kCubic),
      result.mean_goodput_mbps(tcp::CcType::kDctcp),
      result.mean_udp_goodput_mbps(), result.utilization,
      result.mean_qdelay_ms, result.p99_qdelay_ms,
      static_cast<long long>(l.enqueued), static_cast<long long>(l.marked),
      static_cast<long long>(l.aqm_dropped),
      static_cast<long long>(l.tail_dropped),
      static_cast<long long>(c.enqueued), static_cast<long long>(c.marked),
      static_cast<long long>(c.aqm_dropped),
      static_cast<long long>(c.tail_dropped),
      static_cast<unsigned long long>(result.violations.size()),
      static_cast<unsigned long long>(result.guard_events));
  first = false;
}

inline void overload_json_failed(durable::AtomicFile& json, bool& first,
                                 std::size_t index, runner::TaskStatus status,
                                 const char* ecn_name, double udp_mult) {
  json.printf("%s\n  {\"index\": %zu, \"status\": \"%s\", "
              "\"ecn\": \"%s\", \"udp_mult\": %.3g}",
              first ? "" : ",", index, runner::to_string(status), ecn_name,
              udp_mult);
  first = false;
}

// ---- parking lot (long flow vs per-hop cross flows) ------------------------

/// The N-hop parking lot: nodes n0..nN, one long Cubic flow over the whole
/// chain, one Cubic cross flow per hop, every hop the same rate and AQM.
inline topology::TopologyConfig parking_lot_config(
    scenario::AqmType aqm, int hops, double link_mbps, double rtt_ms,
    double total_s, double stats_start_s, std::uint64_t seed) {
  topology::TopologyConfig cfg;
  for (int i = 0; i <= hops; ++i) {
    cfg.nodes.push_back("n" + std::to_string(i));
  }
  for (int i = 0; i < hops; ++i) {
    topology::LinkSpec link;
    link.from = cfg.nodes[static_cast<std::size_t>(i)];
    link.to = cfg.nodes[static_cast<std::size_t>(i) + 1];
    link.rate_bps = link_mbps * 1e6;
    link.aqm.type = aqm;
    link.aqm.ecn = true;
    cfg.links.push_back(link);
  }
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.count = 1;
  cubic.base_rtt = sim::from_millis(rtt_ms);
  topology::TcpRoute longflow;
  longflow.spec = cubic;
  longflow.path = cfg.nodes;
  cfg.tcp_flows.push_back(longflow);
  for (int i = 0; i < hops; ++i) {
    topology::TcpRoute cross;
    cross.spec = cubic;
    cross.path = {cfg.nodes[static_cast<std::size_t>(i)],
                  cfg.nodes[static_cast<std::size_t>(i) + 1]};
    cfg.tcp_flows.push_back(cross);
  }
  cfg.duration = sim::from_seconds(total_s);
  cfg.stats_start = sim::from_seconds(stats_start_s);
  cfg.seed = seed;
  return cfg;
}

struct ParkingSummary {
  double long_mbps = 0;
  double cross_mbps = 0;
  double ratio = 0;
  double util_min = 1.0;
};

/// Flow order is the route order: flows[0] is the long flow, flows[1..hops]
/// the cross flows.
inline ParkingSummary parking_summary(const scenario::RunResult& result,
                                      int hops) {
  ParkingSummary s;
  s.long_mbps = result.flows[0].goodput_mbps;
  double cross_sum = 0.0;
  for (int h = 0; h < hops; ++h) {
    cross_sum += result.flows[static_cast<std::size_t>(h) + 1].goodput_mbps;
  }
  s.cross_mbps = cross_sum / hops;
  s.ratio = s.cross_mbps > 0 ? s.long_mbps / s.cross_mbps : 0.0;
  for (const auto& link : result.links) {
    if (link.utilization < s.util_min) s.util_min = link.utilization;
  }
  return s;
}

inline void parking_print_row(const char* aqm_name, int hops,
                              const ParkingSummary& s,
                              const scenario::RunResult& result) {
  char qdelay_col[64] = "";
  char marks_col[64] = "";
  std::size_t q_at = 0;
  std::size_t m_at = 0;
  for (const auto& link : result.links) {
    q_at += static_cast<std::size_t>(std::snprintf(
        qdelay_col + q_at, sizeof(qdelay_col) - q_at, "%s%.2f",
        q_at == 0 ? "" : "/", link.mean_qdelay_ms));
    m_at += static_cast<std::size_t>(std::snprintf(
        marks_col + m_at, sizeof(marks_col) - m_at, "%s%lld",
        m_at == 0 ? "" : "/",
        static_cast<long long>(link.counters.marked +
                               link.counters.aqm_dropped)));
  }
  std::printf("%-12s %-5d %-7.2f %-7.2f %-7.2f %-8.3f %-21s %-21s\n",
              aqm_name, hops, s.long_mbps, s.cross_mbps, s.ratio, s.util_min,
              qdelay_col, marks_col);
}

inline void parking_json_record(durable::AtomicFile& json, bool& first,
                                std::size_t index, const char* aqm_name,
                                int hops, std::uint64_t seed, double link_mbps,
                                double rtt_ms, const ParkingSummary& s,
                                const scenario::RunResult& result) {
  json.printf(
      "%s\n  {\"index\": %zu, \"status\": \"ok\", \"aqm\": \"%s\", "
      "\"hops\": %d, \"seed\": %llu, \"link_mbps\": %.6g, "
      "\"rtt_ms\": %.6g, "
      "\"long_mbps\": %.6g, \"cross_mbps\": %.6g, \"ratio\": %.6g, "
      "\"util_min\": %.6g",
      first ? "" : ",", index, aqm_name, hops,
      static_cast<unsigned long long>(seed), link_mbps, rtt_ms, s.long_mbps,
      s.cross_mbps, s.ratio, s.util_min);
  for (std::size_t h = 0; h < result.links.size(); ++h) {
    const auto& link = result.links[h];
    json.printf(
        ", \"hop%zu_qdelay_ms\": %.6g, \"hop%zu_marked\": %lld, "
        "\"hop%zu_dropped\": %lld",
        h, link.mean_qdelay_ms, h,
        static_cast<long long>(link.counters.marked), h,
        static_cast<long long>(link.counters.aqm_dropped));
  }
  json.printf(", \"invariant_violations\": %llu, "
              "\"guard_events\": %llu}",
              static_cast<unsigned long long>(result.violations.size()),
              static_cast<unsigned long long>(result.guard_events));
  first = false;
}

inline void parking_json_failed(durable::AtomicFile& json, bool& first,
                                std::size_t index, runner::TaskStatus status,
                                const char* aqm_name, int hops) {
  json.printf("%s\n  {\"index\": %zu, \"status\": \"%s\", "
              "\"aqm\": \"%s\", \"hops\": %d}",
              first ? "" : ",", index, runner::to_string(status), aqm_name,
              hops);
  first = false;
}

/// Headline check: beyond one hop the long flow must not out-throughput the
/// cross flows. Prints the diagnostic (stdout schema of the fig binary) and
/// returns false when violated.
inline bool parking_check_headline(int hops, const ParkingSummary& s) {
  if (hops > 1 && s.long_mbps >= s.cross_mbps) {
    std::printf("# UNHEALTHY: long flow (%.2f Mb/s) >= cross mean "
                "(%.2f Mb/s) over %d hops\n",
                s.long_mbps, s.cross_mbps, hops);
    return false;
  }
  return true;
}

// ---- RTT mix (10/50/100 ms branches sharing one bottleneck) ----------------

inline constexpr double kBranchRttMs[] = {10.0, 50.0, 100.0};
inline constexpr std::size_t kBranches = 3;
inline constexpr int kFlowsPerBranch = 2;  // 1 Cubic + 1 DCTCP

/// Branch topology: r10/r50/r100 -> agg over FIFO access links, agg -> sink
/// over the AQM bottleneck. The bottleneck is links[0], so it owns the
/// flattened result's top-level series and telemetry scope.
inline topology::TopologyConfig rtt_mix_config(scenario::AqmType aqm,
                                               double link_mbps, double total_s,
                                               double stats_start_s,
                                               std::uint64_t seed) {
  topology::TopologyConfig cfg;
  cfg.nodes = {"agg", "sink", "r10", "r50", "r100"};
  topology::LinkSpec bottleneck;
  bottleneck.name = "bottleneck";
  bottleneck.from = "agg";
  bottleneck.to = "sink";
  bottleneck.rate_bps = link_mbps * 1e6;
  bottleneck.aqm.type = aqm;
  bottleneck.aqm.ecn = true;
  cfg.links.push_back(bottleneck);
  for (std::size_t b = 0; b < kBranches; ++b) {
    topology::LinkSpec access;
    access.from = cfg.nodes[2 + b];
    access.to = "agg";
    access.rate_bps = 40e6;  // never the bottleneck
    access.aqm.type = scenario::AqmType::kFifo;
    cfg.links.push_back(access);
  }
  for (std::size_t b = 0; b < kBranches; ++b) {
    const std::vector<std::string> path = {cfg.nodes[2 + b], "agg", "sink"};
    scenario::TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.count = 1;
    cubic.base_rtt = sim::from_millis(kBranchRttMs[b]);
    cfg.tcp_flows.push_back({cubic, path});
    scenario::TcpFlowSpec dctcp;
    dctcp.cc = tcp::CcType::kDctcp;
    dctcp.count = 1;
    dctcp.base_rtt = sim::from_millis(kBranchRttMs[b]);
    cfg.tcp_flows.push_back({dctcp, path});
  }
  cfg.duration = sim::from_seconds(total_s);
  cfg.stats_start = sim::from_seconds(stats_start_s);
  cfg.seed = seed;
  return cfg;
}

struct RttMixSummary {
  double branch_mbps[kBranches] = {};
  double ratio = 0;  ///< 10 ms / 100 ms branch goodput
  double jain = 0;
};

/// Flow order is the route order: branch b owns flows[2b] (Cubic) and
/// flows[2b+1] (DCTCP).
inline RttMixSummary rtt_mix_summary(const scenario::RunResult& result) {
  RttMixSummary s;
  for (std::size_t b = 0; b < kBranches; ++b) {
    for (int f = 0; f < kFlowsPerBranch; ++f) {
      s.branch_mbps[b] +=
          result.flows[b * kFlowsPerBranch + static_cast<std::size_t>(f)]
              .goodput_mbps;
    }
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double g : s.branch_mbps) {
    sum += g;
    sum_sq += g * g;
  }
  s.jain = sum_sq > 0 ? (sum * sum) / (kBranches * sum_sq) : 0.0;
  s.ratio = s.branch_mbps[2] > 0 ? s.branch_mbps[0] / s.branch_mbps[2] : 0.0;
  return s;
}

inline void rtt_mix_print_row(const char* aqm_name, const RttMixSummary& s,
                              const scenario::RunResult& result) {
  std::printf("%-12s %-8.2f %-8.2f %-8.2f %-9.2f %-6.3f %-8.2f %-8.2f\n",
              aqm_name, s.branch_mbps[0], s.branch_mbps[1], s.branch_mbps[2],
              s.ratio, s.jain, result.mean_qdelay_ms, result.p99_qdelay_ms);
}

inline void rtt_mix_json_record(durable::AtomicFile& json, bool& first,
                                std::size_t index, const char* aqm_name,
                                std::uint64_t seed, double link_mbps,
                                const RttMixSummary& s,
                                const scenario::RunResult& result) {
  json.printf(
      "%s\n  {\"index\": %zu, \"status\": \"ok\", \"aqm\": \"%s\", "
      "\"seed\": %llu, \"link_mbps\": %.6g, "
      "\"rtt10_mbps\": %.6g, \"rtt50_mbps\": %.6g, "
      "\"rtt100_mbps\": %.6g, \"ratio_10_100\": %.6g, "
      "\"jain\": %.6g, \"utilization\": %.6g, "
      "\"mean_qdelay_ms\": %.6g, \"p99_qdelay_ms\": %.6g, "
      "\"marked\": %lld, \"aqm_dropped\": %lld, "
      "\"invariant_violations\": %llu, \"guard_events\": %llu}",
      first ? "" : ",", index, aqm_name,
      static_cast<unsigned long long>(seed), link_mbps, s.branch_mbps[0],
      s.branch_mbps[1], s.branch_mbps[2], s.ratio, s.jain, result.utilization,
      result.mean_qdelay_ms, result.p99_qdelay_ms,
      static_cast<long long>(result.counters.marked),
      static_cast<long long>(result.counters.aqm_dropped),
      static_cast<unsigned long long>(result.violations.size()),
      static_cast<unsigned long long>(result.guard_events));
  first = false;
}

inline void rtt_mix_json_failed(durable::AtomicFile& json, bool& first,
                                std::size_t index, runner::TaskStatus status,
                                const char* aqm_name) {
  json.printf("%s\n  {\"index\": %zu, \"status\": \"%s\", \"aqm\": \"%s\"}",
              first ? "" : ",", index, runner::to_string(status), aqm_name);
  first = false;
}

/// Liveness check: every branch must get a share. Prints the starved-branch
/// diagnostics and returns false when violated.
inline bool rtt_mix_check_branches(const RttMixSummary& s) {
  bool ok = true;
  for (std::size_t b = 0; b < kBranches; ++b) {
    if (s.branch_mbps[b] <= 0.0) {
      std::printf("# UNHEALTHY: branch %zu starved (%.3f Mb/s)\n", b,
                  s.branch_mbps[b]);
      ok = false;
    }
  }
  return ok;
}

// ---- resilience (fault presets x fluid background vs recovery time) --------

/// The preset/literal scaling context for one resilience campaign: faults
/// scale to the expansion's link rate, base RTT and (override-adjusted)
/// duration, so the same spec stresses quick, full and smoke runs alike.
inline faults::PresetContext resilience_fault_context(double link_mbps,
                                                      double rtt_ms,
                                                      double total_s) {
  faults::PresetContext ctx;
  ctx.link_bps = link_mbps * 1e6;
  ctx.base_rtt = sim::from_millis(rtt_ms);
  ctx.duration = sim::from_seconds(total_s);
  return ctx;
}

/// Foreground is the coexistence pair (1 Cubic + 1 DCTCP) every AQM on the
/// grid can govern; the fluid tier renders the `fluid_flows` background as
/// one modelled-Reno ensemble, exactly the --fluid-background idiom.
inline scenario::DumbbellConfig resilience_config(
    scenario::AqmType aqm, const faults::FaultSchedule& schedule,
    double fluid_flows, double link_mbps, double rtt_ms, double total_s,
    double stats_start_s, std::uint64_t seed) {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = link_mbps * 1e6;
  cfg.aqm.type = aqm;
  cfg.aqm.ecn = true;
  cfg.duration = sim::from_seconds(total_s);
  cfg.stats_start = sim::from_seconds(stats_start_s);
  cfg.seed = seed;
  cfg.faults = schedule;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = sim::from_millis(rtt_ms);
  cfg.tcp_flows.push_back(cubic);
  scenario::TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = sim::from_millis(rtt_ms);
  cfg.tcp_flows.push_back(dctcp);
  if (fluid_flows > 0) {
    scenario::FluidFlowSpec bg;
    bg.cc = tcp::CcType::kReno;
    bg.count = fluid_flows;
    bg.base_rtt = sim::from_millis(rtt_ms);
    cfg.fluid_flows.push_back(bg);
  }
  return cfg;
}

inline void resilience_print_row(const char* aqm_name, const char* fault,
                                 double fluid_flows,
                                 const scenario::RunResult& result) {
  const stats::ResilienceReport& rr = result.resilience;
  std::printf(
      "%-12s %-16s %-8.0f %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f %-7.3f "
      "%llu/%llu\n",
      aqm_name, fault, fluid_flows, rr.worst_recovery_s, rr.mean_recovery_s,
      rr.peak_qdelay_ms, rr.post_fault_delta_ms, result.mean_qdelay_ms,
      result.utilization,
      static_cast<unsigned long long>(rr.violations_in_window),
      static_cast<unsigned long long>(rr.violations_outside));
}

inline void resilience_json_record(durable::AtomicFile& json, bool& first,
                                   std::size_t index, const char* aqm_name,
                                   const char* fault, double fluid_flows,
                                   std::uint64_t seed, double link_mbps,
                                   double rtt_ms,
                                   const scenario::RunResult& result) {
  const stats::ResilienceReport& rr = result.resilience;
  json.printf(
      "%s\n  {\"index\": %zu, \"status\": \"ok\", \"aqm\": \"%s\", "
      "\"fault\": \"%s\", \"fluid_flows\": %.6g, \"seed\": %llu, "
      "\"link_mbps\": %.6g, \"rtt_ms\": %.6g, "
      "\"windows\": %llu, \"recovered_windows\": %llu, "
      "\"worst_recovery_s\": %.6g, \"mean_recovery_s\": %.6g, "
      "\"peak_qdelay_ms\": %.6g, \"post_fault_delta_ms\": %.6g, "
      "\"mean_qdelay_ms\": %.6g, \"p99_qdelay_ms\": %.6g, "
      "\"utilization\": %.6g, \"fault_dropped\": %lld, "
      "\"violations_in_window\": %llu, \"violations_outside\": %llu, "
      "\"invariant_violations\": %llu, \"guard_events\": %llu}",
      first ? "" : ",", index, aqm_name, fault, fluid_flows,
      static_cast<unsigned long long>(seed), link_mbps, rtt_ms,
      static_cast<unsigned long long>(rr.windows),
      static_cast<unsigned long long>(rr.recovered_windows),
      rr.worst_recovery_s, rr.mean_recovery_s, rr.peak_qdelay_ms,
      rr.post_fault_delta_ms, result.mean_qdelay_ms, result.p99_qdelay_ms,
      result.utilization, static_cast<long long>(result.counters.fault_dropped),
      static_cast<unsigned long long>(rr.violations_in_window),
      static_cast<unsigned long long>(rr.violations_outside),
      static_cast<unsigned long long>(result.violations.size()),
      static_cast<unsigned long long>(result.guard_events));
  first = false;
}

inline void resilience_json_failed(durable::AtomicFile& json, bool& first,
                                   std::size_t index, runner::TaskStatus status,
                                   const char* aqm_name, const char* fault,
                                   double fluid_flows) {
  json.printf("%s\n  {\"index\": %zu, \"status\": \"%s\", \"aqm\": \"%s\", "
              "\"fault\": \"%s\", \"fluid_flows\": %.6g}",
              first ? "" : ",", index, runner::to_string(status), aqm_name,
              fault, fluid_flows);
  first = false;
}

/// Per-point machinery gate for faulted runs: clamp/guard trips stay fatal,
/// but invariant violations are only fatal *outside* a fault window or its
/// recovery transient (the analyzer's in/out split).
inline bool resilience_machinery_healthy(const scenario::RunResult& result) {
  if (result.clamped_events != 0 || result.guard_events != 0) return false;
  if (result.resilience.violations_outside != 0) {
    std::printf("# UNHEALTHY: %llu invariant violation(s) outside any fault "
                "window\n",
                static_cast<unsigned long long>(
                    result.resilience.violations_outside));
    return false;
  }
  return true;
}

/// Cross-point gate for the paper's robustness headline: on every fault
/// preset of the grid, PI2's worst time-to-reconverge must not exceed
/// PIE's. Scores aggregate as the max across the fluid axis, with a
/// never-recovered window (-1) counting as +inf.
struct ResilienceGate {
  struct Cell {
    double pi2 = 0.0;
    double pie = 0.0;
    bool has_pi2 = false;
    bool has_pie = false;
  };
  std::map<std::string, Cell> by_fault;

  static double settled_or_inf(double worst_recovery_s) {
    return worst_recovery_s < 0.0
               ? std::numeric_limits<double>::infinity()
               : worst_recovery_s;
  }

  void record(const std::string& fault, const std::string& aqm,
              double worst_recovery_s) {
    Cell& cell = by_fault[fault];
    const double score = settled_or_inf(worst_recovery_s);
    if (aqm == "coupled-pi2" || aqm == "pi2") {
      cell.pi2 = cell.has_pi2 ? std::max(cell.pi2, score) : score;
      cell.has_pi2 = true;
    } else if (aqm == "pie") {
      cell.pie = cell.has_pie ? std::max(cell.pie, score) : score;
      cell.has_pie = true;
    }
  }

  /// Prints per-preset diagnostics; false when any preset has PI2 slower.
  [[nodiscard]] bool check() const {
    bool ok = true;
    for (const auto& [fault, cell] : by_fault) {
      if (!cell.has_pi2 || !cell.has_pie) continue;
      if (cell.pi2 > cell.pie) {
        std::printf("# UNHEALTHY: %s: PI2 worst recovery %.2f s > PIE "
                    "%.2f s\n",
                    fault.c_str(), cell.pi2, cell.pie);
        ok = false;
      }
    }
    return ok;
  }
};

}  // namespace pi2::bench
