// Shared plumbing for the figure-reproduction binaries: CLI flags, table
// formatting, and the link-rate x RTT sweep grids of Figures 15-18.
//
// Every binary prints the same rows/series the paper reports. By default a
// reduced grid / shortened durations keep the whole suite runnable quickly;
// pass --full for the paper-scale parameters. Sweep-based binaries fan their
// grid points out over --jobs worker threads (the printed tables stay
// byte-identical to a serial run) and can emit machine-readable per-point
// records with --json.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/dumbbell.hpp"

namespace pi2::bench {

struct Options {
  /// argv[0], captured so the default journal name can be derived from the
  /// binary when --json is unset.
  std::string argv0;
  bool full = false;
  std::uint64_t seed = 1;
  /// Worker threads for sweep-based binaries. 0 = hardware_concurrency.
  /// Output is identical for every value; only wall-clock changes.
  unsigned jobs = 0;
  /// If non-empty, sweep-based binaries write one JSON record per grid
  /// point to this path (in addition to the printed table).
  std::string json_path;
  /// Overrides for smoke/CI runs (0 = use the quick/full mode defaults).
  double duration_s_override = 0;
  double stats_start_s_override = 0;
  /// Caps the number of entries per grid axis (0 = no cap); --smoke uses
  /// this to exercise the full sweep machinery in seconds.
  int grid_cap = 0;
  /// Per-point wall-clock watchdog deadline in seconds (0 = no watchdog).
  /// A point that exceeds it is retried once, then reported `timeout`.
  double deadline_s = 0;
  /// Extra attempts for a failed or stuck point.
  int retries = 1;
  /// Base delay (ms) before the first retry of a point; doubles per further
  /// attempt, with deterministic seed-derived jitter (0 = retry immediately).
  long long backoff_ms = 0;
  /// Resume from the run journal: completed grid points found in it are
  /// replayed (byte-identical output) instead of re-simulated. Requires the
  /// same grid/seed/duration flags as the interrupted run.
  bool resume = false;
  /// Journal path override. Empty = derived from --json (`<json>.journal`)
  /// or `<argv0 basename>.journal` when --json is unset.
  std::string journal_path;
  /// Test hooks for the partial-failure path: force the given grid point to
  /// throw / to stall for `hang_s` wall seconds (-1 = disabled). With a
  /// deadline set, a hung point exercises the watchdog + retry machinery.
  long long inject_fail = -1;
  long long inject_hang = -1;
  double hang_s = 2.0;
  /// If non-empty, every grid point writes a telemetry bundle (JSONL stream,
  /// Prometheus snapshot, RunManifest) into this directory, plus a
  /// sweep-wide aggregated snapshot. Byte-identical at any --jobs value.
  std::string telemetry_dir;
  /// Telemetry sampling cadence in simulated seconds (0 = 100 ms default).
  double telemetry_interval_s = 0;
  /// Background load added to every grid point's mix, as either N extra
  /// packet Reno flows or a fluid spec of N modelled Reno flows. The two are
  /// the same scenario rendered by different engine tiers — the golden
  /// fluid-vs-packet agreement test runs one figure both ways.
  int packet_background = 0;
  int fluid_background = 0;
  /// Drop grid links below this rate. The fluid-vs-packet agreement test
  /// uses it to stay inside the mean-field model's validity envelope: the
  /// Appendix-B window law W = sqrt(2/p) is the small-p approximation, so at
  /// links where the equilibrium marking probability is ~0.1+ (4 Mb/s on
  /// this grid) real timeout-dominated TCP and the fluid tier diverge by
  /// construction.
  double min_link_mbps = 0;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  if (argc > 0 && argv[0] != nullptr) opts.argv0 = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      opts.full = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (arg == "--smoke") {
      opts.duration_s_override = 4.0;
      opts.stats_start_s_override = 1.0;
      opts.grid_cap = 2;
    } else if (arg == "--duration-s" && i + 1 < argc) {
      opts.duration_s_override = std::strtod(argv[++i], nullptr);
    } else if (arg == "--stats-start-s" && i + 1 < argc) {
      opts.stats_start_s_override = std::strtod(argv[++i], nullptr);
    } else if (arg == "--grid-cap" && i + 1 < argc) {
      opts.grid_cap = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--min-link-mbps" && i + 1 < argc) {
      opts.min_link_mbps = std::strtod(argv[++i], nullptr);
    } else if (arg == "--deadline-s" && i + 1 < argc) {
      opts.deadline_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--retries" && i + 1 < argc) {
      opts.retries = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--backoff-ms" && i + 1 < argc) {
      opts.backoff_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--journal" && i + 1 < argc) {
      opts.journal_path = argv[++i];
    } else if (arg == "--inject-fail" && i + 1 < argc) {
      opts.inject_fail = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--inject-hang" && i + 1 < argc) {
      opts.inject_hang = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--hang-s" && i + 1 < argc) {
      opts.hang_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--telemetry" && i + 1 < argc) {
      opts.telemetry_dir = argv[++i];
    } else if (arg == "--telemetry-interval" && i + 1 < argc) {
      opts.telemetry_interval_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--packet-background" && i + 1 < argc) {
      opts.packet_background = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--fluid-background" && i + 1 < argc) {
      opts.fluid_background = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--full] [--seed N] [--jobs N] [--json PATH] [--smoke]\n"
          "          [--deadline-s S] [--retries N] [--backoff-ms MS]\n"
          "          [--resume] [--journal PATH]\n"
          "  --full      paper-scale grid and durations (slower)\n"
          "  --seed N    RNG seed (default 1)\n"
          "  --jobs N    worker threads for sweep grids (default: all cores;\n"
          "              tables are byte-identical for every N)\n"
          "  --json PATH also write per-point JSON records to PATH\n"
          "  --smoke     tiny grid and durations (CI race/smoke testing)\n"
          "  --duration-s S / --stats-start-s S / --grid-cap N\n"
          "              override the run duration, stats-window start and\n"
          "              per-axis grid size (later flags win, so they can\n"
          "              refine --smoke; 0 = keep the mode default)\n"
          "  --min-link-mbps X  drop grid links below X Mb/s (fluid-tier\n"
          "              agreement runs stay in the mean-field validity\n"
          "              envelope this way)\n"
          "  --deadline-s S  per-point wall-clock watchdog; a point past the\n"
          "              deadline is retried once, then reported `timeout`\n"
          "  --retries N retry budget per failed/stuck point (default 1)\n"
          "  --backoff-ms MS  base retry backoff, doubling per attempt with\n"
          "              deterministic seed-derived jitter (default 0)\n"
          "  --resume    replay completed points from the run journal and\n"
          "              only re-simulate the missing ones; the final output\n"
          "              is byte-identical to an uninterrupted run\n"
          "  --journal PATH  journal location (default: <json>.journal, or\n"
          "              <binary>.journal without --json)\n"
          "  --inject-fail I / --inject-hang I / --hang-s S\n"
          "              fault-injection test hooks: force point I to throw,\n"
          "              or to stall S wall seconds (default 2)\n"
          "  --telemetry DIR  write per-point telemetry artifacts (JSONL,\n"
          "              Prometheus snapshot, run manifest) into DIR\n"
          "  --telemetry-interval S  telemetry sampling cadence in simulated\n"
          "              seconds (default 0.1)\n"
          "  --packet-background N / --fluid-background N\n"
          "              add N background Reno flows to every grid point, as\n"
          "              real packet flows or as one fluid spec of N modelled\n"
          "              flows (the same load at different engine tiers)\n",
          argv[0]);
      std::exit(0);
    }
  }
  return opts;
}

inline void print_header(const char* figure, const char* description,
                         const Options& opts) {
  std::printf("# %s — %s\n", figure, description);
  std::printf("# mode: %s\n", opts.full ? "full (paper-scale)" : "quick (reduced)");
}

namespace detail {
inline std::vector<double> capped(std::vector<double> grid, int cap) {
  if (cap > 0 && static_cast<std::size_t>(cap) < grid.size()) {
    grid.resize(static_cast<std::size_t>(cap));
  }
  return grid;
}
}  // namespace detail

/// The evaluation grid of Figures 15-18 (link Mb/s x RTT ms).
inline std::vector<double> link_grid(const Options& opts) {
  std::vector<double> grid = opts.full
                                 ? std::vector<double>{4, 12, 40, 120, 200}
                                 : std::vector<double>{4, 40, 120};
  if (opts.min_link_mbps > 0) {
    std::erase_if(grid, [&](double mbps) { return mbps < opts.min_link_mbps; });
  }
  return detail::capped(std::move(grid), opts.grid_cap);
}

inline std::vector<double> rtt_grid(const Options& opts) {
  if (opts.full) return detail::capped({5, 10, 20, 50, 100}, opts.grid_cap);
  return detail::capped({5, 20, 100}, opts.grid_cap);
}

/// Durations for the steady-state runs.
inline pi2::sim::Time run_duration(const Options& opts) {
  if (opts.duration_s_override > 0) {
    return pi2::sim::from_seconds(opts.duration_s_override);
  }
  return pi2::sim::from_seconds(opts.full ? 100.0 : 40.0);
}

inline pi2::sim::Time stats_start(const Options& opts) {
  if (opts.stats_start_s_override > 0) {
    return pi2::sim::from_seconds(opts.stats_start_s_override);
  }
  return pi2::sim::from_seconds(opts.full ? 30.0 : 15.0);
}

/// One Cubic-vs-X flow mix at a grid point (the Figure 15-18 scenarios).
enum class MixKind { kCubicVsDctcp, kCubicVsEcnCubic };

inline const char* to_string(MixKind kind) {
  return kind == MixKind::kCubicVsDctcp ? "cubic/dctcp" : "cubic/ecn-cubic";
}

inline scenario::DumbbellConfig mix_config(scenario::AqmType aqm, MixKind kind,
                                           double link_mbps, double rtt_ms,
                                           const Options& opts, int n_cubic = 1,
                                           int n_other = 1) {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = link_mbps * 1e6;
  cfg.duration = run_duration(opts);
  cfg.stats_start = stats_start(opts);
  cfg.seed = opts.seed;
  cfg.aqm.type = aqm;
  // The paper's PIE coexistence runs rework the 10% mark->drop switchover
  // (section 5) to avoid its discontinuity; always-mark reproduces that.
  cfg.aqm.ecn_drop_threshold = 1.0;
  if (n_cubic > 0) {
    scenario::TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.count = n_cubic;
    cubic.base_rtt = pi2::sim::from_millis(rtt_ms);
    cfg.tcp_flows.push_back(cubic);
  }
  if (n_other > 0) {
    scenario::TcpFlowSpec other;
    other.cc = kind == MixKind::kCubicVsDctcp ? tcp::CcType::kDctcp
                                              : tcp::CcType::kEcnCubic;
    other.count = n_other;
    other.base_rtt = pi2::sim::from_millis(rtt_ms);
    cfg.tcp_flows.push_back(other);
  }
  // Background load, at either engine tier. Reno in both renderings so the
  // per-cc foreground means (cubic_mbps / other_mbps) stay comparable.
  if (opts.packet_background > 0) {
    scenario::TcpFlowSpec bg;
    bg.cc = tcp::CcType::kReno;
    bg.count = opts.packet_background;
    bg.base_rtt = pi2::sim::from_millis(rtt_ms);
    cfg.tcp_flows.push_back(bg);
  }
  if (opts.fluid_background > 0) {
    scenario::FluidFlowSpec bg;
    bg.cc = tcp::CcType::kReno;
    bg.count = opts.fluid_background;
    bg.base_rtt = pi2::sim::from_millis(rtt_ms);
    cfg.fluid_flows.push_back(bg);
  }
  return cfg;
}

inline tcp::CcType other_cc(MixKind kind) {
  return kind == MixKind::kCubicVsDctcp ? tcp::CcType::kDctcp
                                        : tcp::CcType::kEcnCubic;
}

}  // namespace pi2::bench
