// Microbenchmarks for the discrete-event scheduler hot path: every
// simulated second executes hundreds of thousands of events (packet
// serializations, RTO timers, PI update ticks), so per-event overhead is
// the floor under every figure's wall clock.
//
// `Legacy*` benchmarks replicate the seed implementation — std::function
// callbacks plus a shared_ptr<bool> cancellation flag per event on a
// std::priority_queue — as the baseline the slab/UniqueFunction scheduler
// is measured against. bench/run_benchmarks.sh records both sides in
// BENCH_sweep.json so the delta is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace {

using pi2::sim::Time;

// --- Seed-era scheduler, kept verbatim as the benchmark baseline. -----------

class LegacyHandle {
 public:
  LegacyHandle() = default;
  explicit LegacyHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  void cancel() {
    if (alive_) *alive_ = false;
  }

 private:
  std::shared_ptr<bool> alive_;
};

class LegacyScheduler {
 public:
  LegacyHandle schedule_at(Time at, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    heap_.push(Entry{at, next_seq_++, std::move(fn), alive});
    return LegacyHandle{std::move(alive)};
  }
  [[nodiscard]] bool empty() {
    skim();
    return heap_.empty();
  }
  void run_next() {
    skim();
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    *entry.alive = false;
    entry.fn();
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  void skim() {
    while (!heap_.empty() && !*heap_.top().alive) heap_.pop();
  }
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

// --- Workloads, run against both schedulers. --------------------------------

/// Schedule N events, then drain them in time order.
template <typename SchedulerT>
void schedule_and_drain(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    SchedulerT s;
    for (std::int64_t i = 0; i < n; ++i) {
      s.schedule_at(Time{(i * 7919) % n}, [&sink] { ++sink; });
    }
    while (!s.empty()) s.run_next();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}

/// RTO-timer churn: every event re-arms a timer and cancels the previous
/// one, so almost every scheduled entry dies before surfacing. This is the
/// pattern that grows the seed scheduler's heap without bound until the
/// garbage happens to reach the top.
template <typename SchedulerT, typename HandleT>
void timer_churn(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    SchedulerT s;
    HandleT pending{};
    for (std::int64_t i = 0; i < n; ++i) {
      pending.cancel();
      pending = s.schedule_at(Time{i + 1000}, [&sink] { ++sink; });
      s.schedule_at(Time{i}, [] {});
    }
    while (!s.empty()) s.run_next();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n * 2);
}

void BM_ScheduleAndDrain(benchmark::State& state) {
  schedule_and_drain<pi2::sim::Scheduler>(state);
}
BENCHMARK(BM_ScheduleAndDrain)->Arg(1 << 10)->Arg(1 << 14);

void BM_Legacy_ScheduleAndDrain(benchmark::State& state) {
  schedule_and_drain<LegacyScheduler>(state);
}
BENCHMARK(BM_Legacy_ScheduleAndDrain)->Arg(1 << 10)->Arg(1 << 14);

void BM_TimerChurn(benchmark::State& state) {
  timer_churn<pi2::sim::Scheduler, pi2::sim::EventHandle>(state);
}
BENCHMARK(BM_TimerChurn)->Arg(1 << 10)->Arg(1 << 14);

void BM_Legacy_TimerChurn(benchmark::State& state) {
  timer_churn<LegacyScheduler, LegacyHandle>(state);
}
BENCHMARK(BM_Legacy_TimerChurn)->Arg(1 << 10)->Arg(1 << 14);

/// Periodic self-rescheduling tick (the PI update / sampling pattern).
void BM_PeriodicTick(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    pi2::sim::Scheduler s;
    std::int64_t remaining = n;
    std::function<void(Time)> tick = [&](Time at) {
      ++ticks;
      if (--remaining > 0) {
        s.schedule_at(at + Time{16'000'000}, [&tick, at] { tick(at + Time{16'000'000}); });
      }
    };
    s.schedule_at(Time{0}, [&tick] { tick(Time{0}); });
    while (!s.empty()) s.run_next();
  }
  benchmark::DoNotOptimize(ticks);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PeriodicTick)->Arg(1 << 12);

}  // namespace

BENCHMARK_MAIN();
