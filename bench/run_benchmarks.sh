#!/usr/bin/env bash
# Produces BENCH_sweep.json: the repo's perf trajectory record.
#
#   bench/run_benchmarks.sh [output.json]
#
# Records (a) the micro_scheduler google-benchmark results — new scheduler
# vs the in-binary legacy baseline — (b) the micro_probe_overhead results,
# including the probes-attached vs detached dumbbell ratio (budget: <5%,
# see EXPERIMENTS.md "Observability"), (c) quick-grid sweep wall clock at
# --jobs 1 / 2 / $(nproc) for fig15_rate_balance (realized speedup is
# parallel-vs-serial), run with --telemetry so every per-point record
# carries its RunManifest path, (d) the micro_flow_scale per-N
# events/s + bytes-per-flow table for the hybrid fluid/packet engine,
# including its ≥10× scheduler-events acceptance gate, and (e) the
# distributed-campaign numbers: the committed fig15 and fig_resilience
# campaigns each run serially vs as 3 parallel --shard workers plus
# --merge, with the merged JSON required to be byte-identical to the
# serial run's.
# Compare the file against the previous PR's copy to see per-event and
# end-to-end movement.
#
# Env: BUILD_DIR (default: build), JOBS (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_sweep.json}
JOBS=${JOBS:-$(nproc)}

missing=0
for bin in micro_scheduler micro_probe_overhead fig15_rate_balance \
           micro_flow_scale pi2_campaign; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "error: $BUILD_DIR/bench/$bin not built (cmake --build $BUILD_DIR --target $bin)" >&2
    missing=1
  fi
done
[[ $missing -eq 0 ]] || exit 1

MICRO_JSON=$(mktemp)
PROBE_JSON=$(mktemp)
FLOW_SCALE_JSON=$(mktemp)
trap 'rm -f "$MICRO_JSON" "$PROBE_JSON" "$FLOW_SCALE_JSON"' EXIT
"$BUILD_DIR/bench/micro_scheduler" --benchmark_format=json \
  --benchmark_out_format=json >"$MICRO_JSON"
"$BUILD_DIR/bench/micro_probe_overhead" --benchmark_format=json \
  --benchmark_out_format=json >"$PROBE_JSON"
# Full grid (N up to 10⁵ fluid background flows); exits non-zero — failing
# this script — if the ≥10× scheduler-events gate regresses.
"$BUILD_DIR/bench/micro_flow_scale" --json "$FLOW_SCALE_JSON"

BUILD_DIR="$BUILD_DIR" JOBS="$JOBS" MICRO_JSON="$MICRO_JSON" \
PROBE_JSON="$PROBE_JSON" FLOW_SCALE_JSON="$FLOW_SCALE_JSON" OUT="$OUT" \
python3 - <<'PY'
import json, os, shutil, subprocess, sys, tempfile, time

build = os.environ["BUILD_DIR"]
jobs = int(os.environ["JOBS"])
fig15 = os.path.join(build, "bench", "fig15_rate_balance")
telemetry_dir = os.path.join(build, "bench", "telemetry_fig15")

def timed_sweep(n_jobs, json_path=None):
    cmd = [fig15, "--jobs", str(n_jobs)]
    if json_path:
        cmd += ["--json", json_path, "--telemetry", telemetry_dir]
    start = time.monotonic()
    # check=True also fails this script loudly when the sweep exits non-zero
    # (i.e. any grid point failed or timed out).
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return round(time.monotonic() - start, 3)

points_json = tempfile.mktemp(suffix=".json")
try:
    wall = {n: timed_sweep(n, points_json if n == jobs else None)
            for n in sorted({1, 2, jobs})}
    with open(points_json) as f:
        points = json.load(f)
finally:
    if os.path.exists(points_json):
        os.unlink(points_json)

# Belt and braces: the binary already exits non-zero on failures, but the
# per-point records are the ground truth — refuse to write a trajectory file
# that silently contains failed or timed-out points.
bad = [p for p in points if p.get("status") != "ok"]
if bad:
    for p in bad:
        print(f"error: sweep point {p['index']} ({p.get('aqm')}, "
              f"{p.get('mix')}) status={p['status']}: "
              f"{p.get('error', '?')}", file=sys.stderr)
    sys.exit(1)
no_manifest = [p for p in points if not p.get("telemetry_manifest")]
if no_manifest:
    print(f"error: {len(no_manifest)} sweep point(s) missing a "
          "telemetry_manifest path", file=sys.stderr)
    sys.exit(1)
serial_s = wall[1]
parallel_s = wall[jobs]

def load_benchmarks(env_key):
    with open(os.environ[env_key]) as f:
        data = json.load(f)
    return {
        b["name"]: {"cpu_time_ns": b["cpu_time"],
                    "items_per_second": b.get("items_per_second")}
        for b in data["benchmarks"]
    }

# Distributed campaigns: each quick grid run serially and as 3 parallel
# shard workers plus a merge. The merge speedup compares the serial wall
# clock against the critical path of the sharded run (slowest worker +
# merge); the merged JSON must be byte-identical. fig15 is the dumbbell
# sweep reference; fig_resilience exercises the fault-schedule and
# fluid-background axes (its 100k-fluid points lean on the hybrid engine).
campaign_bin = os.path.join(build, "bench", "pi2_campaign")
shard_count = 3
workdir = tempfile.mkdtemp(prefix="campaign_bench_")
shard_jobs = max(1, jobs // shard_count)

def shard_benchmark(spec, tag, telemetry=True):
    serial_json = os.path.join(workdir, f"{tag}_serial.json")
    merged_json = os.path.join(workdir, f"{tag}_merged.json")

    def cmd(*extra):
        base = [campaign_bin, "--spec", spec, "--seed", "1"]
        if telemetry:
            base += ["--telemetry", telemetry_dir]
        return base + list(extra)

    start = time.monotonic()
    subprocess.run(cmd("--jobs", str(jobs), "--json", serial_json,
                       "--journal", os.path.join(workdir, f"{tag}_serial.journal")),
                   check=True, stdout=subprocess.DEVNULL)
    serial_s = round(time.monotonic() - start, 3)

    shard_journals = [os.path.join(workdir, f"{tag}_shard{i}.journal")
                      for i in range(1, shard_count + 1)]
    start = time.monotonic()
    workers = [subprocess.Popen(
                   cmd("--jobs", str(shard_jobs),
                       "--shard", f"{i}/{shard_count}",
                       "--journal", shard_journals[i - 1]),
                   stdout=subprocess.DEVNULL)
               for i in range(1, shard_count + 1)]
    for w in workers:
        if w.wait() != 0:
            print(f"error: {tag} campaign shard worker failed", file=sys.stderr)
            sys.exit(1)
    sharded_s = round(time.monotonic() - start, 3)

    start = time.monotonic()
    subprocess.run(cmd("--jobs", str(jobs), "--merge", *shard_journals,
                       "--json", merged_json,
                       "--journal", os.path.join(workdir, f"{tag}_merged.journal")),
                   check=True, stdout=subprocess.DEVNULL)
    merge_s = round(time.monotonic() - start, 3)

    with open(serial_json, "rb") as f:
        serial_bytes = f.read()
    with open(merged_json, "rb") as f:
        merged_bytes = f.read()
    if serial_bytes != merged_bytes:
        print(f"error: merged {tag} campaign JSON differs from the serial run",
              file=sys.stderr)
        sys.exit(1)
    return {
        "spec": spec,
        "shards": shard_count,
        "jobs_serial": jobs,
        "jobs_per_shard": shard_jobs,
        "serial_wall_s": serial_s,
        "sharded_wall_s": sharded_s,
        "merge_wall_s": merge_s,
        "merge_speedup": round(serial_s / (sharded_s + merge_s), 3)
            if sharded_s + merge_s else None,
        "byte_identical": True,
    }

campaign_sharding = shard_benchmark(
    os.path.join("campaigns", "fig15.json"), "fig15")
# The resilience grid's replayed merge points carry no fresh telemetry, so
# the sharded runs skip the recorder and time the simulation itself.
resilience_sharding = shard_benchmark(
    os.path.join("campaigns", "fig_resilience.json"), "resilience",
    telemetry=False)

scheduler = load_benchmarks("MICRO_JSON")
probe = load_benchmarks("PROBE_JSON")
with open(os.environ["FLOW_SCALE_JSON"]) as f:
    flow_scale = json.load(f)

def ratio_pct(baseline_name, loaded_name):
    base = probe.get(baseline_name, {}).get("cpu_time_ns")
    loaded = probe.get(loaded_name, {}).get("cpu_time_ns")
    if not base or not loaded:
        return None
    return round((loaded / base - 1.0) * 100.0, 2)

# Telemetry hot-path budget (<5%): dumbbell experiment with the pipeline
# probes attached vs fully detached. The full-Recorder ratio (probes +
# sampler + on-disk artifacts) and the bare link-cycle ratio (synthetic
# worst case — its baseline does almost nothing per packet) are reported
# alongside, not gated.
overhead_pct = ratio_pct("BM_DumbbellRun_Baseline",
                         "BM_DumbbellRun_ProbesAttached")
recorder_pct = ratio_pct("BM_DumbbellRun_Baseline",
                         "BM_DumbbellRun_FullRecorder")
link_cycle_pct = ratio_pct("BM_LinkCycle_ProbesDetached",
                           "BM_LinkCycle_TelemetryAttached")

out = {
    "suite": "pi2-sweep",
    "host_cores": os.cpu_count(),
    "sweep_quick_fig15": {
        "wall_s_by_jobs": {str(n): s for n, s in wall.items()},
        # Meaningful only on multi-core hosts; 1.0-ish when jobs == 1.
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "telemetry_dir": telemetry_dir,
        "telemetry_manifests": [p["telemetry_manifest"] for p in points],
    },
    "micro_scheduler": scheduler,
    "micro_probe_overhead": probe,
    # Declarative campaigns serial vs 3-shard + merge. byte_identical is
    # asserted above; recorded here so the trajectory file itself documents
    # the equivalence each run re-proved.
    "campaign_sharding": campaign_sharding,
    "resilience_sharding": resilience_sharding,
    # Hybrid fluid/packet engine: per-N events/sim-s + bytes-per-flow table
    # and the ≥10x scheduler-events gate (the binary already failed the
    # script above if the gate regressed).
    "micro_flow_scale": flow_scale,
    # Budget is <5% (EXPERIMENTS.md, "Observability"). Informational here:
    # microbenchmark noise on shared CI hosts makes a hard gate flaky.
    "probe_overhead_pct": overhead_pct,
    "full_recorder_overhead_pct": recorder_pct,
    "probe_link_cycle_worst_case_pct": link_cycle_pct,
}
# Atomic publish: a reader (or a killed run) must never see a partial
# trajectory file — write the tmp sibling, fsync, then rename over OUT.
tmp_out = os.environ["OUT"] + ".tmp"
with open(tmp_out, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
    f.flush()
    os.fsync(f.fileno())
os.replace(tmp_out, os.environ["OUT"])
shutil.rmtree(workdir, ignore_errors=True)
print(f"wrote {os.environ['OUT']}: quick fig15 {serial_s}s @1 job, "
      f"{parallel_s}s @{jobs} jobs; probe overhead "
      f"{overhead_pct if overhead_pct is not None else '?'}%; "
      f"campaign {shard_count}-shard merge speedup "
      f"{out['campaign_sharding']['merge_speedup']}x (fig15), "
      f"{out['resilience_sharding']['merge_speedup']}x (resilience), "
      "both byte-identical")
PY
