#!/usr/bin/env bash
# Produces BENCH_sweep.json: the repo's perf trajectory record.
#
#   bench/run_benchmarks.sh [output.json]
#
# Records (a) the micro_scheduler google-benchmark results — new scheduler
# vs the in-binary legacy baseline — and (b) quick-grid sweep wall clock at
# --jobs 1 vs --jobs $(nproc) for fig15_rate_balance. Compare the file
# against the previous PR's copy to see per-event and end-to-end movement.
#
# Env: BUILD_DIR (default: build), JOBS (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_sweep.json}
JOBS=${JOBS:-$(nproc)}

if [[ ! -x "$BUILD_DIR/bench/micro_scheduler" ]]; then
  echo "error: $BUILD_DIR/bench/micro_scheduler not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

MICRO_JSON=$(mktemp)
trap 'rm -f "$MICRO_JSON"' EXIT
"$BUILD_DIR/bench/micro_scheduler" --benchmark_format=json \
  --benchmark_out_format=json >"$MICRO_JSON"

BUILD_DIR="$BUILD_DIR" JOBS="$JOBS" MICRO_JSON="$MICRO_JSON" OUT="$OUT" \
python3 - <<'PY'
import json, os, subprocess, sys, tempfile, time

build = os.environ["BUILD_DIR"]
jobs = int(os.environ["JOBS"])
fig15 = os.path.join(build, "bench", "fig15_rate_balance")

def timed_sweep(n_jobs, json_path=None):
    cmd = [fig15, "--jobs", str(n_jobs)]
    if json_path:
        cmd += ["--json", json_path]
    start = time.monotonic()
    # check=True also fails this script loudly when the sweep exits non-zero
    # (i.e. any grid point failed or timed out).
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return round(time.monotonic() - start, 3)

points_json = tempfile.mktemp(suffix=".json")
try:
    wall = {n: timed_sweep(n, points_json if n == jobs else None)
            for n in sorted({1, jobs})}
    with open(points_json) as f:
        points = json.load(f)
finally:
    if os.path.exists(points_json):
        os.unlink(points_json)

# Belt and braces: the binary already exits non-zero on failures, but the
# per-point records are the ground truth — refuse to write a trajectory file
# that silently contains failed or timed-out points.
bad = [p for p in points if p.get("status") != "ok"]
if bad:
    for p in bad:
        print(f"error: sweep point {p['index']} ({p.get('aqm')}, "
              f"{p.get('mix')}) status={p['status']}: "
              f"{p.get('error', '?')}", file=sys.stderr)
    sys.exit(1)
serial_s = wall[1]
parallel_s = wall[jobs]

with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)

scheduler = {
    b["name"]: {"cpu_time_ns": b["cpu_time"],
                "items_per_second": b.get("items_per_second")}
    for b in micro["benchmarks"]
}

out = {
    "suite": "pi2-sweep",
    "host_cores": os.cpu_count(),
    "sweep_quick_fig15": {
        "wall_s_by_jobs": {str(n): s for n, s in wall.items()},
        # Meaningful only on multi-core hosts; 1.0-ish when jobs == 1.
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
    },
    "micro_scheduler": scheduler,
}
with open(os.environ["OUT"], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}: quick fig15 {serial_s}s @1 job, "
      f"{parallel_s}s @{jobs} jobs")
PY
