// The link-rate x RTT sweep engine behind Figures 15-18: for every grid
// point run two scenarios (Cubic vs DCTCP, Cubic vs ECN-Cubic) under both
// PIE and the coupled PI2, and hand each result to the figure's printer.
//
// Grid points are independent simulations, so they fan out across
// --jobs worker threads via runner::ParallelRunner. Results are consumed in
// submission order on the calling thread, which keeps every figure's table
// byte-identical to a serial run regardless of the job count. Each point
// seeds its own RNG stream from (base seed, point index) — no shared state.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "runner/parallel_runner.hpp"
#include "sim/rng.hpp"

namespace pi2::bench {

struct SweepPoint {
  scenario::AqmType aqm;
  MixKind mix;
  double link_mbps;
  double rtt_ms;
  scenario::RunResult result;
  std::size_t index = 0;       ///< position in the submission order
  std::uint64_t seed = 0;      ///< derived per-point RNG seed
};

inline const char* aqm_label(scenario::AqmType aqm) {
  return aqm == scenario::AqmType::kPie ? "PIE" : "PI2(coupled)";
}

/// Streams one machine-readable record per sweep point as a JSON array.
/// Used by --json to make runs comparable across PRs (BENCH_sweep.json).
class SweepJsonWriter {
 public:
  SweepJsonWriter() = default;
  explicit SweepJsonWriter(const std::string& path) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "w");
      if (file_ == nullptr)
        std::fprintf(stderr, "warning: cannot open %s; no JSON written\n",
                     path.c_str());
    }
    if (file_ != nullptr) std::fputs("[", file_);
  }
  SweepJsonWriter(const SweepJsonWriter&) = delete;
  SweepJsonWriter& operator=(const SweepJsonWriter&) = delete;
  ~SweepJsonWriter() {
    if (file_ != nullptr) {
      std::fputs("\n]\n", file_);
      std::fclose(file_);
    }
  }

  void add(const SweepPoint& p) {
    if (file_ == nullptr) return;
    const auto& c = p.result.window_counters;
    std::fprintf(
        file_,
        "%s\n"
        "  {\"index\": %zu, \"aqm\": \"%s\", \"mix\": \"%s\", "
        "\"link_mbps\": %g, \"rtt_ms\": %g, \"seed\": %llu, "
        "\"mean_qdelay_ms\": %.6g, \"p99_qdelay_ms\": %.6g, "
        "\"utilization\": %.6g, \"signal_rate\": %.6g, "
        "\"cubic_mbps\": %.6g, \"other_mbps\": %.6g, "
        "\"enqueued\": %lld, \"forwarded\": %lld, \"aqm_dropped\": %lld, "
        "\"tail_dropped\": %lld, \"marked\": %lld, "
        "\"events_executed\": %llu}",
        first_ ? "" : ",", p.index, aqm_label(p.aqm), to_string(p.mix),
        p.link_mbps, p.rtt_ms, static_cast<unsigned long long>(p.seed),
        p.result.mean_qdelay_ms, p.result.p99_qdelay_ms, p.result.utilization,
        p.result.observed_signal_rate(),
        p.result.mean_goodput_mbps(tcp::CcType::kCubic),
        p.result.mean_goodput_mbps(other_cc(p.mix)),
        static_cast<long long>(c.enqueued), static_cast<long long>(c.forwarded),
        static_cast<long long>(c.aqm_dropped),
        static_cast<long long>(c.tail_dropped), static_cast<long long>(c.marked),
        static_cast<unsigned long long>(p.result.events_executed));
    first_ = false;
  }

 private:
  std::FILE* file_ = nullptr;
  bool first_ = true;
};

/// Runs the full grid, invoking `consume` per point in grid order. Grid
/// points execute on opts.jobs worker threads; `consume` (and the progress
/// grouping headers) run on the calling thread only.
inline void run_sweep(const Options& opts,
                      const std::function<void(const SweepPoint&)>& consume) {
  struct GridPoint {
    scenario::AqmType aqm;
    MixKind mix;
    double link_mbps;
    double rtt_ms;
  };
  std::vector<GridPoint> grid;
  for (const auto aqm : {scenario::AqmType::kPie, scenario::AqmType::kCoupledPi2}) {
    for (const auto mix : {MixKind::kCubicVsEcnCubic, MixKind::kCubicVsDctcp}) {
      for (const double link : link_grid(opts)) {
        for (const double rtt : rtt_grid(opts)) {
          grid.push_back(GridPoint{aqm, mix, link, rtt});
        }
      }
    }
  }
  const std::size_t per_group = link_grid(opts).size() * rtt_grid(opts).size();

  SweepJsonWriter json{opts.json_path};
  const runner::ParallelRunner pool{opts.jobs};
  pool.run_ordered<scenario::RunResult>(
      grid.size(),
      [&](std::size_t i) {
        const GridPoint& g = grid[i];
        auto cfg = mix_config(g.aqm, g.mix, g.link_mbps, g.rtt_ms, opts);
        cfg.seed = sim::Rng::derive_seed(opts.seed, i);
        return scenario::run_dumbbell(cfg);
      },
      [&](std::size_t i, scenario::RunResult&& result) {
        const GridPoint& g = grid[i];
        if (i % per_group == 0) {
          std::printf("\n== %s, %s ==\n", aqm_label(g.aqm), to_string(g.mix));
        }
        SweepPoint point{g.aqm,  g.mix, g.link_mbps,
                         g.rtt_ms, std::move(result), i,
                         sim::Rng::derive_seed(opts.seed, i)};
        consume(point);
        json.add(point);
      });
}

}  // namespace pi2::bench
