// The link-rate x RTT sweep engine behind Figures 15-18: for every grid
// point run two scenarios (Cubic vs DCTCP, Cubic vs ECN-Cubic) under both
// PIE and the coupled PI2, and hand each result to the figure's printer.
#pragma once

#include <functional>

#include "bench_common.hpp"

namespace pi2::bench {

struct SweepPoint {
  scenario::AqmType aqm;
  MixKind mix;
  double link_mbps;
  double rtt_ms;
  scenario::RunResult result;
};

/// Runs the full grid, invoking `consume` per point. Prints progress grouping
/// headers; the consumer prints one row per point.
inline void run_sweep(const Options& opts,
                      const std::function<void(const SweepPoint&)>& consume) {
  for (const auto aqm : {scenario::AqmType::kPie, scenario::AqmType::kCoupledPi2}) {
    for (const auto mix : {MixKind::kCubicVsEcnCubic, MixKind::kCubicVsDctcp}) {
      std::printf("\n== %s, %s ==\n",
                  aqm == scenario::AqmType::kPie ? "PIE" : "PI2(coupled)",
                  to_string(mix));
      for (const double link : link_grid(opts)) {
        for (const double rtt : rtt_grid(opts)) {
          SweepPoint point{aqm, mix, link, rtt,
                           scenario::run_dumbbell(
                               mix_config(aqm, mix, link, rtt, opts))};
          consume(point);
        }
      }
    }
  }
}

}  // namespace pi2::bench
