// The link-rate x RTT sweep engine behind Figures 15-18: for every grid
// point run two scenarios (Cubic vs DCTCP, Cubic vs ECN-Cubic) under both
// PIE and the coupled PI2, and hand each result to the figure's printer.
//
// Grid points are independent simulations, so they fan out across
// --jobs worker threads via runner::ParallelRunner. Results are consumed in
// submission order on the calling thread, which keeps every figure's table
// byte-identical to a serial run regardless of the job count. Each point
// seeds its own RNG stream from (base seed, point index) — no shared state.
//
// Sweeps run through the *guarded* runner: a point that throws or exceeds
// the --deadline-s wall-clock watchdog is retried (--retries, default 1,
// with --backoff-ms exponential backoff) and, if it still fails, reported as
// `failed`/`timeout` — in the printed table, in the per-point JSON record,
// and in the returned RunReport — while every other point completes
// normally. Callers exit non-zero when !report.all_ok().
//
// Sweeps are also *durable*: every completed point is appended (fsync'd) to
// a run journal before it is consumed, SIGINT/SIGTERM stop the sweep at a
// point boundary (exit code 75 = interrupted-but-resumable), and --resume
// replays journaled points through the unchanged consume path so the final
// table and --json output are byte-identical to an uninterrupted run. The
// --json artifact itself is written atomically (tmp + fsync + rename): an
// interrupted or crashed sweep leaves no half-written JSON behind.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "durable/atomic_file.hpp"
#include "durable/journal.hpp"
#include "durable/result_codec.hpp"
#include "durable/shutdown.hpp"
#include "durable/status.hpp"
#include "runner/parallel_runner.hpp"
#include "sim/rng.hpp"
#include "telemetry/recorder.hpp"

namespace pi2::bench {

struct SweepPoint {
  scenario::AqmType aqm;
  MixKind mix;
  double link_mbps;
  double rtt_ms;
  scenario::RunResult result;
  std::size_t index = 0;       ///< position in the submission order
  std::uint64_t seed = 0;      ///< derived per-point RNG seed
  /// Path of the point's RunManifest ("" when --telemetry is off).
  std::string manifest_path;
};

inline const char* aqm_label(scenario::AqmType aqm) {
  return aqm == scenario::AqmType::kPie ? "PIE" : "PI2(coupled)";
}

/// Minimal JSON string escaping for error messages embedded in records.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streams one machine-readable record per sweep point as a JSON array.
/// Used by --json to make runs comparable across PRs (BENCH_sweep.json).
/// Every record carries a "status" field ("ok" / "failed" / "timeout");
/// failed and timed-out points get a reduced record with the error message
/// instead of measurements, so downstream tooling can tell a missing point
/// from a zero-valued one.
///
/// The file is written through durable::AtomicFile: records accumulate in
/// `<path>.tmp` and the destination only appears on commit(). abort() (the
/// interrupted-sweep path) drops the tmp, so readers never see a torn array.
class SweepJsonWriter {
 public:
  SweepJsonWriter() = default;
  /// `with_background` adds a "background_mbps" field (aggregate goodput of
  /// the Reno background tier, packet or fluid) to each record. Off by
  /// default so baselines without a background keep their exact field set.
  explicit SweepJsonWriter(const std::string& path,
                           bool with_background = false)
      : with_background_(with_background) {
    if (path.empty()) return;
    file_ = std::make_unique<durable::AtomicFile>(path);
    if (!file_->healthy()) {
      std::fprintf(stderr, "warning: %s; no JSON written\n",
                   file_->status().message().c_str());
      file_.reset();
      return;
    }
    file_->write("[");
  }
  SweepJsonWriter(const SweepJsonWriter&) = delete;
  SweepJsonWriter& operator=(const SweepJsonWriter&) = delete;
  ~SweepJsonWriter() = default;  // un-committed AtomicFile aborts itself

  void add(const SweepPoint& p) {
    if (file_ == nullptr) return;
    const auto& c = p.result.window_counters;
    file_->printf(
        "%s\n"
        "  {\"index\": %zu, \"status\": \"ok\", \"aqm\": \"%s\", "
        "\"mix\": \"%s\", "
        "\"link_mbps\": %g, \"rtt_ms\": %g, \"seed\": %llu, "
        "\"mean_qdelay_ms\": %.6g, \"p99_qdelay_ms\": %.6g, "
        "\"utilization\": %.6g, \"signal_rate\": %.6g, "
        "\"cubic_mbps\": %.6g, \"other_mbps\": %.6g, "
        "\"enqueued\": %lld, \"forwarded\": %lld, \"aqm_dropped\": %lld, "
        "\"tail_dropped\": %lld, \"marked\": %lld, "
        "\"events_executed\": %llu, \"clamped_events\": %llu, "
        "\"invariant_violations\": %llu, \"guard_events\": %llu",
        first_ ? "" : ",", p.index, aqm_label(p.aqm), to_string(p.mix),
        p.link_mbps, p.rtt_ms, static_cast<unsigned long long>(p.seed),
        p.result.mean_qdelay_ms, p.result.p99_qdelay_ms, p.result.utilization,
        p.result.observed_signal_rate(),
        p.result.mean_goodput_mbps(tcp::CcType::kCubic),
        p.result.mean_goodput_mbps(other_cc(p.mix)),
        static_cast<long long>(c.enqueued), static_cast<long long>(c.forwarded),
        static_cast<long long>(c.aqm_dropped),
        static_cast<long long>(c.tail_dropped), static_cast<long long>(c.marked),
        static_cast<unsigned long long>(p.result.events_executed),
        static_cast<unsigned long long>(p.result.clamped_events),
        static_cast<unsigned long long>(p.result.violations.size()),
        static_cast<unsigned long long>(p.result.guard_events));
    if (with_background_) {
      // The background load is Reno at either engine tier (bench_common
      // mix_config); the aggregate rate is the mean-field quantity the two
      // renderings must agree on, so the fluid golden gates it directly.
      double background_mbps = 0.0;
      for (const auto& flow : p.result.flows) {
        if (flow.cc == tcp::CcType::kReno && !flow.is_udp) {
          background_mbps += flow.goodput_mbps * flow.count;
        }
      }
      file_->printf(", \"background_mbps\": %.6g", background_mbps);
    }
    if (!p.manifest_path.empty()) {
      file_->printf(", \"telemetry_manifest\": \"%s\"",
                    json_escape(p.manifest_path).c_str());
    }
    file_->write("}");
    first_ = false;
  }

  void add_failed(std::size_t index, scenario::AqmType aqm, MixKind mix,
                  double link_mbps, double rtt_ms, runner::TaskStatus status,
                  const std::string& message) {
    if (file_ == nullptr) return;
    file_->printf(
        "%s\n"
        "  {\"index\": %zu, \"status\": \"%s\", \"aqm\": \"%s\", "
        "\"mix\": \"%s\", \"link_mbps\": %g, \"rtt_ms\": %g, "
        "\"error\": \"%s\"}",
        first_ ? "" : ",", index, runner::to_string(status), aqm_label(aqm),
        to_string(mix), link_mbps, rtt_ms, json_escape(message).c_str());
    first_ = false;
  }

  /// Seals the array and atomically publishes the destination file.
  bool commit() {
    if (file_ == nullptr) return true;
    file_->write("\n]\n");
    const durable::Status status = file_->commit();
    if (!status.ok()) {
      std::fprintf(stderr, "error: sweep JSON not written: %s\n",
                   status.message().c_str());
    }
    file_.reset();
    return status.ok();
  }

  /// Drops the tmp file; the destination (if any) is left untouched. Used
  /// when a sweep is interrupted so no incomplete JSON array ever exists.
  void abort() {
    if (file_ == nullptr) return;
    file_->abort();
    file_.reset();
  }

 private:
  std::unique_ptr<durable::AtomicFile> file_;
  bool first_ = true;
  bool with_background_ = false;
};

namespace detail {
/// Test hook honoring --inject-fail / --inject-hang: makes one grid point
/// misbehave so the partial-failure path can be exercised end to end. The
/// hang polls the shutdown flag so an interrupted sweep still stops at a
/// point boundary instead of waiting out the full stall.
inline void maybe_inject(const Options& opts, std::size_t i) {
  if (opts.inject_fail >= 0 &&
      static_cast<std::size_t>(opts.inject_fail) == i) {
    throw std::runtime_error("injected failure (--inject-fail " +
                             std::to_string(i) + ")");
  }
  if (opts.inject_hang >= 0 &&
      static_cast<std::size_t>(opts.inject_hang) == i) {
    const auto end = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(opts.hang_s));
    while (std::chrono::steady_clock::now() < end) {
      if (durable::ShutdownController::requested()) {
        throw durable::InterruptedError(
            "injected hang interrupted by shutdown request");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

inline runner::GuardOptions guard_options(const Options& opts) {
  runner::GuardOptions guard;
  guard.retry.attempt_deadline = std::chrono::milliseconds(
      static_cast<long long>(opts.deadline_s * 1000.0));
  guard.retry.max_attempts = 1 + std::max(0, opts.retries);
  guard.retry.backoff_base = std::chrono::milliseconds(opts.backoff_ms);
  guard.retry.jitter_seed = opts.seed;
  guard.cancel = durable::ShutdownController::flag();
  return guard;
}

inline std::string point_run_id(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "point_%04zu", i);
  return buf;
}

inline telemetry::RecorderConfig point_recorder_config(const Options& opts,
                                                       std::size_t i) {
  telemetry::RecorderConfig rc;
  rc.dir = opts.telemetry_dir;
  rc.run_id = point_run_id(i);
  if (opts.telemetry_interval_s > 0) {
    rc.interval = pi2::sim::from_seconds(opts.telemetry_interval_s);
  }
  return rc;
}

/// Journal location: --journal wins, then `<json>.journal`, then
/// `<binary basename>.journal` in the working directory.
inline std::string journal_path(const Options& opts) {
  if (!opts.journal_path.empty()) return opts.journal_path;
  if (!opts.json_path.empty()) return opts.json_path + ".journal";
  std::string base = opts.argv0.empty() ? "sweep" : opts.argv0;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  return base + ".journal";
}

/// Digest of everything that determines the sweep's results: seed, grid
/// axes, durations. A journal whose header disagrees is from a different
/// campaign and its cached points are refused on --resume.
inline std::uint64_t campaign_key(const Options& opts) {
  durable::Fnv1a h;
  h.mix_string("pi2-sweep-campaign-v1");
  h.mix_u64(opts.seed);
  h.mix_u64(static_cast<std::uint64_t>(run_duration(opts).count()));
  h.mix_u64(static_cast<std::uint64_t>(stats_start(opts).count()));
  const std::vector<double> links = link_grid(opts);
  const std::vector<double> rtts = rtt_grid(opts);
  h.mix_u64(links.size());
  for (const double v : links) h.mix_double(v);
  h.mix_u64(rtts.size());
  for (const double v : rtts) h.mix_double(v);
  // Background load changes every point's results, so a journal from a
  // different background mix must be refused on --resume.
  h.mix_u64(static_cast<std::uint64_t>(opts.packet_background));
  h.mix_u64(static_cast<std::uint64_t>(opts.fluid_background));
  return h.state;
}

/// Per-point journal key: position plus every parameter the point's
/// simulation depends on.
inline std::uint64_t point_key(std::size_t index, scenario::AqmType aqm,
                               MixKind mix, double link_mbps, double rtt_ms,
                               std::uint64_t derived_seed) {
  durable::Fnv1a h;
  h.mix_string("pi2-sweep-point-v1");
  h.mix_u64(index);
  h.mix_u64(static_cast<std::uint64_t>(aqm));
  h.mix_u64(static_cast<std::uint64_t>(mix));
  h.mix_double(link_mbps);
  h.mix_double(rtt_ms);
  h.mix_u64(derived_seed);
  return h.state;
}
}  // namespace detail

/// Runs the full grid, invoking `consume` per completed point in grid order.
/// Grid points execute on opts.jobs worker threads; `consume` (and the
/// progress grouping headers) run on the calling thread only. Failed or
/// timed-out points are announced on the table, recorded in the JSON stream
/// and returned in the report — they never reach `consume`.
///
/// Durability: each completed point is journaled (append + fsync) *before*
/// it is consumed; with --resume, journaled points are decoded and pushed
/// through the same ordered consume path without re-simulating. On
/// SIGINT/SIGTERM the runner stops at a point boundary, an `interrupted`
/// marker is journaled, and the --json tmp file is dropped un-renamed;
/// sweep_exit_code() then reports 75 (resume with --resume).
inline runner::RunReport run_sweep(
    const Options& opts, const std::function<void(const SweepPoint&)>& consume) {
  struct GridPoint {
    scenario::AqmType aqm;
    MixKind mix;
    double link_mbps;
    double rtt_ms;
    std::uint64_t seed = 0;  ///< derived per-point RNG seed
    std::uint64_t key = 0;   ///< journal key
  };
  std::vector<GridPoint> grid;
  for (const auto aqm : {scenario::AqmType::kPie, scenario::AqmType::kCoupledPi2}) {
    for (const auto mix : {MixKind::kCubicVsEcnCubic, MixKind::kCubicVsDctcp}) {
      for (const double link : link_grid(opts)) {
        for (const double rtt : rtt_grid(opts)) {
          GridPoint g{aqm, mix, link, rtt, 0, 0};
          g.seed = sim::Rng::derive_seed(opts.seed, grid.size());
          g.key = detail::point_key(grid.size(), aqm, mix, link, rtt, g.seed);
          grid.push_back(g);
        }
      }
    }
  }
  const std::size_t per_group = link_grid(opts).size() * rtt_grid(opts).size();

  durable::ShutdownController::install();
  const std::uint64_t campaign = detail::campaign_key(opts);
  const std::string journal_file = detail::journal_path(opts);

  // --resume: decode every journaled point up front; decode failures (a
  // payload from an incompatible build, say) simply re-run that point.
  std::vector<std::unique_ptr<scenario::RunResult>> replay(grid.size());
  std::size_t replayed = 0;
  bool journal_keep = false;
  if (opts.resume) {
    const durable::LoadedJournal loaded =
        durable::load_journal(journal_file, campaign);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different campaign "
                   "(header %016llx, expected %016llx); ignoring it\n",
                   journal_file.c_str(),
                   static_cast<unsigned long long>(loaded.header_key),
                   static_cast<unsigned long long>(campaign));
    }
    if (loaded.dropped > 0) {
      std::fprintf(stderr,
                   "resume: dropped %zu torn/corrupt journal record(s); "
                   "affected points re-run\n",
                   loaded.dropped);
    }
    if (loaded.header_ok) {
      journal_keep = true;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto it = loaded.points.find(grid[i].key);
        if (it == loaded.points.end()) continue;
        auto result = std::make_unique<scenario::RunResult>();
        if (durable::decode_result(it->second, *result).ok()) {
          replay[i] = std::move(result);
          ++replayed;
        } else {
          std::fprintf(stderr,
                       "resume: undecodable payload for point %zu; re-running\n",
                       i);
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %zu point(s) from %s%s\n",
                   replayed, grid.size(), journal_file.c_str(),
                   loaded.interrupted > 0 ? " (previous run was interrupted)"
                                          : "");
    }
  }

  durable::JournalWriter journal{journal_file, campaign, journal_keep};
  if (!journal.healthy()) {
    std::fprintf(stderr, "warning: run journal unavailable (%s); "
                 "this sweep will not be resumable\n",
                 journal.status().message().c_str());
  }

  SweepJsonWriter json{opts.json_path,
                       opts.packet_background > 0 || opts.fluid_background > 0};
  const runner::ParallelRunner pool{opts.jobs};

  // Each attempt owns its telemetry recorder and hands it to the consuming
  // thread inside the produced result (a stuck attempt's recorder is
  // discarded with its stale result, so a retry never shares one). Caveat:
  // a zombie attempt that outlives its deadline still writes the same
  // artifact paths as its retry; artifacts of a *timed-out-then-retried*
  // point are therefore best-effort, ok points are exact.
  const bool telemetry_on = !opts.telemetry_dir.empty();
  telemetry::MetricsRegistry sweep_registry;  ///< submission-order aggregate
  telemetry::SectionProfile sweep_profile;
  // shared_ptr (not unique_ptr): the runner's commit closure is a
  // std::function, which requires a copy-constructible capture.
  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  // Last attempt's exception message per point, for the failure records.
  std::mutex error_mutex;
  std::vector<std::string> last_error(grid.size());
  std::size_t interrupted_points = 0;

  runner::RunReport report = pool.run_ordered_guarded<PointOutcome>(
      grid.size(),
      [&](std::size_t i) {
        if (replay[i] != nullptr) {
          PointOutcome outcome;
          outcome.result = *replay[i];
          return outcome;
        }
        try {
          detail::maybe_inject(opts, i);
          const GridPoint& g = grid[i];
          auto cfg = mix_config(g.aqm, g.mix, g.link_mbps, g.rtt_ms, opts);
          cfg.seed = g.seed;
          cfg.stop = durable::ShutdownController::flag();
          PointOutcome outcome;
          if (telemetry_on) {
            outcome.recorder = std::make_shared<telemetry::Recorder>(
                detail::point_recorder_config(opts, i));
            cfg.recorder = outcome.recorder.get();
          }
          outcome.result = scenario::run_dumbbell(cfg);
          return outcome;
        } catch (const std::exception& ex) {
          const std::lock_guard<std::mutex> lock{error_mutex};
          last_error[i] = ex.what();
          throw;
        }
      },
      [&](std::size_t i, runner::TaskStatus status, PointOutcome* outcome) {
        const GridPoint& g = grid[i];
        if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_points;  // summarized once after the run
          return;
        }
        if (i % per_group == 0) {
          std::printf("\n== %s, %s ==\n", aqm_label(g.aqm), to_string(g.mix));
        }
        if (status == runner::TaskStatus::kOk && outcome != nullptr) {
          SweepPoint point{g.aqm,  g.mix, g.link_mbps,
                           g.rtt_ms, std::move(outcome->result), i,
                           g.seed, {}};
          if (outcome->recorder != nullptr) {
            point.manifest_path = outcome->recorder->manifest_path();
            sweep_registry.merge_from(outcome->recorder->registry());
            sweep_profile.merge_from(outcome->recorder->profile());
            outcome->recorder.reset();
          } else if (telemetry_on && replay[i] != nullptr) {
            // Replayed points re-use the interrupted run's artifacts; the
            // manifest path is deterministic, so the JSON record matches.
            point.manifest_path = opts.telemetry_dir + "/" +
                                  detail::point_run_id(i) + ".manifest.json";
          }
          if (replay[i] == nullptr && journal.healthy()) {
            // Journal *before* consume: a crash while printing still leaves
            // the point recoverable.
            (void)journal.append_point(g.key,
                                       durable::encode_result(point.result));
          }
          if (!point.result.violations.empty()) {
            std::printf("!! point %zu: %llu invariant violation(s), see JSON\n",
                        i, static_cast<unsigned long long>(
                               point.result.violations.size()));
          }
          consume(point);
          json.add(point);
          return;
        }
        std::string message;
        if (status == runner::TaskStatus::kTimeout) {
          message = "wall-clock deadline exceeded (--deadline-s " +
                    std::to_string(opts.deadline_s) + ")";
        } else {
          const std::lock_guard<std::mutex> lock{error_mutex};
          message = last_error[i].empty() ? "unknown error" : last_error[i];
        }
        std::printf("!! point %zu (%s, %s, %g Mb/s, %g ms) %s: %s\n", i,
                    aqm_label(g.aqm), to_string(g.mix), g.link_mbps, g.rtt_ms,
                    runner::to_string(status), message.c_str());
        json.add_failed(i, g.aqm, g.mix, g.link_mbps, g.rtt_ms, status,
                        message);
      },
      detail::guard_options(opts));

  const bool interrupted = durable::ShutdownController::requested();
  if (interrupted) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    json.abort();
    std::fprintf(stderr,
                 "sweep: interrupted — %zu point(s) unfinished; completed "
                 "work is journaled in %s, re-run with --resume to finish\n",
                 interrupted_points, journal_file.c_str());
  } else {
    json.commit();
  }
  if (!journal.healthy()) {
    std::fprintf(stderr, "warning: journal write failed (%s); "
                 "a --resume of this run may repeat completed points\n",
                 journal.status().message().c_str());
  }

  if (telemetry_on && !interrupted) {
    if (replayed > 0) {
      // Replayed points carry no fresh recorder, so a sweep-wide aggregate
      // would silently undercount. Skip it rather than publish a lie.
      std::fprintf(stderr,
                   "sweep: %zu replayed point(s) have no fresh telemetry; "
                   "skipping sweep_aggregate.prom\n",
                   replayed);
    } else {
      // Sweep-wide aggregate (counters + histograms summed across points, in
      // submission order) and the wall-clock section profile. Only the
      // aggregate snapshot is byte-identical across --jobs values; wall-clock
      // numbers go to stderr.
      telemetry::PrometheusExporter aggregate{opts.telemetry_dir +
                                              "/sweep_aggregate.prom"};
      sweep_registry.freeze_gauges();
      aggregate.finish(sweep_registry);
      sweep_profile.print(stderr, "sweep wall-clock sections");
    }
  }

  if (!interrupted && !report.all_ok()) {
    std::fprintf(stderr, "sweep: %zu of %zu points did not complete\n",
                 report.failures.size(), report.status.size());
  }
  return report;
}

/// Exit code for a figure binary given its sweep report: 0 when every point
/// completed, 75 (EX_TEMPFAIL) when the sweep was interrupted by
/// SIGINT/SIGTERM and can be finished with --resume, 1 otherwise (partial
/// results were still printed/written).
inline int sweep_exit_code(const runner::RunReport& report) {
  if (durable::ShutdownController::requested()) {
    return durable::ShutdownController::kExitInterrupted;
  }
  return report.all_ok() ? 0 : 1;
}

}  // namespace pi2::bench
