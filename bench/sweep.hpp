// The link-rate x RTT sweep engine behind Figures 15-18: for every grid
// point run two scenarios (Cubic vs DCTCP, Cubic vs ECN-Cubic) under both
// PIE and the coupled PI2, and hand each result to the figure's printer.
//
// Grid points are independent simulations, so they fan out across
// --jobs worker threads via runner::ParallelRunner. Results are consumed in
// submission order on the calling thread, which keeps every figure's table
// byte-identical to a serial run regardless of the job count. Each point
// seeds its own RNG stream from (base seed, point index) — no shared state.
//
// Sweeps run through the *guarded* runner: a point that throws or exceeds
// the --deadline-s wall-clock watchdog is retried (--retries, default 1)
// and, if it still fails, reported as `failed`/`timeout` — in the printed
// table, in the per-point JSON record, and in the returned RunReport — while
// every other point completes normally. Callers exit non-zero when
// !report.all_ok().
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "runner/parallel_runner.hpp"
#include "sim/rng.hpp"
#include "telemetry/recorder.hpp"

namespace pi2::bench {

struct SweepPoint {
  scenario::AqmType aqm;
  MixKind mix;
  double link_mbps;
  double rtt_ms;
  scenario::RunResult result;
  std::size_t index = 0;       ///< position in the submission order
  std::uint64_t seed = 0;      ///< derived per-point RNG seed
  /// Path of the point's RunManifest ("" when --telemetry is off).
  std::string manifest_path;
};

inline const char* aqm_label(scenario::AqmType aqm) {
  return aqm == scenario::AqmType::kPie ? "PIE" : "PI2(coupled)";
}

/// Minimal JSON string escaping for error messages embedded in records.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streams one machine-readable record per sweep point as a JSON array.
/// Used by --json to make runs comparable across PRs (BENCH_sweep.json).
/// Every record carries a "status" field ("ok" / "failed" / "timeout");
/// failed and timed-out points get a reduced record with the error message
/// instead of measurements, so downstream tooling can tell a missing point
/// from a zero-valued one.
class SweepJsonWriter {
 public:
  SweepJsonWriter() = default;
  explicit SweepJsonWriter(const std::string& path) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "w");
      if (file_ == nullptr)
        std::fprintf(stderr, "warning: cannot open %s; no JSON written\n",
                     path.c_str());
    }
    if (file_ != nullptr) std::fputs("[", file_);
  }
  SweepJsonWriter(const SweepJsonWriter&) = delete;
  SweepJsonWriter& operator=(const SweepJsonWriter&) = delete;
  ~SweepJsonWriter() {
    if (file_ != nullptr) {
      std::fputs("\n]\n", file_);
      std::fclose(file_);
    }
  }

  void add(const SweepPoint& p) {
    if (file_ == nullptr) return;
    const auto& c = p.result.window_counters;
    std::fprintf(
        file_,
        "%s\n"
        "  {\"index\": %zu, \"status\": \"ok\", \"aqm\": \"%s\", "
        "\"mix\": \"%s\", "
        "\"link_mbps\": %g, \"rtt_ms\": %g, \"seed\": %llu, "
        "\"mean_qdelay_ms\": %.6g, \"p99_qdelay_ms\": %.6g, "
        "\"utilization\": %.6g, \"signal_rate\": %.6g, "
        "\"cubic_mbps\": %.6g, \"other_mbps\": %.6g, "
        "\"enqueued\": %lld, \"forwarded\": %lld, \"aqm_dropped\": %lld, "
        "\"tail_dropped\": %lld, \"marked\": %lld, "
        "\"events_executed\": %llu, \"clamped_events\": %llu, "
        "\"invariant_violations\": %llu, \"guard_events\": %llu",
        first_ ? "" : ",", p.index, aqm_label(p.aqm), to_string(p.mix),
        p.link_mbps, p.rtt_ms, static_cast<unsigned long long>(p.seed),
        p.result.mean_qdelay_ms, p.result.p99_qdelay_ms, p.result.utilization,
        p.result.observed_signal_rate(),
        p.result.mean_goodput_mbps(tcp::CcType::kCubic),
        p.result.mean_goodput_mbps(other_cc(p.mix)),
        static_cast<long long>(c.enqueued), static_cast<long long>(c.forwarded),
        static_cast<long long>(c.aqm_dropped),
        static_cast<long long>(c.tail_dropped), static_cast<long long>(c.marked),
        static_cast<unsigned long long>(p.result.events_executed),
        static_cast<unsigned long long>(p.result.clamped_events),
        static_cast<unsigned long long>(p.result.violations.size()),
        static_cast<unsigned long long>(p.result.guard_events));
    if (!p.manifest_path.empty()) {
      std::fprintf(file_, ", \"telemetry_manifest\": \"%s\"",
                   json_escape(p.manifest_path).c_str());
    }
    std::fputs("}", file_);
    first_ = false;
  }

  void add_failed(std::size_t index, scenario::AqmType aqm, MixKind mix,
                  double link_mbps, double rtt_ms, runner::TaskStatus status,
                  const std::string& message) {
    if (file_ == nullptr) return;
    std::fprintf(file_,
                 "%s\n"
                 "  {\"index\": %zu, \"status\": \"%s\", \"aqm\": \"%s\", "
                 "\"mix\": \"%s\", \"link_mbps\": %g, \"rtt_ms\": %g, "
                 "\"error\": \"%s\"}",
                 first_ ? "" : ",", index, runner::to_string(status),
                 aqm_label(aqm), to_string(mix), link_mbps, rtt_ms,
                 json_escape(message).c_str());
    first_ = false;
  }

 private:
  std::FILE* file_ = nullptr;
  bool first_ = true;
};

namespace detail {
/// Test hook honoring --inject-fail / --inject-hang: makes one grid point
/// misbehave so the partial-failure path can be exercised end to end.
inline void maybe_inject(const Options& opts, std::size_t i) {
  if (opts.inject_fail >= 0 &&
      static_cast<std::size_t>(opts.inject_fail) == i) {
    throw std::runtime_error("injected failure (--inject-fail " +
                             std::to_string(i) + ")");
  }
  if (opts.inject_hang >= 0 &&
      static_cast<std::size_t>(opts.inject_hang) == i) {
    std::this_thread::sleep_for(std::chrono::duration<double>(opts.hang_s));
  }
}

inline runner::GuardOptions guard_options(const Options& opts) {
  runner::GuardOptions guard;
  guard.deadline = std::chrono::milliseconds(
      static_cast<long long>(opts.deadline_s * 1000.0));
  guard.retries = opts.retries;
  return guard;
}

inline std::string point_run_id(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "point_%04zu", i);
  return buf;
}

inline telemetry::RecorderConfig point_recorder_config(const Options& opts,
                                                       std::size_t i) {
  telemetry::RecorderConfig rc;
  rc.dir = opts.telemetry_dir;
  rc.run_id = point_run_id(i);
  if (opts.telemetry_interval_s > 0) {
    rc.interval = pi2::sim::from_seconds(opts.telemetry_interval_s);
  }
  return rc;
}
}  // namespace detail

/// Runs the full grid, invoking `consume` per completed point in grid order.
/// Grid points execute on opts.jobs worker threads; `consume` (and the
/// progress grouping headers) run on the calling thread only. Failed or
/// timed-out points are announced on the table, recorded in the JSON stream
/// and returned in the report — they never reach `consume`.
inline runner::RunReport run_sweep(
    const Options& opts, const std::function<void(const SweepPoint&)>& consume) {
  struct GridPoint {
    scenario::AqmType aqm;
    MixKind mix;
    double link_mbps;
    double rtt_ms;
  };
  std::vector<GridPoint> grid;
  for (const auto aqm : {scenario::AqmType::kPie, scenario::AqmType::kCoupledPi2}) {
    for (const auto mix : {MixKind::kCubicVsEcnCubic, MixKind::kCubicVsDctcp}) {
      for (const double link : link_grid(opts)) {
        for (const double rtt : rtt_grid(opts)) {
          grid.push_back(GridPoint{aqm, mix, link, rtt});
        }
      }
    }
  }
  const std::size_t per_group = link_grid(opts).size() * rtt_grid(opts).size();

  SweepJsonWriter json{opts.json_path};
  const runner::ParallelRunner pool{opts.jobs};

  // Each attempt owns its telemetry recorder and hands it to the consuming
  // thread inside the produced result (a stuck attempt's recorder is
  // discarded with its stale result, so a retry never shares one). Caveat:
  // a zombie attempt that outlives its deadline still writes the same
  // artifact paths as its retry; artifacts of a *timed-out-then-retried*
  // point are therefore best-effort, ok points are exact.
  const bool telemetry_on = !opts.telemetry_dir.empty();
  telemetry::MetricsRegistry sweep_registry;  ///< submission-order aggregate
  telemetry::SectionProfile sweep_profile;
  // shared_ptr (not unique_ptr): the runner's commit closure is a
  // std::function, which requires a copy-constructible capture.
  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  // Last attempt's exception message per point, for the failure records.
  std::mutex error_mutex;
  std::vector<std::string> last_error(grid.size());

  runner::RunReport report = pool.run_ordered_guarded<PointOutcome>(
      grid.size(),
      [&](std::size_t i) {
        try {
          detail::maybe_inject(opts, i);
          const GridPoint& g = grid[i];
          auto cfg = mix_config(g.aqm, g.mix, g.link_mbps, g.rtt_ms, opts);
          cfg.seed = sim::Rng::derive_seed(opts.seed, i);
          PointOutcome outcome;
          if (telemetry_on) {
            outcome.recorder = std::make_shared<telemetry::Recorder>(
                detail::point_recorder_config(opts, i));
            cfg.recorder = outcome.recorder.get();
          }
          outcome.result = scenario::run_dumbbell(cfg);
          return outcome;
        } catch (const std::exception& ex) {
          const std::lock_guard<std::mutex> lock{error_mutex};
          last_error[i] = ex.what();
          throw;
        }
      },
      [&](std::size_t i, runner::TaskStatus status, PointOutcome* outcome) {
        const GridPoint& g = grid[i];
        if (i % per_group == 0) {
          std::printf("\n== %s, %s ==\n", aqm_label(g.aqm), to_string(g.mix));
        }
        if (status == runner::TaskStatus::kOk && outcome != nullptr) {
          SweepPoint point{g.aqm,  g.mix, g.link_mbps,
                           g.rtt_ms, std::move(outcome->result), i,
                           sim::Rng::derive_seed(opts.seed, i), {}};
          if (outcome->recorder != nullptr) {
            point.manifest_path = outcome->recorder->manifest_path();
            sweep_registry.merge_from(outcome->recorder->registry());
            sweep_profile.merge_from(outcome->recorder->profile());
            outcome->recorder.reset();
          }
          if (!point.result.violations.empty()) {
            std::printf("!! point %zu: %llu invariant violation(s), see JSON\n",
                        i, static_cast<unsigned long long>(
                               point.result.violations.size()));
          }
          consume(point);
          json.add(point);
          return;
        }
        std::string message;
        if (status == runner::TaskStatus::kTimeout) {
          message = "wall-clock deadline exceeded (--deadline-s " +
                    std::to_string(opts.deadline_s) + ")";
        } else {
          const std::lock_guard<std::mutex> lock{error_mutex};
          message = last_error[i].empty() ? "unknown error" : last_error[i];
        }
        std::printf("!! point %zu (%s, %s, %g Mb/s, %g ms) %s: %s\n", i,
                    aqm_label(g.aqm), to_string(g.mix), g.link_mbps, g.rtt_ms,
                    runner::to_string(status), message.c_str());
        json.add_failed(i, g.aqm, g.mix, g.link_mbps, g.rtt_ms, status,
                        message);
      },
      detail::guard_options(opts));

  if (telemetry_on) {
    // Sweep-wide aggregate (counters + histograms summed across points, in
    // submission order) and the wall-clock section profile. Only the
    // aggregate snapshot is byte-identical across --jobs values; wall-clock
    // numbers go to stderr.
    telemetry::PrometheusExporter aggregate{opts.telemetry_dir +
                                            "/sweep_aggregate.prom"};
    sweep_registry.freeze_gauges();
    aggregate.finish(sweep_registry);
    sweep_profile.print(stderr, "sweep wall-clock sections");
  }

  if (!report.all_ok()) {
    std::fprintf(stderr, "sweep: %zu of %zu points did not complete\n",
                 report.failures.size(), report.status.size());
  }
  return report;
}

/// Exit code for a figure binary given its sweep report: 0 when every point
/// completed, 1 otherwise (partial results were still printed/written).
inline int sweep_exit_code(const runner::RunReport& report) {
  return report.all_ok() ? 0 : 1;
}

}  // namespace pi2::bench
