// RTT-mix fairness campaign: three sender branches at 10/50/100 ms base RTT
// feed one AQM-managed 10 Mb/s bottleneck through uncongested 40 Mb/s FIFO
// access links — the classic RTT-unfairness matrix, swept across the
// paper's AQMs. Each branch runs 1 Cubic + 1 DCTCP flow, so the matrix
// also shows how the Classic/Scalable split interacts with RTT bias.
// Reported per point: per-branch goodput, the 10ms/100ms ratio, Jain's
// index over the branches, and the bottleneck's queue delay.
//
// Durable like the sweep binaries: journaled points (codec v4), exit 75 on
// SIGINT/SIGTERM, --resume replay, atomic --json. The --smoke --seed 1
// --json output is a committed golden figure (tests/golden/fig_rtt_mix.json).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sweep.hpp"
#include "topology/topology.hpp"

namespace {

using namespace pi2;
using namespace pi2::bench;

struct RttMixPoint {
  scenario::AqmType aqm;
  const char* aqm_name;
};

constexpr double kBranchRttMs[] = {10.0, 50.0, 100.0};
constexpr std::size_t kBranches = 3;
constexpr int kFlowsPerBranch = 2;  // 1 Cubic + 1 DCTCP

double duration_s(const Options& opts) {
  if (opts.duration_s_override > 0) return opts.duration_s_override;
  return opts.full ? 60.0 : 20.0;
}

std::uint64_t rtt_mix_campaign_key(const Options& opts, double total_s,
                                   std::size_t points) {
  durable::Fnv1a h;
  h.mix_string("pi2-rttmix-campaign-v1");
  h.mix_u64(opts.seed);
  h.mix_double(total_s);
  h.mix_u64(points);
  return h.state;
}

std::uint64_t rtt_mix_point_key(std::size_t index, const RttMixPoint& p,
                                std::uint64_t derived_seed) {
  durable::Fnv1a h;
  h.mix_string("pi2-rttmix-point-v1");
  h.mix_u64(index);
  h.mix_u64(static_cast<std::uint64_t>(p.aqm));
  h.mix_u64(derived_seed);
  return h.state;
}

template <typename T>
void cap_axis(std::vector<T>& axis, int cap) {
  if (cap > 0 && axis.size() > static_cast<std::size_t>(cap)) {
    axis.resize(static_cast<std::size_t>(cap));
  }
}

/// Branch topology: r10/r50/r100 -> agg over FIFO access links, agg -> sink
/// over the AQM bottleneck. The bottleneck is links[0], so it owns the
/// flattened result's top-level series and telemetry scope.
topology::TopologyConfig rtt_mix(const RttMixPoint& p, double link_mbps,
                                 double total_s, double stats_start_s,
                                 std::uint64_t seed) {
  topology::TopologyConfig cfg;
  cfg.nodes = {"agg", "sink", "r10", "r50", "r100"};
  topology::LinkSpec bottleneck;
  bottleneck.name = "bottleneck";
  bottleneck.from = "agg";
  bottleneck.to = "sink";
  bottleneck.rate_bps = link_mbps * 1e6;
  bottleneck.aqm.type = p.aqm;
  bottleneck.aqm.ecn = true;
  cfg.links.push_back(bottleneck);
  for (std::size_t b = 0; b < kBranches; ++b) {
    topology::LinkSpec access;
    access.from = cfg.nodes[2 + b];
    access.to = "agg";
    access.rate_bps = 40e6;  // never the bottleneck
    access.aqm.type = scenario::AqmType::kFifo;
    cfg.links.push_back(access);
  }
  for (std::size_t b = 0; b < kBranches; ++b) {
    const std::vector<std::string> path = {cfg.nodes[2 + b], "agg", "sink"};
    scenario::TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.count = 1;
    cubic.base_rtt = sim::from_millis(kBranchRttMs[b]);
    cfg.tcp_flows.push_back({cubic, path});
    scenario::TcpFlowSpec dctcp;
    dctcp.cc = tcp::CcType::kDctcp;
    dctcp.count = 1;
    dctcp.base_rtt = sim::from_millis(kBranchRttMs[b]);
    cfg.tcp_flows.push_back({dctcp, path});
  }
  cfg.duration = sim::from_seconds(total_s);
  cfg.stats_start = sim::from_seconds(stats_start_s);
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  print_header("RTT mix",
               "10/50/100 ms branches sharing one bottleneck, per AQM",
               opts);
  durable::ShutdownController::install();

  const double total_s = duration_s(opts);
  const double stats_start_s = opts.stats_start_s_override > 0
                                   ? opts.stats_start_s_override
                                   : total_s / 4.0;
  const double link_mbps = 10.0;

  // Ordered so --smoke's cap of 2 keeps the paper's AQM next to DualPI2.
  std::vector<RttMixPoint> grid{
      {scenario::AqmType::kCoupledPi2, "coupled-pi2"},
      {scenario::AqmType::kDualPi2, "dualpi2"},
      {scenario::AqmType::kPie, "pie"},
  };
  cap_axis(grid, opts.grid_cap);

  std::printf("# bottleneck %.0f Mb/s; per branch: 1 Cubic + 1 DCTCP at "
              "10/50/100 ms base RTT, %.0f s/run\n",
              link_mbps, total_s);
  std::printf("%-12s %-8s %-8s %-8s %-9s %-6s %-8s %-8s\n", "aqm",
              "b10", "b50", "b100", "r10/100", "jain", "qdelay", "p99");

  const runner::ParallelRunner pool{opts.jobs};
  bool healthy = true;
  const bool telemetry_on = !opts.telemetry_dir.empty();

  const std::uint64_t campaign =
      rtt_mix_campaign_key(opts, total_s, grid.size());
  const std::string journal_file = bench::detail::journal_path(opts);
  std::vector<std::uint64_t> keys(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    keys[i] =
        rtt_mix_point_key(i, grid[i], sim::Rng::derive_seed(opts.seed, i));
  }

  std::vector<std::unique_ptr<scenario::RunResult>> replay(grid.size());
  bool journal_keep = false;
  if (opts.resume) {
    const durable::LoadedJournal loaded =
        durable::load_journal(journal_file, campaign);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different campaign; "
                   "ignoring it\n",
                   journal_file.c_str());
    }
    if (loaded.header_ok) {
      journal_keep = true;
      std::size_t replayed = 0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto it = loaded.points.find(keys[i]);
        if (it == loaded.points.end()) continue;
        auto result = std::make_unique<scenario::RunResult>();
        if (durable::decode_result(it->second, *result).ok()) {
          replay[i] = std::move(result);
          ++replayed;
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %zu run(s) from %s\n",
                   replayed, grid.size(), journal_file.c_str());
    }
  }
  durable::JournalWriter journal{journal_file, campaign, journal_keep};

  std::unique_ptr<durable::AtomicFile> json;
  bool json_first = true;
  if (!opts.json_path.empty()) {
    json = std::make_unique<durable::AtomicFile>(opts.json_path);
    if (!json->healthy()) {
      std::fprintf(stderr, "warning: %s; no JSON written\n",
                   json->status().message().c_str());
      json.reset();
    } else {
      json->write("[");
    }
  }

  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  std::size_t interrupted_points = 0;
  runner::GuardOptions guard;
  guard.cancel = durable::ShutdownController::flag();

  const auto report = pool.run_ordered_guarded<PointOutcome>(
      grid.size(),
      [&](std::size_t i) {
        if (replay[i] != nullptr) {
          PointOutcome outcome;
          outcome.result = *replay[i];
          return outcome;
        }
        auto cfg = rtt_mix(grid[i], link_mbps, total_s, stats_start_s,
                           sim::Rng::derive_seed(opts.seed, i));
        cfg.stop = durable::ShutdownController::flag();
        PointOutcome outcome;
        if (telemetry_on) {
          outcome.recorder = std::make_shared<telemetry::Recorder>(
              bench::detail::point_recorder_config(opts, i));
          cfg.recorder = outcome.recorder.get();
        }
        outcome.result = topology::to_run_result(topology::run_topology(cfg));
        return outcome;
      },
      [&](std::size_t i, runner::TaskStatus status, PointOutcome* outcome) {
        const RttMixPoint& p = grid[i];
        if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_points;
          return;
        }
        if (status != runner::TaskStatus::kOk || outcome == nullptr) {
          std::printf("%-12s point %s\n", p.aqm_name,
                      runner::to_string(status));
          if (json != nullptr) {
            json->printf("%s\n  {\"index\": %zu, \"status\": \"%s\", "
                         "\"aqm\": \"%s\"}",
                         json_first ? "" : ",", i, runner::to_string(status),
                         p.aqm_name);
            json_first = false;
          }
          healthy = false;
          return;
        }
        scenario::RunResult* result = &outcome->result;
        if (replay[i] == nullptr && journal.healthy()) {
          (void)journal.append_point(keys[i], durable::encode_result(*result));
        }
        if (outcome->recorder != nullptr) {
          std::printf("# telemetry: %s\n",
                      outcome->recorder->manifest_path().c_str());
          outcome->recorder.reset();
        }
        // Flow order is the route order: branch b owns flows[2b] (Cubic)
        // and flows[2b+1] (DCTCP).
        double branch_mbps[kBranches] = {};
        for (std::size_t b = 0; b < kBranches; ++b) {
          for (int f = 0; f < kFlowsPerBranch; ++f) {
            branch_mbps[b] +=
                result->flows[b * kFlowsPerBranch +
                              static_cast<std::size_t>(f)]
                    .goodput_mbps;
          }
        }
        double sum = 0.0;
        double sum_sq = 0.0;
        for (const double g : branch_mbps) {
          sum += g;
          sum_sq += g * g;
        }
        const double jain =
            sum_sq > 0 ? (sum * sum) / (kBranches * sum_sq) : 0.0;
        const double ratio =
            branch_mbps[2] > 0 ? branch_mbps[0] / branch_mbps[2] : 0.0;
        std::printf("%-12s %-8.2f %-8.2f %-8.2f %-9.2f %-6.3f %-8.2f %-8.2f\n",
                    p.aqm_name, branch_mbps[0], branch_mbps[1],
                    branch_mbps[2], ratio, jain, result->mean_qdelay_ms,
                    result->p99_qdelay_ms);
        if (json != nullptr) {
          json->printf(
              "%s\n  {\"index\": %zu, \"status\": \"ok\", \"aqm\": \"%s\", "
              "\"seed\": %llu, \"link_mbps\": %.6g, "
              "\"rtt10_mbps\": %.6g, \"rtt50_mbps\": %.6g, "
              "\"rtt100_mbps\": %.6g, \"ratio_10_100\": %.6g, "
              "\"jain\": %.6g, \"utilization\": %.6g, "
              "\"mean_qdelay_ms\": %.6g, \"p99_qdelay_ms\": %.6g, "
              "\"marked\": %lld, \"aqm_dropped\": %lld, "
              "\"invariant_violations\": %llu, \"guard_events\": %llu}",
              json_first ? "" : ",", i, p.aqm_name,
              static_cast<unsigned long long>(
                  sim::Rng::derive_seed(opts.seed, i)),
              link_mbps, branch_mbps[0], branch_mbps[1], branch_mbps[2],
              ratio, jain, result->utilization, result->mean_qdelay_ms,
              result->p99_qdelay_ms,
              static_cast<long long>(result->counters.marked),
              static_cast<long long>(result->counters.aqm_dropped),
              static_cast<unsigned long long>(result->violations.size()),
              static_cast<unsigned long long>(result->guard_events));
          json_first = false;
        }
        // Health is machinery plus basic liveness: every branch must get a
        // share, and the Jain index must be a valid fairness value.
        if (!result->violations.empty() || result->clamped_events != 0 ||
            result->guard_events != 0) {
          healthy = false;
        }
        for (std::size_t b = 0; b < kBranches; ++b) {
          if (branch_mbps[b] <= 0.0) {
            std::printf("# UNHEALTHY: branch %zu starved (%.3f Mb/s)\n", b,
                        branch_mbps[b]);
            healthy = false;
          }
        }
      },
      guard);

  if (durable::ShutdownController::requested()) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    if (json != nullptr) json->abort();
    std::fprintf(stderr,
                 "rtt-mix: interrupted — %zu run(s) unfinished; re-run with "
                 "--resume to finish (journal: %s)\n",
                 interrupted_points, journal_file.c_str());
    return durable::ShutdownController::kExitInterrupted;
  }
  if (json != nullptr) {
    json->write("\n]\n");
    const durable::Status status = json->commit();
    if (!status.ok()) {
      std::fprintf(stderr, "error: JSON not written: %s\n",
                   status.message().c_str());
    }
  }

  std::printf(
      "\n# expectation: short-RTT branches out-throughput long ones "
      "(ratio > 1); the AQMs\n"
      "# differ in how far Jain's index falls and where the queue delay "
      "settles.\n");
  std::printf("# points ok: %zu/%zu\n", report.ok_count(),
              report.status.size());
  return report.all_ok() && healthy ? 0 : 1;
}
