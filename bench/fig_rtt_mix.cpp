// RTT-mix fairness campaign: three sender branches at 10/50/100 ms base RTT
// feed one AQM-managed 10 Mb/s bottleneck through uncongested 40 Mb/s FIFO
// access links — the classic RTT-unfairness matrix, swept across the
// paper's AQMs. Each branch runs 1 Cubic + 1 DCTCP flow, so the matrix
// also shows how the Classic/Scalable split interacts with RTT bias.
// Reported per point: per-branch goodput, the 10ms/100ms ratio, Jain's
// index over the branches, and the bottleneck's queue delay.
//
// Durable like the sweep binaries: journaled points (codec v4), exit 75 on
// SIGINT/SIGTERM, --resume replay, atomic --json. The --smoke --seed 1
// --json output is a committed golden figure (tests/golden/fig_rtt_mix.json).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign_templates.hpp"
#include "sweep.hpp"
#include "topology/topology.hpp"

namespace {

using namespace pi2;
using namespace pi2::bench;

struct RttMixPoint {
  scenario::AqmType aqm;
  const char* aqm_name;
};

double duration_s(const Options& opts) {
  if (opts.duration_s_override > 0) return opts.duration_s_override;
  return opts.full ? 60.0 : 20.0;
}

std::uint64_t rtt_mix_campaign_key(const Options& opts, double total_s,
                                   std::size_t points) {
  durable::Fnv1a h;
  h.mix_string("pi2-rttmix-campaign-v1");
  h.mix_u64(opts.seed);
  h.mix_double(total_s);
  h.mix_u64(points);
  return h.state;
}

std::uint64_t rtt_mix_point_key(std::size_t index, const RttMixPoint& p,
                                std::uint64_t derived_seed) {
  durable::Fnv1a h;
  h.mix_string("pi2-rttmix-point-v1");
  h.mix_u64(index);
  h.mix_u64(static_cast<std::uint64_t>(p.aqm));
  h.mix_u64(derived_seed);
  return h.state;
}

template <typename T>
void cap_axis(std::vector<T>& axis, int cap) {
  if (cap > 0 && axis.size() > static_cast<std::size_t>(cap)) {
    axis.resize(static_cast<std::size_t>(cap));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  print_header("RTT mix",
               "10/50/100 ms branches sharing one bottleneck, per AQM",
               opts);
  durable::ShutdownController::install();

  const double total_s = duration_s(opts);
  const double stats_start_s = opts.stats_start_s_override > 0
                                   ? opts.stats_start_s_override
                                   : total_s / 4.0;
  const double link_mbps = 10.0;

  // Ordered so --smoke's cap of 2 keeps the paper's AQM next to DualPI2.
  std::vector<RttMixPoint> grid{
      {scenario::AqmType::kCoupledPi2, "coupled-pi2"},
      {scenario::AqmType::kDualPi2, "dualpi2"},
      {scenario::AqmType::kPie, "pie"},
  };
  cap_axis(grid, opts.grid_cap);

  std::printf("# bottleneck %.0f Mb/s; per branch: 1 Cubic + 1 DCTCP at "
              "10/50/100 ms base RTT, %.0f s/run\n",
              link_mbps, total_s);
  std::printf("%-12s %-8s %-8s %-8s %-9s %-6s %-8s %-8s\n", "aqm",
              "b10", "b50", "b100", "r10/100", "jain", "qdelay", "p99");

  const runner::ParallelRunner pool{opts.jobs};
  bool healthy = true;
  const bool telemetry_on = !opts.telemetry_dir.empty();

  const std::uint64_t campaign =
      rtt_mix_campaign_key(opts, total_s, grid.size());
  const std::string journal_file = bench::detail::journal_path(opts);
  std::vector<std::uint64_t> keys(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    keys[i] =
        rtt_mix_point_key(i, grid[i], sim::Rng::derive_seed(opts.seed, i));
  }

  std::vector<std::unique_ptr<scenario::RunResult>> replay(grid.size());
  bool journal_keep = false;
  if (opts.resume) {
    const durable::LoadedJournal loaded =
        durable::load_journal(journal_file, campaign);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different campaign; "
                   "ignoring it\n",
                   journal_file.c_str());
    }
    if (loaded.header_ok) {
      journal_keep = true;
      std::size_t replayed = 0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto it = loaded.points.find(keys[i]);
        if (it == loaded.points.end()) continue;
        auto result = std::make_unique<scenario::RunResult>();
        if (durable::decode_result(it->second, *result).ok()) {
          replay[i] = std::move(result);
          ++replayed;
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %zu run(s) from %s\n",
                   replayed, grid.size(), journal_file.c_str());
    }
  }
  durable::JournalWriter journal{journal_file, campaign, journal_keep};

  std::unique_ptr<durable::AtomicFile> json;
  bool json_first = true;
  if (!opts.json_path.empty()) {
    json = std::make_unique<durable::AtomicFile>(opts.json_path);
    if (!json->healthy()) {
      std::fprintf(stderr, "warning: %s; no JSON written\n",
                   json->status().message().c_str());
      json.reset();
    } else {
      json->write("[");
    }
  }

  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  std::size_t interrupted_points = 0;
  runner::GuardOptions guard;
  guard.cancel = durable::ShutdownController::flag();

  const auto report = pool.run_ordered_guarded<PointOutcome>(
      grid.size(),
      [&](std::size_t i) {
        if (replay[i] != nullptr) {
          PointOutcome outcome;
          outcome.result = *replay[i];
          return outcome;
        }
        auto cfg = rtt_mix_config(grid[i].aqm, link_mbps, total_s,
                                  stats_start_s,
                                  sim::Rng::derive_seed(opts.seed, i));
        cfg.stop = durable::ShutdownController::flag();
        PointOutcome outcome;
        if (telemetry_on) {
          outcome.recorder = std::make_shared<telemetry::Recorder>(
              bench::detail::point_recorder_config(opts, i));
          cfg.recorder = outcome.recorder.get();
        }
        outcome.result = topology::to_run_result(topology::run_topology(cfg));
        return outcome;
      },
      [&](std::size_t i, runner::TaskStatus status, PointOutcome* outcome) {
        const RttMixPoint& p = grid[i];
        if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_points;
          return;
        }
        if (status != runner::TaskStatus::kOk || outcome == nullptr) {
          std::printf("%-12s point %s\n", p.aqm_name,
                      runner::to_string(status));
          if (json != nullptr) {
            rtt_mix_json_failed(*json, json_first, i, status, p.aqm_name);
          }
          healthy = false;
          return;
        }
        scenario::RunResult* result = &outcome->result;
        if (replay[i] == nullptr && journal.healthy()) {
          (void)journal.append_point(keys[i], durable::encode_result(*result));
        }
        if (outcome->recorder != nullptr) {
          std::printf("# telemetry: %s\n",
                      outcome->recorder->manifest_path().c_str());
          outcome->recorder.reset();
        }
        const RttMixSummary summary = rtt_mix_summary(*result);
        rtt_mix_print_row(p.aqm_name, summary, *result);
        if (json != nullptr) {
          rtt_mix_json_record(*json, json_first, i, p.aqm_name,
                              sim::Rng::derive_seed(opts.seed, i), link_mbps,
                              summary, *result);
        }
        // Health is machinery plus basic liveness: every branch must get a
        // share, and the Jain index must be a valid fairness value.
        if (!machinery_healthy(*result)) healthy = false;
        if (!rtt_mix_check_branches(summary)) healthy = false;
      },
      guard);

  if (durable::ShutdownController::requested()) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    if (json != nullptr) json->abort();
    std::fprintf(stderr,
                 "rtt-mix: interrupted — %zu run(s) unfinished; re-run with "
                 "--resume to finish (journal: %s)\n",
                 interrupted_points, journal_file.c_str());
    return durable::ShutdownController::kExitInterrupted;
  }
  if (json != nullptr) {
    json->write("\n]\n");
    const durable::Status status = json->commit();
    if (!status.ok()) {
      std::fprintf(stderr, "error: JSON not written: %s\n",
                   status.message().c_str());
    }
  }

  std::printf(
      "\n# expectation: short-RTT branches out-throughput long ones "
      "(ratio > 1); the AQMs\n"
      "# differ in how far Jain's index falls and where the queue delay "
      "settles.\n");
  std::printf("# points ok: %zu/%zu\n", report.ok_count(),
              report.status.size());
  return report.all_ok() && healthy ? 0 : 1;
}
