// Probe-bus overhead microbenchmark: the telemetry subsystem's budget is
// <5% of end-to-end experiment wall clock (EXPERIMENTS.md,
// "Observability"). Measured three ways:
//
//  - a full dumbbell scenario (PI2 AQM, 2 cubic flows) with no recorder vs
//    a full Recorder attached — the pair the <5% budget is defined over,
//  - a bare send -> transmit -> deliver cycle through a FIFO BottleneckLink
//    with probes detached vs attached — the synthetic worst case (the
//    baseline cycle does almost nothing, so this ratio is an upper bound
//    on per-packet probe cost, not the budget metric), and
//  - the raw ProbeBus fan-out cost per departure event at 0/1/4 subscribers.
//
// run_benchmarks.sh runs this binary and records the dumbbell
// telemetry/baseline ratio alongside the sweep records in BENCH_sweep.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>

#include "net/bottleneck_link.hpp"
#include "net/probe_bus.hpp"
#include "scenario/aqm_factory.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/recorder.hpp"

namespace {

using namespace pi2;

constexpr double kRateBps = 1e9;
// At 1 Gb/s a default-MSS packet serializes in ~12 us; stepping the clock
// 20 us per iteration drains each packet before the next send.
constexpr sim::Duration kStep = sim::from_seconds(20e-6);

/// One send -> transmit -> sink cycle per iteration. `attach_telemetry`
/// toggles the full per-packet telemetry load (sojourn histogram + tx-bytes
/// counter on the departure probe; the bound gauges cost nothing here, they
/// are only read at sampling instants).
void run_link_cycle(benchmark::State& state, bool attach_telemetry) {
  sim::Simulator sim{1};
  net::BottleneckLink::Config config;
  config.rate_bps = kRateBps;
  config.buffer_packets = 64;
  scenario::AqmConfig aqm;
  aqm.type = scenario::AqmType::kFifo;
  net::BottleneckLink link{sim, config, aqm.make()};
  std::int64_t delivered = 0;
  link.set_sink([&delivered](net::Packet) { ++delivered; });

  telemetry::MetricsRegistry registry;
  if (attach_telemetry) telemetry::attach_link_probes(registry, link);

  net::Packet packet;
  packet.flow = 0;
  packet.size = net::kDefaultMss;
  for (auto _ : state) {
    ++packet.seq;
    link.send(packet);
    sim.run_until(sim.now() + kStep);
  }
  benchmark::DoNotOptimize(delivered);
  state.counters["forwarded"] =
      static_cast<double>(link.counters().forwarded);
}

void BM_LinkCycle_ProbesDetached(benchmark::State& state) {
  run_link_cycle(state, false);
}
BENCHMARK(BM_LinkCycle_ProbesDetached);

void BM_LinkCycle_TelemetryAttached(benchmark::State& state) {
  run_link_cycle(state, true);
}
BENCHMARK(BM_LinkCycle_TelemetryAttached);

/// End-to-end budget pairs: a short dumbbell run (PI2 AQM, 4 cubic flows,
/// 5 s simulated — sized like a real smoke-grid point) in three modes:
///
///  - kDetached: no telemetry at all (baseline),
///  - kProbesAttached: pipeline probes wired into a bare MetricsRegistry —
///    the attached-vs-detached pair the <5% hot-path budget is defined
///    over (per-packet instrumentation, no artifact pipeline),
///  - kFullRecorder: a complete Recorder with the default 100 ms sampling
///    cadence and all on-disk artifacts, reported separately (this pays
///    for the JSONL stream; its relative cost shrinks on full-length runs
///    as the fixed artifact cost amortizes).
enum class DumbbellMode { kDetached, kProbesAttached, kFullRecorder };

void run_dumbbell_cycle(benchmark::State& state, DumbbellMode mode) {
  double sink = 0;
  for (auto _ : state) {
    scenario::DumbbellConfig cfg;
    cfg.link_rate_bps = 40e6;
    cfg.duration = sim::from_seconds(5.0);
    cfg.stats_start = sim::from_seconds(0.5);
    cfg.seed = 42;
    scenario::TcpFlowSpec flows;
    flows.cc = tcp::CcType::kCubic;
    flows.count = 4;
    flows.base_rtt = sim::from_millis(10);
    cfg.tcp_flows.push_back(flows);
    telemetry::MetricsRegistry registry;
    std::unique_ptr<telemetry::Recorder> recorder;
    if (mode == DumbbellMode::kProbesAttached) {
      cfg.registry = &registry;
    } else if (mode == DumbbellMode::kFullRecorder) {
      telemetry::RecorderConfig rc;
      rc.dir = (std::filesystem::temp_directory_path() /
                "pi2_micro_probe_overhead")
                   .string();  // overwritten every iteration
      rc.run_id = "bench";
      recorder = std::make_unique<telemetry::Recorder>(rc);
      cfg.recorder = recorder.get();
    }
    const scenario::RunResult result = scenario::run_dumbbell(cfg);
    sink += result.mean_qdelay_ms;
  }
  benchmark::DoNotOptimize(sink);
}

void BM_DumbbellRun_Baseline(benchmark::State& state) {
  run_dumbbell_cycle(state, DumbbellMode::kDetached);
}
BENCHMARK(BM_DumbbellRun_Baseline)->Unit(benchmark::kMillisecond);

void BM_DumbbellRun_ProbesAttached(benchmark::State& state) {
  run_dumbbell_cycle(state, DumbbellMode::kProbesAttached);
}
BENCHMARK(BM_DumbbellRun_ProbesAttached)->Unit(benchmark::kMillisecond);

void BM_DumbbellRun_FullRecorder(benchmark::State& state) {
  run_dumbbell_cycle(state, DumbbellMode::kFullRecorder);
}
BENCHMARK(BM_DumbbellRun_FullRecorder)->Unit(benchmark::kMillisecond);

/// Raw bus fan-out: cost of emit_departure with N trivial subscribers.
void run_bus_emit(benchmark::State& state, int subscribers) {
  net::ProbeBus bus;
  std::uint64_t sink = 0;
  for (int i = 0; i < subscribers; ++i) {
    bus.add_departure([&sink](const net::Packet& p, sim::Duration) {
      sink += static_cast<std::uint64_t>(p.size);
    });
  }
  net::Packet packet;
  packet.size = net::kDefaultMss;
  for (auto _ : state) {
    bus.emit_departure(packet, sim::Duration{0});
  }
  benchmark::DoNotOptimize(sink);
}

void BM_BusEmit_0Subscribers(benchmark::State& state) { run_bus_emit(state, 0); }
BENCHMARK(BM_BusEmit_0Subscribers);

void BM_BusEmit_1Subscriber(benchmark::State& state) { run_bus_emit(state, 1); }
BENCHMARK(BM_BusEmit_1Subscriber);

void BM_BusEmit_4Subscribers(benchmark::State& state) { run_bus_emit(state, 4); }
BENCHMARK(BM_BusEmit_4Subscribers);

/// The telemetry departure probe's own body (histogram record + counter
/// bump), isolated from the link machinery.
void BM_TelemetryDepartureProbeBody(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Histogram& sojourn = registry.histogram(
      "link.sojourn_ms", telemetry::Histogram::Config{1e-3, 1e5, 8});
  telemetry::Counter& tx_bytes = registry.counter("link.tx_bytes");
  double value = 0.013;
  for (auto _ : state) {
    sojourn.record(value);
    tx_bytes.inc(net::kDefaultMss);
    value = value < 10.0 ? value * 1.01 : 0.013;
  }
  benchmark::DoNotOptimize(sojourn.count());
}
BENCHMARK(BM_TelemetryDepartureProbeBody);

}  // namespace

BENCHMARK_MAIN();
