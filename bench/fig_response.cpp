// Responsiveness to a capacity step (the paper's section 4.4 regime): the
// bottleneck drops from 40 to 10 Mb/s mid-run — a 4x capacity loss — then
// recovers, and we measure how long each AQM needs to bring the queue delay
// back to its 20 ms target band.
//
// The step is expressed as a FaultSchedule (two kRateStep events) replayed
// by the FaultInjector, and both runs execute through the guarded runner
// with the InvariantMonitor sampling alongside the stats probes — this
// binary doubles as the end-to-end exercise of the fault-injection
// subsystem (ctest: fault_injection_smoke).
//
// Like the sweep binaries, runs are durable: each completed AQM run is
// journaled (fsync'd) before its row prints, SIGINT/SIGTERM stop at a run
// boundary (exit 75), --resume replays journaled runs byte-identically, and
// --json is written atomically.
//
// Headline: PI2's linearized law keeps its gain correct at high p, so it
// re-converges after the drop at least as fast as PIE.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sweep.hpp"

namespace {

using namespace pi2;
using namespace pi2::bench;

double duration_s(const Options& opts) {
  if (opts.duration_s_override > 0) return opts.duration_s_override;
  return opts.full ? 60.0 : 30.0;
}

/// First time after `step_at` from which the sampled queue delay stays
/// inside the settle band for `hold` seconds; returns the settle latency in
/// seconds, or -1 when the run never settles.
double settle_after_s(const stats::TimeSeries& qdelay_ms, double step_at_s,
                      double window_end_s, double band_ms, double hold_s) {
  const auto& pts = qdelay_ms.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double t = sim::to_seconds(pts[i].t);
    if (t < step_at_s || t + hold_s > window_end_s) continue;
    bool held = true;
    for (std::size_t j = i; j < pts.size(); ++j) {
      const double tj = sim::to_seconds(pts[j].t);
      if (tj > t + hold_s) break;
      if (pts[j].value > band_ms) {
        held = false;
        break;
      }
    }
    if (held) return t - step_at_s;
  }
  return -1.0;
}

/// Campaign digest for the response experiment: everything the two runs'
/// results depend on.
std::uint64_t response_campaign_key(const Options& opts, double total_s) {
  durable::Fnv1a h;
  h.mix_string("pi2-response-campaign-v1");
  h.mix_u64(opts.seed);
  h.mix_double(total_s);
  return h.state;
}

std::uint64_t response_point_key(std::size_t index, scenario::AqmType aqm,
                                 std::uint64_t derived_seed) {
  durable::Fnv1a h;
  h.mix_string("pi2-response-point-v1");
  h.mix_u64(index);
  h.mix_u64(static_cast<std::uint64_t>(aqm));
  h.mix_u64(derived_seed);
  return h.state;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  print_header("Responsiveness", "40 -> 10 -> 40 Mb/s capacity step, PI2 vs PIE",
               opts);
  durable::ShutdownController::install();

  const double total_s = duration_s(opts);
  const double down_s = total_s / 3.0;
  const double up_s = 2.0 * total_s / 3.0;
  const double hold_s = total_s >= 30.0 ? 2.0 : 0.5;
  const double target_ms = 20.0;
  const double band_ms = 2.0 * target_ms;  // "re-converged": within 2x target
  const std::vector<scenario::AqmType> aqms{scenario::AqmType::kCoupledPi2,
                                            scenario::AqmType::kPie};

  std::printf("# step down at %.1f s, step up at %.1f s; settle = qdelay "
              "held <= %.0f ms for %.1f s\n",
              down_s, up_s, band_ms, hold_s);
  std::printf("%-14s %-16s %-16s %-12s %-12s %-8s\n", "aqm",
              "settle_drop[s]", "settle_rise[s]", "peak[ms]", "invariants",
              "guards");

  const runner::ParallelRunner pool{opts.jobs};
  bool healthy = true;
  std::vector<double> settle_drop(aqms.size(), -1.0);
  const bool telemetry_on = !opts.telemetry_dir.empty();

  const std::uint64_t campaign = response_campaign_key(opts, total_s);
  const std::string journal_file = bench::detail::journal_path(opts);
  std::vector<std::uint64_t> keys(aqms.size());
  for (std::size_t i = 0; i < aqms.size(); ++i) {
    keys[i] = response_point_key(i, aqms[i], sim::Rng::derive_seed(opts.seed, i));
  }

  // --resume: replay journaled runs through the unchanged print path.
  std::vector<std::unique_ptr<scenario::RunResult>> replay(aqms.size());
  bool journal_keep = false;
  if (opts.resume) {
    const durable::LoadedJournal loaded =
        durable::load_journal(journal_file, campaign);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different campaign; "
                   "ignoring it\n",
                   journal_file.c_str());
    }
    if (loaded.header_ok) {
      journal_keep = true;
      std::size_t replayed = 0;
      for (std::size_t i = 0; i < aqms.size(); ++i) {
        const auto it = loaded.points.find(keys[i]);
        if (it == loaded.points.end()) continue;
        auto result = std::make_unique<scenario::RunResult>();
        if (durable::decode_result(it->second, *result).ok()) {
          replay[i] = std::move(result);
          ++replayed;
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %zu run(s) from %s\n",
                   replayed, aqms.size(), journal_file.c_str());
    }
  }
  durable::JournalWriter journal{journal_file, campaign, journal_keep};

  // --json: one flat record per AQM with the settle metrics, in the same
  // array-of-flat-objects format the sweep binaries use (and the golden
  // comparator parses). Written atomically; aborted on interrupt.
  std::unique_ptr<durable::AtomicFile> json;
  bool json_first = true;
  if (!opts.json_path.empty()) {
    json = std::make_unique<durable::AtomicFile>(opts.json_path);
    if (!json->healthy()) {
      std::fprintf(stderr, "warning: %s; no JSON written\n",
                   json->status().message().c_str());
      json.reset();
    } else {
      json->write("[");
    }
  }

  // shared_ptr for the same reason as run_sweep: the runner's commit
  // closure must stay copy-constructible.
  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  std::size_t interrupted_points = 0;
  runner::GuardOptions guard;
  guard.cancel = durable::ShutdownController::flag();

  const auto report = pool.run_ordered_guarded<PointOutcome>(
      aqms.size(),
      [&](std::size_t i) {
        if (replay[i] != nullptr) {
          PointOutcome outcome;
          outcome.result = *replay[i];
          return outcome;
        }
        scenario::DumbbellConfig cfg;
        cfg.link_rate_bps = 40e6;
        cfg.aqm.type = aqms[i];
        cfg.aqm.ecn_drop_threshold = 1.0;
        cfg.duration = sim::from_seconds(total_s);
        cfg.stats_start = sim::from_seconds(total_s / 10.0);
        cfg.seed = sim::Rng::derive_seed(opts.seed, i);
        cfg.stop = durable::ShutdownController::flag();
        scenario::TcpFlowSpec cubic;
        cubic.cc = tcp::CcType::kCubic;
        cubic.count = 4;
        cubic.base_rtt = sim::from_millis(10);
        cfg.tcp_flows.push_back(cubic);
        cfg.faults.rate_step(sim::from_seconds(down_s), 10e6)
            .rate_step(sim::from_seconds(up_s), 40e6);
        PointOutcome outcome;
        if (telemetry_on) {
          outcome.recorder = std::make_shared<telemetry::Recorder>(
              bench::detail::point_recorder_config(opts, i));
          cfg.recorder = outcome.recorder.get();
        }
        outcome.result = scenario::run_dumbbell(cfg);
        return outcome;
      },
      [&](std::size_t i, runner::TaskStatus status, PointOutcome* outcome) {
        if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_points;
          return;
        }
        if (status != runner::TaskStatus::kOk || outcome == nullptr) {
          std::printf("%-14s point %s\n", aqm_label(aqms[i]),
                      runner::to_string(status));
          if (json != nullptr) {
            json->printf("%s\n  {\"index\": %zu, \"status\": \"%s\", "
                         "\"aqm\": \"%s\"}",
                         json_first ? "" : ",", i, runner::to_string(status),
                         aqm_label(aqms[i]));
            json_first = false;
          }
          healthy = false;
          return;
        }
        scenario::RunResult* result = &outcome->result;
        if (replay[i] == nullptr && journal.healthy()) {
          (void)journal.append_point(keys[i],
                                     durable::encode_result(*result));
        }
        if (outcome->recorder != nullptr) {
          std::printf("# telemetry: %s\n",
                      outcome->recorder->manifest_path().c_str());
          outcome->recorder.reset();
        } else if (telemetry_on && replay[i] != nullptr) {
          // Replayed runs re-use the interrupted run's artifacts; the path
          // is deterministic, so the printed line matches the original.
          std::printf("# telemetry: %s/%s.manifest.json\n",
                      opts.telemetry_dir.c_str(),
                      bench::detail::point_run_id(i).c_str());
        }
        const double drop = settle_after_s(result->qdelay_ms_series, down_s,
                                           up_s, band_ms, hold_s);
        const double rise = settle_after_s(result->qdelay_ms_series, up_s,
                                           total_s, band_ms, hold_s);
        settle_drop[i] = drop;
        double peak = 0.0;
        for (const auto& p : result->qdelay_ms_series.points()) {
          if (sim::to_seconds(p.t) >= down_s && p.value > peak) peak = p.value;
        }
        std::printf("%-14s %-16.2f %-16.2f %-12.1f %-12llu %-8llu\n",
                    aqm_label(aqms[i]), drop, rise, peak,
                    static_cast<unsigned long long>(result->violations.size()),
                    static_cast<unsigned long long>(result->guard_events));
        if (json != nullptr) {
          json->printf(
              "%s\n  {\"index\": %zu, \"status\": \"ok\", \"aqm\": \"%s\", "
              "\"seed\": %llu, "
              "\"settle_drop_s\": %.6g, \"settle_rise_s\": %.6g, "
              "\"peak_qdelay_ms\": %.6g, \"mean_qdelay_ms\": %.6g, "
              "\"utilization\": %.6g, "
              "\"events_executed\": %llu, \"clamped_events\": %llu, "
              "\"invariant_violations\": %llu, \"guard_events\": %llu}",
              json_first ? "" : ",", i, aqm_label(aqms[i]),
              static_cast<unsigned long long>(sim::Rng::derive_seed(opts.seed, i)),
              drop, rise, peak, result->mean_qdelay_ms, result->utilization,
              static_cast<unsigned long long>(result->events_executed),
              static_cast<unsigned long long>(result->clamped_events),
              static_cast<unsigned long long>(result->violations.size()),
              static_cast<unsigned long long>(result->guard_events));
          json_first = false;
        }
        if (result->fault_counters.rate_changes != 2) {
          std::printf("!! %s: expected 2 rate changes, injector applied %llu\n",
                      aqm_label(aqms[i]),
                      static_cast<unsigned long long>(
                          result->fault_counters.rate_changes));
          healthy = false;
        }
        // Whether/when a run settles is the experiment's *finding* (short
        // smoke windows legitimately never settle); health is only about
        // the machinery.
        if (!result->violations.empty() || result->clamped_events != 0) {
          healthy = false;
        }
      },
      guard);

  if (durable::ShutdownController::requested()) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    if (json != nullptr) json->abort();
    std::fprintf(stderr,
                 "response: interrupted — %zu run(s) unfinished; re-run with "
                 "--resume to finish (journal: %s)\n",
                 interrupted_points, journal_file.c_str());
    return durable::ShutdownController::kExitInterrupted;
  }
  if (json != nullptr) {
    json->write("\n]\n");
    const durable::Status status = json->commit();
    if (!status.ok()) {
      std::fprintf(stderr, "error: JSON not written: %s\n",
                   status.message().c_str());
    }
  }

  if (report.all_ok() && healthy && settle_drop[0] >= 0 &&
      settle_drop[1] >= 0) {
    std::printf("\n# PI2 settles %.2f s after the 4x drop vs PIE %.2f s (%s)\n",
                settle_drop[0], settle_drop[1],
                settle_drop[0] <= settle_drop[1] ? "PI2 at least as fast"
                                                 : "PIE faster here");
  }
  std::printf("# points ok: %zu/%zu\n", report.ok_count(),
              report.status.size());
  return report.all_ok() && healthy ? 0 : 1;
}
