// Figure 16: mean and 99th-percentile per-packet queuing delay for the same
// sweep as Figure 15. Expectation: PI2 no worse than PIE at holding the
// 20 ms target; PI2 visibly better at the smallest link rate (4 Mb/s P99).
#include <cstdio>

#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::bench;
  const auto opts = parse_options(argc, argv);
  print_header("Figure 16", "queuing delay, one flow per congestion control", opts);
  std::printf("%-12s %-10s %-12s %-12s\n", "link[Mbps]", "rtt[ms]", "mean[ms]",
              "p99[ms]");
  const auto report = run_sweep(opts, [&](const SweepPoint& p) {
    std::printf("%-12g %-10g %-12.2f %-12.2f\n", p.link_mbps, p.rtt_ms,
                p.result.mean_qdelay_ms, p.result.p99_qdelay_ms);
  });
  std::printf(
      "\n# expectation: both AQMs hold ~20 ms mean; PI2's P99 lower than\n"
      "# PIE's at 4 Mb/s.\n");
  return sweep_exit_code(report);
}
