// Overload campaign (RFC 9332 §4.2 / aqmt-style): an unresponsive UDP flood
// sweeps 0.5x..2x of a 10 Mb/s bottleneck, stamped Not-ECT / ECT(0) /
// ECT(1), against a 1 Cubic + 1 DCTCP mix behind the first-class DualPI2
// qdisc. Measures who keeps what share of the link, how the AQM splits its
// signals between ECN marks and drops as the coupled probability saturates
// (the l_drop switchover), and what happens to queue delay under overload.
//
// Like the sweep binaries, runs are durable: each completed point is
// journaled (fsync'd) before its row prints, SIGINT/SIGTERM stop at a run
// boundary (exit 75), --resume replays journaled runs byte-identically, and
// --json is written atomically. The --smoke --seed 1 --json output is a
// committed golden figure (tests/golden/fig_overload.json); the smoke grid
// is ordered so the 2x Not-ECT flood — the acceptance case — survives the
// axis cap.
//
// Headline: overload protection keeps the Classic queue governed (delay
// bounded by the PI target band, not the buffer) while the flood's losses
// move from ECN marks to squared-probability drops; guard counters stay 0.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign_templates.hpp"
#include "sweep.hpp"

namespace {

using namespace pi2;
using namespace pi2::bench;

struct OverloadPoint {
  double udp_mult;      ///< UDP rate as a multiple of the link rate
  net::Ecn ecn;         ///< codepoint the flood stamps
  const char* ecn_name;
};

double duration_s(const Options& opts) {
  if (opts.duration_s_override > 0) return opts.duration_s_override;
  return opts.full ? 60.0 : 20.0;
}

std::uint64_t overload_campaign_key(const Options& opts, double total_s,
                                    std::size_t points) {
  durable::Fnv1a h;
  h.mix_string("pi2-overload-campaign-v1");
  h.mix_u64(opts.seed);
  h.mix_double(total_s);
  h.mix_u64(points);
  return h.state;
}

std::uint64_t overload_point_key(std::size_t index, const OverloadPoint& p,
                                 std::uint64_t derived_seed) {
  durable::Fnv1a h;
  h.mix_string("pi2-overload-point-v1");
  h.mix_u64(index);
  h.mix_double(p.udp_mult);
  h.mix_u64(static_cast<std::uint64_t>(p.ecn));
  h.mix_u64(derived_seed);
  return h.state;
}

template <typename T>
void cap_axis(std::vector<T>& axis, int cap) {
  if (cap > 0 && axis.size() > static_cast<std::size_t>(cap)) {
    axis.resize(static_cast<std::size_t>(cap));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  print_header("Overload",
               "DualPI2 vs unresponsive UDP floods (0.5x-2x link, per-ECN)",
               opts);
  durable::ShutdownController::install();

  const double total_s = duration_s(opts);
  const double stats_start_s = opts.stats_start_s_override > 0
                                   ? opts.stats_start_s_override
                                   : total_s / 4.0;
  const double link_mbps = 10.0;
  const double rtt_ms = 10.0;

  // Axes ordered so --smoke's cap of 2 keeps the acceptance cases: the 2x
  // flood and both the drop-only (Not-ECT) and L-queue (ECT(1)) codepoints.
  std::vector<double> mults{2.0, 1.0, 0.5, 1.5};
  std::vector<std::pair<net::Ecn, const char*>> codepoints{
      {net::Ecn::kNotEct, "not-ect"},
      {net::Ecn::kEct1, "ect1"},
      {net::Ecn::kEct0, "ect0"},
  };
  cap_axis(mults, opts.grid_cap);
  cap_axis(codepoints, opts.grid_cap);

  std::vector<OverloadPoint> grid;
  for (const auto& [ecn, name] : codepoints) {
    for (const double mult : mults) {
      grid.push_back({mult, ecn, name});
    }
  }

  std::printf("# link %.0f Mb/s, RTT %.0f ms, %.0f s/run; flood = 1 UDP "
              "sender, mix = 1 Cubic + 1 DCTCP\n",
              link_mbps, rtt_ms, total_s);
  std::printf("%-9s %-9s %-7s %-7s %-7s %-9s %-9s %-11s %-11s %-9s %-7s\n",
              "ecn", "udp_mult", "cubic", "dctcp", "udp", "qdelay", "p99",
              "L mark/drop", "C mark/drop", "tail L/C", "guards");

  const runner::ParallelRunner pool{opts.jobs};
  bool healthy = true;
  const bool telemetry_on = !opts.telemetry_dir.empty();

  const std::uint64_t campaign =
      overload_campaign_key(opts, total_s, grid.size());
  const std::string journal_file = bench::detail::journal_path(opts);
  std::vector<std::uint64_t> keys(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    keys[i] = overload_point_key(i, grid[i], sim::Rng::derive_seed(opts.seed, i));
  }

  // --resume: replay journaled runs through the unchanged print path.
  std::vector<std::unique_ptr<scenario::RunResult>> replay(grid.size());
  bool journal_keep = false;
  if (opts.resume) {
    const durable::LoadedJournal loaded =
        durable::load_journal(journal_file, campaign);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different campaign; "
                   "ignoring it\n",
                   journal_file.c_str());
    }
    if (loaded.header_ok) {
      journal_keep = true;
      std::size_t replayed = 0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto it = loaded.points.find(keys[i]);
        if (it == loaded.points.end()) continue;
        auto result = std::make_unique<scenario::RunResult>();
        if (durable::decode_result(it->second, *result).ok()) {
          replay[i] = std::move(result);
          ++replayed;
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %zu run(s) from %s\n",
                   replayed, grid.size(), journal_file.c_str());
    }
  }
  durable::JournalWriter journal{journal_file, campaign, journal_keep};

  std::unique_ptr<durable::AtomicFile> json;
  bool json_first = true;
  if (!opts.json_path.empty()) {
    json = std::make_unique<durable::AtomicFile>(opts.json_path);
    if (!json->healthy()) {
      std::fprintf(stderr, "warning: %s; no JSON written\n",
                   json->status().message().c_str());
      json.reset();
    } else {
      json->write("[");
    }
  }

  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  std::size_t interrupted_points = 0;
  runner::GuardOptions guard;
  guard.cancel = durable::ShutdownController::flag();

  const auto report = pool.run_ordered_guarded<PointOutcome>(
      grid.size(),
      [&](std::size_t i) {
        if (replay[i] != nullptr) {
          PointOutcome outcome;
          outcome.result = *replay[i];
          return outcome;
        }
        const OverloadPoint& p = grid[i];
        auto cfg =
            overload_config(p.ecn, p.udp_mult, link_mbps, rtt_ms, total_s,
                            stats_start_s, sim::Rng::derive_seed(opts.seed, i));
        cfg.stop = durable::ShutdownController::flag();
        PointOutcome outcome;
        if (telemetry_on) {
          outcome.recorder = std::make_shared<telemetry::Recorder>(
              bench::detail::point_recorder_config(opts, i));
          cfg.recorder = outcome.recorder.get();
        }
        outcome.result = scenario::run_dumbbell(cfg);
        return outcome;
      },
      [&](std::size_t i, runner::TaskStatus status, PointOutcome* outcome) {
        const OverloadPoint& p = grid[i];
        if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_points;
          return;
        }
        if (status != runner::TaskStatus::kOk || outcome == nullptr) {
          std::printf("%-9s %-9.2f point %s\n", p.ecn_name, p.udp_mult,
                      runner::to_string(status));
          if (json != nullptr) {
            overload_json_failed(*json, json_first, i, status, p.ecn_name,
                                 p.udp_mult);
          }
          healthy = false;
          return;
        }
        scenario::RunResult* result = &outcome->result;
        if (replay[i] == nullptr && journal.healthy()) {
          (void)journal.append_point(keys[i], durable::encode_result(*result));
        }
        if (outcome->recorder != nullptr) {
          std::printf("# telemetry: %s\n",
                      outcome->recorder->manifest_path().c_str());
          outcome->recorder.reset();
        }
        overload_print_row(p.ecn_name, p.udp_mult, *result);
        if (json != nullptr) {
          overload_json_record(*json, json_first, i, p.ecn_name,
                               sim::Rng::derive_seed(opts.seed, i), link_mbps,
                               rtt_ms, p.udp_mult, *result);
        }
        // Health is the machinery, not the finding: a clean overload run has
        // no invariant violations, no clamped events and no guard trips.
        if (!machinery_healthy(*result)) healthy = false;
      },
      guard);

  if (durable::ShutdownController::requested()) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    if (json != nullptr) json->abort();
    std::fprintf(stderr,
                 "overload: interrupted — %zu run(s) unfinished; re-run with "
                 "--resume to finish (journal: %s)\n",
                 interrupted_points, journal_file.c_str());
    return durable::ShutdownController::kExitInterrupted;
  }
  if (json != nullptr) {
    json->write("\n]\n");
    const durable::Status status = json->commit();
    if (!status.ok()) {
      std::fprintf(stderr, "error: JSON not written: %s\n",
                   status.message().c_str());
    }
  }

  std::printf(
      "\n# expectation: floods above 1x lose their excess to drops (Not-ECT) "
      "or to the\n"
      "# l_drop switchover (ECT(1): marks give way to squared-probability "
      "drops), while\n"
      "# the Classic queue's delay stays governed by the PI target, not the "
      "buffer.\n");
  std::printf("# points ok: %zu/%zu\n", report.ok_count(),
              report.status.size());
  return report.all_ok() && healthy ? 0 : 1;
}
