// Flow-scale benchmark: events/s and state bytes-per-flow for the hybrid
// fluid/packet engine at N ∈ {10², 10³, 10⁴, 10⁵} background flows, against
// the pure-packet rendering of the same scenario at N ∈ {10², 10³}.
//
// Each mixed point runs two foreground packet flows (cubic + dctcp, full
// per-packet fidelity, batched ACK clock) over a PI2 bottleneck plus one
// fluid spec of N modelled Reno flows; the pure-packet points render the N
// background flows as real TCP senders instead. The link is provisioned
// ~150 kb/s per background flow (floor 100 Mb/s) so the fluid windows sit
// near their fixed point rather than pinned at the floor.
//
// The headline metric is scheduler events per *simulated* second — a
// deterministic fingerprint, so the ≥10× acceptance gate below is CI-safe
// (wall-clock is reported but never gated). Pure-packet event cost scales
// ~linearly in N (every flow is ACK-clocked and carries its own timers), so
// the 10⁵-flow pure-packet cost is extrapolated from the 10³ measurement as
// ev_s(10³) × 100; the gate requires that extrapolation to be ≥10× the
// measured mixed-engine cost at the largest N actually run.
//
//   micro_flow_scale [--smoke] [--seed N] [--json PATH]
//
// --smoke caps the grid at N ≤ 10³ and shortens the runs (CI); the gate
// still extrapolates both sides to 10⁵, which is fair because the fluid
// tier's cost is N-independent by construction (one ODE state and one tick
// event per spec). run_benchmarks.sh merges the --json records into
// BENCH_sweep.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "control/fluid_flow.hpp"
#include "scenario/dumbbell.hpp"
#include "tcp/endpoint.hpp"

namespace {

using pi2::scenario::DumbbellConfig;
using pi2::scenario::RunResult;

constexpr double kGateMinRatio = 10.0;
constexpr double kExtrapolatedN = 1e5;
constexpr double kPacketBaselineN = 1e3;
/// Link provisioning per background flow; keeps per-flow fair share just
/// above the minimum-window floor (1500·8/0.1 s = 120 kb/s at W=1).
constexpr double kPerFlowBps = 150e3;

struct Point {
  int n_background = 0;
  std::uint64_t events = 0;
  double sim_s = 0;
  double wall_s = 0;
  double events_per_sim_s = 0;
  double state_bytes_per_flow = 0;
  double utilization = 0;
};

DumbbellConfig base_config(int n_background, const pi2::bench::Options& opts) {
  DumbbellConfig cfg;
  cfg.link_rate_bps = std::max(100e6, n_background * kPerFlowBps);
  cfg.duration = pi2::sim::from_seconds(opts.duration_s_override > 0
                                            ? opts.duration_s_override
                                            : 10.0);
  cfg.stats_start = pi2::sim::from_seconds(
      opts.stats_start_s_override > 0 ? opts.stats_start_s_override : 2.0);
  cfg.seed = opts.seed;
  cfg.aqm.type = pi2::scenario::AqmType::kPi2;
  cfg.aqm.ecn_drop_threshold = 1.0;
  // Foreground: the fidelity tier. Two full packet flows, batched ACK clock.
  pi2::scenario::TcpFlowSpec cubic;
  cubic.cc = pi2::tcp::CcType::kCubic;
  cubic.base_rtt = pi2::sim::from_millis(100);
  cfg.tcp_flows.push_back(cubic);
  pi2::scenario::TcpFlowSpec dctcp;
  dctcp.cc = pi2::tcp::CcType::kDctcp;
  dctcp.base_rtt = pi2::sim::from_millis(100);
  cfg.tcp_flows.push_back(dctcp);
  cfg.ack_quantum = pi2::sim::from_millis(1);
  return cfg;
}

/// Fluid-tier state bytes per modelled flow: the per-spec ODE + history
/// rings amortized over the spec's count. Computed from a throwaway ensemble
/// configured exactly like run_dumbbell's.
double fluid_bytes_per_flow(int n_background, const DumbbellConfig& cfg) {
  pi2::sim::Simulator sim;
  pi2::control::FluidFlowEnsemble::Config fc;
  fc.dt_s = pi2::sim::to_seconds(cfg.fluid_dt);
  pi2::control::FluidFlowEnsemble ensemble{sim, fc};
  pi2::control::FluidFlowSpec spec;
  spec.count = n_background;
  ensemble.add_spec(spec);
  return static_cast<double>(ensemble.state_bytes_per_spec()) / n_background;
}

/// Packet-tier state bytes per flow: endpoint objects plus the FlowTable's
/// hot/cold entries. sizeof-based lower bound (excludes in-flight packets
/// and heap-owned per-flow containers), which is the flattering direction
/// for the baseline.
double packet_bytes_per_flow() {
  return static_cast<double>(sizeof(pi2::tcp::TcpSender) +
                             sizeof(pi2::tcp::TcpReceiver) +
                             sizeof(pi2::sim::Duration) + 1 /* Kind */ +
                             2 * sizeof(void*) /* cold-entry bookkeeping */);
}

Point run_point(const DumbbellConfig& cfg, int n_background,
                double bytes_per_flow) {
  const auto wall_start = std::chrono::steady_clock::now();
  const RunResult result = pi2::scenario::run_dumbbell(cfg);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  Point p;
  p.n_background = n_background;
  p.events = result.events_executed;
  p.sim_s = pi2::sim::to_seconds(cfg.duration);
  p.wall_s = wall.count();
  p.events_per_sim_s = static_cast<double>(result.events_executed) / p.sim_s;
  p.state_bytes_per_flow = bytes_per_flow;
  p.utilization = result.utilization;
  return p;
}

void print_table(const char* title, const std::vector<Point>& points) {
  std::printf("\n%s\n", title);
  std::printf("%10s %14s %16s %14s %10s %8s\n", "N", "events", "events/sim-s",
              "state B/flow", "wall s", "util");
  for (const auto& p : points) {
    std::printf("%10d %14llu %16.0f %14.1f %10.2f %8.3f\n", p.n_background,
                static_cast<unsigned long long>(p.events), p.events_per_sim_s,
                p.state_bytes_per_flow, p.wall_s, p.utilization);
  }
}

void write_points(std::FILE* f, const char* key,
                  const std::vector<Point>& points) {
  std::fprintf(f, "  \"%s\": [\n", key);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"n_background\": %d, \"events_executed\": %llu, "
                 "\"sim_s\": %g, \"events_per_sim_s\": %.1f, "
                 "\"state_bytes_per_flow\": %.2f, \"wall_s\": %.3f, "
                 "\"utilization\": %.4f}%s\n",
                 p.n_background, static_cast<unsigned long long>(p.events),
                 p.sim_s, p.events_per_sim_s, p.state_bytes_per_flow, p.wall_s,
                 p.utilization, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
}

}  // namespace

int main(int argc, char** argv) {
  pi2::bench::Options opts = pi2::bench::parse_options(argc, argv);
  const bool smoke = opts.grid_cap > 0;  // set by --smoke

  std::vector<int> mixed_grid = {100, 1000, 10000, 100000};
  std::vector<int> packet_grid = {100, static_cast<int>(kPacketBaselineN)};
  if (smoke) mixed_grid = {100, 1000};

  std::printf("# micro_flow_scale — hybrid fluid/packet engine scale\n");
  std::printf("# mode: %s, seed %llu\n", smoke ? "smoke" : "full",
              static_cast<unsigned long long>(opts.seed));

  std::vector<Point> mixed;
  for (int n : mixed_grid) {
    DumbbellConfig cfg = base_config(n, opts);
    pi2::scenario::FluidFlowSpec bg;
    bg.cc = pi2::tcp::CcType::kReno;
    bg.count = n;
    bg.base_rtt = pi2::sim::from_millis(100);
    cfg.fluid_flows.push_back(bg);
    mixed.push_back(run_point(cfg, n, fluid_bytes_per_flow(n, cfg)));
    std::printf("mixed    N=%-7d done (%.2f wall s)\n", n,
                mixed.back().wall_s);
  }

  std::vector<Point> packet;
  for (int n : packet_grid) {
    DumbbellConfig cfg = base_config(n, opts);
    pi2::scenario::TcpFlowSpec bg;
    bg.cc = pi2::tcp::CcType::kReno;
    bg.count = n;
    bg.base_rtt = pi2::sim::from_millis(100);
    cfg.tcp_flows.push_back(bg);
    packet.push_back(run_point(cfg, n, packet_bytes_per_flow()));
    std::printf("packet   N=%-7d done (%.2f wall s)\n", n,
                packet.back().wall_s);
  }

  print_table("mixed engine (2 packet foreground + N fluid background)",
              mixed);
  print_table("pure packet (2 foreground + N packet background)", packet);

  // Acceptance gate: extrapolated pure-packet cost at 10⁵ flows vs the
  // measured mixed cost at the largest N run. Pure-packet events scale
  // ~linearly in N (per-flow ACK clock + timers); the fluid tier is O(1)
  // in N, so extrapolating the *mixed* side from a smaller N is a no-op.
  const Point& packet_base = packet.back();  // always N = kPacketBaselineN
  const Point& mixed_top = mixed.back();
  const double extrapolated_packet_ev_s =
      packet_base.events_per_sim_s *
      (kExtrapolatedN / packet_base.n_background);
  const double ratio = extrapolated_packet_ev_s / mixed_top.events_per_sim_s;
  const bool pass = ratio >= kGateMinRatio;

  std::printf(
      "\nextrapolated pure-packet events/sim-s at N=%g: %.0f "
      "(from N=%d × %.0f)\n",
      kExtrapolatedN, extrapolated_packet_ev_s, packet_base.n_background,
      kExtrapolatedN / packet_base.n_background);
  std::printf("mixed events/sim-s at N=%d: %.0f\n", mixed_top.n_background,
              mixed_top.events_per_sim_s);
  std::printf("ratio: %.1f× (gate: >= %.0f×) — %s\n", ratio, kGateMinRatio,
              pass ? "PASS" : "FAIL");

  if (!opts.json_path.empty()) {
    std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", opts.json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"suite\": \"micro_flow_scale\",\n"
                    "  \"mode\": \"%s\",\n",
                 smoke ? "smoke" : "full");
    write_points(f, "mixed", mixed);
    write_points(f, "pure_packet", packet);
    std::fprintf(f,
                 "  \"extrapolated_n\": %g,\n"
                 "  \"extrapolated_packet_events_per_sim_s\": %.1f,\n"
                 "  \"events_ratio\": %.2f,\n"
                 "  \"gate_min_ratio\": %g,\n"
                 "  \"gate\": \"%s\"\n}\n",
                 kExtrapolatedN, extrapolated_packet_ev_s, ratio,
                 kGateMinRatio, pass ? "pass" : "fail");
    std::fclose(f);
    std::printf("wrote %s\n", opts.json_path.c_str());
  }
  return pass ? 0 : 1;
}
