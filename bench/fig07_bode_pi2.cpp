// Figure 7: Bode margins for R = 100 ms, T = 32 ms of
//   reno pie : Reno over auto-tuned PIE (alpha 0.125*tune, beta 1.25*tune)
//   reno pi2 : Reno over PI2 (alpha 0.3125, beta 3.125, squared output)
//   scal pi  : a Scalable control over plain PI (alpha 0.625, beta 6.25)
// over p' in 0.1% .. 100% (PIE evaluated at p = p'^2).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "control/fluid_model.hpp"

int main(int argc, char** argv) {
  using namespace pi2::control;
  const auto opts = pi2::bench::parse_options(argc, argv);
  pi2::bench::print_header("Figure 7",
                           "Bode margins: reno-pie vs reno-pi2 vs scal-pi", opts);

  const PiGains pi2_gains{0.3125, 3.125, 0.032};
  const PiGains scal_gains{0.625, 6.25, 0.032};

  std::printf("%-10s | %-8s %-8s | %-8s %-8s | %-8s %-8s\n", "p'[%]", "pieGM",
              "piePM", "pi2GM", "pi2PM", "scalGM", "scalPM");

  bool pi2_all_positive = true;
  const int points = opts.full ? 31 : 16;
  for (int i = 0; i < points; ++i) {
    const double pp = std::pow(10.0, -3.0 + 3.0 * i / (points - 1));
    const double p = pp * pp;

    const PiGains pie_gains{0.125 * pie_tune_factor(p), 1.25 * pie_tune_factor(p),
                            0.032};
    const LoopModel pie{LoopType::kRenoP, p, 0.1, pie_gains};
    const LoopModel pi2m{LoopType::kRenoPSquared, pp, 0.1, pi2_gains};
    const LoopModel scal{LoopType::kScalableP, pp, 0.1, scal_gains};

    const auto mp = pie.margins();
    const auto m2 = pi2m.margins();
    const auto ms = scal.margins();
    if (m2 && m2->gain_margin_db <= 0.0) pi2_all_positive = false;

    auto fmt = [](const std::optional<LoopModel::Margins>& m, double& gm,
                  double& pm) {
      gm = m ? m->gain_margin_db : -999;
      pm = m ? m->phase_margin_deg : -999;
    };
    double g1;
    double f1;
    double g2;
    double f2;
    double g3;
    double f3;
    fmt(mp, g1, f1);
    fmt(m2, g2, f2);
    fmt(ms, g3, f3);
    std::printf("%-10.4g | %-8.1f %-8.1f | %-8.1f %-8.1f | %-8.1f %-8.1f\n",
                pp * 100.0, g1, f1, g2, f2, g3, f3);
  }
  std::printf(
      "# expectation: pi2 gain margin flat and positive over the full range\n"
      "# (only above ~10 dB for p' > 60%%); scal-pi similar with doubled gains.\n"
      "# pi2 positive everywhere: %s\n",
      pi2_all_positive ? "yes" : "NO");
  return 0;
}
