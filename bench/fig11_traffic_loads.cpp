// Figure 11: queuing latency and total throughput under three traffic loads
// (PIE vs PI2), link = 10 Mb/s, RTT = 100 ms:
//   a) light:  5 Reno flows
//   b) heavy: 50 Reno flows
//   c) mixed:  5 Reno flows + 2 UDP flows at 6 Mb/s each
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Figure 11", "queue delay + throughput under 3 loads", opts);

  const double duration_s = opts.full ? 100.0 : 40.0;

  struct Load {
    const char* name;
    int tcp_flows;
    int udp_flows;
  };
  const Load loads[] = {{"a) 5 TCP", 5, 0}, {"b) 50 TCP", 50, 0},
                        {"c) 5 TCP + 2 UDP", 5, 2}};

  for (const Load& load : loads) {
    std::printf("\n== %s ==\n", load.name);
    RunResult results[2];
    const AqmType types[2] = {AqmType::kPie, AqmType::kPi2};
    for (int a = 0; a < 2; ++a) {
      DumbbellConfig cfg;
      cfg.link_rate_bps = 10e6;
      cfg.duration = sim::from_seconds(duration_s);
      cfg.stats_start = sim::from_seconds(duration_s * 0.3);
      cfg.seed = opts.seed;
      cfg.aqm.type = types[a];
      cfg.aqm.ecn = false;
      TcpFlowSpec tcp_spec;
      tcp_spec.cc = tcp::CcType::kReno;
      tcp_spec.count = load.tcp_flows;
      tcp_spec.base_rtt = sim::from_millis(100);
      cfg.tcp_flows = {tcp_spec};
      if (load.udp_flows > 0) {
        UdpFlowSpec udp;
        udp.rate_bps = 6e6;
        udp.count = load.udp_flows;
        udp.base_rtt = sim::from_millis(100);
        cfg.udp_flows = {udp};
      }
      results[a] = run_dumbbell(cfg);
    }

    std::printf("%-8s %-10s %-10s %-12s %-12s\n", "t[s]", "pie[ms]", "pi2[ms]",
                "pie[Mbps]", "pi2[Mbps]");
    const auto qd_pie = results[0].qdelay_ms_series.binned_mean(
        sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(duration_s));
    const auto qd_pi2 = results[1].qdelay_ms_series.binned_mean(
        sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(duration_s));
    const auto th_pie = results[0].total_throughput_series.binned_mean(
        sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(duration_s));
    const auto th_pi2 = results[1].total_throughput_series.binned_mean(
        sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(duration_s));
    const int step = opts.full ? 4 : 2;
    for (std::size_t i = 0; i < qd_pie.size(); i += step) {
      std::printf("%-8.1f %-10.2f %-10.2f %-12.2f %-12.2f\n", qd_pie[i].first,
                  qd_pie[i].second, i < qd_pi2.size() ? qd_pi2[i].second : 0.0,
                  i < th_pie.size() ? th_pie[i].second : 0.0,
                  i < th_pi2.size() ? th_pi2[i].second : 0.0);
    }
    std::printf(
        "summary: pie mean=%.1fms p99=%.1fms util=%.3f | pi2 mean=%.1fms "
        "p99=%.1fms util=%.3f\n",
        results[0].mean_qdelay_ms, results[0].p99_qdelay_ms, results[0].utilization,
        results[1].mean_qdelay_ms, results[1].p99_qdelay_ms,
        results[1].utilization);
  }
  std::printf(
      "\n# expectation: PI2 shows less start-up overshoot and fewer damped\n"
      "# oscillations; similar steady throughput in all three mixes.\n");
  return 0;
}
