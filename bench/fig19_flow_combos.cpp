// Figure 19: per-flow throughput balance for different combinations of flow
// counts (A = Cubic, B = DCTCP or ECN-Cubic) at link = 40 Mb/s, RTT = 10 ms,
// under PIE and coupled PI2. The x-axis combos run A1-B1, A9-B2, ..., A1-B10
// in the paper; we reproduce a representative ladder.
#include <cstdio>

#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::bench;
  const auto opts = parse_options(argc, argv);
  print_header("Figure 19", "per-flow rate balance vs flow-count combinations",
               opts);

  struct Combo {
    int a;  // Cubic flows
    int b;  // DCTCP / ECN-Cubic flows
  };
  const std::vector<Combo> combos = opts.full
      ? std::vector<Combo>{{1, 1}, {9, 2}, {8, 3}, {7, 4}, {6, 6}, {4, 7},
                           {3, 8}, {2, 9}, {1, 10}, {10, 1}, {5, 5}}
      : std::vector<Combo>{{1, 1}, {9, 2}, {5, 5}, {2, 9}, {1, 10}};

  for (const auto aqm : {scenario::AqmType::kPie, scenario::AqmType::kCoupledPi2}) {
    for (const auto mix : {MixKind::kCubicVsEcnCubic, MixKind::kCubicVsDctcp}) {
      std::printf("\n== %s, %s ==\n",
                  aqm == scenario::AqmType::kPie ? "PIE" : "PI2(coupled)",
                  to_string(mix));
      std::printf("%-10s %-16s %-16s %-14s\n", "A-B", "cubic/flow[Mbps]",
                  "other/flow[Mbps]", "ratio(A/B)");
      for (const Combo& combo : combos) {
        const auto cfg = mix_config(aqm, mix, 40.0, 10.0, opts, combo.a, combo.b);
        const auto r = scenario::run_dumbbell(cfg);
        const double a_rate = r.mean_goodput_mbps(tcp::CcType::kCubic);
        const double b_rate = r.mean_goodput_mbps(other_cc(mix));
        std::printf("A%d-B%-7d %-16.3f %-16.3f %-14.3f\n", combo.a, combo.b,
                    a_rate, b_rate, b_rate > 0 ? a_rate / b_rate : 0.0);
      }
    }
  }
  std::printf(
      "\n# expectation: PI2 keeps the per-flow ratio near 1 for every combo;\n"
      "# PIE's cubic/dctcp ratio collapses regardless of flow counts.\n");
  return 0;
}
