// Figure 5: PIE's stepped 'tune' scaling factor from the lookup table in the
// IETF spec, compared against sqrt(2p) — the curve the paper shows it
// tracks, revealing that PIE implicitly compensates Reno's square-root law.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "control/fluid_model.hpp"

int main(int argc, char** argv) {
  using namespace pi2::control;
  const auto opts = pi2::bench::parse_options(argc, argv);
  pi2::bench::print_header("Figure 5", "PIE 'tune' factor vs sqrt(2p)", opts);

  std::printf("%-14s %-14s %-14s %-10s\n", "p[%]", "tune", "sqrt(2p)",
              "tune/sqrt(2p)");
  double worst_ratio_low = 1e9;
  double worst_ratio_high = 0.0;
  const int points = opts.full ? 49 : 25;
  for (int i = 0; i < points; ++i) {
    const double p = std::pow(10.0, -6.0 + 6.0 * i / (points - 1));
    const double tune = pie_tune_factor(p);
    const double ideal = sqrt_2p(p);
    const double ratio = tune / ideal;
    worst_ratio_low = std::min(worst_ratio_low, ratio);
    worst_ratio_high = std::max(worst_ratio_high, ratio);
    std::printf("%-14.6g %-14.6g %-14.6g %-10.3f\n", p * 100.0, tune, ideal, ratio);
  }
  std::printf("# ratio range across the table: [%.3f, %.3f] — 'broadly fits'\n",
              worst_ratio_low, worst_ratio_high);
  return 0;
}
