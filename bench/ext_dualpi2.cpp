// Extension: DualPI2 (the DualQ Coupled AQM of the paper's references
// [12]/[13], later RFC 9332) — the deployment the single-queue paper builds
// towards. Demonstrates the property the single queue cannot deliver:
// Scalable traffic keeps sub-millisecond queuing delay while Classic traffic
// gets its own 20 ms-target queue, with rate fairness preserved by the same
// k = 2 coupling.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/dualpi2.hpp"
#include "stats/percentile.hpp"
#include "tcp/endpoint.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Extension",
                      "DualPI2: L-queue latency isolation with rate fairness",
                      opts);

  const double duration_s = opts.full ? 100.0 : 40.0;
  const double rtt_ms = 10.0;

  for (const double link_mbps : {40.0, 120.0}) {
    sim::Simulator simulator{opts.seed};
    core::DualPi2Link::Params params;
    params.rate_bps = link_mbps * 1e6;
    core::DualPi2Link link{simulator, params};

    stats::PercentileSampler l_delay_ms;
    stats::PercentileSampler c_delay_ms;
    const auto stats_from = sim::from_seconds(duration_s * 0.3);
    link.set_departure_probe(
        [&](const net::Packet&, sim::Duration sojourn, bool from_l) {
          if (simulator.now() < stats_from) return;
          (from_l ? l_delay_ms : c_delay_ms).add(sim::to_millis(sojourn));
        });

    // One Cubic and one DCTCP flow through the dual queue.
    struct Flow {
      std::unique_ptr<tcp::TcpSender> sender;
      std::unique_ptr<tcp::TcpReceiver> receiver;
      std::int64_t delivered = 0;
      std::int64_t delivered_at_stats = 0;
    };
    Flow flows[2];
    const tcp::CcType ccs[2] = {tcp::CcType::kCubic, tcp::CcType::kDctcp};
    for (int i = 0; i < 2; ++i) {
      tcp::TcpSender::Config sc;
      sc.flow = i;
      sc.max_cwnd = 700;
      flows[i].sender = std::make_unique<tcp::TcpSender>(
          simulator, sc, tcp::make_congestion_control(ccs[i]));
      flows[i].receiver = std::make_unique<tcp::TcpReceiver>(simulator, i);
      auto* flow = &flows[i];
      flows[i].sender->set_output([&link](net::Packet p) { link.send(p); });
      flows[i].receiver->set_delivery_probe(
          [flow](const net::Packet& p) { flow->delivered += p.size; });
      flows[i].receiver->set_ack_path([&simulator, flow, rtt_ms](net::Packet a) {
        simulator.after(sim::from_millis(rtt_ms / 2),
                        [flow, a] { flow->sender->on_ack(a); });
      });
      simulator.at(sim::from_millis(i * 100.0),
                   [flow] { flow->sender->start(); });
    }
    link.set_sink([&](net::Packet p) {
      auto* flow = &flows[p.flow];
      simulator.after(sim::from_millis(rtt_ms / 2),
                      [flow, p] { flow->receiver->on_data(p); });
    });
    simulator.at(stats_from, [&] {
      for (auto& flow : flows) flow.delivered_at_stats = flow.delivered;
    });

    simulator.run_until(sim::from_seconds(duration_s));

    const double span_s = duration_s * 0.7;
    const double cubic_mbps =
        static_cast<double>(flows[0].delivered - flows[0].delivered_at_stats) *
        8.0 / span_s / 1e6;
    const double dctcp_mbps =
        static_cast<double>(flows[1].delivered - flows[1].delivered_at_stats) *
        8.0 / span_s / 1e6;

    std::printf("\n== link %.0f Mb/s, RTT %.0f ms ==\n", link_mbps, rtt_ms);
    std::printf("L queue delay [ms]: mean=%.3f p99=%.3f\n", l_delay_ms.mean(),
                l_delay_ms.p99());
    std::printf("C queue delay [ms]: mean=%.3f p99=%.3f\n", c_delay_ms.mean(),
                c_delay_ms.p99());
    std::printf("cubic=%.2f Mb/s dctcp=%.2f Mb/s ratio=%.3f\n", cubic_mbps,
                dctcp_mbps, dctcp_mbps > 0 ? cubic_mbps / dctcp_mbps : 0.0);
    std::printf("marks: L=%lld C=%lld drops: C=%lld\n",
                static_cast<long long>(link.counters().l_marked),
                static_cast<long long>(link.counters().c_marked),
                static_cast<long long>(link.counters().c_dropped));
  }
  std::printf(
      "\n# expectation: the L (DCTCP) queue holds ~1 ms delay — an order of\n"
      "# magnitude below the single queue's 20 ms — while rates stay within\n"
      "# ~2x (the single-queue paper's fairness carried over to the DualQ).\n");
  return 0;
}
