// Extension: DualPI2 (the DualQ Coupled AQM of the paper's references
// [12]/[13], later RFC 9332) — the deployment the single-queue paper builds
// towards. Demonstrates the property the single queue cannot deliver:
// Scalable traffic keeps sub-millisecond queuing delay while Classic traffic
// gets its own 20 ms-target queue, with rate fairness preserved by the same
// k = 2 coupling.
//
// Runs through the first-class scenario path (AqmType::kDualPi2 behind
// run_dumbbell) rather than wiring the queue by hand, so the invariant
// monitor's band-conservation and coupled-law checks ride along; per-queue
// delay is recovered from the packet trace (Cubic departures sit in the C
// band, DCTCP departures in L).
#include <cstdio>

#include "bench_common.hpp"
#include "net/trace.hpp"
#include "stats/percentile.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Extension",
                      "DualPI2: L-queue latency isolation with rate fairness",
                      opts);

  const double duration_s = opts.duration_s_override > 0
                                ? opts.duration_s_override
                                : (opts.full ? 100.0 : 40.0);
  const double stats_start_s = opts.stats_start_s_override > 0
                                   ? opts.stats_start_s_override
                                   : duration_s * 0.3;
  const double rtt_ms = 10.0;

  bool healthy = true;
  for (const double link_mbps : {40.0, 120.0}) {
    scenario::DumbbellConfig cfg;
    cfg.link_rate_bps = link_mbps * 1e6;
    cfg.aqm.type = scenario::AqmType::kDualPi2;
    cfg.duration = sim::from_seconds(duration_s);
    cfg.stats_start = sim::from_seconds(stats_start_s);
    cfg.seed = opts.seed;

    // One Cubic and one DCTCP flow through the dual queue. Spec order fixes
    // the flow ids: 0 = Cubic (Classic band), 1 = DCTCP (L band).
    scenario::TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.base_rtt = sim::from_millis(rtt_ms);
    cfg.tcp_flows.push_back(cubic);
    scenario::TcpFlowSpec dctcp;
    dctcp.cc = tcp::CcType::kDctcp;
    dctcp.base_rtt = sim::from_millis(rtt_ms);
    cfg.tcp_flows.push_back(dctcp);

    net::PacketTrace trace{1u << 22};
    cfg.trace = &trace;

    const scenario::RunResult result = scenario::run_dumbbell(cfg);

    stats::PercentileSampler l_delay_ms;
    stats::PercentileSampler c_delay_ms;
    const auto stats_from = sim::from_seconds(stats_start_s);
    for (const net::TraceRecord& rec : trace.records()) {
      if (rec.type != net::TraceEventType::kDeparture || rec.t < stats_from) {
        continue;
      }
      (rec.flow == 1 ? l_delay_ms : c_delay_ms).add(sim::to_millis(rec.sojourn));
    }

    const double cubic_mbps = result.mean_goodput_mbps(tcp::CcType::kCubic);
    const double dctcp_mbps = result.mean_goodput_mbps(tcp::CcType::kDctcp);

    std::printf("\n== link %.0f Mb/s, RTT %.0f ms ==\n", link_mbps, rtt_ms);
    std::printf("L queue delay [ms]: mean=%.3f p99=%.3f\n", l_delay_ms.mean(),
                l_delay_ms.p99());
    std::printf("C queue delay [ms]: mean=%.3f p99=%.3f\n", c_delay_ms.mean(),
                c_delay_ms.p99());
    std::printf("cubic=%.2f Mb/s dctcp=%.2f Mb/s ratio=%.3f\n", cubic_mbps,
                dctcp_mbps, dctcp_mbps > 0 ? cubic_mbps / dctcp_mbps : 0.0);
    std::printf("marks: L=%lld C=%lld drops: C=%lld  (window)\n",
                static_cast<long long>(result.window_band_l.marked),
                static_cast<long long>(result.window_band_c.marked),
                static_cast<long long>(result.window_band_c.aqm_dropped));
    if (trace.dropped_records() != 0) {
      std::printf("# trace overflow: %zu record(s) lost\n",
                  trace.dropped_records());
    }
    if (!result.violations.empty() || result.clamped_events != 0 ||
        result.guard_events != 0) {
      std::printf("!! %llu violation(s), %llu clamped, %llu guard trip(s)\n",
                  static_cast<unsigned long long>(result.violations.size()),
                  static_cast<unsigned long long>(result.clamped_events),
                  static_cast<unsigned long long>(result.guard_events));
      healthy = false;
    }
  }
  std::printf(
      "\n# expectation: the L (DCTCP) queue holds ~1 ms delay — an order of\n"
      "# magnitude below the single queue's 20 ms — while rates stay within\n"
      "# ~2x (the single-queue paper's fairness carried over to the DualQ).\n");
  return healthy ? 0 : 1;
}
