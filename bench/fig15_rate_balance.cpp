// Figure 15: throughput balance (rate ratio of the non-ECN-capable Cubic
// flow to the ECN-capable flow — ECN-Cubic as a control, DCTCP as the
// coexistence case) across link rates and RTTs, under PIE and coupled PI2.
//
// Headline: with PIE, DCTCP starves Cubic by roughly an order of magnitude;
// with PI2 (coupled), the ratio stays close to 1 everywhere.
#include <cmath>
#include <cstdio>

#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::bench;
  const auto opts = parse_options(argc, argv);
  print_header("Figure 15", "throughput balance, one flow per congestion control",
               opts);
  std::printf("%-12s %-10s %-14s %-14s %-12s\n", "link[Mbps]", "rtt[ms]",
              "cubic[Mbps]", "other[Mbps]", "ratio(c/o)");

  double worst_pi2_log_ratio = 0.0;
  double best_pie_dctcp_ratio = 1e9;
  const auto report = run_sweep(opts, [&](const SweepPoint& p) {
    const double cubic = p.result.mean_goodput_mbps(tcp::CcType::kCubic);
    const double other = p.result.mean_goodput_mbps(other_cc(p.mix));
    const double ratio = other > 0 ? cubic / other : 0.0;
    std::printf("%-12g %-10g %-14.2f %-14.2f %-12.3f\n", p.link_mbps, p.rtt_ms,
                cubic, other, ratio);
    if (p.aqm == scenario::AqmType::kCoupledPi2 && p.mix == MixKind::kCubicVsDctcp &&
        ratio > 0) {
      worst_pi2_log_ratio = std::max(worst_pi2_log_ratio, std::abs(std::log2(ratio)));
    }
    if (p.aqm == scenario::AqmType::kPie && p.mix == MixKind::kCubicVsDctcp &&
        ratio > 0) {
      best_pie_dctcp_ratio = std::min(best_pie_dctcp_ratio, 1.0 / ratio);
    }
  });

  std::printf("\n# PI2 cubic/dctcp worst-case imbalance: 2^%.2f = %.2fx\n",
              worst_pi2_log_ratio, std::exp2(worst_pi2_log_ratio));
  std::printf("# PIE dctcp/cubic dominance (min over grid): %.1fx\n",
              best_pie_dctcp_ratio);
  std::printf(
      "# expectation: PIE lets DCTCP dominate ~10x; PI2 keeps the balance\n"
      "# near 1 over the whole range; the ECN-Cubic control is fair under both.\n");
  return sweep_exit_code(report);
}
