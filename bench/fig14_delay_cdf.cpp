// Figure 14: CDFs of per-packet queuing delay for PIE vs PI2 with target
// delays of 5 ms and 20 ms, under a) 20 Reno flows and b) 5 Reno + 2 UDP
// flows; link = 10 Mb/s, RTT = 100 ms.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Figure 14", "queue delay CDFs at 5 ms and 20 ms targets",
                      opts);

  const double duration_s = opts.full ? 100.0 : 40.0;

  struct Workload {
    const char* name;
    int tcp;
    int udp;
  };
  const Workload workloads[] = {{"a) 20 TCP", 20, 0}, {"b) 5 TCP + 2 UDP", 5, 2}};

  for (const Workload& w : workloads) {
    for (double target_ms : {5.0, 20.0}) {
      RunResult results[2];
      const AqmType types[2] = {AqmType::kPie, AqmType::kPi2};
      for (int a = 0; a < 2; ++a) {
        DumbbellConfig cfg;
        cfg.link_rate_bps = 10e6;
        cfg.duration = sim::from_seconds(duration_s);
        cfg.stats_start = sim::from_seconds(duration_s * 0.3);
        cfg.seed = opts.seed;
        cfg.aqm.type = types[a];
        cfg.aqm.ecn = false;
        cfg.aqm.target = sim::from_millis(target_ms);
        TcpFlowSpec spec;
        spec.cc = tcp::CcType::kReno;
        spec.count = w.tcp;
        spec.base_rtt = sim::from_millis(100);
        cfg.tcp_flows = {spec};
        if (w.udp > 0) {
          UdpFlowSpec udp;
          udp.rate_bps = 6e6;
          udp.count = w.udp;
          udp.base_rtt = sim::from_millis(100);
          cfg.udp_flows = {udp};
        }
        results[a] = run_dumbbell(cfg);
      }

      std::printf("\n== %s, target %g ms ==\n", w.name, target_ms);
      std::printf("%-12s %-14s %-14s\n", "quantile", "pie delay[ms]",
                  "pi2 delay[ms]");
      for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        std::printf("%-12.2f %-14.2f %-14.2f\n", q,
                    results[0].qdelay_ms_packets.quantile(q),
                    results[1].qdelay_ms_packets.quantile(q));
      }
    }
  }
  std::printf(
      "\n# expectation: PI2 and PIE distributions nearly coincide at both\n"
      "# targets (PI2 no worse; the queue tracks whichever target is set).\n");
  return 0;
}
