// Figure 6: queue delay under varying traffic intensity for plain PI with
// constant (non-auto-tuned) gains versus PI2 with the same gains + square.
// Workload: 10:30:50:30:10 Reno flows over 50 s stages, link = 100 Mb/s,
// RTT = 10 ms, alpha_PI = 0.125, beta_PI = 1.25 (direct), alpha_PI2 = 0.3125,
// beta_PI2 = 3.125, T = 32 ms.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Figure 6",
                      "PI vs PI2 queue delay under varying traffic intensity",
                      opts);

  const double stage_s = opts.full ? 50.0 : 20.0;
  const int counts[5] = {10, 30, 50, 30, 10};

  auto build = [&](AqmType type) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 100e6;
    cfg.duration = sim::from_seconds(stage_s * 5);
    cfg.seed = opts.seed;
    cfg.aqm.type = type;
    cfg.aqm.ecn = false;
    if (type == AqmType::kPi) {
      cfg.aqm.alpha_hz = 0.125;  // the caption's fixed PI gains
      cfg.aqm.beta_hz = 1.25;
    }
    // The 10:30:50:30:10 staircase decomposes into three overlapping flow
    // groups with explicit start/stop times.
    // 10 flows alive the whole run.
    TcpFlowSpec base;
    base.cc = tcp::CcType::kReno;
    base.count = 10;
    base.base_rtt = sim::from_millis(10);
    cfg.tcp_flows.push_back(base);
    // +20 flows during stages 2-4 (t in [T, 4T)).
    TcpFlowSpec mid;
    mid.cc = tcp::CcType::kReno;
    mid.count = 20;
    mid.base_rtt = sim::from_millis(10);
    mid.start = sim::from_seconds(stage_s);
    mid.stop = sim::from_seconds(stage_s * 4);
    cfg.tcp_flows.push_back(mid);
    // +20 more flows during stage 3 only.
    TcpFlowSpec peak;
    peak.cc = tcp::CcType::kReno;
    peak.count = 20;
    peak.base_rtt = sim::from_millis(10);
    peak.start = sim::from_seconds(stage_s * 2);
    peak.stop = sim::from_seconds(stage_s * 3);
    cfg.tcp_flows.push_back(peak);
    return cfg;
  };

  const auto pi = run_dumbbell(build(AqmType::kPi));
  const auto pi2r = run_dumbbell(build(AqmType::kPi2));

  std::printf("%-8s %-12s %-12s\n", "t[s]", "pi[ms]", "pi2[ms]");
  const auto bins_pi = pi.qdelay_ms_series.binned_mean(
      sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(stage_s * 5));
  const auto bins_pi2 = pi2r.qdelay_ms_series.binned_mean(
      sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(stage_s * 5));
  for (std::size_t i = 0; i < bins_pi.size() && i < bins_pi2.size(); ++i) {
    std::printf("%-8.1f %-12.2f %-12.2f\n", bins_pi[i].first, bins_pi[i].second,
                bins_pi2[i].second);
  }

  // Summary per stage.
  std::printf("\n%-10s %-8s %-14s %-14s %-12s %-12s\n", "stage", "flows",
              "pi mean[ms]", "pi2 mean[ms]", "pi util", "pi2 util");
  for (int stage = 0; stage < 5; ++stage) {
    const auto lo = sim::from_seconds(stage_s * stage + stage_s * 0.2);
    const auto hi = sim::from_seconds(stage_s * (stage + 1));
    std::printf("%-10d %-8d %-14.2f %-14.2f %-12.3f %-12.3f\n", stage + 1,
                counts[stage], pi.qdelay_ms_series.mean_over(lo, hi),
                pi2r.qdelay_ms_series.mean_over(lo, hi),
                pi.utilization_series.mean_over(lo, hi),
                pi2r.utilization_series.mean_over(lo, hi));
  }
  std::printf(
      "# expectation: plain PI over-suppresses at 10 flows (underutilization,\n"
      "# oscillating queue); PI2 holds the 20 ms target at every stage.\n"
      "# NOTE: in this burst-free simulator the paper's exact operating point\n"
      "# (W0 ~ 8, p ~ 3%%) has a large analytic margin, so the 'pi' pathology\n"
      "# needs a lighter load (lower p) to manifest — shown below.\n");

  // Companion: the same mechanism at a lighter load (3 flows, RTT 100 ms ->
  // p ~ 1e-3), where the fixed-gain PI's gain margin is strongly negative
  // (see fig04) and the over-suppression appears in simulation too.
  std::printf("\n== light-load companion: 3 Reno flows, 100 Mb/s, RTT 100 ms ==\n");
  std::printf("%-8s %-10s %-14s %-12s\n", "aqm", "util", "qdelay mean", "p99[ms]");
  for (const AqmType type : {AqmType::kPi, AqmType::kPi2}) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 100e6;
    cfg.duration = sim::from_seconds(opts.full ? 120.0 : 60.0);
    cfg.stats_start = sim::from_seconds(opts.full ? 40.0 : 20.0);
    cfg.seed = opts.seed;
    cfg.aqm.type = type;
    cfg.aqm.ecn = false;
    if (type == AqmType::kPi) {
      cfg.aqm.alpha_hz = 0.125;
      cfg.aqm.beta_hz = 1.25;
    }
    TcpFlowSpec spec;
    spec.cc = tcp::CcType::kReno;
    spec.count = 3;
    spec.base_rtt = sim::from_millis(100);
    spec.max_cwnd = 2000;
    cfg.tcp_flows = {spec};
    const auto r = run_dumbbell(cfg);
    std::printf("%-8s %-10.3f %-14.1f %-12.1f\n",
                std::string(to_string(type)).c_str(), r.utilization,
                r.mean_qdelay_ms, r.p99_qdelay_ms);
  }
  std::printf(
      "# expectation: plain PI loses ~25%% utilization here; PI2 with 2.5x\n"
      "# gains keeps it above 90%% — the Figure 6 contrast.\n");
  return 0;
}
