// Ablation: coupled Curvy RED (the DualQ draft's RED-like example AQM, [13])
// vs the coupled PI2 of this paper, on the coexistence workload. Both use
// the same k = 2 square coupling; the difference is the controller — a
// queue-position ramp vs a PI integral. Curvy RED needs a standing queue to
// hold any probability, so its delay floats with load while PI2 pins the
// target.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Ablation", "coupled Curvy RED vs coupled PI2", opts);

  std::printf("%-12s %-10s %-12s | %-10s %-10s %-10s %-8s\n", "aqm",
              "link[Mbps]", "rtt[ms]", "ratio", "mean[ms]", "p99[ms]", "util");
  for (const auto aqm : {AqmType::kCurvyRed, AqmType::kCoupledPi2}) {
    for (const double link : {12.0, 40.0, 120.0}) {
      for (const double rtt : {10.0, 50.0}) {
        auto cfg = bench::mix_config(aqm, bench::MixKind::kCubicVsDctcp, link, rtt,
                                     opts);
        const auto r = run_dumbbell(cfg);
        const double cubic = r.mean_goodput_mbps(tcp::CcType::kCubic);
        const double dctcp = r.mean_goodput_mbps(tcp::CcType::kDctcp);
        std::printf("%-12s %-10g %-12g | %-10.3f %-10.1f %-10.1f %-8.3f\n",
                    std::string(to_string(aqm)).c_str(), link, rtt,
                    dctcp > 0 ? cubic / dctcp : 0.0, r.mean_qdelay_ms,
                    r.p99_qdelay_ms, r.utilization);
      }
    }
  }
  std::printf(
      "\n# expectation: both achieve rough rate fairness (the k = 2 coupling\n"
      "# does that), but Curvy RED's queue delay drifts with load while PI2\n"
      "# holds ~20 ms everywhere — the reason the paper builds on PI.\n");
  return 0;
}
