// Figure 17: marking/dropping probability (P25, mean, P99) for the same
// sweep as Figure 15, per traffic class. For the coupled PI2 the Scalable
// probability is the linear p_s and the Classic one its coupled square.
#include <cstdio>

#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::bench;
  const auto opts = parse_options(argc, argv);
  print_header("Figure 17", "mark/drop probability [%], P25/mean/P99", opts);
  std::printf("%-12s %-10s | %-24s | %-24s\n", "link[Mbps]", "rtt[ms]",
              "classic p25/mean/p99", "scalable p25/mean/p99");
  const auto report = run_sweep(opts, [&](const SweepPoint& p) {
    const auto& classic = p.result.classic_prob_samples;
    const auto& scal = p.result.scalable_prob_samples;
    std::printf("%-12g %-10g | %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f\n",
                p.link_mbps, p.rtt_ms, classic.p25() * 100.0,
                classic.mean() * 100.0, classic.p99() * 100.0, scal.p25() * 100.0,
                scal.mean() * 100.0, scal.p99() * 100.0);
  });
  std::printf(
      "\n# expectation: probabilities fall with BDP; under coupled PI2 the\n"
      "# scalable probability is ~2*sqrt(classic), well above it.\n");
  return sweep_exit_code(report);
}
