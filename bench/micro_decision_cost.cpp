// Microbenchmark for the paper's §7 claim that squaring the output is "less
// computationally expensive" than PIE's per-update scaling path, and for the
// per-packet drop-decision cost of every discipline.
//
// Uses google-benchmark; run with --benchmark_filter=... as usual.
#include <benchmark/benchmark.h>

#include <memory>

#include "aqm/pi.hpp"
#include "aqm/pie.hpp"
#include "core/coupled_pi2.hpp"
#include "core/pi2.hpp"
#include "net/queue_discipline.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pi2;

/// Minimal queue view pinned at a fixed delay.
class PinnedView final : public net::QueueView {
 public:
  explicit PinnedView(double delay_s, double rate_bps = 10e6)
      : rate_bps_(rate_bps),
        backlog_(static_cast<std::int64_t>(delay_s * rate_bps / 8.0)) {}
  [[nodiscard]] std::int64_t backlog_bytes() const override { return backlog_; }
  [[nodiscard]] std::int64_t backlog_packets() const override {
    return backlog_ / net::kDefaultMss;
  }
  [[nodiscard]] double link_rate_bps() const override { return rate_bps_; }
  [[nodiscard]] pi2::sim::Duration queue_delay() const override {
    return pi2::sim::from_seconds(static_cast<double>(backlog_) * 8.0 / rate_bps_);
  }

 private:
  double rate_bps_;
  std::int64_t backlog_;
};

template <typename Aqm, typename Params>
std::unique_ptr<Aqm> warmed(pi2::sim::Simulator& sim, PinnedView& view,
                            Params params) {
  auto aqm = std::make_unique<Aqm>(params);
  aqm->install(sim, view);
  sim.run_until(sim.now() + std::chrono::seconds{5});  // let p settle
  return aqm;
}

void BM_EnqueueDecision_Pie(benchmark::State& state) {
  pi2::sim::Simulator sim{1};
  PinnedView view{0.05};
  aqm::PieAqm::Params params;
  params.departure_rate_estimation = false;
  auto pie = warmed<aqm::PieAqm>(sim, view, params);
  net::Packet packet;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pie->enqueue(packet));
  }
}
BENCHMARK(BM_EnqueueDecision_Pie);

void BM_EnqueueDecision_Pi2(benchmark::State& state) {
  pi2::sim::Simulator sim{1};
  PinnedView view{0.05};
  auto aqm = warmed<core::Pi2Aqm>(sim, view, core::Pi2Aqm::Params{});
  net::Packet packet;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aqm->enqueue(packet));
  }
}
BENCHMARK(BM_EnqueueDecision_Pi2);

void BM_EnqueueDecision_CoupledPi2(benchmark::State& state) {
  pi2::sim::Simulator sim{1};
  PinnedView view{0.05};
  auto aqm = warmed<core::CoupledPi2Aqm>(sim, view, core::CoupledPi2Aqm::Params{});
  net::Packet packet;
  packet.ecn = net::Ecn::kEct1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aqm->enqueue(packet));
  }
}
BENCHMARK(BM_EnqueueDecision_CoupledPi2);

void BM_EnqueueDecision_PlainPi(benchmark::State& state) {
  pi2::sim::Simulator sim{1};
  PinnedView view{0.05};
  auto aqm = warmed<aqm::PiAqm>(sim, view, aqm::PiAqm::Params{});
  net::Packet packet;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aqm->enqueue(packet));
  }
}
BENCHMARK(BM_EnqueueDecision_PlainPi);

// The periodic probability update: PIE's path includes the tune lookup and
// heuristics; PI2's is the bare PI arithmetic.
void BM_Update_PieWithTuneAndHeuristics(benchmark::State& state) {
  aqm::PiCore pi{0.125, 1.25};
  double delay = 0.03;
  for (auto _ : state) {
    double dp = pi.delta(delay, 0.02);
    dp *= aqm::PieAqm::tune_factor(pi.prob());
    if (pi.prob() >= 0.1 && dp > 0.02) dp = 0.02;
    if (delay > 0.25) dp = 0.02;
    pi.integrate(dp, delay);
    if (delay == 0.0 && pi.prev_qdelay_s() == 0.0) pi.decay(0.98);
    benchmark::DoNotOptimize(pi.prob());
    delay = delay > 0.02 ? 0.01 : 0.03;  // oscillate around the target
  }
}
BENCHMARK(BM_Update_PieWithTuneAndHeuristics);

void BM_Update_Pi2Unscaled(benchmark::State& state) {
  aqm::PiCore pi{0.3125, 3.125};
  double delay = 0.03;
  for (auto _ : state) {
    pi.update(delay, 0.02);
    benchmark::DoNotOptimize(pi.prob());
    delay = delay > 0.02 ? 0.01 : 0.03;
  }
}
BENCHMARK(BM_Update_Pi2Unscaled);

// The two ways to implement the square (paper §4 "PI2 Design"): multiply,
// or compare against the max of two random values.
void BM_Square_ByMultiplication(benchmark::State& state) {
  pi2::sim::Rng rng{7};
  const double p_prime = 0.07;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform() < p_prime * p_prime);
  }
}
BENCHMARK(BM_Square_ByMultiplication);

void BM_Square_ByTwoRandoms(benchmark::State& state) {
  pi2::sim::Rng rng{7};
  const double p_prime = 0.07;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::max(rng.uniform(), rng.uniform()) < p_prime);
  }
}
BENCHMARK(BM_Square_ByTwoRandoms);

}  // namespace

BENCHMARK_MAIN();
