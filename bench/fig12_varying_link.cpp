// Figure 12: queue delay under varying link capacity 100:20:100 Mb/s over
// 50 s stages, 20 Reno flows, RTT = 100 ms (PIE vs PI2). The paper reports a
// 510 ms peak for PIE vs 250 ms for PI2 at the capacity drop (sampled at
// 100 ms), and extra oscillation peaks for PIE only.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Figure 12", "queue delay under varying link capacity",
                      opts);

  const double stage_s = opts.full ? 50.0 : 20.0;

  auto run_one = [&](AqmType type) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 100e6;
    cfg.duration = sim::from_seconds(stage_s * 3);
    cfg.seed = opts.seed;
    cfg.aqm.type = type;
    cfg.aqm.ecn = false;
    TcpFlowSpec spec;
    spec.cc = tcp::CcType::kReno;
    spec.count = 20;
    spec.base_rtt = sim::from_millis(100);
    cfg.tcp_flows = {spec};
    cfg.rate_changes = {{sim::from_seconds(stage_s), 20e6},
                        {sim::from_seconds(stage_s * 2), 100e6}};
    return run_dumbbell(cfg);
  };

  const auto pie = run_one(AqmType::kPie);
  const auto pi2r = run_one(AqmType::kPi2);

  std::printf("%-8s %-10s %-10s\n", "t[s]", "pie[ms]", "pi2[ms]");
  const auto qd_pie = pie.qdelay_ms_series.binned_mean(
      sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(stage_s * 3));
  const auto qd_pi2 = pi2r.qdelay_ms_series.binned_mean(
      sim::from_seconds(1.0), sim::kTimeZero, sim::from_seconds(stage_s * 3));
  for (std::size_t i = 0; i < qd_pie.size(); ++i) {
    std::printf("%-8.1f %-10.2f %-10.2f\n", qd_pie[i].first, qd_pie[i].second,
                i < qd_pi2.size() ? qd_pi2[i].second : 0.0);
  }

  // Peak delay around the capacity drop, sampled at 100 ms as in the paper.
  const auto drop_lo = sim::from_seconds(stage_s - 1.0);
  const auto drop_hi = sim::from_seconds(stage_s + 10.0);
  std::printf("\npeak around capacity drop (100 ms samples): pie=%.0fms pi2=%.0fms\n",
              pie.qdelay_ms_series.max_over(drop_lo, drop_hi),
              pi2r.qdelay_ms_series.max_over(drop_lo, drop_hi));
  const auto up_lo = sim::from_seconds(stage_s * 2 - 1.0);
  const auto up_hi = sim::from_seconds(stage_s * 2 + 10.0);
  std::printf("peak around capacity raise: pie=%.0fms pi2=%.0fms\n",
              pie.qdelay_ms_series.max_over(up_lo, up_hi),
              pi2r.qdelay_ms_series.max_over(up_lo, up_hi));
  std::printf(
      "# expectation: PI2 peak roughly half of PIE's at the rate drop, faster\n"
      "# settling, and no overshoot when capacity rises again.\n");
  return 0;
}
