// Ablation (paper §5 "Fewer Heuristics"): full Linux PIE vs bare-PIE (all
// heuristics disabled, autotune kept) across the Figure 11 workloads. The
// paper reports no observable difference in any experiment — the heuristics
// do not explain PIE's behaviour, the autotune does.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Ablation", "full PIE vs bare-PIE (heuristics removed)",
                      opts);

  const double duration_s = opts.full ? 100.0 : 40.0;

  struct Load {
    const char* name;
    int tcp;
    int udp;
    double rtt_ms;
  };
  const Load loads[] = {{"5 TCP @100ms", 5, 0, 100},
                        {"50 TCP @100ms", 50, 0, 100},
                        {"5 TCP + 2 UDP @100ms", 5, 2, 100},
                        {"20 TCP @20ms", 20, 0, 20}};

  std::printf("%-22s | %-22s | %-22s\n", "workload", "pie mean/p99[ms] util",
              "bare mean/p99[ms] util");
  for (const Load& load : loads) {
    RunResult results[2];
    const AqmType types[2] = {AqmType::kPie, AqmType::kBarePie};
    for (int a = 0; a < 2; ++a) {
      DumbbellConfig cfg;
      cfg.link_rate_bps = 10e6;
      cfg.duration = sim::from_seconds(duration_s);
      cfg.stats_start = sim::from_seconds(duration_s * 0.3);
      cfg.seed = opts.seed;
      cfg.aqm.type = types[a];
      cfg.aqm.ecn = false;
      TcpFlowSpec spec;
      spec.cc = tcp::CcType::kReno;
      spec.count = load.tcp;
      spec.base_rtt = sim::from_millis(load.rtt_ms);
      cfg.tcp_flows = {spec};
      if (load.udp > 0) {
        UdpFlowSpec udp;
        udp.rate_bps = 6e6;
        udp.count = load.udp;
        udp.base_rtt = sim::from_millis(load.rtt_ms);
        cfg.udp_flows = {udp};
      }
      results[a] = run_dumbbell(cfg);
    }
    std::printf("%-22s | %6.1f /%6.1f  %5.3f | %6.1f /%6.1f  %5.3f\n", load.name,
                results[0].mean_qdelay_ms, results[0].p99_qdelay_ms,
                results[0].utilization, results[1].mean_qdelay_ms,
                results[1].p99_qdelay_ms, results[1].utilization);
  }
  std::printf(
      "\n# expectation: bare-PIE within noise of full PIE on every workload\n"
      "# (the paper saw no difference in any experiment).\n");
  return 0;
}
