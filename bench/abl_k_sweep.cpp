// Ablation (paper Appendix A / §4): coupling factor k in {1, 1.19, 2, 4}.
// The derivation gives k = 1.19 for exact CReno/DCTCP window equality; the
// paper deploys k = 2 after empirical validation (it also matches the
// optimal gain ratio). This bench measures the Cubic/DCTCP rate ratio for
// each k.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Ablation", "coupling factor k sweep (Cubic vs DCTCP)",
                      opts);

  std::printf("%-8s %-14s %-14s %-14s %-14s\n", "k", "cubic[Mbps]", "dctcp[Mbps]",
              "ratio(c/d)", "|log2 ratio|");
  for (double k : {1.0, 1.19, 2.0, 4.0}) {
    auto cfg = bench::mix_config(AqmType::kCoupledPi2, bench::MixKind::kCubicVsDctcp,
                                 40.0, 10.0, opts);
    cfg.aqm.coupling_k = k;
    const auto r = run_dumbbell(cfg);
    const double cubic = r.mean_goodput_mbps(tcp::CcType::kCubic);
    const double dctcp = r.mean_goodput_mbps(tcp::CcType::kDctcp);
    const double ratio = dctcp > 0 ? cubic / dctcp : 0.0;
    std::printf("%-8.2f %-14.2f %-14.2f %-14.3f %-14.2f\n", k, cubic, dctcp, ratio,
                ratio > 0 ? std::abs(std::log2(ratio)) : 99.0);
  }
  std::printf(
      "\n# expectation: k = 2 lands nearest ratio 1 (the paper's empirical\n"
      "# validation); k = 1 over-punishes Cubic, k = 4 over-punishes DCTCP.\n");
  return 0;
}
