// Figure 18: link utilization (P1, mean, P99 of the 1 s samples) for the
// same sweep as Figure 15. Expectation: both AQMs keep utilization high
// (>90%) except at the most extreme low-BDP corners.
#include <cstdio>

#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::bench;
  const auto opts = parse_options(argc, argv);
  print_header("Figure 18", "link utilization [%], P1/mean/P99 of 1 s samples",
               opts);
  std::printf("%-12s %-10s %-10s %-10s %-10s\n", "link[Mbps]", "rtt[ms]", "P1",
              "mean", "P99");
  const auto report = run_sweep(opts, [&](const SweepPoint& p) {
    stats::PercentileSampler samples;
    for (const auto& point : p.result.utilization_series.points()) {
      if (point.t >= stats_start(opts)) samples.add(point.value);
    }
    std::printf("%-12g %-10g %-10.1f %-10.1f %-10.1f\n", p.link_mbps, p.rtt_ms,
                samples.p01() * 100.0, p.result.utilization * 100.0,
                samples.p99() * 100.0);
  });
  std::printf("\n# expectation: utilization >90%% across the grid for both AQMs.\n");
  return sweep_exit_code(report);
}
