// §6 experiment: "mixed short flow completion times with PIE, bare PIE and
// PI2 under both heavy and light Web-like workloads were essentially the
// same". Poisson arrivals, bounded-Pareto sizes, with and without
// long-running background flows.
#include <cstdio>

#include "bench_common.hpp"
#include "scenario/short_flows.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("§6", "short flow completion times: PIE vs bare-PIE vs PI2",
                      opts);

  struct Workload {
    const char* name;
    double load;
    int background;
  };
  const Workload workloads[] = {{"light web (30% load)", 0.3, 0},
                                {"heavy web (70% load)", 0.7, 0},
                                {"web + 2 bulk flows", 0.3, 2}};

  for (const Workload& w : workloads) {
    std::printf("\n== %s ==\n", w.name);
    std::printf("%-10s | %-26s | %-26s | %-8s\n", "aqm",
                "short FCT p50/p90/p99 [ms]", "long FCT p50/p90/p99 [ms]",
                "qdelay");
    for (const auto aqm : {AqmType::kPie, AqmType::kBarePie, AqmType::kPi2}) {
      ShortFlowConfig cfg;
      cfg.link_rate_bps = 10e6;
      cfg.aqm.type = aqm;
      cfg.aqm.ecn = false;
      cfg.offered_load = w.load;
      cfg.background_flows = w.background;
      cfg.base_rtt = sim::from_millis(50);
      cfg.duration = sim::from_seconds(opts.full ? 120.0 : 40.0);
      cfg.stats_start = sim::from_seconds(opts.full ? 20.0 : 8.0);
      cfg.seed = opts.seed;
      const auto r = run_short_flows(cfg);
      std::printf("%-10s | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f | %6.1fms\n",
                  std::string(to_string(aqm)).c_str(), r.fct_short_ms.median(),
                  r.fct_short_ms.quantile(0.9), r.fct_short_ms.p99(),
                  r.fct_long_ms.median(), r.fct_long_ms.quantile(0.9),
                  r.fct_long_ms.p99(), r.mean_qdelay_ms);
    }
  }
  std::printf(
      "\n# expectation: the three AQMs give essentially the same completion\n"
      "# times in every workload (the paper saw no FCT regression from PI2).\n");
  return 0;
}
