// Ablation (paper §4 "Responsiveness without Instability"): sweep the PI2
// gain multiplier x in {1, 2.5, 5, 10} relative to the PIE base gains
// (alpha = 0.125x, beta = 1.25x) and measure load-step response. The paper
// picks x = 2.5 because the flat gain margin allows it; beyond that the
// margin erodes.
#include <cstdio>

#include "bench_common.hpp"
#include "control/fluid_model.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Ablation", "PI2 gain multiplier sweep", opts);

  const double stage_s = opts.full ? 40.0 : 15.0;

  std::printf("%-8s %-14s %-14s %-12s %-14s %-14s\n", "gain_x", "peak[ms]",
              "settle[ms]", "util", "minGM[dB]", "minPM[deg]");
  for (double x : {1.0, 2.5, 5.0, 10.0}) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 10e6;
    cfg.duration = sim::from_seconds(stage_s * 2);
    cfg.stats_start = sim::from_seconds(stage_s * 0.5);
    cfg.seed = opts.seed;
    cfg.aqm.type = AqmType::kPi2;
    cfg.aqm.ecn = false;
    cfg.aqm.alpha_hz = 0.125 * x;
    cfg.aqm.beta_hz = 1.25 * x;
    TcpFlowSpec base;
    base.cc = tcp::CcType::kReno;
    base.count = 5;
    base.base_rtt = sim::from_millis(100);
    TcpFlowSpec step = base;
    step.count = 25;
    step.start = sim::from_seconds(stage_s);
    cfg.tcp_flows = {base, step};
    const auto r = run_dumbbell(cfg);

    const double peak = r.qdelay_ms_series.max_over(
        sim::from_seconds(stage_s), sim::from_seconds(stage_s + 10));
    const double settle = r.qdelay_ms_series.mean_over(
        sim::from_seconds(stage_s * 1.5), sim::from_seconds(stage_s * 2));

    // Analytic minimum margins over the load range for this gain setting.
    double min_gm = 1e9;
    double min_pm = 1e9;
    for (double pp : {0.01, 0.03, 0.1, 0.3, 1.0}) {
      control::LoopModel m{control::LoopType::kRenoPSquared, pp, 0.1,
                           {0.125 * x, 1.25 * x, 0.032}};
      if (const auto margins = m.margins()) {
        min_gm = std::min(min_gm, margins->gain_margin_db);
        min_pm = std::min(min_pm, margins->phase_margin_deg);
      }
    }
    std::printf("%-8.1f %-14.1f %-14.1f %-12.3f %-14.1f %-14.1f\n", x, peak,
                settle, r.utilization, min_gm, min_pm);
  }
  std::printf(
      "\n# expectation: x = 2.5 (the paper's choice) keeps positive analytic\n"
      "# margins; x = 10 drives the minimum gain margin negative and the\n"
      "# simulated queue oscillates harder.\n");
  return 0;
}
