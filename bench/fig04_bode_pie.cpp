// Figure 4: Bode gain/phase margins for Reno over PI with fixed and
// auto-tuned gains, R = 100 ms, alpha_PIE = 0.125*tune, beta_PIE = 1.25*tune,
// T = 32 ms, over drop probabilities 0.0001% .. 100%.
//
// Reproduces the plot data as a table: one row per probability, one column
// pair (GM dB, PM deg) per tune setting.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "control/fluid_model.hpp"

int main(int argc, char** argv) {
  using namespace pi2::control;
  const auto opts = pi2::bench::parse_options(argc, argv);
  pi2::bench::print_header(
      "Figure 4", "Bode margins, Reno over PI, tune in {auto, 1, 1/2, 1/8}", opts);

  struct Tune {
    const char* name;
    double fixed;  // < 0 means auto
  };
  const std::vector<Tune> tunes = {
      {"auto", -1.0}, {"1", 1.0}, {"1/2", 0.5}, {"1/8", 0.125}};

  std::printf("%-12s", "p[%]");
  for (const auto& t : tunes) {
    std::printf(" | %7s:GM[dB] PM[deg]", t.name);
  }
  std::printf("\n");

  const int points = opts.full ? 37 : 19;
  for (int i = 0; i < points; ++i) {
    // p from 1e-6 to 1 on a log grid.
    const double p = std::pow(10.0, -6.0 + 6.0 * i / (points - 1));
    std::printf("%-12.6g", p * 100.0);
    for (const auto& t : tunes) {
      const double tune = t.fixed < 0 ? pie_tune_factor(p) : t.fixed;
      const PiGains gains{0.125 * tune, 1.25 * tune, 0.032};
      const LoopModel model{LoopType::kRenoP, p, 0.1, gains};
      const auto margins = model.margins();
      if (margins) {
        std::printf(" | %14.1f %7.1f", margins->gain_margin_db,
                    margins->phase_margin_deg);
      } else {
        std::printf(" | %14s %7s", "-", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "# expectation: fixed-tune gain margins run diagonally (negative at low p);\n"
      "# 'auto' keeps both margins positive across the whole range.\n");
  return 0;
}
