// pi2_campaign: the declarative campaign driver. One binary replaces the
// per-figure sweep mains: a committed spec file (campaigns/*.json) names a
// scenario template and its axes, expand() turns it into the same ordered
// grid the hand-rolled loop produced, and the per-point configs/printers/
// JSON emitters are the exact helpers the fig binaries use — so a campaign
// run of campaigns/fig_overload.json is byte-identical (per record) to
// fig_overload itself. The golden_campaign_* ctests gate that equivalence.
//
// Beyond replaying the figures, the driver adds distributed execution:
//
//   pi2_campaign --spec S.json                    # serial: all points
//   pi2_campaign --spec S.json --shard 2/3        # worker: its slice only
//   pi2_campaign --spec S.json --merge A B C      # stitch shard journals
//
// A shard journals its half-open point range [lo, hi) independently (header
// + shard record + one point record per completed run, fsync'd); --merge
// validates the set (per-record CRCs, digest agreement, exact tiling, no
// foreign journals) and writes a merged journal byte-identical to the one a
// serial run would have produced, replaying the decoded payloads through
// the identical consume path for the table and --json. Every merge refusal
// exits with its own code so shell tests can tell the failure modes apart:
//
//   75 interrupted (resume with --resume)   13 shard-gap
//   10 foreign-campaign                     14 duplicate-point
//   11 stale-digest                         15 corrupt journal
//   12 shard-overlap                        16 io-error
//                                           17 invalid usage/spec
//
// Standard sweep flags (--smoke, --full, --seed, --jobs, --json, --resume,
// --journal, --telemetry, --deadline-s, ...) keep their bench_common
// meaning. A killed shard is resumed with --resume, which *compacts* its
// journal (fresh header, valid points re-appended in index order) so the
// strict merge loader never sees the torn tail the kill left behind.
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/merge.hpp"
#include "campaign/spec.hpp"
#include "campaign_templates.hpp"
#include "sweep.hpp"
#include "topology/topology.hpp"

namespace {

using namespace pi2;
using namespace pi2::bench;

/// Flags owned by the driver itself; everything else goes through
/// parse_options (which ignores what it does not know).
struct CampaignCli {
  std::string spec_path;
  bool help = false;
  bool list = false;
  bool digest_only = false;
  bool has_shard = false;
  std::size_t shard_index = 1;
  std::size_t shard_count = 1;
  bool merge = false;
  std::vector<std::string> merge_paths;
  bool use_seed = false;  ///< a literal --seed was given (overrides the spec)
  std::string error;      ///< non-empty = usage error
};

CampaignCli parse_campaign_cli(int argc, char** argv) {
  CampaignCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      cli.spec_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--digest") {
      cli.digest_only = true;
    } else if (arg == "--seed") {
      cli.use_seed = true;  // value consumed by parse_options
    } else if (arg == "--shard" && i + 1 < argc) {
      if (!campaign::parse_shard(argv[++i], cli.shard_index,
                                 cli.shard_count)) {
        cli.error = "--shard wants i/N with 1 <= i <= N (got '" +
                    std::string(argv[i]) + "')";
        return cli;
      }
      cli.has_shard = true;
    } else if (arg == "--merge") {
      cli.merge = true;
      while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        cli.merge_paths.emplace_back(argv[++i]);
      }
    }
  }
  if (cli.spec_path.empty() && !cli.help) {
    cli.error = "--spec PATH is required";
  }
  if (cli.merge && cli.has_shard) {
    cli.error = "--merge and --shard are mutually exclusive";
  }
  return cli;
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// The usage text enumerates the valid templates and axis names straight
/// from the campaign registry, so a spec author never has to guess them.
void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: pi2_campaign --spec FILE [--list | --digest | "
               "--shard i/N | --merge JOURNAL...]\n"
               "                    [sweep flags: --smoke --full --seed N "
               "--jobs N --json PATH --resume --journal PATH ...]\n"
               "templates: %s\n"
               "axes:      %s\n",
               joined(campaign::template_names()).c_str(),
               joined(campaign::axis_names()).c_str());
  using campaign::TemplateId;
  for (const TemplateId id :
       {TemplateId::kDumbbellSweep, TemplateId::kOverload,
        TemplateId::kParkingLot, TemplateId::kRttMix,
        TemplateId::kResilience}) {
    std::fprintf(to, "  %-14s axes: %s\n", campaign::to_string(id),
                 joined(campaign::axes_of_template(id)).c_str());
  }
  std::fprintf(to, "fault_schedule values: %s; or an inline literal like "
                   "'rate_step@0.4:rate=0.25'\n",
               joined(faults::preset_names()).c_str());
}

int usage_error(const std::string& message) {
  std::fprintf(stderr, "pi2_campaign: %s\n", message.c_str());
  print_usage(stderr);
  return 17;
}

/// Maps the merge/journal failure taxonomy onto distinct exit codes (doc'd
/// in the header comment) so shell tests can assert on the code alone.
int status_exit(const durable::Status& status) {
  using durable::StatusCode;
  switch (status.code()) {
    case StatusCode::kForeignCampaign: return 10;
    case StatusCode::kStaleDigest: return 11;
    case StatusCode::kShardOverlap: return 12;
    case StatusCode::kShardGap: return 13;
    case StatusCode::kDuplicatePoint: return 14;
    case StatusCode::kCorrupt: return 15;
    case StatusCode::kIoError: return 16;
    case StatusCode::kInvalid: return 17;
    default: return 1;
  }
}

std::string axis_value_str(const campaign::AxisValue& v) {
  if (!v.is_number) return v.text;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v.number);
  return buf;
}

// ---- per-template dispatch -------------------------------------------------
//
// Each template maps a point's axis values onto the same config builder,
// table row, JSON record and health predicate its fig binary uses. The
// campaign layer is scenario-free, so this is where strings/numbers become
// scenario types.

struct TemplateView {
  const campaign::Expansion& x;
  // Axis indices resolved once; -1 when the template lacks the axis.
  int aqm = -1, cc_mix = -1, rate = -1, rtt = -1, ecn = -1, udp = -1,
      hops = -1, fault = -1, fluid = -1;
  // fault_schedule axis values resolved once (presets/literals scaled to
  // the expansion's link/RTT/duration). main() preflights every value, so
  // lookups from run_point are total.
  std::map<std::string, faults::FaultSchedule> schedules;

  explicit TemplateView(const campaign::Expansion& expansion) : x(expansion) {
    aqm = x.axis_of("aqm");
    cc_mix = x.axis_of("cc_mix");
    rate = x.axis_of("rate_mbps");
    rtt = x.axis_of("rtt_ms");
    ecn = x.axis_of("ecn");
    udp = x.axis_of("udp_mult");
    hops = x.axis_of("hops");
    fault = x.axis_of("fault_schedule");
    fluid = x.axis_of("fluid_flows");
    if (fault >= 0) {
      const faults::PresetContext ctx = resilience_fault_context(
          x.link_mbps, x.rtt_ms, x.duration_s);
      for (const auto& value :
           x.axes[static_cast<std::size_t>(fault)].values) {
        faults::FaultSchedule schedule;
        if (faults::resolve_schedule(value.text, ctx, &schedule).empty()) {
          schedules.emplace(value.text, std::move(schedule));
        }
      }
    }
  }

  const std::string& text(const campaign::CampaignPoint& p, int axis) const {
    return p.values[static_cast<std::size_t>(axis)].text;
  }
  double num(const campaign::CampaignPoint& p, int axis) const {
    return p.values[static_cast<std::size_t>(axis)].number;
  }
};

void print_table_header(const TemplateView& v) {
  switch (v.x.template_id) {
    case campaign::TemplateId::kDumbbellSweep:
      std::printf("%-14s %-16s %-10s %-8s %-9s %-9s %-7s\n", "aqm", "mix",
                  "link[Mbps]", "rtt[ms]", "qdelay", "p99", "util");
      break;
    case campaign::TemplateId::kOverload:
      std::printf("# link %.0f Mb/s, RTT %.0f ms, %.0f s/run; flood = 1 UDP "
                  "sender, mix = 1 Cubic + 1 DCTCP\n",
                  v.x.link_mbps, v.x.rtt_ms, v.x.duration_s);
      std::printf(
          "%-9s %-9s %-7s %-7s %-7s %-9s %-9s %-11s %-11s %-9s %-7s\n", "ecn",
          "udp_mult", "cubic", "dctcp", "udp", "qdelay", "p99", "L mark/drop",
          "C mark/drop", "tail L/C", "guards");
      break;
    case campaign::TemplateId::kParkingLot:
      std::printf("# chain of 10 Mb/s links, RTT %.0f ms, %.0f s/run; 1 long "
                  "Cubic + 1 Cubic cross flow per hop\n",
                  v.x.rtt_ms, v.x.duration_s);
      std::printf("%-12s %-5s %-7s %-7s %-7s %-8s %-21s %-21s\n", "aqm",
                  "hops", "long", "cross", "ratio", "util", "qdelay/hop (ms)",
                  "signals/hop");
      break;
    case campaign::TemplateId::kRttMix:
      std::printf("# bottleneck %.0f Mb/s; per branch: 1 Cubic + 1 DCTCP at "
                  "10/50/100 ms base RTT, %.0f s/run\n",
                  v.x.link_mbps, v.x.duration_s);
      std::printf("%-12s %-8s %-8s %-8s %-9s %-6s %-8s %-8s\n", "aqm", "b10",
                  "b50", "b100", "r10/100", "jain", "qdelay", "p99");
      break;
    case campaign::TemplateId::kResilience:
      std::printf("# link %.0f Mb/s, RTT %.0f ms, %.0f s/run; mix = 1 Cubic "
                  "+ 1 DCTCP, fluid Reno background; recovery band = 2x AQM "
                  "target, hold 1 s (-1 = never reconverged)\n",
                  v.x.link_mbps, v.x.rtt_ms, v.x.duration_s);
      std::printf("%-12s %-16s %-8s %-8s %-8s %-8s %-8s %-8s %-7s %s\n",
                  "aqm", "fault", "fluid", "recov", "mean_rec", "peak",
                  "delta", "qdelay", "util", "viol i/o");
      break;
  }
}

/// Builds and runs point `p` (on a worker thread). `recorder` may be null.
scenario::RunResult run_point(const TemplateView& v, const Options& opts,
                              const campaign::CampaignPoint& p,
                              telemetry::Recorder* recorder) {
  using campaign::TemplateId;
  switch (v.x.template_id) {
    case TemplateId::kDumbbellSweep: {
      // mix_config + opts reproduces run_sweep()'s per-point config exactly
      // (durations, ecn_drop_threshold, background tiers); only the seed is
      // the campaign's own.
      auto cfg = mix_config(aqm_from_name(v.text(p, v.aqm)),
                            mix_from_name(v.text(p, v.cc_mix)),
                            v.num(p, v.rate), v.num(p, v.rtt), opts);
      cfg.seed = p.seed;
      cfg.stop = durable::ShutdownController::flag();
      if (recorder != nullptr) cfg.recorder = recorder;
      return scenario::run_dumbbell(cfg);
    }
    case TemplateId::kOverload: {
      auto cfg = overload_config(ecn_from_name(v.text(p, v.ecn)),
                                 v.num(p, v.udp), v.x.link_mbps, v.x.rtt_ms,
                                 v.x.duration_s, v.x.stats_start_s, p.seed);
      cfg.stop = durable::ShutdownController::flag();
      if (recorder != nullptr) cfg.recorder = recorder;
      return scenario::run_dumbbell(cfg);
    }
    case TemplateId::kParkingLot: {
      auto cfg = parking_lot_config(
          aqm_from_name(v.text(p, v.aqm)), static_cast<int>(v.num(p, v.hops)),
          v.x.link_mbps, v.x.rtt_ms, v.x.duration_s, v.x.stats_start_s,
          p.seed);
      cfg.stop = durable::ShutdownController::flag();
      if (recorder != nullptr) cfg.recorder = recorder;
      return topology::to_run_result(topology::run_topology(cfg));
    }
    case TemplateId::kRttMix: {
      auto cfg = rtt_mix_config(aqm_from_name(v.text(p, v.aqm)),
                                v.x.link_mbps, v.x.duration_s,
                                v.x.stats_start_s, p.seed);
      cfg.stop = durable::ShutdownController::flag();
      if (recorder != nullptr) cfg.recorder = recorder;
      return topology::to_run_result(topology::run_topology(cfg));
    }
    case TemplateId::kResilience: {
      auto cfg = resilience_config(
          aqm_from_name(v.text(p, v.aqm)),
          v.schedules.at(v.text(p, v.fault)), v.num(p, v.fluid),
          v.x.link_mbps, v.x.rtt_ms, v.x.duration_s, v.x.stats_start_s,
          p.seed);
      cfg.stop = durable::ShutdownController::flag();
      if (recorder != nullptr) cfg.recorder = recorder;
      return scenario::run_dumbbell(cfg);
    }
  }
  return scenario::RunResult();
}

/// The per-template output sinks. The dumbbell template streams through
/// SweepJsonWriter (the figs 15-18 record schema); the campaign-style
/// templates write through the AtomicFile emitters their fig binaries use.
struct OutputSinks {
  std::unique_ptr<SweepJsonWriter> sweep_json;
  std::unique_ptr<durable::AtomicFile> json;
  bool json_first = true;
  bool healthy = true;
  // Cross-point recovery comparison (resilience template only); checked
  // after the consume loop by finalize_health().
  ResilienceGate resilience_gate;

  OutputSinks(const campaign::Expansion& x, const Options& opts) {
    if (x.template_id == campaign::TemplateId::kDumbbellSweep) {
      sweep_json = std::make_unique<SweepJsonWriter>(
          opts.json_path,
          opts.packet_background > 0 || opts.fluid_background > 0);
      return;
    }
    if (opts.json_path.empty()) return;
    json = std::make_unique<durable::AtomicFile>(opts.json_path);
    if (!json->healthy()) {
      std::fprintf(stderr, "warning: %s; no JSON written\n",
                   json->status().message().c_str());
      json.reset();
      return;
    }
    json->write("[");
  }

  void abort() {
    if (sweep_json != nullptr) sweep_json->abort();
    if (json != nullptr) json->abort();
  }

  bool commit() {
    bool ok = true;
    if (sweep_json != nullptr) ok = sweep_json->commit();
    if (json != nullptr) {
      json->write("\n]\n");
      const durable::Status status = json->commit();
      if (!status.ok()) {
        std::fprintf(stderr, "error: JSON not written: %s\n",
                     status.message().c_str());
        ok = false;
      }
    }
    return ok;
  }
};

/// Consumes one completed point: the fig binary's table row, JSON record and
/// health predicate. Runs on the calling thread in global index order — the
/// same consume path for live, resumed and merged points.
void consume_point(const TemplateView& v, OutputSinks& out,
                   const campaign::CampaignPoint& p,
                   const scenario::RunResult& result,
                   const std::string& manifest_path) {
  using campaign::TemplateId;
  switch (v.x.template_id) {
    case TemplateId::kDumbbellSweep: {
      const auto aqm = aqm_from_name(v.text(p, v.aqm));
      std::printf("%-14s %-16s %-10g %-8g %-9.2f %-9.2f %-7.3f\n",
                  aqm_label(aqm), v.text(p, v.cc_mix).c_str(),
                  v.num(p, v.rate), v.num(p, v.rtt), result.mean_qdelay_ms,
                  result.p99_qdelay_ms, result.utilization);
      if (out.sweep_json != nullptr) {
        SweepPoint point{aqm,
                         mix_from_name(v.text(p, v.cc_mix)),
                         v.num(p, v.rate),
                         v.num(p, v.rtt),
                         result,
                         p.index,
                         p.seed,
                         manifest_path};
        out.sweep_json->add(point);
      }
      return;  // exit parity with sweep_exit_code: no machinery gate
    }
    case TemplateId::kOverload: {
      const std::string& ecn = v.text(p, v.ecn);
      overload_print_row(ecn.c_str(), v.num(p, v.udp), result);
      if (out.json != nullptr) {
        overload_json_record(*out.json, out.json_first, p.index, ecn.c_str(),
                             p.seed, v.x.link_mbps, v.x.rtt_ms,
                             v.num(p, v.udp), result);
      }
      if (!machinery_healthy(result)) out.healthy = false;
      return;
    }
    case TemplateId::kParkingLot: {
      const std::string& aqm = v.text(p, v.aqm);
      const int hops = static_cast<int>(v.num(p, v.hops));
      const ParkingSummary summary = parking_summary(result, hops);
      parking_print_row(aqm.c_str(), hops, summary, result);
      if (out.json != nullptr) {
        parking_json_record(*out.json, out.json_first, p.index, aqm.c_str(),
                            hops, p.seed, v.x.link_mbps, v.x.rtt_ms, summary,
                            result);
      }
      if (!machinery_healthy(result)) out.healthy = false;
      if (!parking_check_headline(hops, summary)) out.healthy = false;
      return;
    }
    case TemplateId::kRttMix: {
      const std::string& aqm = v.text(p, v.aqm);
      const RttMixSummary summary = rtt_mix_summary(result);
      rtt_mix_print_row(aqm.c_str(), summary, result);
      if (out.json != nullptr) {
        rtt_mix_json_record(*out.json, out.json_first, p.index, aqm.c_str(),
                            p.seed, v.x.link_mbps, summary, result);
      }
      if (!machinery_healthy(result)) out.healthy = false;
      if (!rtt_mix_check_branches(summary)) out.healthy = false;
      return;
    }
    case TemplateId::kResilience: {
      const std::string& aqm = v.text(p, v.aqm);
      const std::string& fault = v.text(p, v.fault);
      resilience_print_row(aqm.c_str(), fault.c_str(), v.num(p, v.fluid),
                           result);
      if (out.json != nullptr) {
        resilience_json_record(*out.json, out.json_first, p.index,
                               aqm.c_str(), fault.c_str(), v.num(p, v.fluid),
                               p.seed, v.x.link_mbps, v.x.rtt_ms, result);
      }
      if (!resilience_machinery_healthy(result)) out.healthy = false;
      out.resilience_gate.record(fault, aqm,
                                 result.resilience.worst_recovery_s);
      return;
    }
  }
}

void consume_failed(const TemplateView& v, OutputSinks& out,
                    const campaign::CampaignPoint& p,
                    runner::TaskStatus status, const std::string& message) {
  using campaign::TemplateId;
  out.healthy = false;
  switch (v.x.template_id) {
    case TemplateId::kDumbbellSweep:
      std::printf("!! point %zu (%s, %s, %g Mb/s, %g ms) %s: %s\n", p.index,
                  aqm_label(aqm_from_name(v.text(p, v.aqm))),
                  v.text(p, v.cc_mix).c_str(), v.num(p, v.rate),
                  v.num(p, v.rtt), runner::to_string(status),
                  message.c_str());
      if (out.sweep_json != nullptr) {
        out.sweep_json->add_failed(p.index, aqm_from_name(v.text(p, v.aqm)),
                                   mix_from_name(v.text(p, v.cc_mix)),
                                   v.num(p, v.rate), v.num(p, v.rtt), status,
                                   message);
      }
      return;
    case TemplateId::kOverload:
      std::printf("%-9s %-9.2f point %s\n", v.text(p, v.ecn).c_str(),
                  v.num(p, v.udp), runner::to_string(status));
      if (out.json != nullptr) {
        overload_json_failed(*out.json, out.json_first, p.index, status,
                             v.text(p, v.ecn).c_str(), v.num(p, v.udp));
      }
      return;
    case TemplateId::kParkingLot:
      std::printf("%-12s %-5d point %s\n", v.text(p, v.aqm).c_str(),
                  static_cast<int>(v.num(p, v.hops)),
                  runner::to_string(status));
      if (out.json != nullptr) {
        parking_json_failed(*out.json, out.json_first, p.index, status,
                            v.text(p, v.aqm).c_str(),
                            static_cast<int>(v.num(p, v.hops)));
      }
      return;
    case TemplateId::kRttMix:
      std::printf("%-12s point %s\n", v.text(p, v.aqm).c_str(),
                  runner::to_string(status));
      if (out.json != nullptr) {
        rtt_mix_json_failed(*out.json, out.json_first, p.index, status,
                            v.text(p, v.aqm).c_str());
      }
      return;
    case TemplateId::kResilience:
      std::printf("%-12s %-16s point %s\n", v.text(p, v.aqm).c_str(),
                  v.text(p, v.fault).c_str(), runner::to_string(status));
      if (out.json != nullptr) {
        resilience_json_failed(*out.json, out.json_first, p.index, status,
                               v.text(p, v.aqm).c_str(),
                               v.text(p, v.fault).c_str(),
                               v.num(p, v.fluid));
      }
      return;
  }
}

/// Journal location: --journal wins, then <json>.journal, then a name
/// derived from the campaign (shards get their slice in the filename so N
/// workers in one directory never collide).
std::string campaign_journal_path(const campaign::Expansion& x,
                                  const CampaignCli& cli,
                                  const Options& opts) {
  if (!opts.journal_path.empty()) return opts.journal_path;
  if (cli.has_shard) {
    return x.name + ".shard" + std::to_string(cli.shard_index) + "of" +
           std::to_string(cli.shard_count) + ".journal";
  }
  if (!opts.json_path.empty()) return opts.json_path + ".journal";
  return x.name + ".journal";
}

// ---- run modes -------------------------------------------------------------

int run_list(const campaign::Expansion& x) {
  std::printf("# campaign %s (%s): %zu point(s), digest %016llx\n",
              x.name.c_str(), campaign::to_string(x.template_id),
              x.points.size(), static_cast<unsigned long long>(x.digest));
  for (const auto& p : x.points) {
    std::printf("%4zu  seed=%llu ", p.index,
                static_cast<unsigned long long>(p.seed));
    for (std::size_t a = 0; a < x.axes.size(); ++a) {
      std::printf(" %s=%s", x.axes[a].name.c_str(),
                  axis_value_str(p.values[a]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int run_campaign(const campaign::Expansion& x, const CampaignCli& cli,
                 const Options& opts) {
  const TemplateView v{x};
  const campaign::ShardRange range =
      cli.has_shard
          ? campaign::shard_range(x.points.size(), cli.shard_index,
                                  cli.shard_count)
          : campaign::ShardRange{0, x.points.size()};
  const std::size_t n = range.hi - range.lo;

  durable::ShutdownController::install();
  const std::string journal_file = campaign_journal_path(x, cli, opts);

  // --resume: the lenient loader drops the torn tail a SIGKILL leaves; the
  // writer below reopens *fresh* and the consume loop re-appends every valid
  // point in index order, so the resumed journal is compacted — the strict
  // merge loader accepts it, and its bytes match an uninterrupted run's.
  std::vector<const std::string*> replay_payload(n, nullptr);
  std::vector<std::unique_ptr<scenario::RunResult>> replay(n);
  durable::LoadedJournal loaded;
  if (opts.resume) {
    loaded = durable::load_journal(journal_file, x.digest);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different campaign "
                   "(header %016llx, expected %016llx); ignoring it\n",
                   journal_file.c_str(),
                   static_cast<unsigned long long>(loaded.header_key),
                   static_cast<unsigned long long>(x.digest));
    }
    if (loaded.dropped > 0) {
      std::fprintf(stderr,
                   "resume: dropped %zu torn/corrupt journal record(s); "
                   "affected points re-run\n",
                   loaded.dropped);
    }
    if (loaded.header_ok) {
      std::size_t replayed = 0;
      for (std::size_t j = 0; j < n; ++j) {
        const auto it = loaded.points.find(x.points[range.lo + j].key);
        if (it == loaded.points.end()) continue;
        auto result = std::make_unique<scenario::RunResult>();
        if (durable::decode_result(it->second, *result).ok()) {
          replay[j] = std::move(result);
          replay_payload[j] = &it->second;
          ++replayed;
        } else {
          std::fprintf(stderr,
                       "resume: undecodable payload for point %zu; "
                       "re-running\n",
                       range.lo + j);
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %zu point(s) from %s%s\n",
                   replayed, n, journal_file.c_str(),
                   loaded.interrupted > 0 ? " (previous run was interrupted)"
                                          : "");
    }
  }

  durable::JournalWriter journal{journal_file, x.digest,
                                 /*keep_existing=*/false};
  if (!journal.healthy()) {
    std::fprintf(stderr,
                 "warning: run journal unavailable (%s); this campaign will "
                 "not be resumable or mergeable\n",
                 journal.status().message().c_str());
  } else {
    durable::ShardInfo shard;
    shard.present = true;
    shard.campaign = x.name;
    shard.digest = x.digest;
    shard.index = cli.shard_index;
    shard.count = cli.shard_count;
    shard.lo = range.lo;
    shard.hi = range.hi;
    (void)journal.append_shard(shard);
  }

  OutputSinks out{x, opts};
  const runner::ParallelRunner pool{opts.jobs};
  const bool telemetry_on = !opts.telemetry_dir.empty();
  telemetry::MetricsRegistry aggregate_registry;
  telemetry::SectionProfile aggregate_profile;
  std::size_t replayed_count = 0;
  for (const auto& r : replay) {
    if (r != nullptr) ++replayed_count;
  }

  struct PointOutcome {
    scenario::RunResult result;
    std::shared_ptr<telemetry::Recorder> recorder;
  };

  std::mutex error_mutex;
  std::vector<std::string> last_error(n);
  std::size_t interrupted_points = 0;

  const runner::RunReport report = pool.run_ordered_guarded<PointOutcome>(
      n,
      [&](std::size_t j) {
        if (replay[j] != nullptr) {
          PointOutcome outcome;
          outcome.result = *replay[j];
          return outcome;
        }
        try {
          detail::maybe_inject(opts, range.lo + j);
          PointOutcome outcome;
          if (telemetry_on) {
            outcome.recorder = std::make_shared<telemetry::Recorder>(
                detail::point_recorder_config(opts, range.lo + j));
          }
          outcome.result = run_point(v, opts, x.points[range.lo + j],
                                     outcome.recorder.get());
          return outcome;
        } catch (const std::exception& ex) {
          const std::lock_guard<std::mutex> lock{error_mutex};
          last_error[j] = ex.what();
          throw;
        }
      },
      [&](std::size_t j, runner::TaskStatus status, PointOutcome* outcome) {
        const campaign::CampaignPoint& p = x.points[range.lo + j];
        if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_points;
          return;
        }
        if (status != runner::TaskStatus::kOk || outcome == nullptr) {
          std::string message;
          if (status == runner::TaskStatus::kTimeout) {
            message = "wall-clock deadline exceeded (--deadline-s " +
                      std::to_string(opts.deadline_s) + ")";
          } else {
            const std::lock_guard<std::mutex> lock{error_mutex};
            message = last_error[j].empty() ? "unknown error" : last_error[j];
          }
          consume_failed(v, out, p, status, message);
          return;
        }
        // Journal before consume; replayed points re-append their original
        // bytes (the compaction), fresh points their own encoding.
        if (journal.healthy()) {
          (void)journal.append_point(
              p.key, replay_payload[j] != nullptr
                         ? *replay_payload[j]
                         : durable::encode_result(outcome->result));
        }
        std::string manifest_path;
        if (outcome->recorder != nullptr) {
          manifest_path = outcome->recorder->manifest_path();
          std::printf("# telemetry: %s\n", manifest_path.c_str());
          aggregate_registry.merge_from(outcome->recorder->registry());
          aggregate_profile.merge_from(outcome->recorder->profile());
          outcome->recorder.reset();
        } else if (telemetry_on && replay[j] != nullptr) {
          manifest_path = opts.telemetry_dir + "/" +
                          detail::point_run_id(range.lo + j) +
                          ".manifest.json";
        }
        consume_point(v, out, p, outcome->result, manifest_path);
      },
      detail::guard_options(opts));

  if (durable::ShutdownController::requested()) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    out.abort();
    std::fprintf(stderr,
                 "campaign: interrupted — %zu point(s) unfinished; re-run "
                 "with --resume to finish (journal: %s)\n",
                 interrupted_points, journal_file.c_str());
    return durable::ShutdownController::kExitInterrupted;
  }
  out.commit();

  if (telemetry_on) {
    if (replayed_count > 0) {
      std::fprintf(stderr,
                   "campaign: %zu replayed point(s) have no fresh telemetry; "
                   "skipping sweep_aggregate.prom\n",
                   replayed_count);
    } else {
      telemetry::PrometheusExporter aggregate{opts.telemetry_dir +
                                              "/sweep_aggregate.prom"};
      aggregate_registry.freeze_gauges();
      aggregate.finish(aggregate_registry);
      aggregate_profile.print(stderr, "campaign wall-clock sections");
    }
  }

  std::printf("# points ok: %zu/%zu\n", report.ok_count(),
              report.status.size());
  // The paper's robustness claim, as a semantic gate: PI2 must reconverge
  // at least as fast as PIE on every fault preset. A shard sees only a
  // slice of the grid, so the cross-point comparison is left to --merge.
  if (x.template_id == campaign::TemplateId::kResilience && !cli.has_shard) {
    if (!out.resilience_gate.check()) out.healthy = false;
  }
  return report.all_ok() && out.healthy ? 0 : 1;
}

int run_merge(const campaign::Expansion& x, const CampaignCli& cli,
              const Options& opts) {
  campaign::MergeResult merged;
  const durable::Status status =
      campaign::merge_shards(x, cli.merge_paths, merged);
  if (!status.ok()) {
    std::fprintf(stderr, "pi2_campaign: merge: %s\n",
                 status.message().c_str());
    return status_exit(status);
  }
  if (merged.interrupted > 0) {
    std::fprintf(stderr,
                 "merge: note: %zu interruption marker(s) across shards "
                 "(coverage is complete, so they are historical)\n",
                 merged.interrupted);
  }

  // The merged journal: header + shard 1/1 + every point in global index
  // order — byte-identical to what a serial run writes.
  const std::string journal_file = campaign_journal_path(x, cli, opts);
  durable::JournalWriter journal{journal_file, x.digest,
                                 /*keep_existing=*/false};
  if (!journal.healthy()) {
    std::fprintf(stderr, "pi2_campaign: merge: cannot write %s: %s\n",
                 journal_file.c_str(), journal.status().message().c_str());
    return status_exit(journal.status());
  }
  durable::ShardInfo shard;
  shard.present = true;
  shard.campaign = x.name;
  shard.digest = x.digest;
  shard.index = 1;
  shard.count = 1;
  shard.lo = 0;
  shard.hi = x.points.size();
  durable::Status write = journal.append_shard(shard);
  for (std::size_t i = 0; i < x.points.size() && write.ok(); ++i) {
    write = journal.append_point(x.points[i].key, merged.payloads[i]);
  }
  if (!write.ok()) {
    std::fprintf(stderr, "pi2_campaign: merge: journal write failed: %s\n",
                 write.message().c_str());
    return status_exit(write);
  }

  // Replay the merged payloads through the identical consume path, so the
  // table and --json match a serial run of the same spec. Manifest paths are
  // reconstructed from the point index exactly as --resume does: the shards
  // wrote their telemetry under the same deterministic per-point run ids.
  const TemplateView v{x};
  OutputSinks out{x, opts};
  const bool telemetry_on = !opts.telemetry_dir.empty();
  for (std::size_t i = 0; i < x.points.size(); ++i) {
    scenario::RunResult result;
    const durable::Status decode =
        durable::decode_result(merged.payloads[i], result);
    if (!decode.ok()) {
      out.abort();
      std::fprintf(stderr,
                   "pi2_campaign: merge: point %zu payload undecodable: %s\n",
                   i, decode.message().c_str());
      return status_exit(durable::Status::corrupt(decode.message()));
    }
    std::string manifest_path;
    if (telemetry_on) {
      manifest_path = opts.telemetry_dir + "/" + detail::point_run_id(i) +
                      ".manifest.json";
    }
    consume_point(v, out, x.points[i], result, manifest_path);
  }
  out.commit();
  if (x.template_id == campaign::TemplateId::kResilience) {
    if (!out.resilience_gate.check()) out.healthy = false;
  }
  std::printf("# merged %zu shard journal(s), %zu point(s) -> %s\n",
              merged.shards, x.points.size(), journal_file.c_str());
  return out.healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --help must short-circuit before parse_options, whose own generic
  // --help handler would exit without the template/axis enumeration.
  const CampaignCli cli = parse_campaign_cli(argc, argv);
  if (cli.help) {
    print_usage(stdout);
    return 0;
  }
  const Options opts = parse_options(argc, argv);
  if (!cli.error.empty()) return usage_error(cli.error);
  if (cli.has_shard && !opts.json_path.empty()) {
    return usage_error("--shard runs journal only; --json belongs to the "
                       "serial or --merge run");
  }

  campaign::CampaignSpec spec;
  std::string err = campaign::load_spec(cli.spec_path, spec);
  if (err.empty()) err = spec.validate();
  if (!err.empty()) {
    std::fprintf(stderr, "pi2_campaign: %s\n", err.c_str());
    return 17;
  }

  campaign::ExpandOptions eo;
  eo.full = opts.full;
  eo.grid_cap = opts.grid_cap;
  eo.min_link_mbps = opts.min_link_mbps;
  eo.duration_s_override = opts.duration_s_override;
  eo.stats_start_s_override = opts.stats_start_s_override;
  eo.use_seed = cli.use_seed;
  eo.seed = opts.seed;
  const campaign::Expansion x = campaign::expand(spec, eo);
  if (x.points.empty()) {
    std::fprintf(stderr, "pi2_campaign: campaign '%s' expands to 0 points "
                 "(grid cap or --min-link-mbps removed everything)\n",
                 x.name.c_str());
    return 17;
  }

  // Resolve every fault_schedule value up front: an unknown preset or a
  // malformed literal is a spec authoring error, not a mid-run surprise —
  // and TemplateView's schedule-map lookups become total.
  for (std::size_t a = 0; a < x.axes.size(); ++a) {
    if (x.axes[a].name != "fault_schedule") continue;
    const faults::PresetContext ctx =
        resilience_fault_context(x.link_mbps, x.rtt_ms, x.duration_s);
    for (std::size_t j = 0; j < x.axes[a].values.size(); ++j) {
      faults::FaultSchedule schedule;
      const std::string fault_err = faults::resolve_schedule(
          x.axes[a].values[j].text, ctx, &schedule);
      if (!fault_err.empty()) {
        std::fprintf(stderr, "pi2_campaign: axes[%zu].values[%zu]: %s\n", a, j,
                     fault_err.c_str());
        return 17;
      }
    }
  }

  if (cli.digest_only) {
    std::printf("%016llx\n", static_cast<unsigned long long>(x.digest));
    return 0;
  }
  if (cli.list) return run_list(x);
  if (cli.merge) return run_merge(x, cli, opts);

  print_header(("Campaign " + x.name).c_str(),
               campaign::to_string(x.template_id), opts);
  if (cli.has_shard) {
    const campaign::ShardRange range = campaign::shard_range(
        x.points.size(), cli.shard_index, cli.shard_count);
    std::printf("# shard %zu/%zu: points [%zu, %zu) of %zu\n",
                cli.shard_index, cli.shard_count, range.lo, range.hi,
                x.points.size());
  }
  const TemplateView view{x};
  print_table_header(view);
  return run_campaign(x, cli, opts);
}
