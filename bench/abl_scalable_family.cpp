// Generalization check: the paper argues the coupled PI2/PI arrangement
// works for the *family* of Scalable congestion controls (§5 names DCTCP,
// Relentless and Scalable TCP). Run each of them against a Cubic flow
// through the coupled single queue and verify the k = 2 square coupling
// balances all of them, not just DCTCP.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pi2;
  using namespace pi2::scenario;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Ablation",
                      "coupled PI2 vs the whole Scalable family (Cubic peer)",
                      opts);

  std::printf("%-12s | %-12s %-12s %-10s | %-10s %-10s\n", "scalable cc",
              "cubic[Mbps]", "other[Mbps]", "ratio", "mean[ms]", "p99[ms]");
  for (const auto cc :
       {tcp::CcType::kDctcp, tcp::CcType::kScalable, tcp::CcType::kRelentless}) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 40e6;
    cfg.duration = bench::run_duration(opts);
    cfg.stats_start = bench::stats_start(opts);
    cfg.seed = opts.seed;
    cfg.aqm.type = AqmType::kCoupledPi2;
    TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.base_rtt = sim::from_millis(10);
    TcpFlowSpec scal;
    scal.cc = cc;
    scal.base_rtt = sim::from_millis(10);
    cfg.tcp_flows = {cubic, scal};
    const auto r = run_dumbbell(cfg);
    const double c = r.mean_goodput_mbps(tcp::CcType::kCubic);
    const double s = r.mean_goodput_mbps(cc);
    std::printf("%-12s | %-12.2f %-12.2f %-10.3f | %-10.1f %-10.1f\n",
                std::string(tcp::to_string(cc)).c_str(), c, s,
                s > 0 ? c / s : 0.0, r.mean_qdelay_ms, r.p99_qdelay_ms);
  }
  std::printf(
      "\n# expectation: the queue stays on target for every Scalable control\n"
      "# (they all obey W = g/p', B = 1), but the *rate* balance depends on\n"
      "# the per-control constant g: k = 2 is tuned to DCTCP's g = 2 (ratio\n"
      "# ~1); Relentless has g = 1 (Cubic moderately ahead, ~1.5-2x); classic\n"
      "# Scalable TCP's MIMD constant g = a/b = 0.08 was sized for rare loss\n"
      "# events, so per-packet marking starves it — equal rates would need a\n"
      "# per-control k = g/1.68 exactly as Appendix A's derivation implies.\n");
  return 0;
}
