#include "sim/rng.hpp"

#include <cmath>

namespace pi2::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~std::uint64_t{0} - n + 1) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double mean) {
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -mean * std::log(1.0 - uniform());
}

double Rng::bounded_pareto(double shape, double lo, double hi) {
  const double u = uniform();
  const double l_a = std::pow(lo, shape);
  const double h_a = std::pow(hi, shape);
  return std::pow(-(u * h_a - u * l_a - h_a) / (h_a * l_a), -1.0 / shape);
}

Rng Rng::split() { return Rng{next_u64()}; }

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t index) {
  // Two splitmix64 rounds over a golden-ratio-spaced offset: one round
  // already decorrelates adjacent indices; the second guards against the
  // (base, index) lattice structure leaking into the xoshiro seeding.
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  splitmix64(x);
  return splitmix64(x);
}

}  // namespace pi2::sim
