// Simulation context: clock + scheduler + root RNG.
//
// Components hold a Simulator& and use `at`/`after` to schedule work. The
// simulator is the composition root of a run; it owns nothing but time.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace pi2::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Root RNG; components should `split()` their own streams from it.
  Rng& rng() { return rng_; }

  /// Schedules `fn` at absolute time `at`. Scheduling in the past is almost
  /// always a component bug; the time is clamped to now and counted in
  /// clamped_events() so harnesses can assert it never happens.
  EventHandle at(Time when, UniqueFunction fn) {
    if (when < now_) {
      ++clamped_;
      when = now_;
    }
    return scheduler_.schedule_at(when, std::move(fn));
  }

  /// Schedules `fn` after a relative delay. A negative delay targets the
  /// past and is clamped to now by `at()`, which also counts it in
  /// clamped_events() — negative delays are component bugs exactly like
  /// absolute times in the past, and harnesses assert the counter stays 0.
  EventHandle after(Duration delay, UniqueFunction fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Runs events until the event queue is empty or `until` is reached.
  /// The clock ends at exactly `until` if the queue outlives it.
  void run_until(Time until);

  /// Runs until the event queue is exhausted.
  void run();

  /// Optional external stop flag (graceful shutdown). The run loops poll it
  /// every kStopPollInterval events and return early — at an event boundary,
  /// with the clock at the last executed event — once it reads true.
  /// Borrowed; must outlive the run. nullptr disables polling.
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }

  /// True when the last run()/run_until() returned early because the stop
  /// flag was set (the queue may still hold events).
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return scheduler_.executed(); }

  /// Number of `at()` calls whose target time was in the past and got
  /// clamped to now. Healthy runs keep this at 0.
  [[nodiscard]] std::uint64_t clamped_events() const { return clamped_; }

  /// The underlying scheduler (observability: heap occupancy, compactions).
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }

 private:
  /// Stop-flag polling cadence in events: frequent enough that a shutdown
  /// lands within microseconds of wall time, cheap enough (one relaxed-ish
  /// load per 1024 events) to be invisible in the scheduler hot path.
  static constexpr std::uint64_t kStopPollInterval = 1024;

  [[nodiscard]] bool should_stop();

  Time now_ = kTimeZero;
  Scheduler scheduler_;
  Rng rng_;
  std::uint64_t clamped_ = 0;
  const std::atomic<bool>* stop_ = nullptr;
  bool stopped_ = false;
};

}  // namespace pi2::sim
