// Move-only `void()` callable with small-buffer optimization.
//
// The scheduler stores one callback per event; with std::function every
// capture beyond two pointers heap-allocates and every handle copy touches
// an atomic refcount. Simulation callbacks are almost always small lambdas
// (a couple of captured pointers), so a fixed inline buffer removes the
// allocation from the per-event path entirely. Move-only semantics are
// enough — the scheduler never copies a stored callback.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pi2::sim {

class UniqueFunction {
 public:
  /// Inline capture budget. Sized for the common scheduler callbacks (a few
  /// pointers plus a small value); larger callables fall back to the heap.
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      vtable_ = &kInlineVtable<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      vtable_ = &kHeapVtable<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void operator()() { vtable_->invoke(target()); }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*destroy)(void*);
    /// Move-constructs dst from src and destroys src. Null for heap-stored
    /// callables, whose moves are a pointer swap.
    void (*relocate)(void* src, void* dst);
  };

  template <typename Fn>
  static void invoke_impl(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void destroy_inline(void* p) {
    static_cast<Fn*>(p)->~Fn();
  }
  template <typename Fn>
  static void destroy_heap(void* p) {
    delete static_cast<Fn*>(p);
  }
  template <typename Fn>
  static void relocate_impl(void* src, void* dst) {
    ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
    static_cast<Fn*>(src)->~Fn();
  }

  template <typename Fn>
  static constexpr VTable kInlineVtable{&invoke_impl<Fn>, &destroy_inline<Fn>,
                                        &relocate_impl<Fn>};
  template <typename Fn>
  static constexpr VTable kHeapVtable{&invoke_impl<Fn>, &destroy_heap<Fn>,
                                      nullptr};

  [[nodiscard]] void* target() {
    return heap_ != nullptr ? heap_ : static_cast<void*>(buffer_);
  }

  void move_from(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (other.heap_ != nullptr) {
        heap_ = other.heap_;
        other.heap_ = nullptr;
      } else {
        vtable_->relocate(other.buffer_, buffer_);
      }
    }
    other.vtable_ = nullptr;
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(target());
      heap_ = nullptr;
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  void* heap_ = nullptr;
  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
};

}  // namespace pi2::sim
