#include "sim/simulator.hpp"

namespace pi2::sim {

void Simulator::run_until(Time until) {
  // The clock must advance *before* the event executes, so that callbacks
  // observe now() == their scheduled time.
  while (!scheduler_.empty() && scheduler_.next_time() <= until) {
    now_ = scheduler_.next_time();
    scheduler_.run_next();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!scheduler_.empty()) {
    now_ = scheduler_.next_time();
    scheduler_.run_next();
  }
}

}  // namespace pi2::sim
