#include "sim/simulator.hpp"

namespace pi2::sim {

bool Simulator::should_stop() {
  if (stop_ == nullptr) return false;
  if (scheduler_.executed() % kStopPollInterval != 0) return false;
  if (!stop_->load(std::memory_order_acquire)) return false;
  stopped_ = true;
  return true;
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  // The clock must advance *before* the event executes, so that callbacks
  // observe now() == their scheduled time.
  while (!scheduler_.empty() && scheduler_.next_time() <= until) {
    if (should_stop()) return;
    now_ = scheduler_.next_time();
    scheduler_.run_next();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  stopped_ = false;
  while (!scheduler_.empty()) {
    if (should_stop()) return;
    now_ = scheduler_.next_time();
    scheduler_.run_next();
  }
}

}  // namespace pi2::sim
