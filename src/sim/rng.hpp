// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256++ (Blackman & Vigna) seeded via splitmix64. Chosen over
// std::mt19937_64 for speed (the AQM drop decision consumes one or two
// uniforms per packet) and for a guaranteed cross-platform stream, so that
// experiment tables are reproducible bit-for-bit from their seeds.
#pragma once

#include <array>
#include <cstdint>

namespace pi2::sim {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <algorithm>/<random>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Unbiased via rejection sampling.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Bounded Pareto sample (shape > 0, 0 < lo < hi); used by the web-like
  /// short-flow workload generator for heavy-tailed flow sizes.
  double bounded_pareto(double shape, double lo, double hi);

  /// Splits off an independently-seeded child stream; deterministic in the
  /// parent state. Used to give each flow its own stream.
  Rng split();

  /// Derives the seed of stream `index` from `base` without any shared
  /// state: the same splitmix64 mixing split() relies on, applied to a
  /// per-index offset. Safe to call concurrently; distinct indices yield
  /// statistically independent streams. Used by the parallel experiment
  /// runner to give every grid point its own reproducible stream.
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pi2::sim
