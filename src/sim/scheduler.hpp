// Discrete-event scheduler: a binary heap of (time, sequence, callback).
//
// Events scheduled for the same instant execute in scheduling order (the
// sequence number breaks ties), which keeps runs deterministic. Cancellation
// is lazy and O(1): an EventHandle points into a slab of generation-counted
// slots owned by the scheduler; cancelling flips the slot's live bit and the
// dead heap entry is skipped when it surfaces — or reclaimed wholesale by a
// compaction pass once dead entries outnumber live ones, so timer-churn-heavy
// runs (RTO timers, PI update ticks) never carry unbounded cancelled garbage.
//
// Callbacks are stored in a move-only small-buffer UniqueFunction instead of
// std::function, and handles are (slot index, generation) pairs instead of
// shared_ptr<bool>, which removes two heap allocations and the refcount
// traffic from the per-event hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace pi2::sim {

class Scheduler;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles refer to no event. Copies share the same underlying event. A
/// handle must not outlive the scheduler that issued it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* scheduler, std::uint32_t slot, std::uint32_t generation)
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}

  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Scheduler {
 public:
  /// Schedules `fn` to run at absolute time `at`. `at` must not be before
  /// the current time of the owning simulator (checked by Simulator).
  EventHandle schedule_at(Time at, UniqueFunction fn);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event; kTimeInfinity if none.
  [[nodiscard]] Time next_time() const;

  /// Pops and runs the earliest live event; returns its time.
  /// Precondition: !empty().
  Time run_next();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Heap entries currently held, including cancelled ones awaiting
  /// reclamation. Bounded at < 2x the live count by compaction.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

  /// Scheduled-and-not-yet-cancelled events in the heap.
  [[nodiscard]] std::size_t live_size() const { return heap_.size() - dead_; }

  /// Number of compaction passes performed (observability / tests).
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  friend class EventHandle;

  /// Heap entries are trivially-copyable 24-byte records: every sift during
  /// push/pop moves only these, never a callback. The callback lives in the
  /// slab slot and is touched exactly twice: stored on schedule, moved out
  /// on fire.
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  /// One slab slot per in-heap event. `generation` invalidates stale handles
  /// once the slot is recycled; `live` is cleared by cancel() or on fire.
  /// Cancelling destroys the callback immediately (releasing its captures)
  /// even though the heap entry lingers until skim/compaction.
  struct Slot {
    UniqueFunction fn;
    std::uint32_t generation = 0;
    bool live = false;
  };

  void cancel(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] bool pending(std::uint32_t slot, std::uint32_t generation) const;

  std::uint32_t allocate_slot();
  /// Recycles a slot whose heap entry has been removed (fired or skimmed).
  void release_slot(std::uint32_t slot);

  /// Drops cancelled entries from the top of the heap.
  void skim();
  /// Rebuilds the heap without its dead entries once they are the majority.
  void maybe_compact();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t dead_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace pi2::sim
