// Discrete-event scheduler: a binary heap of (time, sequence, callback).
//
// Events scheduled for the same instant execute in scheduling order (the
// sequence number breaks ties), which keeps runs deterministic. Cancellation
// is lazy: an EventHandle flips a shared flag and the dead entry is skipped
// when it reaches the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace pi2::sim {

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles refer to no event. Copies share the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Scheduler {
 public:
  /// Schedules `fn` to run at absolute time `at`. `at` must not be before
  /// the current time of the owning simulator (checked by Simulator).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event; kTimeInfinity if none.
  [[nodiscard]] Time next_time() const;

  /// Pops and runs the earliest live event; returns its time.
  /// Precondition: !empty().
  Time run_next();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the top of the heap.
  void skim();

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace pi2::sim
