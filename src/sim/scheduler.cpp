#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pi2::sim {

namespace {
/// Below this heap size compaction is pointless churn; skim() handles it.
constexpr std::size_t kMinCompactionSize = 64;
}  // namespace

void EventHandle::cancel() {
  if (scheduler_ != nullptr) scheduler_->cancel(slot_, generation_);
}

bool EventHandle::pending() const {
  return scheduler_ != nullptr && scheduler_->pending(slot_, generation_);
}

EventHandle Scheduler::schedule_at(Time at, UniqueFunction fn) {
  const std::uint32_t slot = allocate_slot();
  const std::uint32_t generation = slots_[slot].generation;
  slots_[slot].fn = std::move(fn);
  heap_.push_back(Entry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle{this, slot, generation};
}

std::uint32_t Scheduler::allocate_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].live = true;
  return slot;
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = UniqueFunction{};
  s.live = false;
  ++s.generation;
  free_slots_.push_back(slot);
}

void Scheduler::cancel(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != generation || !s.live) return;
  s.live = false;
  // Free the callback (and whatever it captures) right away; the heap entry
  // itself is skipped lazily or reclaimed by compaction.
  s.fn = UniqueFunction{};
  ++dead_;
  maybe_compact();
}

bool Scheduler::pending(std::uint32_t slot, std::uint32_t generation) const {
  return slot < slots_.size() && slots_[slot].generation == generation &&
         slots_[slot].live;
}

void Scheduler::skim() {
  while (!heap_.empty() && !slots_[heap_.front().slot].live) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    release_slot(heap_.back().slot);
    heap_.pop_back();
    --dead_;
  }
}

void Scheduler::maybe_compact() {
  if (heap_.size() < kMinCompactionSize || dead_ * 2 < heap_.size()) return;
  auto is_dead = [this](const Entry& e) { return !slots_[e.slot].live; };
  for (const Entry& e : heap_) {
    if (is_dead(e)) release_slot(e.slot);
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), is_dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  dead_ = 0;
  ++compactions_;
}

bool Scheduler::empty() const {
  const_cast<Scheduler*>(this)->skim();
  return heap_.empty();
}

Time Scheduler::next_time() const {
  const_cast<Scheduler*>(this)->skim();
  return heap_.empty() ? kTimeInfinity : heap_.front().at;
}

Time Scheduler::run_next() {
  skim();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  // Move the callback out before running it: it may schedule new events,
  // which mutates both the heap and the slab. The slot is released first so
  // that pending() is false and the slot is reusable inside the callback.
  UniqueFunction fn = std::move(slots_[entry.slot].fn);
  release_slot(entry.slot);
  ++executed_;
  fn();
  return entry.at;
}

}  // namespace pi2::sim
