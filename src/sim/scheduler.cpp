#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace pi2::sim {

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle Scheduler::schedule_at(Time at, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  heap_.push(Entry{at, next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

void Scheduler::skim() {
  while (!heap_.empty() && !*heap_.top().alive) heap_.pop();
}

bool Scheduler::empty() const {
  const_cast<Scheduler*>(this)->skim();
  return heap_.empty();
}

Time Scheduler::next_time() const {
  const_cast<Scheduler*>(this)->skim();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

Time Scheduler::run_next() {
  skim();
  assert(!heap_.empty());
  // Move the entry out before popping: the callback may schedule new events,
  // which mutates the heap.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  *entry.alive = false;
  ++executed_;
  entry.fn();
  return entry.at;
}

}  // namespace pi2::sim
