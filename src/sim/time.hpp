// Simulated time: 64-bit integer nanoseconds.
//
// The simulation clock never uses floating point, so event ordering is exact
// and runs are bit-for-bit reproducible. Helpers convert to/from seconds for
// the analytic layers (control theory, statistics) that naturally work in
// floating point.
#pragma once

#include <chrono>
#include <cstdint>

namespace pi2::sim {

/// Absolute simulated time since the start of the run.
using Time = std::chrono::nanoseconds;

/// Relative simulated time.
using Duration = std::chrono::nanoseconds;

inline constexpr Time kTimeZero{0};

/// Largest representable time; used as "never".
inline constexpr Time kTimeInfinity{std::chrono::nanoseconds::max()};

/// Converts a floating-point number of seconds to a Duration (rounds to ns).
constexpr Duration from_seconds(double seconds) {
  return Duration{static_cast<std::int64_t>(seconds * 1e9 + (seconds >= 0 ? 0.5 : -0.5))};
}

/// Converts a Duration to floating-point seconds.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-9;
}

/// Converts a Duration to floating-point milliseconds.
constexpr double to_millis(Duration d) {
  return static_cast<double>(d.count()) * 1e-6;
}

constexpr Duration from_millis(double millis) { return from_seconds(millis * 1e-3); }

}  // namespace pi2::sim
