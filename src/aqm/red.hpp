// RED — Random Early Detection (Floyd & Jacobson 1993), with the "gentle"
// extension. Included as the historical baseline the PI line of work
// replaced; also used by the Curvy-RED comparison in the DualQ draft.
#pragma once

#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::aqm {

class RedAqm : public net::QueueDiscipline {
 public:
  struct Params {
    std::int64_t min_th_bytes = 30000;
    std::int64_t max_th_bytes = 90000;
    double max_p = 0.1;
    double weight = 0.002;  ///< EWMA weight for the average queue
    bool gentle = true;     ///< ramp to 1.0 between max_th and 2*max_th
    bool ecn = true;
  };

  RedAqm();
  explicit RedAqm(Params params) : params_(params) {}

  Verdict enqueue(const net::Packet& packet) override;

  [[nodiscard]] double classic_probability() const override { return last_prob_; }
  [[nodiscard]] double avg_queue_bytes() const { return avg_; }

 private:
  [[nodiscard]] double drop_probability() const;

  Params params_;
  double avg_ = 0.0;
  double last_prob_ = 0.0;
  std::int64_t count_since_mark_ = -1;  // -1: not in drop-eligible region
};

}  // namespace pi2::aqm
