// Plain PI AQM (Hollot et al. 2002): the paper-equation-(4) controller with
// fixed gains and the probability applied directly to every packet.
//
// With Classic TCP this is the unstable/aggressive "pi" curve of Figure 6;
// with a Scalable control (DCTCP) the loop is inherently linear and this is
// the "scal pi" configuration of Figure 7.
#pragma once

#include "aqm/pi_core.hpp"
#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::aqm {

class PiAqm : public net::QueueDiscipline {
 public:
  struct Params {
    pi2::sim::Duration target = pi2::sim::from_millis(20);
    pi2::sim::Duration t_update = pi2::sim::from_millis(32);
    double alpha_hz = 0.125;
    double beta_hz = 1.25;
    bool ecn = true;  ///< mark ECN-capable packets instead of dropping
    double max_prob = 1.0;
  };

  PiAqm();
  explicit PiAqm(Params params)
      : params_(params), pi_(params.alpha_hz, params.beta_hz, params.max_prob) {}

  void install(pi2::sim::Simulator& sim, const net::QueueView& view) override;
  Verdict enqueue(const net::Packet& packet) override;

  [[nodiscard]] double classic_probability() const override { return pi_.prob(); }
  [[nodiscard]] std::uint64_t guard_events() const override { return pi_.guard_events(); }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  void schedule_update();

  Params params_;
  PiCore pi_;
};

}  // namespace pi2::aqm
