// Curvy RED — the RED-like coupled AQM given as the example in the DualQ
// Coupled draft the paper cites ([13]). Instead of a PI controller, the
// Scalable marking probability is read directly off a ramp of the (EWMA
// smoothed) queue delay, and the Classic probability is its coupled square:
//
//   p_s = clamp((avg_qdelay - ramp_start) / ramp_range, 0, 1)
//   p_c = (p_s / k)^2          (drop iff max(Y1, Y2) < p_s / k)
//
// Included as the baseline that shows why the paper prefers PI2: a queue-
// position curve pushes back with *standing* queue (RED's old problem),
// while the PI integral holds the queue at the target regardless of load.
#pragma once

#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::aqm {

class CurvyRedAqm : public net::QueueDiscipline {
 public:
  struct Params {
    pi2::sim::Duration ramp_start = pi2::sim::from_millis(5);
    pi2::sim::Duration ramp_range = pi2::sim::from_millis(30);
    double k = 2.0;        ///< Scalable/Classic coupling factor
    double weight = 0.05;  ///< EWMA weight on the per-packet delay samples
    bool ecn = true;       ///< mark Classic ECT(0) instead of dropping
  };

  CurvyRedAqm();
  explicit CurvyRedAqm(Params params) : params_(params) {}

  Verdict enqueue(const net::Packet& packet) override;

  [[nodiscard]] double classic_probability() const override;
  [[nodiscard]] double scalable_probability() const override;
  [[nodiscard]] double avg_qdelay_s() const { return avg_qdelay_s_; }

 private:
  Params params_;
  double avg_qdelay_s_ = 0.0;
};

}  // namespace pi2::aqm
