#include "aqm/pi.hpp"

namespace pi2::aqm {

using pi2::sim::to_seconds;

PiAqm::PiAqm() : PiAqm(Params{}) {}

void PiAqm::install(pi2::sim::Simulator& sim, const net::QueueView& view) {
  QueueDiscipline::install(sim, view);
  schedule_update();
}

void PiAqm::schedule_update() {
  sim().after(params_.t_update, [this] {
    pi_.update(to_seconds(view().queue_delay()), to_seconds(params_.target));
    schedule_update();
  });
}

PiAqm::Verdict PiAqm::enqueue(const net::Packet& packet) {
  if (rng().uniform() >= pi_.prob()) return Verdict::kAccept;
  if (params_.ecn && net::ecn_capable(packet.ecn)) return Verdict::kMark;
  return Verdict::kDrop;
}

}  // namespace pi2::aqm
