// The Proportional Integral update law shared by PI, PIE and PI2.
//
// Paper equation (4):
//   p(t) = p(t-T) + alpha (tau(t) - tau_0) + beta (tau(t) - tau(t-T))
// with alpha and beta in Hz and queue delays in seconds. The probability is
// clamped to [0, max]. PIE applies its autotune scaling to the delta before
// integration; PI2 integrates unscaled and squares on application.
//
// The integrator saturates instead of corrupting: a non-finite delta or
// delay sample (NaN/inf from a poisoned rate estimate or a faulted link)
// leaves the previous state untouched and bumps guard_events(), so one bad
// sample cannot poison the probability for the rest of the run. The
// InvariantMonitor reports a growing guard counter as a violation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace pi2::aqm {

/// Overload cap on the applied Classic drop/mark probability (paper §5:
/// 25%). Shared by the whole PI2 family (PI2, coupled PI2, DualPI2) so the
/// default cannot drift between the core AQMs and the scenario factory.
inline constexpr double kDefaultMaxClassicProb = 0.25;

class PiCore {
 public:
  PiCore(double alpha_hz, double beta_hz, double max_prob = 1.0)
      : alpha_hz_(alpha_hz), beta_hz_(beta_hz), max_prob_(max_prob) {}

  /// Returns the raw (unscaled) delta for this interval.
  [[nodiscard]] double delta(double qdelay_s, double target_s) const {
    return alpha_hz_ * (qdelay_s - target_s) + beta_hz_ * (qdelay_s - prev_qdelay_s_);
  }

  /// Integrates `dp` and records the delay sample for the next interval.
  /// Non-finite inputs are rejected (state keeps its previous value) and
  /// counted in guard_events().
  void integrate(double dp, double qdelay_s) {
    const double next = prob_ + dp;
    if (std::isfinite(next)) {
      prob_ = std::clamp(next, 0.0, max_prob_);
    } else {
      ++guard_events_;
    }
    if (std::isfinite(qdelay_s)) {
      prev_qdelay_s_ = qdelay_s;
    } else {
      ++guard_events_;
    }
  }

  /// Convenience: unscaled update (plain PI and PI2).
  void update(double qdelay_s, double target_s) {
    integrate(delta(qdelay_s, target_s), qdelay_s);
  }

  /// Multiplies the probability by `factor` (PIE's idle decay).
  void decay(double factor) {
    const double next = prob_ * factor;
    if (std::isfinite(next)) {
      prob_ = std::clamp(next, 0.0, max_prob_);
    } else {
      ++guard_events_;
    }
  }

  [[nodiscard]] double prob() const { return prob_; }
  [[nodiscard]] double prev_qdelay_s() const { return prev_qdelay_s_; }
  [[nodiscard]] double alpha_hz() const { return alpha_hz_; }
  [[nodiscard]] double beta_hz() const { return beta_hz_; }

  /// Times a non-finite delta/sample was rejected. Healthy runs keep this 0.
  [[nodiscard]] std::uint64_t guard_events() const { return guard_events_; }

  void reset() {
    prob_ = 0.0;
    prev_qdelay_s_ = 0.0;
  }

 private:
  double alpha_hz_;
  double beta_hz_;
  double max_prob_;
  double prob_ = 0.0;
  double prev_qdelay_s_ = 0.0;
  std::uint64_t guard_events_ = 0;
};

}  // namespace pi2::aqm
