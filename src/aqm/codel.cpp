#include "aqm/codel.hpp"

#include <algorithm>

namespace pi2::aqm {

using pi2::sim::Time;

CodelAqm::CodelAqm() : CodelAqm(Params{}) {}

CodelAqm::Verdict CodelAqm::dequeue(const net::Packet& packet) {
  const Time now = sim().now();
  const auto sojourn = now - packet.enqueued_at;

  // Track whether sojourn has stayed above target for a full interval.
  bool ok_to_drop = false;
  if (sojourn < params_.target || view().backlog_bytes() < 2 * packet.size) {
    has_first_above_ = false;
  } else {
    if (!has_first_above_) {
      has_first_above_ = true;
      first_above_time_ = now + params_.interval;
    } else if (now >= first_above_time_) {
      ok_to_drop = true;
    }
  }

  auto signal = [&]() -> Verdict {
    if (params_.ecn && net::ecn_capable(packet.ecn)) return Verdict::kMark;
    return Verdict::kDrop;
  };

  if (dropping_) {
    if (!ok_to_drop) {
      dropping_ = false;
      return Verdict::kAccept;
    }
    if (now >= drop_next_) {
      ++count_;
      drop_next_ = drop_next_ + control_law(drop_next_);
      return signal();
    }
    return Verdict::kAccept;
  }

  if (ok_to_drop) {
    dropping_ = true;
    // Restart close to the previous drop rate if we were dropping recently.
    count_ = (count_ > 2 && now - drop_next_ < 16 * params_.interval) ? count_ - 2 : 1;
    drop_next_ = now + control_law(now);
    return signal();
  }
  return Verdict::kAccept;
}

}  // namespace pi2::aqm
