// Instantaneous step marker — DCTCP's classic data-centre AQM: mark every
// ECN-capable packet while the queue exceeds a threshold K.
//
// Appendix A distinguishes this from PI-style probabilistic marking: a step
// threshold produces on-off RTT-length marking trains and the steady state
// W = 2/p^2 (equation (12)), whereas a probabilistic marker yields W = 2/p
// (equation (11)) — the phenomenon Irteza et al. found empirically. The
// property tests validate both laws against this implementation.
#pragma once

#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::aqm {

class StepMarkerAqm : public net::QueueDiscipline {
 public:
  struct Params {
    /// Threshold in time units (converted via the link rate); DCTCP's
    /// guidance is K ~ C*RTT/7. 1 ms at 40 Mb/s ~ 3.3 packets.
    pi2::sim::Duration threshold = pi2::sim::from_millis(1);
    /// Drop non-ECN-capable packets above the threshold instead of letting
    /// them through (a step *dropper* — the data-centre default is
    /// mark-only because everything there is ECN-capable).
    bool drop_not_ect = false;
  };

  StepMarkerAqm();
  explicit StepMarkerAqm(Params params) : params_(params) {}

  Verdict enqueue(const net::Packet& packet) override;

  [[nodiscard]] std::int64_t marks() const { return marks_; }

 private:
  Params params_;
  std::int64_t marks_ = 0;
};

}  // namespace pi2::aqm
