// PIE — Proportional Integral controller Enhanced (Pan et al. 2013,
// RFC 8033), as implemented in the Linux sch_pie qdisc the paper compares
// against.
//
// Enhancements over plain PI, all reproduced here and individually
// switchable so bare-PIE (the paper's heuristic-free control) and ablations
// can share the code:
//  * queue measured in units of time, via a departure-rate estimator;
//  * stepped autotune scaling of the PI gains with the magnitude of p
//    (the lookup table the paper shows tracks sqrt(2p), Figure 5);
//  * burst allowance after idle periods;
//  * "safeguard" suppression of drops when p < 20% and delay < target/2;
//  * ECN marking only while p <= 10%, dropping above;
//  * delta clamp of 2% when p >= 10%, and delta = 2% when delay > 250 ms;
//  * multiplicative decay of p while the queue is idle.
#pragma once

#include "aqm/pi_core.hpp"
#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::aqm {

class PieAqm : public net::QueueDiscipline {
 public:
  struct Params {
    pi2::sim::Duration target = pi2::sim::from_millis(20);    // Table 1
    pi2::sim::Duration t_update = pi2::sim::from_millis(32);  // paper figures
    double alpha_hz = 2.0 / 16.0;  // Table 1
    double beta_hz = 20.0 / 16.0;  // Table 1
    pi2::sim::Duration burst_allowance = pi2::sim::from_millis(100);
    bool ecn = true;
    /// Above this probability ECN-capable packets are dropped, not marked
    /// (Linux default 0.1). The paper's coexistence runs rework this rule;
    /// set to 1.0 to always mark.
    double ecn_drop_threshold = 0.1;
    bool autotune = true;    ///< the stepped gain-scaling table
    bool heuristics = true;  ///< false = bare-PIE
    /// Estimate the drain rate from departures (Linux behaviour). When
    /// false, the true link rate from the QueueView is used directly.
    bool departure_rate_estimation = true;
  };

  PieAqm();
  explicit PieAqm(Params params) : params_(params), pi_(params.alpha_hz, params.beta_hz) {}

  /// Makes a bare-PIE configuration: core PI + autotune, heuristics off.
  static Params bare_params();

  /// The stepped autotune factor from RFC 8033 / Linux (Figure 5).
  static double tune_factor(double prob);

  void install(pi2::sim::Simulator& sim, const net::QueueView& view) override;
  Verdict enqueue(const net::Packet& packet) override;
  void dequeue_bytes_hook(std::int64_t bytes);  // departure-rate estimator
  Verdict dequeue(const net::Packet& packet) override;

  [[nodiscard]] double classic_probability() const override { return pi_.prob(); }
  [[nodiscard]] std::uint64_t guard_events() const override { return pi_.guard_events(); }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] double qdelay_estimate_s() const;

 private:
  void update();
  void schedule_update();

  Params params_;
  PiCore pi_;
  double burst_allowance_s_ = 0.0;
  bool had_first_packet_ = false;

  // Departure-rate estimator (Linux: dq_threshold of 16 KB per sample).
  static constexpr std::int64_t kDqThresholdBytes = 16 * 1024;
  bool measuring_ = false;
  pi2::sim::Time measure_start_{};
  std::int64_t measure_bytes_ = 0;
  double avg_drain_rate_Bps_ = 0.0;  // bytes per second; 0 = no estimate yet
};

}  // namespace pi2::aqm
