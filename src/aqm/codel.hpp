// CoDel — Controlled Delay (Nichols & Jacobson 2012).
//
// Included as a modern sojourn-time baseline: it taught PIE to measure the
// queue in units of time (paper §3). Drops happen at dequeue based on the
// packet's measured sojourn, paced by the inverse-sqrt control law.
#pragma once

#include <cmath>
#include <cstdint>

#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::aqm {

class CodelAqm : public net::QueueDiscipline {
 public:
  struct Params {
    pi2::sim::Duration target = pi2::sim::from_millis(5);
    pi2::sim::Duration interval = pi2::sim::from_millis(100);
    bool ecn = true;
  };

  CodelAqm();
  explicit CodelAqm(Params params) : params_(params) {}

  Verdict enqueue(const net::Packet&) override { return Verdict::kAccept; }
  Verdict dequeue(const net::Packet& packet) override;

  [[nodiscard]] std::int64_t drop_count() const { return count_; }

 private:
  [[nodiscard]] pi2::sim::Duration control_law(pi2::sim::Time /*t*/) const {
    return pi2::sim::from_seconds(
        pi2::sim::to_seconds(params_.interval) / std::sqrt(static_cast<double>(count_)));
  }

  Params params_;
  bool dropping_ = false;
  std::int64_t count_ = 0;
  pi2::sim::Time first_above_time_{pi2::sim::kTimeZero};
  bool has_first_above_ = false;
  pi2::sim::Time drop_next_{pi2::sim::kTimeZero};
};

}  // namespace pi2::aqm
