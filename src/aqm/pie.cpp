#include "aqm/pie.hpp"

#include <algorithm>

namespace pi2::aqm {

using pi2::sim::Duration;
using pi2::sim::from_millis;
using pi2::sim::to_seconds;

PieAqm::PieAqm() : PieAqm(Params{}) {}

PieAqm::Params PieAqm::bare_params() {
  Params p;
  p.heuristics = false;
  p.ecn_drop_threshold = 1.0;
  return p;
}

double PieAqm::tune_factor(double prob) {
  // RFC 8033 / Linux sch_pie stepped scaling, extended down to 0.0001%
  // after the IETF review the paper cites.
  if (prob < 0.000001) return 1.0 / 2048.0;
  if (prob < 0.00001) return 1.0 / 512.0;
  if (prob < 0.0001) return 1.0 / 128.0;
  if (prob < 0.001) return 1.0 / 32.0;
  if (prob < 0.01) return 1.0 / 8.0;
  if (prob < 0.1) return 1.0 / 2.0;
  return 1.0;
}

void PieAqm::install(pi2::sim::Simulator& sim, const net::QueueView& view) {
  QueueDiscipline::install(sim, view);
  burst_allowance_s_ = params_.heuristics ? to_seconds(params_.burst_allowance) : 0.0;
  schedule_update();
}

void PieAqm::schedule_update() {
  sim().after(params_.t_update, [this] {
    update();
    schedule_update();
  });
}

double PieAqm::qdelay_estimate_s() const {
  const auto backlog = static_cast<double>(view().backlog_bytes());
  if (params_.departure_rate_estimation && avg_drain_rate_Bps_ > 0.0) {
    return backlog / avg_drain_rate_Bps_;
  }
  return backlog / (view().link_rate_bps() / 8.0);
}

void PieAqm::update() {
  const double qdelay = qdelay_estimate_s();
  const double target = to_seconds(params_.target);
  const double prob = pi_.prob();

  double dp = pi_.delta(qdelay, target);
  if (params_.autotune) dp *= tune_factor(prob);

  if (params_.heuristics) {
    // Delta clamp: in the high-probability regime limit the step to 2%.
    if (prob >= 0.1 && dp > 0.02) dp = 0.02;
    // Very large delay: push up by a fixed 2%.
    if (qdelay > 0.25) dp = 0.02;
  }

  pi_.integrate(dp, qdelay);

  if (params_.heuristics) {
    // Idle decay (Linux: p *= 1 - 1/64 when delay is zero twice in a row).
    if (qdelay == 0.0 && pi_.prev_qdelay_s() == 0.0) pi_.decay(0.98);

    // Burst allowance drains every interval and re-arms when the queue has
    // fully calmed down.
    if (burst_allowance_s_ > 0.0) {
      burst_allowance_s_ =
          std::max(0.0, burst_allowance_s_ - to_seconds(params_.t_update));
    }
    if (pi_.prob() == 0.0 && qdelay < target / 2.0 &&
        pi_.prev_qdelay_s() < target / 2.0 && view().backlog_bytes() == 0) {
      burst_allowance_s_ = to_seconds(params_.burst_allowance);
    }
  }
}

PieAqm::Verdict PieAqm::enqueue(const net::Packet& packet) {
  had_first_packet_ = true;
  const double prob = pi_.prob();

  if (params_.heuristics) {
    if (burst_allowance_s_ > 0.0) return Verdict::kAccept;
    // Safeguard: no drops while the controller is barely active and the
    // queue is below half the target.
    if (pi_.prev_qdelay_s() < to_seconds(params_.target) / 2.0 && prob < 0.2) {
      return Verdict::kAccept;
    }
    // Do not drop when the queue holds less than two packets' worth.
    if (view().backlog_bytes() < 2 * packet.size) return Verdict::kAccept;
  }

  if (rng().uniform() >= prob) return Verdict::kAccept;

  if (params_.ecn && net::ecn_capable(packet.ecn) &&
      prob <= params_.ecn_drop_threshold) {
    return Verdict::kMark;
  }
  return Verdict::kDrop;
}

void PieAqm::dequeue_bytes_hook(std::int64_t bytes) {
  if (!params_.departure_rate_estimation) return;
  if (!measuring_) {
    if (view().backlog_bytes() >= kDqThresholdBytes) {
      measuring_ = true;
      measure_start_ = sim().now();
      measure_bytes_ = 0;
    }
    return;
  }
  measure_bytes_ += bytes;
  if (measure_bytes_ >= kDqThresholdBytes) {
    const double elapsed = to_seconds(sim().now() - measure_start_);
    if (elapsed > 0.0) {
      const double sample = static_cast<double>(measure_bytes_) / elapsed;
      // EWMA with weight 1/2 (Linux).
      avg_drain_rate_Bps_ =
          avg_drain_rate_Bps_ > 0.0 ? 0.5 * avg_drain_rate_Bps_ + 0.5 * sample : sample;
    }
    measuring_ = false;
  }
}

PieAqm::Verdict PieAqm::dequeue(const net::Packet& packet) {
  dequeue_bytes_hook(packet.size);
  return Verdict::kAccept;
}

}  // namespace pi2::aqm
