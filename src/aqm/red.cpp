#include "aqm/red.hpp"

#include <algorithm>

namespace pi2::aqm {

RedAqm::RedAqm() : RedAqm(Params{}) {}

double RedAqm::drop_probability() const {
  const auto min_th = static_cast<double>(params_.min_th_bytes);
  const auto max_th = static_cast<double>(params_.max_th_bytes);
  if (avg_ < min_th) return 0.0;
  if (avg_ < max_th) {
    return params_.max_p * (avg_ - min_th) / (max_th - min_th);
  }
  if (params_.gentle && avg_ < 2.0 * max_th) {
    return params_.max_p + (1.0 - params_.max_p) * (avg_ - max_th) / max_th;
  }
  return 1.0;
}

RedAqm::Verdict RedAqm::enqueue(const net::Packet& packet) {
  avg_ = (1.0 - params_.weight) * avg_ +
         params_.weight * static_cast<double>(view().backlog_bytes());

  const double pb = drop_probability();
  last_prob_ = pb;
  if (pb <= 0.0) {
    count_since_mark_ = -1;
    return Verdict::kAccept;
  }
  if (pb >= 1.0) return Verdict::kDrop;

  // Uniformization: pa = pb / (1 - count * pb), spacing marks evenly.
  ++count_since_mark_;
  const double denom = 1.0 - static_cast<double>(count_since_mark_) * pb;
  const double pa = denom > 0.0 ? std::min(pb / denom, 1.0) : 1.0;
  if (rng().uniform() < pa) {
    count_since_mark_ = 0;
    if (params_.ecn && net::ecn_capable(packet.ecn)) return Verdict::kMark;
    return Verdict::kDrop;
  }
  return Verdict::kAccept;
}

}  // namespace pi2::aqm
