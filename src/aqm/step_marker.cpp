#include "aqm/step_marker.hpp"

namespace pi2::aqm {

StepMarkerAqm::StepMarkerAqm() : StepMarkerAqm(Params{}) {}

StepMarkerAqm::Verdict StepMarkerAqm::enqueue(const net::Packet& packet) {
  if (view().queue_delay() < params_.threshold) return Verdict::kAccept;
  if (net::ecn_capable(packet.ecn)) {
    ++marks_;
    return Verdict::kMark;
  }
  return params_.drop_not_ect ? Verdict::kDrop : Verdict::kAccept;
}

}  // namespace pi2::aqm
