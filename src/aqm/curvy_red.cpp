#include "aqm/curvy_red.hpp"

#include <algorithm>

#include "sim/time.hpp"

namespace pi2::aqm {

using pi2::sim::to_seconds;

CurvyRedAqm::CurvyRedAqm() : CurvyRedAqm(Params{}) {}

double CurvyRedAqm::scalable_probability() const {
  const double start = to_seconds(params_.ramp_start);
  const double range = std::max(to_seconds(params_.ramp_range), 1e-9);
  return std::clamp((avg_qdelay_s_ - start) / range, 0.0, 1.0);
}

double CurvyRedAqm::classic_probability() const {
  const double root = scalable_probability() / params_.k;
  return root * root;
}

CurvyRedAqm::Verdict CurvyRedAqm::enqueue(const net::Packet& packet) {
  avg_qdelay_s_ = (1.0 - params_.weight) * avg_qdelay_s_ +
                  params_.weight * to_seconds(view().queue_delay());

  const double p_s = scalable_probability();
  if (net::is_scalable(packet.ecn)) {
    return rng().uniform() < p_s ? Verdict::kMark : Verdict::kAccept;
  }
  if (std::max(rng().uniform(), rng().uniform()) >= p_s / params_.k) {
    return Verdict::kAccept;
  }
  if (params_.ecn && net::ecn_capable(packet.ecn)) return Verdict::kMark;
  return Verdict::kDrop;
}

}  // namespace pi2::aqm
