// The experiment harness: a dumbbell topology matching the paper's testbed
// (Figure 10) — N senders share one AQM-managed bottleneck towards their
// receivers, ACKs return over an uncongested reverse path.
//
// A DumbbellConfig describes link, buffer, AQM, flows and schedules
// (flow churn, link-rate changes); run_dumbbell() executes it and returns
// the measurements every figure in the evaluation needs: per-packet queue
// delay (series + percentiles), per-flow goodput, link utilization, and the
// AQM's internal probabilities.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/invariant_monitor.hpp"
#include "net/bottleneck_link.hpp"
#include "scenario/aqm_factory.hpp"
#include "sim/time.hpp"
#include "stats/meters.hpp"
#include "stats/percentile.hpp"
#include "stats/recovery.hpp"
#include "stats/time_series.hpp"
#include "tcp/congestion_control.hpp"

namespace pi2::net {
class PacketTrace;
}  // namespace pi2::net

namespace pi2::telemetry {
class MetricsRegistry;
class Recorder;
}  // namespace pi2::telemetry

namespace pi2::scenario {

struct TcpFlowSpec {
  tcp::CcType cc = tcp::CcType::kReno;
  int count = 1;
  pi2::sim::Time start{0};
  pi2::sim::Time stop{pi2::sim::kTimeInfinity};
  pi2::sim::Duration base_rtt = pi2::sim::from_millis(100);
  /// Gap between successive flow starts within this spec, to avoid
  /// synchronized slow starts (the testbed's natural stagger).
  pi2::sim::Duration stagger = pi2::sim::from_millis(50);
  /// Receive-window cap in segments. The default models the ~1 MB
  /// bandwidth-delay-product limit of the paper's testbed kernel
  /// (footnote 5), which bounds slow-start overshoot exactly as it did
  /// there. 0 = unlimited.
  double max_cwnd = 700.0;
};

struct UdpFlowSpec {
  double rate_bps = 6e6;
  int count = 1;
  /// Wire size of each constant-rate datagram. The paper's unresponsive
  /// load uses MTU-sized packets; the fuzzer also exercises small ones.
  std::int32_t packet_bytes = net::kDefaultMss;
  /// ECN codepoint the sender stamps on its datagrams. DualPI2 routes
  /// ECT(1) floods into the L queue (the RFC 9332 overload scenario);
  /// Not-ECT floods stay Classic and are dropped, not marked.
  net::Ecn ecn = net::Ecn::kNotEct;
  pi2::sim::Time start{0};
  pi2::sim::Time stop{pi2::sim::kTimeInfinity};
  pi2::sim::Duration base_rtt = pi2::sim::from_millis(100);
};

/// N background flows modelled as one fluid ODE (Appendix B window
/// dynamics driven by the live AQM signal) instead of N packet senders:
/// O(1) state and one scheduler tick per fluid_dt regardless of count, so
/// 10⁵–10⁶ flows of load can share the bottleneck with a handful of
/// packet-accurate foreground flows. The congestion control picks the
/// window law and signal: Reno/Cubic-family specs integrate eq. (15)
/// against the Classic probability p, DCTCP/Scalable-family specs
/// integrate eq. (22) against the Scalable probability p'.
struct FluidFlowSpec {
  tcp::CcType cc = tcp::CcType::kReno;
  double count = 1000.0;
  pi2::sim::Duration base_rtt = pi2::sim::from_millis(100);
  std::int32_t mss_bytes = net::kDefaultMss;
  pi2::sim::Time start{0};
  pi2::sim::Time stop{pi2::sim::kTimeInfinity};
};

struct RateChange {
  pi2::sim::Time at{0};
  double rate_bps = 10e6;
};

struct DumbbellConfig {
  double link_rate_bps = 10e6;
  std::int64_t buffer_packets = 40000;  // Table 1
  AqmConfig aqm;
  std::vector<TcpFlowSpec> tcp_flows;
  std::vector<UdpFlowSpec> udp_flows;
  /// Fluid-tier background load (see FluidFlowSpec). The fluid backlog
  /// joins the AQM's queue signal and consumes link capacity, closing the
  /// loop with the packet flows.
  std::vector<FluidFlowSpec> fluid_flows;
  std::vector<RateChange> rate_changes;
  /// Integration/tick period of the fluid tier (one scheduler event per
  /// tick, shared by all fluid specs).
  pi2::sim::Duration fluid_dt = pi2::sim::from_millis(1);
  /// ACK-clock batching quantum. 0 (default) schedules one event per packet
  /// per propagation hop, exactly like always. > 0 routes the propagation
  /// hops through BatchDelayPipes: packets from all flows in the same RTT
  /// bucket whose delivery falls in the same quantum share one scheduler
  /// event and one pooled allocation, so the scheduler sees O(buckets ×
  /// quanta) timers instead of O(packets). Delivery is deferred to the end
  /// of the quantum (≤ one quantum of added latency); keep it well under
  /// base_rtt (e.g. 1 ms at 100 ms RTT).
  pi2::sim::Duration ack_quantum{0};
  pi2::sim::Time duration{std::chrono::seconds{100}};
  /// Aggregate statistics (percentiles, means) cover [stats_start, duration);
  /// time series cover the whole run.
  pi2::sim::Time stats_start{std::chrono::seconds{0}};
  std::uint64_t seed = 1;
  /// Queue-delay / probability sampling period for the time series.
  pi2::sim::Duration sample_interval = pi2::sim::from_millis(100);
  /// Scripted impairments (rate steps/flaps, RTT steps, loss bursts, random
  /// loss, ECN bleaching, reordering) replayed by a FaultInjector. The
  /// injector's randomness comes from a stream derived from `seed`, so the
  /// same schedule + seed is byte-identical at any --jobs value. RTT steps
  /// apply to every flow's base RTT.
  faults::FaultSchedule faults;
  /// Samples the InvariantMonitor every sample_interval alongside the stats
  /// probes; violations are returned in RunResult::violations.
  bool check_invariants = true;
  /// Optional per-packet trace, attached to the bottleneck's probe bus for
  /// the whole run. Borrowed; must outlive run_dumbbell().
  net::PacketTrace* trace = nullptr;
  /// Optional telemetry recorder. run_dumbbell() wires the link/AQM/TCP/
  /// simulator probes into its registry, fills its manifest from this
  /// config, starts its sampler and finishes its artifacts at `duration`.
  /// Borrowed; must outlive run_dumbbell().
  telemetry::Recorder* recorder = nullptr;
  /// Optional bare metrics registry: wires the same pipeline probes as
  /// `recorder` but with no sampler, exporters or manifest — for in-process
  /// consumers (and the probe-overhead benchmark). Ignored when `recorder`
  /// is set (the recorder's own registry wins). Bound gauges are frozen
  /// before the probed objects go away. Borrowed; must outlive
  /// run_dumbbell().
  telemetry::MetricsRegistry* registry = nullptr;
  /// Optional graceful-shutdown flag (durable::ShutdownController::flag()).
  /// The simulator polls it at event boundaries; once set, run_dumbbell()
  /// finishes the recorder's artifacts at the stop time (manifest marked
  /// `interrupted`) and throws durable::InterruptedError — the run's results
  /// are *not* returned and must be recomputed on resume. Borrowed; must
  /// outlive run_dumbbell(). nullptr disables polling.
  const std::atomic<bool>* stop = nullptr;

  /// Returns "" when the config is well-formed, otherwise an actionable
  /// message naming the offending field and constraint. run_dumbbell()
  /// throws std::invalid_argument with this message.
  [[nodiscard]] std::string validate() const;
};

struct FlowResult {
  tcp::CcType cc{};
  bool is_udp = false;
  /// One FlowResult per fluid *spec*; goodput_mbps is then the mean over
  /// the spec's `count` modelled flows.
  bool is_fluid = false;
  /// Modelled flows behind this result: 1 for packet/UDP flows, the spec's
  /// `count` for fluid specs — goodput_mbps * count is the aggregate rate.
  double count = 1.0;
  double goodput_mbps = 0.0;  ///< mean over the stats window
  std::int64_t retransmits = 0;
  std::int64_t timeouts = 0;
};

/// Aggregate fluid-tier accounting over the whole run (all zero when no
/// fluid flows are configured). Conservation must hold exactly —
/// arrival == served + final_backlog — and the fuzz oracles verify it.
struct FluidStats {
  double arrival_bytes = 0.0;  ///< demand the fluid tier offered
  double served_bytes = 0.0;   ///< demand the link actually carried
  /// Demand discarded because the shared buffer was full — the fluid tier's
  /// tail-drop analog. Conservation: arrival == served + dropped + backlog.
  double dropped_bytes = 0.0;
  double final_backlog_bytes = 0.0;
  std::uint64_t ticks = 0;  ///< fluid integration steps executed
};

/// Per-link result slice carried by topology runs (journal codec v4).
/// run_dumbbell() fills exactly one slice mirroring the top-level link
/// fields; multi-link topologies (topology::to_run_result) fill one per
/// configured link. Legacy v3 payloads decode with `links` empty.
struct LinkSlice {
  std::string name;
  double mean_qdelay_ms = 0.0;
  double p99_qdelay_ms = 0.0;
  double utilization = 0.0;
  net::BottleneckLink::Counters counters;
  net::BottleneckLink::Counters window_counters;
  faults::FaultInjector::Counters fault_counters;
  std::uint64_t guard_events = 0;
  /// Queue occupancy when the run ended (conservation bookkeeping).
  std::int64_t final_backlog_packets = 0;
};

struct RunResult {
  // Queue delay.
  stats::TimeSeries qdelay_ms_series;           ///< sampled queue delay [ms]
  stats::PercentileSampler qdelay_ms_packets;   ///< per-packet sojourn [ms], stats window
  double mean_qdelay_ms = 0.0;
  double p99_qdelay_ms = 0.0;

  // AQM probabilities (sampled each sample_interval over the stats window).
  stats::TimeSeries classic_prob_series;
  stats::PercentileSampler classic_prob_samples;
  stats::PercentileSampler scalable_prob_samples;

  // Throughput / utilization.
  stats::TimeSeries total_throughput_series;  ///< Mb/s, 1 s bins
  stats::TimeSeries utilization_series;       ///< [0,1], 1 s bins
  double utilization = 0.0;                   ///< mean over stats window

  std::vector<FlowResult> flows;
  FluidStats fluid;
  /// Discrete events the run executed — a deterministic fingerprint of the
  /// whole simulation, handy for serial-vs-parallel equivalence checks.
  std::uint64_t events_executed = 0;
  /// `Simulator::at` calls that targeted the past and were clamped to now.
  /// A healthy run keeps this at 0; integration tests assert it.
  std::uint64_t clamped_events = 0;
  /// Whole-run bottleneck counters (includes the warm-up transient).
  net::BottleneckLink::Counters counters;
  /// Counters restricted to the stats window [stats_start, duration).
  net::BottleneckLink::Counters window_counters;
  /// Per-queue counter slices for multi-band AQMs (DualPI2: band_l is the
  /// Scalable L queue, band_c the Classic queue). All zero for single-queue
  /// disciplines. The check oracles enforce band_l + band_c == counters.
  net::BottleneckLink::BandCounters band_l;
  net::BottleneckLink::BandCounters band_c;
  net::BottleneckLink::BandCounters window_band_l;
  net::BottleneckLink::BandCounters window_band_c;
  /// Impairments the FaultInjector actually applied (all zero without a
  /// fault schedule).
  faults::FaultInjector::Counters fault_counters;
  /// Invariant violations the monitor observed (empty on a healthy run) and
  /// how many periodic checks ran.
  std::vector<faults::InvariantViolation> violations;
  std::uint64_t invariant_checks = 0;
  /// Non-finite controller updates rejected by the AQM's saturating guard.
  std::uint64_t guard_events = 0;
  /// Per-link slices (see LinkSlice): one for the dumbbell's bottleneck,
  /// one per link for topology runs.
  std::vector<LinkSlice> links;
  /// Recovery scoring of the primary link's fault windows (stats::
  /// analyze_recovery over the sampled qdelay series; codec v5 section).
  /// `analyzed` stays false for runs without a fault schedule.
  stats::ResilienceReport resilience;

  /// Mean goodput (Mb/s) across packet flows of a given congestion control
  /// (fluid specs are excluded — they model background load, and figures
  /// compare foreground fidelity).
  [[nodiscard]] double mean_goodput_mbps(tcp::CcType cc) const;
  /// Mean goodput (Mb/s) across UDP flows.
  [[nodiscard]] double mean_udp_goodput_mbps() const;
  /// Observed drop/mark probability (signals / arrivals) over the stats
  /// window — comparable with the steady-state laws of Appendix A.
  [[nodiscard]] double observed_signal_rate() const;
};

RunResult run_dumbbell(const DumbbellConfig& config);

}  // namespace pi2::scenario
