#include "scenario/short_flows.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "net/bottleneck_link.hpp"
#include "sim/simulator.hpp"
#include "stats/meters.hpp"
#include "tcp/endpoint.hpp"

namespace pi2::scenario {

using pi2::sim::Duration;
using pi2::sim::from_seconds;
using pi2::sim::Time;
using pi2::sim::to_millis;
using pi2::sim::to_seconds;

double bounded_pareto_mean(double shape, double lo, double hi) {
  // E[X] for a Pareto with shape a truncated to [lo, hi].
  const double a = shape;
  const double la = std::pow(lo, a);
  const double ha = std::pow(hi, a);
  return la / (1.0 - la / ha) * (a / (a - 1.0)) *
         (1.0 / std::pow(lo, a - 1.0) - 1.0 / std::pow(hi, a - 1.0));
}

namespace {

struct ShortFlow {
  std::unique_ptr<tcp::TcpSender> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
  Time started{};
  std::int64_t segments = 0;
};

}  // namespace

ShortFlowResult run_short_flows(const ShortFlowConfig& config) {
  pi2::sim::Simulator sim{config.seed};
  pi2::sim::Rng arrivals = sim.rng().split();
  pi2::sim::Rng sizes = sim.rng().split();

  net::BottleneckLink::Config link_config;
  link_config.rate_bps = config.link_rate_bps;
  link_config.buffer_packets = config.buffer_packets;
  net::BottleneckLink link{sim, link_config, config.aqm.make()};

  ShortFlowResult result;
  stats::UtilizationMeter util;
  link.set_busy_probe([&](Time a, Time b) { util.add_busy(a, b); });
  stats::PercentileSampler qdelay_ms;
  link.set_departure_probe([&](const net::Packet&, Duration sojourn) {
    if (sim.now() >= config.stats_start) qdelay_ms.add(to_millis(sojourn));
  });

  // Flow table: index = flow id. Finished flows stay allocated (their state
  // is tiny) so ids remain stable.
  std::vector<std::unique_ptr<ShortFlow>> flows;

  link.set_sink([&](net::Packet packet) {
    const auto id = static_cast<std::size_t>(packet.flow);
    if (id >= flows.size()) return;
    ShortFlow* flow = flows[id].get();
    sim.after(config.base_rtt / 2, [flow, packet] {
      flow->receiver->on_data(packet);
    });
  });

  auto start_flow = [&](std::int64_t segments, bool background) {
    const auto id = static_cast<std::int32_t>(flows.size());
    auto flow = std::make_unique<ShortFlow>();
    flow->started = sim.now();
    flow->segments = segments;
    tcp::TcpSender::Config sc;
    sc.flow = id;
    sc.total_segments = background ? -1 : segments;
    sc.max_cwnd = 700;
    flow->sender = std::make_unique<tcp::TcpSender>(
        sim, sc, tcp::make_congestion_control(config.cc));
    flow->receiver = std::make_unique<tcp::TcpReceiver>(sim, id);
    ShortFlow* raw = flow.get();
    flow->sender->set_output([&link](net::Packet p) { link.send(p); });
    flow->receiver->set_ack_path([&sim, raw, &config](net::Packet ack) {
      sim.after(config.base_rtt / 2, [raw, ack] { raw->sender->on_ack(ack); });
    });
    if (!background) {
      ++result.flows_started;
      flow->sender->set_completion_callback([&result, raw, &sim, &config] {
        ++result.flows_completed;
        if (raw->started >= config.stats_start) {
          const double fct = to_millis(sim.now() - raw->started);
          result.fct_ms.add(fct);
          (raw->segments < 100 ? result.fct_short_ms : result.fct_long_ms).add(fct);
        }
      });
    }
    flow->sender->start();
    flows.push_back(std::move(flow));
  };

  for (int i = 0; i < config.background_flows; ++i) {
    start_flow(-1, /*background=*/true);
  }

  // Poisson arrivals sized for the requested offered load.
  const double mean_segments = bounded_pareto_mean(
      config.pareto_shape, static_cast<double>(config.min_segments),
      static_cast<double>(config.max_segments));
  const double mean_bits = mean_segments * net::kDefaultMss * 8.0;
  const double lambda = config.offered_load * config.link_rate_bps / mean_bits;

  std::function<void()> arrive = [&] {
    const double size = sizes.bounded_pareto(
        config.pareto_shape, static_cast<double>(config.min_segments),
        static_cast<double>(config.max_segments));
    start_flow(static_cast<std::int64_t>(size), /*background=*/false);
    sim.after(from_seconds(arrivals.exponential(1.0 / lambda)), arrive);
  };
  sim.after(from_seconds(arrivals.exponential(1.0 / lambda)), arrive);

  sim.run_until(config.duration);

  result.mean_qdelay_ms = qdelay_ms.mean();
  const double span = to_seconds(config.duration - config.stats_start);
  if (span > 0.0) {
    // Approximate utilization over the stats window from the meter's series.
    util.flush(config.duration);
    double busy = 0.0;
    int windows = 0;
    for (const auto& point : util.series().points()) {
      if (point.t >= config.stats_start) {
        busy += point.value;
        ++windows;
      }
    }
    result.utilization = windows > 0 ? busy / windows : 0.0;
  }
  return result;
}

}  // namespace pi2::scenario
