// Shared scenario wiring helpers: the pieces of link/AQM/flow setup and
// validation that both the legacy dumbbell harness and the topology engine
// need. Extracted from dumbbell.cpp so run_topology() reuses the exact same
// constraint messages and signal routing instead of duplicating them.
#pragma once

#include <string>

#include "control/fluid_flow.hpp"
#include "net/bottleneck_link.hpp"
#include "scenario/dumbbell.hpp"
#include "tcp/congestion_control.hpp"

namespace pi2::scenario {

/// Formats a validate() message: "<field> must <constraint> (got <value>)".
[[nodiscard]] std::string bad_field(const std::string& field,
                                    const char* constraint, double got);

/// Signal routing for a fluid spec: the cc families that mark with ECT(1)
/// integrate against p', everything else against p.
[[nodiscard]] control::FluidSignal fluid_signal_for(tcp::CcType cc);

/// AQM knob constraints, shared by every config that embeds an AqmConfig.
/// `prefix` names the embedding field ("aqm." / "links[2].aqm."); returns ""
/// when well-formed.
[[nodiscard]] std::string validate_aqm(const AqmConfig& aqm,
                                       const std::string& prefix);

/// Flow-spec constraints; `where` is the embedding prefix
/// ("tcp_flows[0]." / "tcp_flows[0].spec."). Return "" when well-formed.
[[nodiscard]] std::string validate_tcp_spec(const TcpFlowSpec& f,
                                            const std::string& where);
[[nodiscard]] std::string validate_udp_spec(const UdpFlowSpec& f,
                                            const std::string& where);
[[nodiscard]] std::string validate_fluid_spec(const FluidFlowSpec& f,
                                              const std::string& where);
[[nodiscard]] std::string validate_rate_change(const RateChange& c,
                                               const std::string& where);

/// Stats-window counter slice: whole-run minus the at-stats-start snapshot.
[[nodiscard]] net::BottleneckLink::Counters counters_window(
    const net::BottleneckLink::Counters& whole,
    const net::BottleneckLink::Counters& at);
[[nodiscard]] net::BottleneckLink::BandCounters band_window(
    const net::BottleneckLink::BandCounters& whole,
    const net::BottleneckLink::BandCounters& at);

}  // namespace pi2::scenario
