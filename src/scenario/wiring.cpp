#include "scenario/wiring.hpp"

#include <cmath>
#include <cstdio>

namespace pi2::scenario {

using pi2::sim::to_seconds;

std::string bad_field(const std::string& field, const char* constraint,
                      double got) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s must %s (got %g)", field.c_str(),
                constraint, got);
  return buf;
}

control::FluidSignal fluid_signal_for(tcp::CcType cc) {
  return tcp::make_congestion_control(cc)->is_scalable()
             ? control::FluidSignal::kScalable
             : control::FluidSignal::kClassic;
}

std::string validate_aqm(const AqmConfig& aqm, const std::string& prefix) {
  if (aqm.target <= pi2::sim::Duration{0}) {
    return bad_field(prefix + "target", "be > 0 seconds",
                     to_seconds(aqm.target));
  }
  if (aqm.t_update <= pi2::sim::Duration{0}) {
    return bad_field(prefix + "t_update", "be > 0 seconds",
                     to_seconds(aqm.t_update));
  }
  if (!(aqm.coupling_k > 0.0) || !std::isfinite(aqm.coupling_k)) {
    return bad_field(prefix + "coupling_k", "be finite and > 0",
                     aqm.coupling_k);
  }
  if (!(aqm.max_classic_prob > 0.0 && aqm.max_classic_prob <= 1.0)) {
    return bad_field(prefix + "max_classic_prob", "lie in (0, 1]",
                     aqm.max_classic_prob);
  }
  if (aqm.alpha_hz && (!(*aqm.alpha_hz > 0.0) || !std::isfinite(*aqm.alpha_hz))) {
    return bad_field(prefix + "alpha_hz", "be finite and > 0 when set",
                     *aqm.alpha_hz);
  }
  if (aqm.beta_hz && (!(*aqm.beta_hz > 0.0) || !std::isfinite(*aqm.beta_hz))) {
    return bad_field(prefix + "beta_hz", "be finite and > 0 when set",
                     *aqm.beta_hz);
  }
  if (aqm.ecn_drop_threshold &&
      !(*aqm.ecn_drop_threshold >= 0.0 && *aqm.ecn_drop_threshold <= 1.0)) {
    return bad_field(prefix + "ecn_drop_threshold", "lie in [0, 1] when set",
                     *aqm.ecn_drop_threshold);
  }
  if (aqm.t_shift < pi2::sim::Duration{0}) {
    return bad_field(prefix + "t_shift", "be >= 0 seconds",
                     to_seconds(aqm.t_shift));
  }
  if (!(aqm.l_drop_percent >= 0.0 && aqm.l_drop_percent <= 100.0)) {
    return bad_field(prefix + "l_drop_percent", "lie in [0, 100]",
                     aqm.l_drop_percent);
  }
  if (aqm.l_thresh_packets < 0) {
    return bad_field(prefix + "l_thresh_packets", "be >= 0",
                     static_cast<double>(aqm.l_thresh_packets));
  }
  return "";
}

std::string validate_tcp_spec(const TcpFlowSpec& f, const std::string& where) {
  if (f.count < 0) {
    return bad_field(where + "count", "be >= 0", f.count);
  }
  if (f.base_rtt <= pi2::sim::Duration{0}) {
    return bad_field(where + "base_rtt", "be > 0 seconds",
                     to_seconds(f.base_rtt));
  }
  if (f.stagger < pi2::sim::Duration{0}) {
    return bad_field(where + "stagger", "be >= 0 seconds",
                     to_seconds(f.stagger));
  }
  if (f.start < pi2::sim::kTimeZero) {
    return bad_field(where + "start", "be >= 0 seconds", to_seconds(f.start));
  }
  if (f.stop <= f.start) {
    return bad_field(where + "stop", "be after start", to_seconds(f.stop));
  }
  if (!(f.max_cwnd >= 0.0) || !std::isfinite(f.max_cwnd)) {
    return bad_field(where + "max_cwnd", "be finite and >= 0 (0 = unlimited)",
                     f.max_cwnd);
  }
  return "";
}

std::string validate_udp_spec(const UdpFlowSpec& f, const std::string& where) {
  if (f.count < 0) {
    return bad_field(where + "count", "be >= 0", f.count);
  }
  if (!(f.rate_bps > 0.0) || !std::isfinite(f.rate_bps)) {
    return bad_field(where + "rate_bps", "be finite and > 0", f.rate_bps);
  }
  if (f.packet_bytes <= 0 || f.packet_bytes > 65535) {
    return bad_field(where + "packet_bytes", "lie in [1, 65535]",
                     static_cast<double>(f.packet_bytes));
  }
  if (f.base_rtt <= pi2::sim::Duration{0}) {
    return bad_field(where + "base_rtt", "be > 0 seconds",
                     to_seconds(f.base_rtt));
  }
  if (f.start < pi2::sim::kTimeZero) {
    return bad_field(where + "start", "be >= 0 seconds", to_seconds(f.start));
  }
  if (f.stop <= f.start) {
    return bad_field(where + "stop", "be after start", to_seconds(f.stop));
  }
  return "";
}

std::string validate_fluid_spec(const FluidFlowSpec& f,
                                const std::string& where) {
  if (!(f.count >= 0.0) || !std::isfinite(f.count)) {
    return bad_field(where + "count", "be finite and >= 0", f.count);
  }
  if (f.base_rtt <= pi2::sim::Duration{0}) {
    return bad_field(where + "base_rtt", "be > 0 seconds",
                     to_seconds(f.base_rtt));
  }
  if (f.mss_bytes <= 0 || f.mss_bytes > 65535) {
    return bad_field(where + "mss_bytes", "lie in [1, 65535]",
                     static_cast<double>(f.mss_bytes));
  }
  if (f.start < pi2::sim::kTimeZero) {
    return bad_field(where + "start", "be >= 0 seconds", to_seconds(f.start));
  }
  if (f.stop <= f.start) {
    return bad_field(where + "stop", "be after start", to_seconds(f.stop));
  }
  return "";
}

std::string validate_rate_change(const RateChange& c,
                                 const std::string& where) {
  if (c.at < pi2::sim::kTimeZero) {
    return bad_field(where + "at", "be >= 0 seconds", to_seconds(c.at));
  }
  if (!(c.rate_bps > 0.0) || !std::isfinite(c.rate_bps)) {
    return bad_field(where + "rate_bps", "be finite and > 0", c.rate_bps);
  }
  return "";
}

net::BottleneckLink::Counters counters_window(
    const net::BottleneckLink::Counters& whole,
    const net::BottleneckLink::Counters& at) {
  net::BottleneckLink::Counters w;
  w.enqueued = whole.enqueued - at.enqueued;
  w.forwarded = whole.forwarded - at.forwarded;
  w.aqm_dropped = whole.aqm_dropped - at.aqm_dropped;
  w.tail_dropped = whole.tail_dropped - at.tail_dropped;
  w.marked = whole.marked - at.marked;
  w.fault_dropped = whole.fault_dropped - at.fault_dropped;
  w.dequeue_dropped = whole.dequeue_dropped - at.dequeue_dropped;
  return w;
}

net::BottleneckLink::BandCounters band_window(
    const net::BottleneckLink::BandCounters& whole,
    const net::BottleneckLink::BandCounters& at) {
  net::BottleneckLink::BandCounters w;
  w.enqueued = whole.enqueued - at.enqueued;
  w.forwarded = whole.forwarded - at.forwarded;
  w.marked = whole.marked - at.marked;
  w.aqm_dropped = whole.aqm_dropped - at.aqm_dropped;
  w.tail_dropped = whole.tail_dropped - at.tail_dropped;
  w.dequeue_dropped = whole.dequeue_dropped - at.dequeue_dropped;
  return w;
}

}  // namespace pi2::scenario
