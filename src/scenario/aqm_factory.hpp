// Uniform configuration + factory for every queue discipline in the repo,
// so experiment configs can name an AQM and tweak the knobs that the paper
// varies (target delay, gains, ECN handling, coupling factor).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "aqm/pi_core.hpp"
#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::scenario {

enum class AqmType {
  kFifo,        ///< tail-drop only
  kPie,         ///< full Linux PIE (all heuristics)
  kBarePie,     ///< PIE minus heuristics (autotune kept)
  kPi,          ///< plain PI, fixed gains, probability applied directly
  kPi2,         ///< the paper's contribution (squared output)
  kCoupledPi2,  ///< single-queue coupled PI2/PI (Figure 9)
  kRed,
  kCodel,
  kCurvyRed,  ///< the DualQ draft's coupled RED-like example ([13])
  kStep,      ///< DCTCP's instantaneous step marker (Appendix A, eq (12))
  kDualPi2,   ///< DualQ Coupled AQM (RFC 9332) with overload protection
};

[[nodiscard]] std::string_view to_string(AqmType type);

struct AqmConfig {
  AqmType type = AqmType::kPi2;
  pi2::sim::Duration target = pi2::sim::from_millis(20);
  pi2::sim::Duration t_update = pi2::sim::from_millis(32);
  /// Gain overrides; when unset, each AQM's paper-default gains apply
  /// (PIE/PI 0.125/1.25, PI2 0.3125/3.125, coupled 0.625/6.25).
  std::optional<double> alpha_hz;
  std::optional<double> beta_hz;
  bool ecn = true;
  /// PIE only: probability above which ECN traffic is dropped, not marked.
  std::optional<double> ecn_drop_threshold;
  double coupling_k = 2.0;  ///< coupled PI2 / DualPI2 only
  /// PI2 family overload cap.
  double max_classic_prob = pi2::aqm::kDefaultMaxClassicProb;
  /// DualPI2 only: time-shifted scheduler credit for the L queue.
  pi2::sim::Duration t_shift = pi2::sim::from_millis(30);
  /// DualPI2 only: overload switchover threshold in percent of the coupled
  /// probability k*p' (sch_pi2 default 100: engage when it saturates).
  double l_drop_percent = 100.0;
  /// DualPI2 only: L backlog in packets that saturates the native ramp.
  std::int64_t l_thresh_packets = 3000;

  /// Builds the configured discipline.
  [[nodiscard]] std::unique_ptr<net::QueueDiscipline> make() const;
};

}  // namespace pi2::scenario
