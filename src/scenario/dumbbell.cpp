#include "scenario/dumbbell.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "durable/status.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "tcp/endpoint.hpp"
#include "tcp/udp_sender.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/recorder.hpp"

namespace pi2::scenario {

using pi2::sim::Duration;
using pi2::sim::Time;
using pi2::sim::to_millis;
using pi2::sim::to_seconds;

namespace {

/// Everything belonging to one flow, TCP or UDP.
struct FlowContext {
  tcp::CcType cc{};
  bool is_udp = false;
  Duration base_rtt{};
  std::unique_ptr<tcp::TcpSender> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
  std::unique_ptr<tcp::UdpSender> udp;
  stats::RateMeter goodput;
  std::int64_t bytes_at_stats_start = 0;
};

/// Formats a validate() message: "<field> must <constraint> (got <value>)".
std::string bad_field(const char* field, const char* constraint, double got) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s must %s (got %g)", field, constraint, got);
  return buf;
}

}  // namespace

std::string DumbbellConfig::validate() const {
  if (!(link_rate_bps > 0.0) || !std::isfinite(link_rate_bps)) {
    return bad_field("link_rate_bps", "be finite and > 0", link_rate_bps);
  }
  if (buffer_packets <= 0) {
    return bad_field("buffer_packets", "be > 0",
                     static_cast<double>(buffer_packets));
  }
  if (duration <= pi2::sim::kTimeZero) {
    return bad_field("duration", "be > 0 seconds", to_seconds(duration));
  }
  if (stats_start < pi2::sim::kTimeZero || stats_start > duration) {
    return bad_field("stats_start", "lie within [0, duration]",
                     to_seconds(stats_start));
  }
  if (sample_interval <= pi2::sim::Duration{0}) {
    return bad_field("sample_interval", "be > 0 seconds",
                     to_seconds(sample_interval));
  }
  if (aqm.target <= pi2::sim::Duration{0}) {
    return bad_field("aqm.target", "be > 0 seconds", to_seconds(aqm.target));
  }
  if (aqm.t_update <= pi2::sim::Duration{0}) {
    return bad_field("aqm.t_update", "be > 0 seconds", to_seconds(aqm.t_update));
  }
  if (!(aqm.coupling_k > 0.0) || !std::isfinite(aqm.coupling_k)) {
    return bad_field("aqm.coupling_k", "be finite and > 0", aqm.coupling_k);
  }
  if (!(aqm.max_classic_prob > 0.0 && aqm.max_classic_prob <= 1.0)) {
    return bad_field("aqm.max_classic_prob", "lie in (0, 1]",
                     aqm.max_classic_prob);
  }
  if (aqm.alpha_hz && (!(*aqm.alpha_hz > 0.0) || !std::isfinite(*aqm.alpha_hz))) {
    return bad_field("aqm.alpha_hz", "be finite and > 0 when set", *aqm.alpha_hz);
  }
  if (aqm.beta_hz && (!(*aqm.beta_hz > 0.0) || !std::isfinite(*aqm.beta_hz))) {
    return bad_field("aqm.beta_hz", "be finite and > 0 when set", *aqm.beta_hz);
  }
  if (aqm.ecn_drop_threshold &&
      !(*aqm.ecn_drop_threshold >= 0.0 && *aqm.ecn_drop_threshold <= 1.0)) {
    return bad_field("aqm.ecn_drop_threshold", "lie in [0, 1] when set",
                     *aqm.ecn_drop_threshold);
  }
  for (std::size_t i = 0; i < tcp_flows.size(); ++i) {
    const TcpFlowSpec& f = tcp_flows[i];
    const std::string where = "tcp_flows[" + std::to_string(i) + "].";
    if (f.count < 0) {
      return where + bad_field("count", "be >= 0", f.count);
    }
    if (f.base_rtt <= pi2::sim::Duration{0}) {
      return where + bad_field("base_rtt", "be > 0 seconds",
                               to_seconds(f.base_rtt));
    }
    if (f.stagger < pi2::sim::Duration{0}) {
      return where + bad_field("stagger", "be >= 0 seconds",
                               to_seconds(f.stagger));
    }
    if (f.start < pi2::sim::kTimeZero) {
      return where + bad_field("start", "be >= 0 seconds", to_seconds(f.start));
    }
    if (f.stop <= f.start) {
      return where + bad_field("stop", "be after start", to_seconds(f.stop));
    }
    if (!(f.max_cwnd >= 0.0) || !std::isfinite(f.max_cwnd)) {
      return where +
             bad_field("max_cwnd", "be finite and >= 0 (0 = unlimited)",
                       f.max_cwnd);
    }
  }
  for (std::size_t i = 0; i < udp_flows.size(); ++i) {
    const UdpFlowSpec& f = udp_flows[i];
    const std::string where = "udp_flows[" + std::to_string(i) + "].";
    if (f.count < 0) {
      return where + bad_field("count", "be >= 0", f.count);
    }
    if (!(f.rate_bps > 0.0) || !std::isfinite(f.rate_bps)) {
      return where + bad_field("rate_bps", "be finite and > 0", f.rate_bps);
    }
    if (f.packet_bytes <= 0 || f.packet_bytes > 65535) {
      return where + bad_field("packet_bytes", "lie in [1, 65535]",
                               static_cast<double>(f.packet_bytes));
    }
    if (f.base_rtt <= pi2::sim::Duration{0}) {
      return where + bad_field("base_rtt", "be > 0 seconds",
                               to_seconds(f.base_rtt));
    }
    if (f.start < pi2::sim::kTimeZero) {
      return where + bad_field("start", "be >= 0 seconds", to_seconds(f.start));
    }
    if (f.stop <= f.start) {
      return where + bad_field("stop", "be after start", to_seconds(f.stop));
    }
  }
  for (std::size_t i = 0; i < rate_changes.size(); ++i) {
    const RateChange& c = rate_changes[i];
    const std::string where = "rate_changes[" + std::to_string(i) + "].";
    if (c.at < pi2::sim::kTimeZero) {
      return where + bad_field("at", "be >= 0 seconds", to_seconds(c.at));
    }
    if (!(c.rate_bps > 0.0) || !std::isfinite(c.rate_bps)) {
      return where + bad_field("rate_bps", "be finite and > 0", c.rate_bps);
    }
  }
  if (recorder != nullptr &&
      recorder->sampler().interval() <= pi2::sim::Duration{0}) {
    return bad_field("recorder.interval", "be > 0 seconds",
                     to_seconds(recorder->sampler().interval()));
  }
  return faults.validate();
}

double RunResult::mean_goodput_mbps(tcp::CcType cc) const {
  double sum = 0.0;
  int n = 0;
  for (const FlowResult& f : flows) {
    if (!f.is_udp && f.cc == cc) {
      sum += f.goodput_mbps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double RunResult::mean_udp_goodput_mbps() const {
  double sum = 0.0;
  int n = 0;
  for (const FlowResult& f : flows) {
    if (f.is_udp) {
      sum += f.goodput_mbps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double RunResult::observed_signal_rate() const {
  const auto arrivals = window_counters.enqueued + window_counters.aqm_dropped;
  if (arrivals == 0) return 0.0;
  return static_cast<double>(window_counters.aqm_dropped +
                             window_counters.marked) /
         static_cast<double>(arrivals);
}

RunResult run_dumbbell(const DumbbellConfig& config) {
  if (std::string error = config.validate(); !error.empty()) {
    throw std::invalid_argument("DumbbellConfig: " + error);
  }
  pi2::sim::Simulator sim{config.seed};
  sim.set_stop_flag(config.stop);

  net::BottleneckLink::Config link_config;
  link_config.rate_bps = config.link_rate_bps;
  link_config.buffer_packets = config.buffer_packets;
  net::BottleneckLink link{sim, link_config, config.aqm.make()};

  RunResult result;
  stats::UtilizationMeter util_meter{std::chrono::seconds{1}};
  stats::RateMeter total_meter{std::chrono::seconds{1}};
  double busy_at_stats_start = 0.0;

  std::vector<std::unique_ptr<FlowContext>> flows;

  // --- Wire the bottleneck's probes. -------------------------------------
  if (config.trace != nullptr) config.trace->attach(link);
  link.set_busy_probe([&](Time from, Time to) { util_meter.add_busy(from, to); });
  link.set_departure_probe([&](const net::Packet& packet, Duration sojourn) {
    if (sim.now() >= config.stats_start) {
      result.qdelay_ms_packets.add(to_millis(sojourn));
    }
    (void)packet;
  });

  // Forward path: after the bottleneck, packets propagate base_rtt/2 to the
  // flow's receiver; ACKs return after another base_rtt/2.
  link.set_sink([&](net::Packet packet) {
    if (packet.flow < 0 || packet.flow >= static_cast<std::int32_t>(flows.size())) {
      return;
    }
    FlowContext& flow = *flows[static_cast<std::size_t>(packet.flow)];
    sim.after(flow.base_rtt / 2, [&flow, packet, &sim]() {
      if (flow.is_udp) {
        flow.goodput.add_bytes(sim.now(), packet.size);
      } else {
        flow.receiver->on_data(packet);
      }
    });
    total_meter.add_bytes(sim.now(), packet.size);
  });

  // --- Create flows. ------------------------------------------------------
  auto add_tcp_flow = [&](const TcpFlowSpec& spec, int index_in_spec) {
    const auto flow_id = static_cast<std::int32_t>(flows.size());
    auto ctx = std::make_unique<FlowContext>();
    ctx->cc = spec.cc;
    ctx->base_rtt = spec.base_rtt;

    tcp::TcpSender::Config sc;
    sc.flow = flow_id;
    sc.max_cwnd = spec.max_cwnd;
    ctx->sender = std::make_unique<tcp::TcpSender>(
        sim, sc, tcp::make_congestion_control(spec.cc));
    ctx->receiver = std::make_unique<tcp::TcpReceiver>(sim, flow_id);

    FlowContext* raw = ctx.get();
    ctx->sender->set_output([&link](net::Packet p) { link.send(std::move(p)); });
    ctx->receiver->set_delivery_probe([raw, &sim](const net::Packet& p) {
      raw->goodput.add_bytes(sim.now(), p.size);
    });
    ctx->receiver->set_ack_path([raw, &sim](net::Packet ack) {
      sim.after(raw->base_rtt / 2, [raw, ack] { raw->sender->on_ack(ack); });
    });

    const Time start = spec.start + spec.stagger * index_in_spec;
    sim.at(start, [raw] { raw->sender->start(); });
    if (spec.stop < pi2::sim::kTimeInfinity) {
      sim.at(spec.stop, [raw] { raw->sender->stop(); });
    }
    flows.push_back(std::move(ctx));
  };

  auto add_udp_flow = [&](const UdpFlowSpec& spec) {
    const auto flow_id = static_cast<std::int32_t>(flows.size());
    auto ctx = std::make_unique<FlowContext>();
    ctx->is_udp = true;
    ctx->base_rtt = spec.base_rtt;
    tcp::UdpSender::Config uc;
    uc.flow = flow_id;
    uc.rate_bps = spec.rate_bps;
    uc.packet_bytes = spec.packet_bytes;
    ctx->udp = std::make_unique<tcp::UdpSender>(sim, uc);
    ctx->udp->set_output([&link](net::Packet p) { link.send(std::move(p)); });
    FlowContext* raw = ctx.get();
    sim.at(spec.start, [raw] { raw->udp->start(); });
    if (spec.stop < pi2::sim::kTimeInfinity) {
      sim.at(spec.stop, [raw] { raw->udp->stop(); });
    }
    flows.push_back(std::move(ctx));
  };

  for (const TcpFlowSpec& spec : config.tcp_flows) {
    for (int i = 0; i < spec.count; ++i) add_tcp_flow(spec, i);
  }
  for (const UdpFlowSpec& spec : config.udp_flows) {
    for (int i = 0; i < spec.count; ++i) add_udp_flow(spec);
  }

  // --- Schedules. ----------------------------------------------------------
  for (const RateChange& change : config.rate_changes) {
    sim.at(change.at, [&link, change] { link.set_rate_bps(change.rate_bps); });
  }

  // Scripted impairments: the injector replays the fault schedule through
  // the link and the scheduler, from its own derived RNG stream.
  faults::FaultInjector injector{sim, config.faults, config.seed};
  injector.set_rtt_setter([&flows](Duration rtt) {
    for (auto& flow : flows) flow->base_rtt = rtt;
  });
  injector.attach(link);

  // Runtime invariant checking, sampled alongside the stats probes.
  faults::InvariantMonitor::Config monitor_config;
  monitor_config.interval = config.sample_interval;
  faults::InvariantMonitor monitor{sim, link, monitor_config};
  if (config.check_invariants) monitor.start();

  // --- Telemetry. ----------------------------------------------------------
  telemetry::MetricsRegistry* probe_registry =
      config.recorder != nullptr ? &config.recorder->registry() : config.registry;
  if (probe_registry != nullptr) {
    telemetry::MetricsRegistry& reg = *probe_registry;
    telemetry::attach_link_probes(reg, link);
    telemetry::attach_aqm_probes(reg, link.qdisc());
    telemetry::attach_simulator_probes(reg, sim);
    reg.gauge("tcp.retransmits", [&flows] {
      std::int64_t n = 0;
      for (const auto& flow : flows) {
        if (flow->sender) n += flow->sender->retransmits();
      }
      return static_cast<double>(n);
    });
    reg.gauge("tcp.timeouts", [&flows] {
      std::int64_t n = 0;
      for (const auto& flow : flows) {
        if (flow->sender) n += flow->sender->timeouts();
      }
      return static_cast<double>(n);
    });
    reg.gauge("faults.applied", [&injector] {
      const faults::FaultInjector::Counters& fc = injector.counters();
      return static_cast<double>(fc.dropped + fc.bleached + fc.reordered +
                                 fc.rate_changes + fc.rtt_changes);
    });
  }
  if (config.recorder != nullptr) {
    telemetry::RunManifest& manifest = config.recorder->manifest();
    manifest.seed = config.seed;
    manifest.fault_digest = telemetry::fault_schedule_digest(config.faults);
    manifest.build_flags = telemetry::build_flags_string();
    manifest.set("link_rate_bps", config.link_rate_bps);
    manifest.set("buffer_packets",
                 static_cast<std::uint64_t>(config.buffer_packets));
    manifest.set("aqm.type", std::string(to_string(config.aqm.type)));
    manifest.set("aqm.target_ms", to_millis(config.aqm.target));
    manifest.set("aqm.t_update_ms", to_millis(config.aqm.t_update));
    manifest.set("aqm.ecn", std::string(config.aqm.ecn ? "true" : "false"));
    manifest.set("aqm.coupling_k", config.aqm.coupling_k);
    manifest.set("aqm.max_classic_prob", config.aqm.max_classic_prob);
    if (config.aqm.alpha_hz) manifest.set("aqm.alpha_hz", *config.aqm.alpha_hz);
    if (config.aqm.beta_hz) manifest.set("aqm.beta_hz", *config.aqm.beta_hz);
    manifest.set("tcp_flow_specs",
                 static_cast<std::uint64_t>(config.tcp_flows.size()));
    manifest.set("udp_flow_specs",
                 static_cast<std::uint64_t>(config.udp_flows.size()));
    manifest.set("flows", static_cast<std::uint64_t>(flows.size()));
    manifest.set("duration_s", to_seconds(config.duration));
    manifest.set("stats_start_s", to_seconds(config.stats_start));
    manifest.set("sample_interval_s", to_seconds(config.sample_interval));
    config.recorder->start(sim);
  }

  // Periodic sampling of queue delay and AQM probabilities.
  std::function<void()> sample = [&] {
    result.qdelay_ms_series.add(sim.now(), to_millis(link.queue_delay()));
    const double pc = link.qdisc().classic_probability();
    const double ps = link.qdisc().scalable_probability();
    result.classic_prob_series.add(sim.now(), pc);
    if (sim.now() >= config.stats_start) {
      result.classic_prob_samples.add(pc);
      result.scalable_prob_samples.add(ps);
    }
    sim.after(config.sample_interval, sample);
  };
  sim.after(config.sample_interval, sample);

  // Snapshot cumulative counters at the start of the stats window.
  net::BottleneckLink::Counters counters_at_stats_start{};
  sim.at(config.stats_start, [&] {
    busy_at_stats_start = util_meter.total_busy_seconds();
    counters_at_stats_start = link.counters();
    for (auto& flow : flows) {
      flow->bytes_at_stats_start = flow->goodput.total_bytes();
    }
  });

  // --- Run. ----------------------------------------------------------------
  {
    std::unique_ptr<telemetry::ScopedTimer> timer;
    if (config.recorder != nullptr) {
      timer = std::make_unique<telemetry::ScopedTimer>(
          config.recorder->profile().section("sim.run"));
    }
    sim.run_until(config.duration);
  }

  if (sim.stopped()) {
    // Graceful shutdown: the simulation halted at an event boundary before
    // `duration`. Commit what telemetry exists — final sample at the stop
    // time, manifest marked `interrupted` — while the probed objects are
    // still alive, then report the run as not-done: a resumed sweep re-runs
    // this point from scratch and atomically overwrites these artifacts.
    if (config.recorder != nullptr) {
      config.recorder->manifest().set("interrupted", std::string("true"));
      config.recorder->finish(sim.now());
    } else if (config.registry != nullptr) {
      config.registry->freeze_gauges();
    }
    throw durable::InterruptedError(
        "run interrupted by shutdown request at t=" +
        std::to_string(to_seconds(sim.now())) + "s (of " +
        std::to_string(to_seconds(config.duration)) + "s)");
  }

  // --- Collect results. ------------------------------------------------------
  util_meter.flush(config.duration);
  total_meter.flush(config.duration);
  result.utilization_series = util_meter.series();
  result.total_throughput_series = total_meter.series();
  result.counters = link.counters();
  result.window_counters.enqueued =
      result.counters.enqueued - counters_at_stats_start.enqueued;
  result.window_counters.forwarded =
      result.counters.forwarded - counters_at_stats_start.forwarded;
  result.window_counters.aqm_dropped =
      result.counters.aqm_dropped - counters_at_stats_start.aqm_dropped;
  result.window_counters.tail_dropped =
      result.counters.tail_dropped - counters_at_stats_start.tail_dropped;
  result.window_counters.marked =
      result.counters.marked - counters_at_stats_start.marked;

  const double stats_span_s = to_seconds(config.duration - config.stats_start);
  if (stats_span_s > 0.0) {
    const double busy = util_meter.total_busy_seconds() - busy_at_stats_start;
    result.utilization = busy / stats_span_s;
  }

  for (auto& flow : flows) {
    FlowResult fr;
    fr.cc = flow->cc;
    fr.is_udp = flow->is_udp;
    if (stats_span_s > 0.0) {
      const auto bytes = flow->goodput.total_bytes() - flow->bytes_at_stats_start;
      fr.goodput_mbps = static_cast<double>(bytes) * 8.0 / stats_span_s / 1e6;
    }
    if (flow->sender) {
      fr.retransmits = flow->sender->retransmits();
      fr.timeouts = flow->sender->timeouts();
    }
    result.flows.push_back(fr);
  }

  result.mean_qdelay_ms = result.qdelay_ms_packets.mean();
  result.p99_qdelay_ms = result.qdelay_ms_packets.p99();
  result.events_executed = sim.events_executed();
  result.clamped_events = sim.clamped_events();
  result.fault_counters = injector.counters();
  result.violations = monitor.violations();
  result.invariant_checks = monitor.checks_run();
  result.guard_events = link.qdisc().guard_events();

  // Finish telemetry while the probed objects (link, flows, injector) are
  // still alive: the final sample and manifest snapshot read bound gauges.
  if (config.recorder != nullptr) {
    config.recorder->finish(config.duration);
  } else if (config.registry != nullptr) {
    config.registry->freeze_gauges();
  }
  return result;
}

}  // namespace pi2::scenario
