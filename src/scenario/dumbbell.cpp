#include "scenario/dumbbell.hpp"

#include <cmath>
#include <stdexcept>

#include "scenario/wiring.hpp"
#include "telemetry/recorder.hpp"
#include "topology/dumbbell_adapter.hpp"
#include "topology/topology.hpp"

namespace pi2::scenario {

using pi2::sim::to_seconds;

std::string DumbbellConfig::validate() const {
  if (!(link_rate_bps > 0.0) || !std::isfinite(link_rate_bps)) {
    return bad_field("link_rate_bps", "be finite and > 0", link_rate_bps);
  }
  if (buffer_packets <= 0) {
    return bad_field("buffer_packets", "be > 0",
                     static_cast<double>(buffer_packets));
  }
  if (duration <= pi2::sim::kTimeZero) {
    return bad_field("duration", "be > 0 seconds", to_seconds(duration));
  }
  if (stats_start < pi2::sim::kTimeZero || stats_start > duration) {
    return bad_field("stats_start", "lie within [0, duration]",
                     to_seconds(stats_start));
  }
  if (sample_interval <= pi2::sim::Duration{0}) {
    return bad_field("sample_interval", "be > 0 seconds",
                     to_seconds(sample_interval));
  }
  if (std::string e = validate_aqm(aqm, "aqm."); !e.empty()) return e;
  for (std::size_t i = 0; i < tcp_flows.size(); ++i) {
    const std::string where = "tcp_flows[" + std::to_string(i) + "].";
    if (std::string e = validate_tcp_spec(tcp_flows[i], where); !e.empty()) {
      return e;
    }
  }
  for (std::size_t i = 0; i < udp_flows.size(); ++i) {
    const std::string where = "udp_flows[" + std::to_string(i) + "].";
    if (std::string e = validate_udp_spec(udp_flows[i], where); !e.empty()) {
      return e;
    }
  }
  for (std::size_t i = 0; i < fluid_flows.size(); ++i) {
    const std::string where = "fluid_flows[" + std::to_string(i) + "].";
    if (std::string e = validate_fluid_spec(fluid_flows[i], where);
        !e.empty()) {
      return e;
    }
  }
  if (fluid_dt <= pi2::sim::Duration{0}) {
    return bad_field("fluid_dt", "be > 0 seconds", to_seconds(fluid_dt));
  }
  if (ack_quantum < pi2::sim::Duration{0}) {
    return bad_field("ack_quantum", "be >= 0 seconds", to_seconds(ack_quantum));
  }
  for (std::size_t i = 0; i < rate_changes.size(); ++i) {
    const std::string where = "rate_changes[" + std::to_string(i) + "].";
    if (std::string e = validate_rate_change(rate_changes[i], where);
        !e.empty()) {
      return e;
    }
  }
  if (recorder != nullptr &&
      recorder->sampler().interval() <= pi2::sim::Duration{0}) {
    return bad_field("recorder.interval", "be > 0 seconds",
                     to_seconds(recorder->sampler().interval()));
  }
  return faults.validate(duration);
}

double RunResult::mean_goodput_mbps(tcp::CcType cc) const {
  double sum = 0.0;
  int n = 0;
  for (const FlowResult& f : flows) {
    if (!f.is_udp && !f.is_fluid && f.cc == cc) {
      sum += f.goodput_mbps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double RunResult::mean_udp_goodput_mbps() const {
  double sum = 0.0;
  int n = 0;
  for (const FlowResult& f : flows) {
    if (f.is_udp) {
      sum += f.goodput_mbps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double RunResult::observed_signal_rate() const {
  const auto arrivals = window_counters.enqueued + window_counters.aqm_dropped;
  if (arrivals == 0) return 0.0;
  return static_cast<double>(window_counters.aqm_dropped +
                             window_counters.marked) /
         static_cast<double>(arrivals);
}

RunResult run_dumbbell(const DumbbellConfig& config) {
  if (std::string error = config.validate(); !error.empty()) {
    throw std::invalid_argument("DumbbellConfig: " + error);
  }
  // The dumbbell is the trivial two-node topology; the engine preserves the
  // legacy wiring order, so this composition is digest-identical to the
  // pre-topology harness.
  return topology::to_run_result(
      topology::run_topology(topology::from_dumbbell(config)));
}

}  // namespace pi2::scenario
