#include "scenario/dumbbell.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "control/fluid_flow.hpp"
#include "durable/status.hpp"
#include "net/batch_pipe.hpp"
#include "net/packet_pool.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "tcp/endpoint.hpp"
#include "tcp/flow_table.hpp"
#include "tcp/udp_sender.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/recorder.hpp"

namespace pi2::scenario {

using pi2::sim::Duration;
using pi2::sim::from_seconds;
using pi2::sim::Time;
using pi2::sim::to_millis;
using pi2::sim::to_seconds;

namespace {

/// Signal routing for a fluid spec: the cc families that mark with ECT(1)
/// integrate against p', everything else against p.
control::FluidSignal fluid_signal_for(tcp::CcType cc) {
  return tcp::make_congestion_control(cc)->is_scalable()
             ? control::FluidSignal::kScalable
             : control::FluidSignal::kClassic;
}

/// Formats a validate() message: "<field> must <constraint> (got <value>)".
std::string bad_field(const char* field, const char* constraint, double got) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s must %s (got %g)", field, constraint, got);
  return buf;
}

}  // namespace

std::string DumbbellConfig::validate() const {
  if (!(link_rate_bps > 0.0) || !std::isfinite(link_rate_bps)) {
    return bad_field("link_rate_bps", "be finite and > 0", link_rate_bps);
  }
  if (buffer_packets <= 0) {
    return bad_field("buffer_packets", "be > 0",
                     static_cast<double>(buffer_packets));
  }
  if (duration <= pi2::sim::kTimeZero) {
    return bad_field("duration", "be > 0 seconds", to_seconds(duration));
  }
  if (stats_start < pi2::sim::kTimeZero || stats_start > duration) {
    return bad_field("stats_start", "lie within [0, duration]",
                     to_seconds(stats_start));
  }
  if (sample_interval <= pi2::sim::Duration{0}) {
    return bad_field("sample_interval", "be > 0 seconds",
                     to_seconds(sample_interval));
  }
  if (aqm.target <= pi2::sim::Duration{0}) {
    return bad_field("aqm.target", "be > 0 seconds", to_seconds(aqm.target));
  }
  if (aqm.t_update <= pi2::sim::Duration{0}) {
    return bad_field("aqm.t_update", "be > 0 seconds", to_seconds(aqm.t_update));
  }
  if (!(aqm.coupling_k > 0.0) || !std::isfinite(aqm.coupling_k)) {
    return bad_field("aqm.coupling_k", "be finite and > 0", aqm.coupling_k);
  }
  if (!(aqm.max_classic_prob > 0.0 && aqm.max_classic_prob <= 1.0)) {
    return bad_field("aqm.max_classic_prob", "lie in (0, 1]",
                     aqm.max_classic_prob);
  }
  if (aqm.alpha_hz && (!(*aqm.alpha_hz > 0.0) || !std::isfinite(*aqm.alpha_hz))) {
    return bad_field("aqm.alpha_hz", "be finite and > 0 when set", *aqm.alpha_hz);
  }
  if (aqm.beta_hz && (!(*aqm.beta_hz > 0.0) || !std::isfinite(*aqm.beta_hz))) {
    return bad_field("aqm.beta_hz", "be finite and > 0 when set", *aqm.beta_hz);
  }
  if (aqm.ecn_drop_threshold &&
      !(*aqm.ecn_drop_threshold >= 0.0 && *aqm.ecn_drop_threshold <= 1.0)) {
    return bad_field("aqm.ecn_drop_threshold", "lie in [0, 1] when set",
                     *aqm.ecn_drop_threshold);
  }
  if (aqm.t_shift < pi2::sim::Duration{0}) {
    return bad_field("aqm.t_shift", "be >= 0 seconds", to_seconds(aqm.t_shift));
  }
  if (!(aqm.l_drop_percent >= 0.0 && aqm.l_drop_percent <= 100.0)) {
    return bad_field("aqm.l_drop_percent", "lie in [0, 100]",
                     aqm.l_drop_percent);
  }
  if (aqm.l_thresh_packets < 0) {
    return bad_field("aqm.l_thresh_packets", "be >= 0",
                     static_cast<double>(aqm.l_thresh_packets));
  }
  for (std::size_t i = 0; i < tcp_flows.size(); ++i) {
    const TcpFlowSpec& f = tcp_flows[i];
    const std::string where = "tcp_flows[" + std::to_string(i) + "].";
    if (f.count < 0) {
      return where + bad_field("count", "be >= 0", f.count);
    }
    if (f.base_rtt <= pi2::sim::Duration{0}) {
      return where + bad_field("base_rtt", "be > 0 seconds",
                               to_seconds(f.base_rtt));
    }
    if (f.stagger < pi2::sim::Duration{0}) {
      return where + bad_field("stagger", "be >= 0 seconds",
                               to_seconds(f.stagger));
    }
    if (f.start < pi2::sim::kTimeZero) {
      return where + bad_field("start", "be >= 0 seconds", to_seconds(f.start));
    }
    if (f.stop <= f.start) {
      return where + bad_field("stop", "be after start", to_seconds(f.stop));
    }
    if (!(f.max_cwnd >= 0.0) || !std::isfinite(f.max_cwnd)) {
      return where +
             bad_field("max_cwnd", "be finite and >= 0 (0 = unlimited)",
                       f.max_cwnd);
    }
  }
  for (std::size_t i = 0; i < udp_flows.size(); ++i) {
    const UdpFlowSpec& f = udp_flows[i];
    const std::string where = "udp_flows[" + std::to_string(i) + "].";
    if (f.count < 0) {
      return where + bad_field("count", "be >= 0", f.count);
    }
    if (!(f.rate_bps > 0.0) || !std::isfinite(f.rate_bps)) {
      return where + bad_field("rate_bps", "be finite and > 0", f.rate_bps);
    }
    if (f.packet_bytes <= 0 || f.packet_bytes > 65535) {
      return where + bad_field("packet_bytes", "lie in [1, 65535]",
                               static_cast<double>(f.packet_bytes));
    }
    if (f.base_rtt <= pi2::sim::Duration{0}) {
      return where + bad_field("base_rtt", "be > 0 seconds",
                               to_seconds(f.base_rtt));
    }
    if (f.start < pi2::sim::kTimeZero) {
      return where + bad_field("start", "be >= 0 seconds", to_seconds(f.start));
    }
    if (f.stop <= f.start) {
      return where + bad_field("stop", "be after start", to_seconds(f.stop));
    }
  }
  for (std::size_t i = 0; i < fluid_flows.size(); ++i) {
    const FluidFlowSpec& f = fluid_flows[i];
    const std::string where = "fluid_flows[" + std::to_string(i) + "].";
    if (!(f.count >= 0.0) || !std::isfinite(f.count)) {
      return where + bad_field("count", "be finite and >= 0", f.count);
    }
    if (f.base_rtt <= pi2::sim::Duration{0}) {
      return where + bad_field("base_rtt", "be > 0 seconds",
                               to_seconds(f.base_rtt));
    }
    if (f.mss_bytes <= 0 || f.mss_bytes > 65535) {
      return where + bad_field("mss_bytes", "lie in [1, 65535]",
                               static_cast<double>(f.mss_bytes));
    }
    if (f.start < pi2::sim::kTimeZero) {
      return where + bad_field("start", "be >= 0 seconds", to_seconds(f.start));
    }
    if (f.stop <= f.start) {
      return where + bad_field("stop", "be after start", to_seconds(f.stop));
    }
  }
  if (fluid_dt <= pi2::sim::Duration{0}) {
    return bad_field("fluid_dt", "be > 0 seconds", to_seconds(fluid_dt));
  }
  if (ack_quantum < pi2::sim::Duration{0}) {
    return bad_field("ack_quantum", "be >= 0 seconds", to_seconds(ack_quantum));
  }
  for (std::size_t i = 0; i < rate_changes.size(); ++i) {
    const RateChange& c = rate_changes[i];
    const std::string where = "rate_changes[" + std::to_string(i) + "].";
    if (c.at < pi2::sim::kTimeZero) {
      return where + bad_field("at", "be >= 0 seconds", to_seconds(c.at));
    }
    if (!(c.rate_bps > 0.0) || !std::isfinite(c.rate_bps)) {
      return where + bad_field("rate_bps", "be finite and > 0", c.rate_bps);
    }
  }
  if (recorder != nullptr &&
      recorder->sampler().interval() <= pi2::sim::Duration{0}) {
    return bad_field("recorder.interval", "be > 0 seconds",
                     to_seconds(recorder->sampler().interval()));
  }
  return faults.validate();
}

double RunResult::mean_goodput_mbps(tcp::CcType cc) const {
  double sum = 0.0;
  int n = 0;
  for (const FlowResult& f : flows) {
    if (!f.is_udp && !f.is_fluid && f.cc == cc) {
      sum += f.goodput_mbps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double RunResult::mean_udp_goodput_mbps() const {
  double sum = 0.0;
  int n = 0;
  for (const FlowResult& f : flows) {
    if (f.is_udp) {
      sum += f.goodput_mbps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double RunResult::observed_signal_rate() const {
  const auto arrivals = window_counters.enqueued + window_counters.aqm_dropped;
  if (arrivals == 0) return 0.0;
  return static_cast<double>(window_counters.aqm_dropped +
                             window_counters.marked) /
         static_cast<double>(arrivals);
}

RunResult run_dumbbell(const DumbbellConfig& config) {
  if (std::string error = config.validate(); !error.empty()) {
    throw std::invalid_argument("DumbbellConfig: " + error);
  }
  pi2::sim::Simulator sim{config.seed};
  sim.set_stop_flag(config.stop);

  net::BottleneckLink::Config link_config;
  link_config.rate_bps = config.link_rate_bps;
  link_config.buffer_packets = config.buffer_packets;
  net::BottleneckLink link{sim, link_config, config.aqm.make()};

  RunResult result;
  stats::UtilizationMeter util_meter{std::chrono::seconds{1}};
  stats::RateMeter total_meter{std::chrono::seconds{1}};
  double busy_at_stats_start = 0.0;

  tcp::FlowTable flows;

  // Bytes the link served for packets since the last fluid tick; the fluid
  // tier is work-conserving from the residual capacity.
  double pkt_bytes_this_tick = 0.0;
  // Wall-clock seconds the link spent serializing packets (at the residual
  // rate when fluid is active) — the fluid tier's utilization credit is
  // computed against this measured total.
  double packet_busy_s = 0.0;

  // --- Wire the bottleneck's probes. -------------------------------------
  if (config.trace != nullptr) config.trace->attach(link);
  link.set_busy_probe([&](Time from, Time to) {
    util_meter.add_busy(from, to);
    packet_busy_s += to_seconds(to - from);
  });
  link.set_departure_probe([&](const net::Packet& packet, Duration sojourn) {
    if (sim.now() >= config.stats_start) {
      result.qdelay_ms_packets.add(to_millis(sojourn));
    }
    (void)packet;
  });

  // Delivery of a propagated packet to its endpoint (either side of the
  // propagation hop schedules this).
  auto deliver_data = [&flows, &sim](const net::Packet& packet) {
    if (flows.kind(packet.flow) == tcp::FlowTable::Kind::kUdp) {
      flows.goodput(packet.flow).add_bytes(sim.now(), packet.size);
    } else {
      flows.receiver(packet.flow)->on_data(packet);
    }
  };
  auto deliver_ack = [&flows](const net::Packet& ack) {
    flows.sender(ack.flow)->on_ack(ack);
  };

  // ACK-clock batching (config.ack_quantum > 0): both propagation hops run
  // through BatchDelayPipes bucketed by half-RTT, so same-quantum packets
  // share one scheduler event and one pooled slab. With quantum == 0 every
  // packet keeps its own exactly-timed event (the legacy path).
  const bool batched = config.ack_quantum > Duration{0};
  net::PacketSlabPool slab_pool;
  std::deque<net::BatchDelayPipe> data_pipes;  // deque: stable refs as buckets appear
  std::deque<net::BatchDelayPipe> ack_pipes;
  std::unordered_map<std::int64_t, std::size_t> bucket_by_half_rtt;
  std::vector<std::size_t> bucket_of_flow;
  auto bucket_for = [&](Duration half_rtt) {
    const auto [it, inserted] =
        bucket_by_half_rtt.try_emplace(half_rtt.count(), data_pipes.size());
    if (inserted) {
      data_pipes.emplace_back(sim, half_rtt, config.ack_quantum, slab_pool);
      data_pipes.back().set_sink(deliver_data);
      ack_pipes.emplace_back(sim, half_rtt, config.ack_quantum, slab_pool);
      ack_pipes.back().set_sink(deliver_ack);
    }
    return it->second;
  };

  // Forward path: after the bottleneck, packets propagate base_rtt/2 to the
  // flow's receiver; ACKs return after another base_rtt/2.
  link.set_sink([&](net::Packet packet) {
    if (!flows.contains(packet.flow)) return;
    pkt_bytes_this_tick += packet.size;
    total_meter.add_bytes(sim.now(), packet.size);
    if (batched) {
      data_pipes[bucket_of_flow[static_cast<std::size_t>(packet.flow)]].send(
          std::move(packet));
      return;
    }
    sim.after(flows.half_rtt(packet.flow),
              [&deliver_data, packet] { deliver_data(packet); });
  });

  // --- Create flows. ------------------------------------------------------
  auto add_tcp_flow = [&](const TcpFlowSpec& spec, int index_in_spec) {
    tcp::TcpSender::Config sc;
    sc.flow = static_cast<std::int32_t>(flows.size());
    sc.max_cwnd = spec.max_cwnd;
    auto sender = std::make_unique<tcp::TcpSender>(
        sim, sc, tcp::make_congestion_control(spec.cc));
    auto receiver = std::make_unique<tcp::TcpReceiver>(sim, sc.flow);
    const std::int32_t flow_id =
        flows.add_tcp(spec.cc, spec.base_rtt, std::move(sender),
                      std::move(receiver));
    bucket_of_flow.push_back(batched ? bucket_for(spec.base_rtt / 2) : 0);

    flows.sender(flow_id)->set_output(
        [&link](net::Packet p) { link.send(std::move(p)); });
    flows.receiver(flow_id)->set_delivery_probe(
        [&flows, flow_id, &sim](const net::Packet& p) {
          flows.goodput(flow_id).add_bytes(sim.now(), p.size);
        });
    if (batched) {
      flows.receiver(flow_id)->set_ack_path(
          [&ack_pipes, &bucket_of_flow, flow_id](net::Packet ack) {
            ack_pipes[bucket_of_flow[static_cast<std::size_t>(flow_id)]].send(
                std::move(ack));
          });
    } else {
      flows.receiver(flow_id)->set_ack_path(
          [&flows, flow_id, &sim](net::Packet ack) {
            sim.after(flows.half_rtt(flow_id), [&flows, flow_id, ack] {
              flows.sender(flow_id)->on_ack(ack);
            });
          });
    }

    const Time start = spec.start + spec.stagger * index_in_spec;
    sim.at(start, [&flows, flow_id] { flows.sender(flow_id)->start(); });
    if (spec.stop < pi2::sim::kTimeInfinity) {
      sim.at(spec.stop, [&flows, flow_id] { flows.sender(flow_id)->stop(); });
    }
  };

  auto add_udp_flow = [&](const UdpFlowSpec& spec) {
    tcp::UdpSender::Config uc;
    uc.flow = static_cast<std::int32_t>(flows.size());
    uc.rate_bps = spec.rate_bps;
    uc.packet_bytes = spec.packet_bytes;
    uc.ecn = spec.ecn;
    auto udp = std::make_unique<tcp::UdpSender>(sim, uc);
    const std::int32_t flow_id = flows.add_udp(spec.base_rtt, std::move(udp));
    bucket_of_flow.push_back(batched ? bucket_for(spec.base_rtt / 2) : 0);
    flows.udp(flow_id)->set_output(
        [&link](net::Packet p) { link.send(std::move(p)); });
    sim.at(spec.start, [&flows, flow_id] { flows.udp(flow_id)->start(); });
    if (spec.stop < pi2::sim::kTimeInfinity) {
      sim.at(spec.stop, [&flows, flow_id] { flows.udp(flow_id)->stop(); });
    }
  };

  for (const TcpFlowSpec& spec : config.tcp_flows) {
    for (int i = 0; i < spec.count; ++i) add_tcp_flow(spec, i);
  }
  for (const UdpFlowSpec& spec : config.udp_flows) {
    for (int i = 0; i < spec.count; ++i) add_udp_flow(spec);
  }

  // --- Fluid tier. ---------------------------------------------------------
  // One ensemble integrates every fluid spec against the live AQM signal;
  // its tick also runs the fluid/packet capacity split: packets get exact
  // service, the fluid tier is served work-conserving from what remains,
  // and the un-served remainder becomes backlog the AQM sees.
  std::unique_ptr<control::FluidFlowEnsemble> fluid;
  double fluid_backlog_bytes = 0.0;
  double fluid_arrival_bytes = 0.0;
  double fluid_served_bytes = 0.0;
  double fluid_dropped_bytes = 0.0;
  std::vector<double> spec_arrival_bytes(config.fluid_flows.size(), 0.0);
  std::vector<double> spec_arrival_at_stats_start(config.fluid_flows.size(),
                                                  0.0);
  if (!config.fluid_flows.empty()) {
    control::FluidFlowEnsemble::Config fluid_config;
    fluid_config.dt_s = to_seconds(config.fluid_dt);
    fluid = std::make_unique<control::FluidFlowEnsemble>(sim, fluid_config);
    for (const FluidFlowSpec& spec : config.fluid_flows) {
      control::FluidFlowSpec fs;
      fs.signal = fluid_signal_for(spec.cc);
      fs.count = spec.count;
      fs.base_rtt_s = to_seconds(spec.base_rtt);
      fs.mss_bytes = spec.mss_bytes;
      fs.start_s = to_seconds(spec.start);
      fs.stop_s = to_seconds(spec.stop);
      fluid->add_spec(fs);
    }
    control::FluidFlowEnsemble::Sources sources;
    sources.classic_probability = [&link] {
      return link.qdisc().classic_probability();
    };
    sources.scalable_probability = [&link] {
      return link.qdisc().scalable_probability();
    };
    sources.queue_delay_s = [&link] {
      return to_seconds(link.queue_delay());
    };
    fluid->set_sources(std::move(sources));
    const double dt_s = to_seconds(config.fluid_dt);
    // Utilization bookkeeping across ticks: `target` is the cumulative
    // full-rate-equivalent busy time of everything the link carried
    // ((pkt + served)·8/C per tick); `credited` is what the fluid tier has
    // already added on top of the measured packet serialization time.
    fluid->set_tick_sink([&, dt_s, target_busy_s = 0.0, credited_busy_s = 0.0,
                          last_packet_busy_s = 0.0](double aggregate_bps) mutable {
      const double rate_bps = link.link_rate_bps();
      const double cap_bytes = rate_bps * dt_s / 8.0;
      const double pkt_bytes = std::exchange(pkt_bytes_this_tick, 0.0);
      const double avail = std::max(cap_bytes - pkt_bytes, 0.0);
      const double demand = aggregate_bps * dt_s / 8.0;
      fluid_backlog_bytes += demand;
      fluid_arrival_bytes += demand;
      for (std::size_t i = 0; i < spec_arrival_bytes.size(); ++i) {
        spec_arrival_bytes[i] += fluid->spec_rate_bps(i) * dt_s / 8.0;
      }
      const double served = std::min(fluid_backlog_bytes, avail);
      fluid_backlog_bytes -= served;
      fluid_served_bytes += served;
      // Tail-drop analog: the fluid tier shares the link's buffer. Whatever
      // backlog the buffer cannot hold beyond the packets already queued is
      // discarded, exactly like the buffer-limit drop on the packet path —
      // without it a fluid overshoot would integrate into an unbounded
      // standing queue no real buffered flow could ever build.
      const double buffer_bytes =
          static_cast<double>(config.buffer_packets) * net::kDefaultMss;
      const double fluid_room = std::max(
          buffer_bytes - static_cast<double>(link.packet_backlog_bytes()), 0.0);
      if (fluid_backlog_bytes > fluid_room) {
        fluid_dropped_bytes += fluid_backlog_bytes - fluid_room;
        fluid_backlog_bytes = fluid_room;
      }
      link.set_fluid_state(std::llround(fluid_backlog_bytes),
                           served * 8.0 / dt_s);
      // Credit the carried fluid bytes to the run's utilization and
      // throughput accounting — without this, a mostly-fluid run would
      // report only the foreground share as "utilization". The busy probe
      // already recorded the packets' wall time at the *residual* rate, so
      // the fluid credit per tick is whatever keeps the cumulative busy
      // total (measured packet time + credits) tracking the cumulative
      // full-rate-equivalent target; the comparison is cumulative because a
      // single packet's serialization spans many ticks at a small residual
      // rate while its bytes land in one.
      target_busy_s += (pkt_bytes + served) * 8.0 / rate_bps;
      // Never credit more than the tick's idle time: packets that finished
      // serializing this tick already claimed their share of it, and a tick
      // cannot hold more than dt of busy time without pushing a stats window
      // above 100% utilization.
      const double busy_in_tick = packet_busy_s - last_packet_busy_s;
      last_packet_busy_s = packet_busy_s;
      const double credit =
          std::clamp(target_busy_s - (packet_busy_s + credited_busy_s), 0.0,
                     std::max(dt_s - busy_in_tick, 0.0));
      if (credit > 0.0) {
        util_meter.add_busy(sim.now() - from_seconds(credit), sim.now());
        credited_busy_s += credit;
      }
      if (served > 0.0) {
        total_meter.add_bytes(sim.now(),
                              static_cast<std::int64_t>(std::llround(served)));
      }
    });
    fluid->start();
  }

  // --- Schedules. ----------------------------------------------------------
  for (const RateChange& change : config.rate_changes) {
    sim.at(change.at, [&link, change] { link.set_rate_bps(change.rate_bps); });
  }

  // Scripted impairments: the injector replays the fault schedule through
  // the link and the scheduler, from its own derived RNG stream.
  faults::FaultInjector injector{sim, config.faults, config.seed};
  injector.set_rtt_setter([&flows, &data_pipes, &ack_pipes](Duration rtt) {
    flows.set_all_base_rtt(rtt);
    // RTT steps apply to every flow, so every half-RTT bucket moves too.
    for (net::BatchDelayPipe& pipe : data_pipes) pipe.set_delay(rtt / 2);
    for (net::BatchDelayPipe& pipe : ack_pipes) pipe.set_delay(rtt / 2);
  });
  injector.attach(link);

  // Runtime invariant checking, sampled alongside the stats probes.
  faults::InvariantMonitor::Config monitor_config;
  monitor_config.interval = config.sample_interval;
  faults::InvariantMonitor monitor{sim, link, monitor_config};
  if (config.check_invariants) monitor.start();

  // --- Telemetry. ----------------------------------------------------------
  telemetry::MetricsRegistry* probe_registry =
      config.recorder != nullptr ? &config.recorder->registry() : config.registry;
  if (probe_registry != nullptr) {
    telemetry::MetricsRegistry& reg = *probe_registry;
    telemetry::attach_link_probes(reg, link);
    telemetry::attach_aqm_probes(reg, link.qdisc());
    telemetry::attach_simulator_probes(reg, sim);
    reg.gauge("tcp.retransmits", [&flows] {
      return static_cast<double>(flows.total_retransmits());
    });
    reg.gauge("tcp.timeouts", [&flows] {
      return static_cast<double>(flows.total_timeouts());
    });
    if (fluid) {
      reg.gauge("fluid.backlog_bytes",
                [&fluid_backlog_bytes] { return fluid_backlog_bytes; });
      reg.gauge("fluid.aggregate_bps",
                [&f = *fluid] { return f.aggregate_rate_bps(); });
      reg.gauge("fluid.active_flows",
                [&f = *fluid] { return f.active_flow_count(); });
    }
    reg.gauge("faults.applied", [&injector] {
      const faults::FaultInjector::Counters& fc = injector.counters();
      return static_cast<double>(fc.dropped + fc.bleached + fc.reordered +
                                 fc.rate_changes + fc.rtt_changes);
    });
    if (link.band_count() > 1) {
      // Per-queue probes for the DualQ: L/C head delay and the mark/drop
      // split the overload campaign plots. Registered only for multi-band
      // disciplines so single-queue telemetry snapshots are unchanged.
      reg.gauge("dualq.l_delay_ms", [&link] {
        return to_millis(link.band_head_sojourn(0));
      });
      reg.gauge("dualq.c_delay_ms", [&link] {
        return to_millis(link.band_head_sojourn(1));
      });
      reg.gauge("dualq.l_marked", [&link] {
        return static_cast<double>(link.band_counters(0).marked);
      });
      reg.gauge("dualq.l_dropped", [&link] {
        return static_cast<double>(link.band_counters(0).aqm_dropped);
      });
      reg.gauge("dualq.c_marked", [&link] {
        return static_cast<double>(link.band_counters(1).marked);
      });
      reg.gauge("dualq.c_dropped", [&link] {
        return static_cast<double>(link.band_counters(1).aqm_dropped);
      });
      reg.gauge("dualq.coupling_k",
                [&link] { return link.qdisc().coupling_factor(); });
    }
  }
  if (config.recorder != nullptr) {
    telemetry::RunManifest& manifest = config.recorder->manifest();
    manifest.seed = config.seed;
    manifest.fault_digest = telemetry::fault_schedule_digest(config.faults);
    manifest.build_flags = telemetry::build_flags_string();
    manifest.set("link_rate_bps", config.link_rate_bps);
    manifest.set("buffer_packets",
                 static_cast<std::uint64_t>(config.buffer_packets));
    manifest.set("aqm.type", std::string(to_string(config.aqm.type)));
    manifest.set("aqm.target_ms", to_millis(config.aqm.target));
    manifest.set("aqm.t_update_ms", to_millis(config.aqm.t_update));
    manifest.set("aqm.ecn", std::string(config.aqm.ecn ? "true" : "false"));
    manifest.set("aqm.coupling_k", config.aqm.coupling_k);
    manifest.set("aqm.max_classic_prob", config.aqm.max_classic_prob);
    if (config.aqm.type == AqmType::kDualPi2) {
      manifest.set("aqm.t_shift_ms", to_millis(config.aqm.t_shift));
      manifest.set("aqm.l_drop_percent", config.aqm.l_drop_percent);
      manifest.set("aqm.l_thresh_packets",
                   static_cast<std::uint64_t>(config.aqm.l_thresh_packets));
    }
    if (config.aqm.alpha_hz) manifest.set("aqm.alpha_hz", *config.aqm.alpha_hz);
    if (config.aqm.beta_hz) manifest.set("aqm.beta_hz", *config.aqm.beta_hz);
    manifest.set("tcp_flow_specs",
                 static_cast<std::uint64_t>(config.tcp_flows.size()));
    manifest.set("udp_flow_specs",
                 static_cast<std::uint64_t>(config.udp_flows.size()));
    manifest.set("fluid_flow_specs",
                 static_cast<std::uint64_t>(config.fluid_flows.size()));
    manifest.set("flows", static_cast<std::uint64_t>(flows.size()));
    manifest.set("duration_s", to_seconds(config.duration));
    manifest.set("stats_start_s", to_seconds(config.stats_start));
    manifest.set("sample_interval_s", to_seconds(config.sample_interval));
    config.recorder->start(sim);
  }

  // Periodic sampling of queue delay and AQM probabilities.
  std::function<void()> sample = [&] {
    result.qdelay_ms_series.add(sim.now(), to_millis(link.queue_delay()));
    const double pc = link.qdisc().classic_probability();
    const double ps = link.qdisc().scalable_probability();
    result.classic_prob_series.add(sim.now(), pc);
    if (sim.now() >= config.stats_start) {
      result.classic_prob_samples.add(pc);
      result.scalable_prob_samples.add(ps);
    }
    sim.after(config.sample_interval, sample);
  };
  sim.after(config.sample_interval, sample);

  // Snapshot cumulative counters at the start of the stats window.
  const bool dualq = link.band_count() > 1;
  net::BottleneckLink::Counters counters_at_stats_start{};
  net::BottleneckLink::BandCounters band_l_at_stats_start{};
  net::BottleneckLink::BandCounters band_c_at_stats_start{};
  sim.at(config.stats_start, [&] {
    busy_at_stats_start = util_meter.total_busy_seconds();
    counters_at_stats_start = link.counters();
    if (dualq) {
      band_l_at_stats_start = link.band_counters(0);
      band_c_at_stats_start = link.band_counters(1);
    }
    for (std::int32_t f = 0; f < static_cast<std::int32_t>(flows.size()); ++f) {
      flows.bytes_at_stats_start(f) = flows.goodput(f).total_bytes();
    }
    spec_arrival_at_stats_start = spec_arrival_bytes;
  });

  // --- Run. ----------------------------------------------------------------
  {
    std::unique_ptr<telemetry::ScopedTimer> timer;
    if (config.recorder != nullptr) {
      timer = std::make_unique<telemetry::ScopedTimer>(
          config.recorder->profile().section("sim.run"));
    }
    sim.run_until(config.duration);
  }

  if (sim.stopped()) {
    // Graceful shutdown: the simulation halted at an event boundary before
    // `duration`. Commit what telemetry exists — final sample at the stop
    // time, manifest marked `interrupted` — while the probed objects are
    // still alive, then report the run as not-done: a resumed sweep re-runs
    // this point from scratch and atomically overwrites these artifacts.
    if (config.recorder != nullptr) {
      config.recorder->manifest().set("interrupted", std::string("true"));
      config.recorder->finish(sim.now());
    } else if (config.registry != nullptr) {
      config.registry->freeze_gauges();
    }
    throw durable::InterruptedError(
        "run interrupted by shutdown request at t=" +
        std::to_string(to_seconds(sim.now())) + "s (of " +
        std::to_string(to_seconds(config.duration)) + "s)");
  }

  // --- Collect results. ------------------------------------------------------
  util_meter.flush(config.duration);
  total_meter.flush(config.duration);
  result.utilization_series = util_meter.series();
  result.total_throughput_series = total_meter.series();
  result.counters = link.counters();
  result.window_counters.enqueued =
      result.counters.enqueued - counters_at_stats_start.enqueued;
  result.window_counters.forwarded =
      result.counters.forwarded - counters_at_stats_start.forwarded;
  result.window_counters.aqm_dropped =
      result.counters.aqm_dropped - counters_at_stats_start.aqm_dropped;
  result.window_counters.tail_dropped =
      result.counters.tail_dropped - counters_at_stats_start.tail_dropped;
  result.window_counters.marked =
      result.counters.marked - counters_at_stats_start.marked;
  result.window_counters.fault_dropped =
      result.counters.fault_dropped - counters_at_stats_start.fault_dropped;
  result.window_counters.dequeue_dropped =
      result.counters.dequeue_dropped - counters_at_stats_start.dequeue_dropped;
  if (dualq) {
    result.band_l = link.band_counters(0);
    result.band_c = link.band_counters(1);
    const auto band_window = [](const net::BottleneckLink::BandCounters& whole,
                                const net::BottleneckLink::BandCounters& at) {
      net::BottleneckLink::BandCounters w;
      w.enqueued = whole.enqueued - at.enqueued;
      w.forwarded = whole.forwarded - at.forwarded;
      w.marked = whole.marked - at.marked;
      w.aqm_dropped = whole.aqm_dropped - at.aqm_dropped;
      w.tail_dropped = whole.tail_dropped - at.tail_dropped;
      w.dequeue_dropped = whole.dequeue_dropped - at.dequeue_dropped;
      return w;
    };
    result.window_band_l = band_window(result.band_l, band_l_at_stats_start);
    result.window_band_c = band_window(result.band_c, band_c_at_stats_start);
  }

  const double stats_span_s = to_seconds(config.duration - config.stats_start);
  if (stats_span_s > 0.0) {
    const double busy = util_meter.total_busy_seconds() - busy_at_stats_start;
    result.utilization = busy / stats_span_s;
  }

  for (std::int32_t f = 0; f < static_cast<std::int32_t>(flows.size()); ++f) {
    FlowResult fr;
    fr.cc = flows.cc(f);
    fr.is_udp = flows.kind(f) == tcp::FlowTable::Kind::kUdp;
    if (stats_span_s > 0.0) {
      const auto bytes =
          flows.goodput(f).total_bytes() - flows.bytes_at_stats_start(f);
      fr.goodput_mbps = static_cast<double>(bytes) * 8.0 / stats_span_s / 1e6;
    }
    if (const tcp::TcpSender* sender = flows.sender(f)) {
      fr.retransmits = sender->retransmits();
      fr.timeouts = sender->timeouts();
    }
    result.flows.push_back(fr);
  }
  // One FlowResult per fluid spec: goodput is the windowed offered rate
  // averaged over the spec's `count` modelled flows.
  for (std::size_t i = 0; i < config.fluid_flows.size(); ++i) {
    const FluidFlowSpec& spec = config.fluid_flows[i];
    FlowResult fr;
    fr.cc = spec.cc;
    fr.is_fluid = true;
    fr.count = spec.count;
    if (stats_span_s > 0.0 && spec.count > 0.0) {
      const double bytes =
          spec_arrival_bytes[i] - spec_arrival_at_stats_start[i];
      fr.goodput_mbps = bytes * 8.0 / stats_span_s / 1e6 / spec.count;
    }
    result.flows.push_back(fr);
  }
  result.fluid.arrival_bytes = fluid_arrival_bytes;
  result.fluid.served_bytes = fluid_served_bytes;
  result.fluid.dropped_bytes = fluid_dropped_bytes;
  result.fluid.final_backlog_bytes = fluid_backlog_bytes;
  result.fluid.ticks = fluid ? fluid->ticks() : 0;

  result.mean_qdelay_ms = result.qdelay_ms_packets.mean();
  result.p99_qdelay_ms = result.qdelay_ms_packets.p99();
  result.events_executed = sim.events_executed();
  result.clamped_events = sim.clamped_events();
  result.fault_counters = injector.counters();
  result.violations = monitor.violations();
  result.invariant_checks = monitor.checks_run();
  result.guard_events = link.qdisc().guard_events();

  // Finish telemetry while the probed objects (link, flows, injector) are
  // still alive: the final sample and manifest snapshot read bound gauges.
  if (config.recorder != nullptr) {
    config.recorder->finish(config.duration);
  } else if (config.registry != nullptr) {
    config.registry->freeze_gauges();
  }
  return result;
}

}  // namespace pi2::scenario
