#include "scenario/aqm_factory.hpp"

#include "aqm/codel.hpp"
#include "aqm/curvy_red.hpp"
#include "aqm/pi.hpp"
#include "aqm/pie.hpp"
#include "aqm/red.hpp"
#include "aqm/step_marker.hpp"
#include "core/coupled_pi2.hpp"
#include "core/dualpi2.hpp"
#include "core/pi2.hpp"

namespace pi2::scenario {

std::string_view to_string(AqmType type) {
  switch (type) {
    case AqmType::kFifo: return "fifo";
    case AqmType::kPie: return "pie";
    case AqmType::kBarePie: return "bare-pie";
    case AqmType::kPi: return "pi";
    case AqmType::kPi2: return "pi2";
    case AqmType::kCoupledPi2: return "coupled-pi2";
    case AqmType::kRed: return "red";
    case AqmType::kCodel: return "codel";
    case AqmType::kCurvyRed: return "curvy-red";
    case AqmType::kStep: return "step";
    case AqmType::kDualPi2: return "dualpi2";
  }
  return "?";
}

std::unique_ptr<net::QueueDiscipline> AqmConfig::make() const {
  switch (type) {
    case AqmType::kFifo:
      return std::make_unique<net::FifoTailDrop>();
    case AqmType::kPie:
    case AqmType::kBarePie: {
      aqm::PieAqm::Params p =
          type == AqmType::kBarePie ? aqm::PieAqm::bare_params() : aqm::PieAqm::Params{};
      p.target = target;
      p.t_update = t_update;
      if (alpha_hz) p.alpha_hz = *alpha_hz;
      if (beta_hz) p.beta_hz = *beta_hz;
      p.ecn = ecn;
      if (ecn_drop_threshold) p.ecn_drop_threshold = *ecn_drop_threshold;
      return std::make_unique<aqm::PieAqm>(p);
    }
    case AqmType::kPi: {
      aqm::PiAqm::Params p;
      p.target = target;
      p.t_update = t_update;
      if (alpha_hz) p.alpha_hz = *alpha_hz;
      if (beta_hz) p.beta_hz = *beta_hz;
      p.ecn = ecn;
      return std::make_unique<aqm::PiAqm>(p);
    }
    case AqmType::kPi2: {
      core::Pi2Aqm::Params p;
      p.target = target;
      p.t_update = t_update;
      if (alpha_hz) p.alpha_hz = *alpha_hz;
      if (beta_hz) p.beta_hz = *beta_hz;
      p.ecn = ecn;
      p.max_classic_prob = max_classic_prob;
      return std::make_unique<core::Pi2Aqm>(p);
    }
    case AqmType::kCoupledPi2: {
      core::CoupledPi2Aqm::Params p;
      p.target = target;
      p.t_update = t_update;
      if (alpha_hz) p.alpha_hz = *alpha_hz;
      if (beta_hz) p.beta_hz = *beta_hz;
      p.k = coupling_k;
      p.max_classic_prob = max_classic_prob;
      return std::make_unique<core::CoupledPi2Aqm>(p);
    }
    case AqmType::kRed: {
      aqm::RedAqm::Params p;
      p.ecn = ecn;
      return std::make_unique<aqm::RedAqm>(p);
    }
    case AqmType::kCodel: {
      aqm::CodelAqm::Params p;
      p.ecn = ecn;
      return std::make_unique<aqm::CodelAqm>(p);
    }
    case AqmType::kCurvyRed: {
      aqm::CurvyRedAqm::Params p;
      p.k = coupling_k;
      p.ecn = ecn;
      return std::make_unique<aqm::CurvyRedAqm>(p);
    }
    case AqmType::kStep: {
      aqm::StepMarkerAqm::Params p;
      p.threshold = target;  // reuse the target knob as the step threshold
      return std::make_unique<aqm::StepMarkerAqm>(p);
    }
    case AqmType::kDualPi2: {
      core::DualPi2Qdisc::Params p;
      p.target = target;
      p.t_update = t_update;
      if (alpha_hz) p.alpha_hz = *alpha_hz;
      if (beta_hz) p.beta_hz = *beta_hz;
      p.k = coupling_k;
      p.max_classic_prob = max_classic_prob;
      p.t_shift = t_shift;
      p.l_drop_percent = l_drop_percent;
      p.l_thresh_packets = l_thresh_packets;
      return std::make_unique<core::DualPi2Qdisc>(p);
    }
  }
  return std::make_unique<net::FifoTailDrop>();
}

}  // namespace pi2::scenario
