// Web-like short-flow workload: Poisson arrivals of finite TCP transfers
// with heavy-tailed (bounded-Pareto) sizes, measuring flow completion times.
//
// Reproduces the paper's §6 check that "mixed short flow completion times
// with PIE, bare PIE and PI2 under both heavy and light Web-like workloads
// were essentially the same".
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/aqm_factory.hpp"
#include "sim/time.hpp"
#include "stats/percentile.hpp"
#include "tcp/congestion_control.hpp"

namespace pi2::scenario {

struct ShortFlowConfig {
  double link_rate_bps = 10e6;
  std::int64_t buffer_packets = 40000;
  AqmConfig aqm;
  pi2::sim::Duration base_rtt = pi2::sim::from_millis(100);
  tcp::CcType cc = tcp::CcType::kCubic;

  /// Offered load from the short flows as a fraction of link capacity.
  double offered_load = 0.5;
  /// Bounded-Pareto size distribution in segments (shape ~ web transfers).
  double pareto_shape = 1.2;
  std::int64_t min_segments = 3;       // ~4.5 kB
  std::int64_t max_segments = 700;     // ~1 MB
  /// Long-running background flows sharing the bottleneck.
  int background_flows = 0;

  pi2::sim::Time duration{std::chrono::seconds{60}};
  pi2::sim::Time stats_start{std::chrono::seconds{10}};
  std::uint64_t seed = 1;
};

struct ShortFlowResult {
  /// Flow completion time in milliseconds, all completed flows.
  stats::PercentileSampler fct_ms;
  /// FCT split by size: "short" (< 100 segments) and "long" (>= 100).
  stats::PercentileSampler fct_short_ms;
  stats::PercentileSampler fct_long_ms;
  std::int64_t flows_started = 0;
  std::int64_t flows_completed = 0;
  double mean_qdelay_ms = 0.0;
  double utilization = 0.0;
};

/// Mean of the bounded-Pareto distribution used for flow sizes.
double bounded_pareto_mean(double shape, double lo, double hi);

ShortFlowResult run_short_flows(const ShortFlowConfig& config);

}  // namespace pi2::scenario
