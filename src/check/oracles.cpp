#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "check/golden.hpp"
#include "core/dualpi2.hpp"
#include "durable/journal.hpp"
#include "faults/fault_schedule.hpp"
#include "durable/result_codec.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "topology/topology.hpp"

namespace pi2::check {

using pi2::telemetry::MetricsRegistry;

namespace {

void fail(std::vector<OracleFailure>& failures, std::string oracle,
          std::string detail) {
  failures.push_back({std::move(oracle), std::move(detail)});
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof buf, format, ap);
  va_end(ap);
  return buf;
}

/// Looks up a (frozen) gauge; NaN when the registry never registered it.
double gauge_value(const MetricsRegistry& registry, const char* name) {
  const auto it = registry.gauges().find(name);
  return it == registry.gauges().end() ? std::nan("")
                                       : it->second.value();
}

/// Coupling factor of the p = (p'/k)^2 law, or 0 for disciplines without it.
double coupling_k_of(const scenario::AqmConfig& aqm) {
  switch (aqm.type) {
    case scenario::AqmType::kPi2:
      return 1.0;  // single-signal: p = (p')^2
    case scenario::AqmType::kCoupledPi2:
    case scenario::AqmType::kCurvyRed:
      return aqm.coupling_k;
    default:
      return 0.0;
  }
}

/// QueueView whose delay the coupling-law driver dials directly.
class DrivenQueueView final : public net::QueueView {
 public:
  [[nodiscard]] std::int64_t backlog_bytes() const override { return bytes_; }
  [[nodiscard]] std::int64_t backlog_packets() const override {
    return bytes_ / net::kDefaultMss;
  }
  [[nodiscard]] double link_rate_bps() const override { return rate_bps_; }
  [[nodiscard]] pi2::sim::Duration queue_delay() const override {
    return pi2::sim::from_seconds(static_cast<double>(bytes_) * 8.0 / rate_bps_);
  }
  /// DualPI2's PI controller samples the Classic band's head sojourn; feed
  /// it the driven delay so the two-queue law can be exercised too.
  [[nodiscard]] pi2::sim::Duration band_head_sojourn(
      std::size_t band) const override {
    return band == core::DualPi2Qdisc::kCBand ? queue_delay()
                                              : pi2::sim::Duration{};
  }
  void set_delay_seconds(double s) {
    bytes_ = static_cast<std::int64_t>(s * rate_bps_ / 8.0);
  }

 private:
  std::int64_t bytes_ = 0;
  double rate_bps_ = 10e6;
};

void mix_u64(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a, one byte at a time, over v's little-endian representation.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

void mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  mix_u64(h, bits);
}

void mix_bytes(std::uint64_t& h, const std::string& s) {
  mix_u64(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t result_digest(const scenario::RunResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  mix_u64(h, result.events_executed);
  mix_u64(h, result.clamped_events);
  mix_u64(h, result.invariant_checks);
  mix_u64(h, result.guard_events);
  mix_u64(h, static_cast<std::uint64_t>(result.violations.size()));
  const auto mix_counters = [&h](const net::BottleneckLink::Counters& c) {
    mix_u64(h, static_cast<std::uint64_t>(c.enqueued));
    mix_u64(h, static_cast<std::uint64_t>(c.forwarded));
    mix_u64(h, static_cast<std::uint64_t>(c.aqm_dropped));
    mix_u64(h, static_cast<std::uint64_t>(c.tail_dropped));
    mix_u64(h, static_cast<std::uint64_t>(c.marked));
    mix_u64(h, static_cast<std::uint64_t>(c.fault_dropped));
    mix_u64(h, static_cast<std::uint64_t>(c.dequeue_dropped));
  };
  mix_counters(result.counters);
  mix_counters(result.window_counters);
  const auto mix_band = [&h](const net::BottleneckLink::BandCounters& b) {
    mix_u64(h, static_cast<std::uint64_t>(b.enqueued));
    mix_u64(h, static_cast<std::uint64_t>(b.forwarded));
    mix_u64(h, static_cast<std::uint64_t>(b.marked));
    mix_u64(h, static_cast<std::uint64_t>(b.aqm_dropped));
    mix_u64(h, static_cast<std::uint64_t>(b.tail_dropped));
    mix_u64(h, static_cast<std::uint64_t>(b.dequeue_dropped));
  };
  mix_band(result.band_l);
  mix_band(result.band_c);
  mix_band(result.window_band_l);
  mix_band(result.window_band_c);
  mix_u64(h, static_cast<std::uint64_t>(result.fault_counters.dropped));
  mix_u64(h, static_cast<std::uint64_t>(result.fault_counters.bleached));
  mix_u64(h, static_cast<std::uint64_t>(result.fault_counters.reordered));
  mix_u64(h, static_cast<std::uint64_t>(result.fault_counters.rate_changes));
  mix_u64(h, static_cast<std::uint64_t>(result.fault_counters.rtt_changes));
  mix_double(h, result.mean_qdelay_ms);
  mix_double(h, result.p99_qdelay_ms);
  mix_double(h, result.utilization);
  mix_double(h, result.fluid.arrival_bytes);
  mix_double(h, result.fluid.served_bytes);
  mix_double(h, result.fluid.dropped_bytes);
  mix_double(h, result.fluid.final_backlog_bytes);
  mix_u64(h, result.fluid.ticks);
  mix_u64(h, static_cast<std::uint64_t>(result.flows.size()));
  for (const auto& flow : result.flows) {
    mix_u64(h, static_cast<std::uint64_t>(flow.cc));
    mix_u64(h, flow.is_udp ? 1 : 0);
    mix_u64(h, flow.is_fluid ? 1 : 0);
    mix_double(h, flow.count);
    mix_double(h, flow.goodput_mbps);
    mix_u64(h, static_cast<std::uint64_t>(flow.retransmits));
    mix_u64(h, static_cast<std::uint64_t>(flow.timeouts));
  }
  mix_u64(h, static_cast<std::uint64_t>(result.links.size()));
  for (const auto& link : result.links) {
    mix_bytes(h, link.name);
    mix_double(h, link.mean_qdelay_ms);
    mix_double(h, link.p99_qdelay_ms);
    mix_double(h, link.utilization);
    mix_counters(link.counters);
    mix_counters(link.window_counters);
    mix_u64(h, static_cast<std::uint64_t>(link.fault_counters.dropped));
    mix_u64(h, static_cast<std::uint64_t>(link.fault_counters.bleached));
    mix_u64(h, static_cast<std::uint64_t>(link.fault_counters.reordered));
    mix_u64(h, static_cast<std::uint64_t>(link.fault_counters.rate_changes));
    mix_u64(h, static_cast<std::uint64_t>(link.fault_counters.rtt_changes));
    mix_u64(h, link.guard_events);
    mix_u64(h, static_cast<std::uint64_t>(link.final_backlog_packets));
  }
  const stats::ResilienceReport& rr = result.resilience;
  mix_u64(h, rr.analyzed ? 1 : 0);
  mix_u64(h, rr.windows);
  mix_u64(h, rr.recovered_windows);
  mix_double(h, rr.worst_recovery_s);
  mix_double(h, rr.mean_recovery_s);
  mix_double(h, rr.peak_qdelay_ms);
  mix_double(h, rr.pre_fault_mean_qdelay_ms);
  mix_double(h, rr.post_fault_mean_qdelay_ms);
  mix_double(h, rr.post_fault_delta_ms);
  mix_u64(h, rr.violations_in_window);
  mix_u64(h, rr.violations_outside);
  mix_u64(h, static_cast<std::uint64_t>(rr.recovery_s.size()));
  for (const double r : rr.recovery_s) mix_double(h, r);
  return h;
}

std::uint64_t topology_result_digest(const topology::TopologyResult& result) {
  std::uint64_t h =
      result_digest(topology::to_run_result(topology::TopologyResult{result}));
  // The flattening keeps every per-link slice but drops the flow->route
  // assignment; fold it back in so re-routed flows change the fingerprint.
  for (const std::int32_t route : result.flow_route) {
    mix_u64(h, static_cast<std::uint64_t>(route));
  }
  return h;
}

void check_conservation(const scenario::DumbbellConfig& config,
                        const scenario::RunResult& result,
                        const MetricsRegistry& registry,
                        std::vector<OracleFailure>& failures) {
  const auto& c = result.counters;

  // Bus vs incremental counters: the departure probe fired exactly once per
  // forwarded packet.
  const auto hist = registry.histograms().find("link.sojourn_ms");
  if (hist == registry.histograms().end()) {
    fail(failures, "conservation", "histogram link.sojourn_ms missing");
  } else if (hist->second.count() != static_cast<std::uint64_t>(c.forwarded)) {
    fail(failures, "conservation",
         fmt("departure-probe count %llu != forwarded %lld",
             static_cast<unsigned long long>(hist->second.count()),
             static_cast<long long>(c.forwarded)));
  }

  // Packet conservation: every accepted packet is forwarded, dropped at
  // dequeue, still queued, or (at most one) mid-transmission at cutoff.
  const double backlog = gauge_value(registry, "queue.backlog_packets");
  if (std::isnan(backlog)) {
    fail(failures, "conservation", "gauge queue.backlog_packets missing");
  } else {
    const std::int64_t slack = c.enqueued - c.forwarded - c.dequeue_dropped -
                               static_cast<std::int64_t>(backlog);
    if (slack < 0 || slack > 1) {
      fail(failures, "conservation",
           fmt("enqueued %lld != forwarded %lld + dequeue_dropped %lld + "
               "backlog %.0f (+ 0/1 transmitting); slack %lld",
               static_cast<long long>(c.enqueued),
               static_cast<long long>(c.forwarded),
               static_cast<long long>(c.dequeue_dropped), backlog,
               static_cast<long long>(slack)));
    }
  }

  // The frozen counter gauges and the RunResult were captured from the same
  // object at the same instant — any drift means a probe lied.
  const struct {
    const char* name;
    std::int64_t want;
  } mirrored[] = {
      {"link.enqueued", c.enqueued},         {"link.forwarded", c.forwarded},
      {"link.aqm_dropped", c.aqm_dropped},   {"link.tail_dropped", c.tail_dropped},
      {"link.marked", c.marked},             {"link.fault_dropped", c.fault_dropped},
  };
  for (const auto& m : mirrored) {
    const double got = gauge_value(registry, m.name);
    if (std::isnan(got) || static_cast<std::int64_t>(got) != m.want) {
      fail(failures, "conservation",
           fmt("gauge %s = %.0f != RunResult counter %lld", m.name, got,
               static_cast<long long>(m.want)));
    }
  }

  // Byte accounting: transmitted bytes bounded by the packet-size envelope
  // of the configured flows (ACKs return over the reverse path and never
  // cross the bottleneck).
  const auto tx = registry.counters().find("link.tx_bytes");
  if (tx == registry.counters().end()) {
    fail(failures, "conservation", "counter link.tx_bytes missing");
  } else {
    std::int64_t min_size = 0;
    std::int64_t max_size = 0;
    if (!config.tcp_flows.empty()) {
      min_size = max_size = net::kDefaultMss;
    }
    for (const auto& udp : config.udp_flows) {
      const std::int64_t size = udp.packet_bytes;
      min_size = min_size == 0 ? size : std::min(min_size, size);
      max_size = std::max(max_size, size);
    }
    const auto bytes = static_cast<std::int64_t>(tx->second.value());
    if (c.forwarded == 0) {
      if (bytes != 0) {
        fail(failures, "conservation",
             fmt("tx_bytes %lld with zero forwarded packets",
                 static_cast<long long>(bytes)));
      }
    } else if (bytes < c.forwarded * min_size || bytes > c.forwarded * max_size) {
      fail(failures, "conservation",
           fmt("tx_bytes %lld outside [%lld, %lld] for %lld forwarded packets",
               static_cast<long long>(bytes),
               static_cast<long long>(c.forwarded * min_size),
               static_cast<long long>(c.forwarded * max_size),
               static_cast<long long>(c.forwarded)));
    }
  }

  // The stats window is a sub-interval of the run.
  const struct {
    const char* name;
    std::int64_t window, whole;
  } windows[] = {
      {"enqueued", result.window_counters.enqueued, c.enqueued},
      {"forwarded", result.window_counters.forwarded, c.forwarded},
      {"aqm_dropped", result.window_counters.aqm_dropped, c.aqm_dropped},
      {"tail_dropped", result.window_counters.tail_dropped, c.tail_dropped},
      {"marked", result.window_counters.marked, c.marked},
      {"fault_dropped", result.window_counters.fault_dropped, c.fault_dropped},
  };
  for (const auto& w : windows) {
    if (w.window < 0 || w.window > w.whole) {
      fail(failures, "conservation",
           fmt("window %s %lld exceeds whole-run %lld", w.name,
               static_cast<long long>(w.window), static_cast<long long>(w.whole)));
    }
  }
}

void check_invariants_clean(const scenario::DumbbellConfig& config,
                            const scenario::RunResult& result,
                            std::vector<OracleFailure>& failures) {
  for (const auto& violation : result.violations) {
    fail(failures, "invariants",
         fmt("monitor violation [%s] at t=%.3fs: %s", violation.check.c_str(),
             pi2::sim::to_seconds(violation.at), violation.detail.c_str()));
  }
  if (result.clamped_events != 0) {
    fail(failures, "invariants",
         fmt("%llu events scheduled in the past and clamped",
             static_cast<unsigned long long>(result.clamped_events)));
  }
  if (result.guard_events != 0) {
    fail(failures, "invariants",
         fmt("AQM rejected %llu non-finite controller updates",
             static_cast<unsigned long long>(result.guard_events)));
  }
  if (config.check_invariants && result.invariant_checks == 0) {
    fail(failures, "invariants", "invariant monitor never ran a check");
  }
}

void check_fluid(const scenario::DumbbellConfig& config,
                 const scenario::RunResult& result,
                 std::vector<OracleFailure>& failures) {
  const scenario::FluidStats& f = result.fluid;
  if (config.fluid_flows.empty()) {
    if (f.ticks != 0 || f.arrival_bytes != 0.0 || f.served_bytes != 0.0 ||
        f.dropped_bytes != 0.0 || f.final_backlog_bytes != 0.0) {
      fail(failures, "fluid",
           fmt("fluid stats nonzero without fluid specs "
               "(arrival=%g served=%g dropped=%g backlog=%g ticks=%llu)",
               f.arrival_bytes, f.served_bytes, f.dropped_bytes,
               f.final_backlog_bytes, static_cast<unsigned long long>(f.ticks)));
    }
    return;
  }
  if (f.ticks == 0) {
    fail(failures, "fluid", "fluid specs configured but the ensemble never ticked");
  }
  if (!std::isfinite(f.arrival_bytes) || f.arrival_bytes < 0.0 ||
      !std::isfinite(f.served_bytes) || f.served_bytes < 0.0 ||
      !std::isfinite(f.dropped_bytes) || f.dropped_bytes < 0.0 ||
      !std::isfinite(f.final_backlog_bytes) || f.final_backlog_bytes < 0.0) {
    fail(failures, "fluid",
         fmt("fluid accounting not finite/non-negative "
             "(arrival=%g served=%g dropped=%g backlog=%g)",
             f.arrival_bytes, f.served_bytes, f.dropped_bytes,
             f.final_backlog_bytes));
    return;
  }
  // Conservation: every offered byte was carried, tail-dropped at the shared
  // buffer, or is still queued.
  const double residual = f.arrival_bytes - f.served_bytes - f.dropped_bytes -
                          f.final_backlog_bytes;
  const double scale = std::max(1.0, f.arrival_bytes);
  if (std::abs(residual) / scale > 1e-6) {
    fail(failures, "fluid",
         fmt("fluid bytes not conserved: arrival %g != served %g + dropped %g "
             "+ backlog %g (residual %g)",
             f.arrival_bytes, f.served_bytes, f.dropped_bytes,
             f.final_backlog_bytes, residual));
  }
  // The link cannot have carried more fluid than its fastest configured
  // rate sustained for the whole run. Fault-injected rate steps and flaps
  // retune the bottleneck too, so they widen the bound alongside the
  // scenario's own rate_changes.
  double max_rate_bps = config.link_rate_bps;
  for (const scenario::RateChange& change : config.rate_changes) {
    max_rate_bps = std::max(max_rate_bps, change.rate_bps);
  }
  for (const faults::FaultEvent& event : config.faults.events) {
    if (event.kind == faults::FaultKind::kRateStep ||
        event.kind == faults::FaultKind::kRateFlap) {
      max_rate_bps = std::max({max_rate_bps, event.rate_bps, event.rate2_bps});
    }
  }
  const double cap_bytes =
      max_rate_bps * pi2::sim::to_seconds(config.duration) / 8.0;
  if (f.served_bytes > cap_bytes * (1.0 + 1e-6)) {
    fail(failures, "fluid",
         fmt("fluid served %g bytes exceeds whole-run link capacity %g",
             f.served_bytes, cap_bytes));
  }
}

void check_coupling_law(const scenario::AqmConfig& aqm, std::uint64_t seed,
                        const std::string& where,
                        std::vector<OracleFailure>& failures) {
  // Failure details carry the caller's scope (the link name in topologies);
  // the single-bottleneck path passes "" and keeps the legacy message text.
  const std::string at = where.empty() ? std::string() : where + ": ";

  // DualPI2 publishes a different pair: classic = (p')^2, scalable = the
  // overload-clamped coupled probability min(k * p', 1). Drive it across the
  // same ladder and assert that law instead of the single-queue one.
  if (aqm.type == scenario::AqmType::kDualPi2) {
    const double k = aqm.coupling_k;
    pi2::sim::Simulator sim{seed};
    DrivenQueueView view;
    auto qdisc = aqm.make();
    qdisc->install(sim, view);

    const double target_s = pi2::sim::to_seconds(aqm.target);
    const double ladder[] = {0.0,          target_s * 0.5, target_s,
                             target_s * 2, target_s * 8,   target_s * 32};
    for (const double delay_s : ladder) {
      view.set_delay_seconds(delay_s);
      sim.run_until(sim.now() + aqm.t_update * 5);
      const double pc = qdisc->classic_probability();
      const double ps = qdisc->scalable_probability();
      const double expected =
          pc >= 0.0 ? std::min(k * std::sqrt(pc), 1.0) : std::nan("");
      if (!std::isfinite(pc) || !std::isfinite(ps) || pc < 0.0 ||
          pc > aqm.max_classic_prob + 1e-12 ||
          std::abs(ps - expected) > 1e-12) {
        fail(failures, "coupling-law",
             fmt("%sdualpi2 at qdelay %.4fs: p_CL = %.12g but "
                 "min(k*sqrt(p_C), 1) = %.12g (p_C = %.12g, k = %.3g, "
                 "cap = %.3g)",
                 at.c_str(), delay_s, ps, expected, pc, k,
                 aqm.max_classic_prob));
        return;
      }
    }
    return;
  }

  const double k = coupling_k_of(aqm);
  if (k <= 0.0) return;

  // Drive the discipline alone across a deterministic ladder of queue
  // states; the output law must hold at every operating point, including
  // saturation.
  pi2::sim::Simulator sim{seed};
  DrivenQueueView view;
  auto qdisc = aqm.make();
  qdisc->install(sim, view);

  const double target_s = pi2::sim::to_seconds(aqm.target);
  const double ladder[] = {0.0,          target_s * 0.5, target_s,
                           target_s * 2, target_s * 8,   target_s * 32};
  for (const double delay_s : ladder) {
    view.set_delay_seconds(delay_s);
    // Let timer-driven controllers integrate and EWMA-driven ones observe.
    sim.run_until(sim.now() + aqm.t_update * 5);
    for (int i = 0; i < 32; ++i) {
      (void)qdisc->enqueue(net::Packet{});
    }
    const double p_prime = qdisc->scalable_probability();
    const double root = p_prime / k;
    const double expected = root * root;
    const double got = qdisc->classic_probability();
    if (std::abs(got - expected) > 1e-12 ||
        !std::isfinite(got) || !std::isfinite(p_prime)) {
      fail(failures, "coupling-law",
           fmt("%s%s at qdelay %.4fs: p = %.12g but (p'/k)^2 = %.12g "
               "(p' = %.12g, k = %.3g)",
               at.c_str(),
               std::string(scenario::to_string(aqm.type)).c_str(),
               delay_s, got, expected, p_prime, k));
      return;  // one point is enough; later points would repeat the message
    }
  }
}

void check_coupling_law(const scenario::DumbbellConfig& config,
                        std::vector<OracleFailure>& failures) {
  check_coupling_law(config.aqm, config.seed, "", failures);
}

void check_coupling_snapshot(const scenario::DumbbellConfig& config,
                             const MetricsRegistry& registry,
                             std::vector<OracleFailure>& failures) {
  if (config.aqm.type == scenario::AqmType::kDualPi2) {
    const double p = gauge_value(registry, "aqm.p");
    const double p_prime = gauge_value(registry, "aqm.p_prime");
    if (std::isnan(p) || std::isnan(p_prime)) {
      fail(failures, "coupling-law", "aqm.p / aqm.p_prime gauges missing");
      return;
    }
    const double expected =
        std::min(config.aqm.coupling_k * std::sqrt(std::max(p, 0.0)), 1.0);
    if (std::abs(p_prime - expected) > 1e-12) {
      fail(failures, "coupling-law",
           fmt("final snapshot: aqm.p_prime = %.12g but min(k*sqrt(p), 1) = "
               "%.12g (p = %.12g, k = %.3g)",
               p_prime, expected, p, config.aqm.coupling_k));
    }
    return;
  }
  const double k = coupling_k_of(config.aqm);
  if (k <= 0.0) return;
  const double p = gauge_value(registry, "aqm.p");
  const double p_prime = gauge_value(registry, "aqm.p_prime");
  if (std::isnan(p) || std::isnan(p_prime)) {
    fail(failures, "coupling-law", "aqm.p / aqm.p_prime gauges missing");
    return;
  }
  const double root = p_prime / k;
  const double expected = root * root;
  if (std::abs(p - expected) > 1e-12) {
    fail(failures, "coupling-law",
         fmt("final snapshot: aqm.p = %.12g but (p'/k)^2 = %.12g "
             "(p' = %.12g, k = %.3g)",
             p, expected, p_prime, k));
  }
}

void check_dualq(const scenario::DumbbellConfig& config,
                 const scenario::RunResult& result,
                 std::vector<OracleFailure>& failures) {
  using BandCounters = net::BottleneckLink::BandCounters;
  struct Field {
    const char* name;
    std::int64_t BandCounters::*band;
  };
  static constexpr Field kFields[] = {
      {"enqueued", &BandCounters::enqueued},
      {"forwarded", &BandCounters::forwarded},
      {"marked", &BandCounters::marked},
      {"aqm_dropped", &BandCounters::aqm_dropped},
      {"tail_dropped", &BandCounters::tail_dropped},
      {"dequeue_dropped", &BandCounters::dequeue_dropped},
  };

  if (config.aqm.type != scenario::AqmType::kDualPi2) {
    // Single-queue runs must not invent per-band traffic.
    for (const auto* b : {&result.band_l, &result.band_c,
                          &result.window_band_l, &result.window_band_c}) {
      for (const Field& f : kFields) {
        if (b->*f.band != 0) {
          fail(failures, "dualq",
               fmt("single-queue run reports band %s = %lld", f.name,
                   static_cast<long long>(b->*f.band)));
          return;
        }
      }
    }
    return;
  }

  // L + C slices must reproduce the aggregate counters exactly — every
  // packet the link counted went through exactly one band.
  const struct {
    const char* scope;
    const BandCounters* l;
    const BandCounters* c;
    const net::BottleneckLink::Counters* whole;
  } scopes[] = {
      {"whole-run", &result.band_l, &result.band_c, &result.counters},
      {"window", &result.window_band_l, &result.window_band_c,
       &result.window_counters},
  };
  for (const auto& scope : scopes) {
    const struct {
      const char* name;
      std::int64_t sum;
      std::int64_t want;
    } checks[] = {
        {"enqueued", scope.l->enqueued + scope.c->enqueued,
         scope.whole->enqueued},
        {"forwarded", scope.l->forwarded + scope.c->forwarded,
         scope.whole->forwarded},
        {"marked", scope.l->marked + scope.c->marked, scope.whole->marked},
        {"aqm_dropped", scope.l->aqm_dropped + scope.c->aqm_dropped,
         scope.whole->aqm_dropped},
        {"tail_dropped", scope.l->tail_dropped + scope.c->tail_dropped,
         scope.whole->tail_dropped},
        {"dequeue_dropped", scope.l->dequeue_dropped + scope.c->dequeue_dropped,
         scope.whole->dequeue_dropped},
    };
    for (const auto& check : checks) {
      if (check.sum != check.want) {
        fail(failures, "dualq",
             fmt("%s L+C %s sums to %lld but aggregate counter says %lld",
                 scope.scope, check.name, static_cast<long long>(check.sum),
                 static_cast<long long>(check.want)));
      }
    }
  }

  // The stats window is a sub-interval of the run, per band too.
  const struct {
    const char* name;
    const BandCounters* window;
    const BandCounters* whole;
  } bands[] = {
      {"L", &result.window_band_l, &result.band_l},
      {"C", &result.window_band_c, &result.band_c},
  };
  for (const auto& band : bands) {
    for (const Field& f : kFields) {
      const std::int64_t window = band.window->*f.band;
      const std::int64_t whole = band.whole->*f.band;
      if (window < 0 || window > whole) {
        fail(failures, "dualq",
             fmt("band %s window %s %lld exceeds whole-run %lld", band.name,
                 f.name, static_cast<long long>(window),
                 static_cast<long long>(whole)));
      }
    }
  }
}

void check_telemetry_roundtrip(const std::string& jsonl_path,
                               const MetricsRegistry& registry,
                               std::vector<OracleFailure>& failures) {
  std::ifstream in{jsonl_path};
  if (!in) {
    fail(failures, "telemetry", "cannot open " + jsonl_path);
    return;
  }
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) {
    fail(failures, "telemetry", jsonl_path + " has no samples");
    return;
  }

  JsonRecord row;
  std::string error;
  if (!parse_flat_object(last, &row, &error)) {
    fail(failures, "telemetry", "final JSONL row unparsable: " + error);
    return;
  }
  if (row.numbers.count("t_s") == 0) {
    fail(failures, "telemetry", "final JSONL row lacks t_s");
  }

  // Recorder::finish() takes its last sample at the run end and then
  // freezes, so the final row must equal the frozen snapshot — up to the
  // exporter's 9-significant-digit float formatting.
  const auto snapshot = registry.snapshot();
  for (const auto& [name, value] : snapshot) {
    const auto it = row.numbers.find(name);
    if (it == row.numbers.end()) {
      fail(failures, "telemetry", "final JSONL row missing metric " + name);
      continue;
    }
    const double got = it->second;
    const double diff = std::abs(got - value);
    const double scale = std::max(std::abs(got), std::abs(value));
    if (diff > 1e-9 && diff > 1e-7 * scale) {
      fail(failures, "telemetry",
           fmt("metric %s: JSONL %.12g != snapshot %.12g", name.c_str(), got,
               value));
    }
  }
  // Everything in the stream must exist in the registry, too.
  if (row.numbers.size() != snapshot.size() + 1) {  // +1 for t_s
    fail(failures, "telemetry",
         fmt("final JSONL row has %zu fields, registry snapshot has %zu",
             row.numbers.size(), snapshot.size()));
  }
}

void check_journal_roundtrip(const scenario::RunResult& result,
                             std::vector<OracleFailure>& failures) {
  durable::JournalRecord record;
  record.kind = "point";
  record.key = result_digest(result);
  record.payload = durable::encode_result(result);
  const std::string line = durable::encode_record(record);

  durable::JournalRecord parsed;
  const durable::Status parse_status = durable::parse_record(line, parsed);
  if (!parse_status.ok()) {
    fail(failures, "journal",
         "record line failed to parse back: " + parse_status.message());
    return;
  }
  if (parsed.kind != record.kind || parsed.key != record.key ||
      parsed.payload != record.payload) {
    fail(failures, "journal", "record round-trip altered kind/key/payload");
    return;
  }
  scenario::RunResult decoded;
  const durable::Status decode_status =
      durable::decode_result(parsed.payload, decoded);
  if (!decode_status.ok()) {
    fail(failures, "journal",
         "payload failed to decode: " + decode_status.message());
    return;
  }
  const std::uint64_t got = result_digest(decoded);
  if (got != record.key) {
    fail(failures, "journal",
         fmt("digest %016llx != %016llx after journal round-trip",
             static_cast<unsigned long long>(got),
             static_cast<unsigned long long>(record.key)));
  }
}

CaseOutcome run_case_oracles(const scenario::DumbbellConfig& config,
                             std::uint64_t index, const OracleOptions& options) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.seed = config.seed;

  scenario::DumbbellConfig cfg = config;
  std::unique_ptr<telemetry::Recorder> recorder;
  telemetry::MetricsRegistry bare_registry;
  if (!options.scratch_dir.empty()) {
    telemetry::RecorderConfig rc;
    rc.dir = options.scratch_dir;
    rc.run_id = options.run_id.empty() ? "case_" + std::to_string(index)
                                       : options.run_id;
    rc.interval = cfg.sample_interval;
    recorder = std::make_unique<telemetry::Recorder>(rc);
    cfg.recorder = recorder.get();
  } else {
    cfg.registry = &bare_registry;
  }

  const scenario::RunResult result = scenario::run_dumbbell(cfg);
  outcome.digest = result_digest(result);

  const telemetry::MetricsRegistry& registry =
      recorder ? recorder->registry() : bare_registry;
  check_conservation(cfg, result, registry, outcome.failures);
  check_invariants_clean(cfg, result, outcome.failures);
  check_fluid(cfg, result, outcome.failures);
  check_coupling_law(cfg, outcome.failures);
  check_coupling_snapshot(cfg, registry, outcome.failures);
  check_dualq(cfg, result, outcome.failures);
  check_journal_roundtrip(result, outcome.failures);
  if (recorder) {
    if (!recorder->ok()) {
      fail(outcome.failures, "telemetry", "recorder reported an I/O failure");
    } else {
      check_telemetry_roundtrip(recorder->jsonl_path(), registry,
                                outcome.failures);
    }
  }

  if (!options.inject_failure.empty()) {
    fail(outcome.failures, options.inject_failure,
         "synthetic failure injected for self-test");
  }
  return outcome;
}

void check_topology_links(const topology::TopologyConfig& config,
                          const topology::TopologyResult& result,
                          std::vector<OracleFailure>& failures) {
  using BandCounters = net::BottleneckLink::BandCounters;
  if (result.links.size() != config.links.size()) {
    fail(failures, "conservation",
         fmt("result has %zu link slices for %zu configured links",
             result.links.size(), config.links.size()));
    return;
  }

  // Which links carry fluid routes (a fluid path crosses exactly one link).
  std::vector<bool> carries_fluid(config.links.size(), false);
  for (const auto& route : config.fluid_flows) {
    if (route.path.size() == 2) {
      const int li = config.link_between(route.path[0], route.path[1]);
      if (li >= 0) carries_fluid[static_cast<std::size_t>(li)] = true;
    }
  }

  for (std::size_t li = 0; li < result.links.size(); ++li) {
    const topology::LinkResult& link = result.links[li];
    const auto& c = link.counters;
    const char* name = link.name.c_str();

    // Exact per-link conservation: the slice records the end-of-run queue
    // occupancy, so unlike the gauge-based dumbbell oracle there is no
    // one-packet slack — the books must balance to zero.
    const std::int64_t residual = c.enqueued - c.forwarded -
                                  c.dequeue_dropped - link.final_backlog_packets -
                                  (link.final_transmitting ? 1 : 0);
    if (residual != 0) {
      fail(failures, "conservation",
           fmt("link %s: enqueued %lld != forwarded %lld + dequeue_dropped "
               "%lld + backlog %lld + transmitting %d (residual %lld)",
               name, static_cast<long long>(c.enqueued),
               static_cast<long long>(c.forwarded),
               static_cast<long long>(c.dequeue_dropped),
               static_cast<long long>(link.final_backlog_packets),
               link.final_transmitting ? 1 : 0,
               static_cast<long long>(residual)));
    }

    // The stats window is a sub-interval of the run, per link.
    const struct {
      const char* field;
      std::int64_t window, whole;
    } windows[] = {
        {"enqueued", link.window_counters.enqueued, c.enqueued},
        {"forwarded", link.window_counters.forwarded, c.forwarded},
        {"aqm_dropped", link.window_counters.aqm_dropped, c.aqm_dropped},
        {"tail_dropped", link.window_counters.tail_dropped, c.tail_dropped},
        {"marked", link.window_counters.marked, c.marked},
        {"fault_dropped", link.window_counters.fault_dropped, c.fault_dropped},
        {"dequeue_dropped", link.window_counters.dequeue_dropped,
         c.dequeue_dropped},
    };
    for (const auto& w : windows) {
      if (w.window < 0 || w.window > w.whole) {
        fail(failures, "conservation",
             fmt("link %s: window %s %lld exceeds whole-run %lld", name,
                 w.field, static_cast<long long>(w.window),
                 static_cast<long long>(w.whole)));
      }
    }

    // Per-band slicing, per link: DualPI2 links split every counter into
    // L + C exactly; single-queue links must keep the bands all zero.
    struct Field {
      const char* field;
      std::int64_t BandCounters::*band;
    };
    static constexpr Field kFields[] = {
        {"enqueued", &BandCounters::enqueued},
        {"forwarded", &BandCounters::forwarded},
        {"marked", &BandCounters::marked},
        {"aqm_dropped", &BandCounters::aqm_dropped},
        {"tail_dropped", &BandCounters::tail_dropped},
        {"dequeue_dropped", &BandCounters::dequeue_dropped},
    };
    if (config.links[li].aqm.type == scenario::AqmType::kDualPi2) {
      const struct {
        const char* scope;
        const BandCounters* l;
        const BandCounters* c;
        const net::BottleneckLink::Counters* whole;
      } scopes[] = {
          {"whole-run", &link.band_l, &link.band_c, &c},
          {"window", &link.window_band_l, &link.window_band_c,
           &link.window_counters},
      };
      for (const auto& scope : scopes) {
        const struct {
          const char* field;
          std::int64_t sum, want;
        } checks[] = {
            {"enqueued", scope.l->enqueued + scope.c->enqueued,
             scope.whole->enqueued},
            {"forwarded", scope.l->forwarded + scope.c->forwarded,
             scope.whole->forwarded},
            {"marked", scope.l->marked + scope.c->marked, scope.whole->marked},
            {"aqm_dropped", scope.l->aqm_dropped + scope.c->aqm_dropped,
             scope.whole->aqm_dropped},
            {"tail_dropped", scope.l->tail_dropped + scope.c->tail_dropped,
             scope.whole->tail_dropped},
            {"dequeue_dropped",
             scope.l->dequeue_dropped + scope.c->dequeue_dropped,
             scope.whole->dequeue_dropped},
        };
        for (const auto& check : checks) {
          if (check.sum != check.want) {
            fail(failures, "dualq",
                 fmt("link %s: %s L+C %s sums to %lld but aggregate says %lld",
                     name, scope.scope, check.field,
                     static_cast<long long>(check.sum),
                     static_cast<long long>(check.want)));
          }
        }
      }
    } else {
      for (const auto* b : {&link.band_l, &link.band_c, &link.window_band_l,
                            &link.window_band_c}) {
        for (const Field& f : kFields) {
          if (b->*f.band != 0) {
            fail(failures, "dualq",
                 fmt("link %s: single-queue link reports band %s = %lld", name,
                     f.field, static_cast<long long>(b->*f.band)));
          }
        }
      }
    }

    // Per-link fluid accounting mirrors check_fluid, scoped to the links
    // that actually carry fluid routes.
    const scenario::FluidStats& f = link.fluid;
    if (!carries_fluid[li]) {
      if (f.ticks != 0 || f.arrival_bytes != 0.0 || f.served_bytes != 0.0 ||
          f.dropped_bytes != 0.0 || f.final_backlog_bytes != 0.0) {
        fail(failures, "fluid",
             fmt("link %s: fluid stats nonzero without fluid routes "
                 "(arrival=%g served=%g dropped=%g backlog=%g ticks=%llu)",
                 name, f.arrival_bytes, f.served_bytes, f.dropped_bytes,
                 f.final_backlog_bytes,
                 static_cast<unsigned long long>(f.ticks)));
      }
      continue;
    }
    if (f.ticks == 0) {
      fail(failures, "fluid",
           fmt("link %s: fluid routes configured but the ensemble never "
               "ticked", name));
    }
    if (!std::isfinite(f.arrival_bytes) || f.arrival_bytes < 0.0 ||
        !std::isfinite(f.served_bytes) || f.served_bytes < 0.0 ||
        !std::isfinite(f.dropped_bytes) || f.dropped_bytes < 0.0 ||
        !std::isfinite(f.final_backlog_bytes) || f.final_backlog_bytes < 0.0) {
      fail(failures, "fluid",
           fmt("link %s: fluid accounting not finite/non-negative "
               "(arrival=%g served=%g dropped=%g backlog=%g)",
               name, f.arrival_bytes, f.served_bytes, f.dropped_bytes,
               f.final_backlog_bytes));
      continue;
    }
    const double residual_bytes = f.arrival_bytes - f.served_bytes -
                                  f.dropped_bytes - f.final_backlog_bytes;
    const double scale = std::max(1.0, f.arrival_bytes);
    if (std::abs(residual_bytes) / scale > 1e-6) {
      fail(failures, "fluid",
           fmt("link %s: fluid bytes not conserved: arrival %g != served %g "
               "+ dropped %g + backlog %g (residual %g)",
               name, f.arrival_bytes, f.served_bytes, f.dropped_bytes,
               f.final_backlog_bytes, residual_bytes));
    }
    double max_rate_bps = config.links[li].rate_bps;
    for (const scenario::RateChange& change : config.links[li].rate_changes) {
      max_rate_bps = std::max(max_rate_bps, change.rate_bps);
    }
    for (const faults::FaultEvent& event : config.links[li].faults.events) {
      if (event.kind == faults::FaultKind::kRateStep ||
          event.kind == faults::FaultKind::kRateFlap) {
        max_rate_bps = std::max({max_rate_bps, event.rate_bps, event.rate2_bps});
      }
    }
    const double cap_bytes =
        max_rate_bps * pi2::sim::to_seconds(config.duration) / 8.0;
    if (f.served_bytes > cap_bytes * (1.0 + 1e-6)) {
      fail(failures, "fluid",
           fmt("link %s: fluid served %g bytes exceeds whole-run link "
               "capacity %g", name, f.served_bytes, cap_bytes));
    }
  }
}

CaseOutcome run_topology_case_oracles(const topology::TopologyConfig& config,
                                      std::uint64_t index,
                                      const OracleOptions& options) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.seed = config.seed;

  topology::TopologyConfig cfg = config;
  std::unique_ptr<telemetry::Recorder> recorder;
  telemetry::MetricsRegistry bare_registry;
  if (!options.scratch_dir.empty()) {
    telemetry::RecorderConfig rc;
    rc.dir = options.scratch_dir;
    rc.run_id = options.run_id.empty() ? "case_" + std::to_string(index)
                                       : options.run_id;
    rc.interval = cfg.sample_interval;
    recorder = std::make_unique<telemetry::Recorder>(rc);
    cfg.recorder = recorder.get();
  } else {
    cfg.registry = &bare_registry;
  }

  topology::TopologyResult result = topology::run_topology(cfg);
  outcome.digest = topology_result_digest(result);

  check_topology_links(cfg, result, outcome.failures);

  // Invariants, across every link's monitor.
  for (const auto& violation : result.violations) {
    fail(outcome.failures, "invariants",
         fmt("monitor violation [%s] at t=%.3fs: %s", violation.check.c_str(),
             pi2::sim::to_seconds(violation.at), violation.detail.c_str()));
  }
  if (result.clamped_events != 0) {
    fail(outcome.failures, "invariants",
         fmt("%llu events scheduled in the past and clamped",
             static_cast<unsigned long long>(result.clamped_events)));
  }
  if (cfg.check_invariants && result.invariant_checks == 0) {
    fail(outcome.failures, "invariants", "invariant monitor never ran a check");
  }
  for (const auto& link : result.links) {
    if (link.guard_events != 0) {
      fail(outcome.failures, "invariants",
           fmt("link %s: AQM rejected %llu non-finite controller updates",
               link.name.c_str(),
               static_cast<unsigned long long>(link.guard_events)));
    }
  }

  // The coupled output law must hold for every link's discipline.
  for (const auto& link : cfg.links) {
    check_coupling_law(link.aqm, cfg.seed, "link " + link.display_name(),
                       outcome.failures);
  }

  // Probe-bus cross-check: links[0] owns the legacy unprefixed gauges,
  // later links the "topo.<name>."-prefixed ones; each mirrored gauge must
  // agree with the slice's counter.
  const telemetry::MetricsRegistry& registry =
      recorder ? recorder->registry() : bare_registry;
  for (std::size_t li = 0; li < result.links.size(); ++li) {
    const topology::LinkResult& link = result.links[li];
    const std::string prefix =
        li == 0 ? std::string("link.") : "topo." + link.name + ".";
    const struct {
      const char* field;
      std::int64_t want;
    } mirrored[] = {
        {"forwarded", link.counters.forwarded},
        {"marked", link.counters.marked},
        {"aqm_dropped", link.counters.aqm_dropped},
    };
    for (const auto& m : mirrored) {
      const double got = gauge_value(registry, (prefix + m.field).c_str());
      if (std::isnan(got) || static_cast<std::int64_t>(got) != m.want) {
        fail(outcome.failures, "conservation",
             fmt("gauge %s%s = %.0f != link slice counter %lld",
                 prefix.c_str(), m.field, got,
                 static_cast<long long>(m.want)));
      }
    }
  }

  // Durable round-trip: the flattened result must survive the v4 codec with
  // every per-link slice intact (the digest folds them).
  check_journal_roundtrip(topology::to_run_result(std::move(result)),
                          outcome.failures);
  if (recorder) {
    if (!recorder->ok()) {
      fail(outcome.failures, "telemetry", "recorder reported an I/O failure");
    } else {
      check_telemetry_roundtrip(recorder->jsonl_path(), registry,
                                outcome.failures);
    }
  }

  if (!options.inject_failure.empty()) {
    fail(outcome.failures, options.inject_failure,
         "synthetic failure injected for self-test");
  }
  return outcome;
}

}  // namespace pi2::check
