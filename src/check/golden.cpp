#include "check/golden.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pi2::check {

namespace {

/// Cursor over a JSON text; the grammar here is only what SweepJsonWriter
/// and JsonlExporter emit (flat objects, string/number values, no nesting).
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  [[nodiscard]] bool at(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool eat(char c) {
    if (!at(c)) return false;
    ++pos;
    return true;
  }
};

bool parse_string(Cursor& cur, std::string* out, std::string* error) {
  if (!cur.eat('"')) {
    *error = "expected '\"' at offset " + std::to_string(cur.pos);
    return false;
  }
  out->clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (cur.pos >= cur.text.size()) break;
      const char esc = cur.text[cur.pos++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'u':
          // The writers only escape control characters; decode the low byte.
          if (cur.pos + 4 <= cur.text.size()) {
            unsigned value = 0;
            std::from_chars(cur.text.data() + cur.pos,
                            cur.text.data() + cur.pos + 4, value, 16);
            *out += static_cast<char>(value);
            cur.pos += 4;
          }
          break;
        default: *out += esc; break;
      }
    } else {
      *out += c;
    }
  }
  *error = "unterminated string";
  return false;
}

bool parse_number(Cursor& cur, double* out, std::string* error) {
  cur.skip_ws();
  const std::size_t start = cur.pos;
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos];
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E' || c == 'n' || c == 'a' || c == 'i' || c == 'f') {
      ++cur.pos;  // accepts nan/inf spellings so a poisoned metric parses
    } else {
      break;
    }
  }
  if (cur.pos == start) {
    *error = "expected number at offset " + std::to_string(start);
    return false;
  }
  char* end = nullptr;
  const std::string token = cur.text.substr(start, cur.pos - start);
  *out = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) {
    *error = "bad number '" + token + "'";
    return false;
  }
  return true;
}

bool parse_object(Cursor& cur, JsonRecord* out, std::string* error) {
  if (!cur.eat('{')) {
    *error = "expected '{' at offset " + std::to_string(cur.pos);
    return false;
  }
  out->numbers.clear();
  out->strings.clear();
  if (cur.eat('}')) return true;
  while (true) {
    std::string key;
    if (!parse_string(cur, &key, error)) return false;
    if (!cur.eat(':')) {
      *error = "expected ':' after key '" + key + "'";
      return false;
    }
    cur.skip_ws();
    if (cur.at('"')) {
      std::string value;
      if (!parse_string(cur, &value, error)) return false;
      out->strings[key] = value;
    } else if (cur.at('{') || cur.at('[')) {
      *error = "nested value under key '" + key + "' (flat objects only)";
      return false;
    } else if (cur.at('t') || cur.at('f')) {  // true / false
      const bool value = cur.text[cur.pos] == 't';
      cur.pos += value ? 4 : 5;
      out->numbers[key] = value ? 1.0 : 0.0;
    } else {
      double value = 0;
      if (!parse_number(cur, &value, error)) return false;
      out->numbers[key] = value;
    }
    if (cur.eat(',')) continue;
    if (cur.eat('}')) return true;
    *error = "expected ',' or '}' at offset " + std::to_string(cur.pos);
    return false;
  }
}

std::string record_label(const std::vector<JsonRecord>& records, std::size_t i) {
  std::string label = "record " + std::to_string(i);
  const auto& r = records[i];
  if (auto it = r.strings.find("aqm"); it != r.strings.end()) {
    label += " (" + it->second;
    if (auto mix = r.strings.find("mix"); mix != r.strings.end()) {
      label += ", " + mix->second;
    }
    label += ")";
  }
  return label;
}

}  // namespace

bool parse_flat_object(const std::string& text, JsonRecord* out,
                       std::string* error) {
  Cursor cur{text};
  return parse_object(cur, out, error);
}

std::vector<JsonRecord> parse_records(const std::string& path, std::string* error) {
  std::ifstream in{path};
  if (!in) {
    *error = "cannot open " + path;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<JsonRecord> records;
  Cursor cur{text};
  if (!cur.eat('[')) {
    *error = path + ": expected a JSON array";
    return {};
  }
  if (cur.eat(']')) return records;
  while (true) {
    JsonRecord record;
    if (!parse_object(cur, &record, error)) {
      *error = path + ": " + *error;
      return {};
    }
    records.push_back(std::move(record));
    if (cur.eat(',')) continue;
    if (cur.eat(']')) return records;
    *error = path + ": expected ',' or ']' after record " +
             std::to_string(records.size() - 1);
    return {};
  }
}

GoldenOptions default_golden_options() {
  GoldenOptions options;
  options.default_rel_tol = 0.10;
  // Headline figure metrics: tight bands.
  options.metric_rel_tol["utilization"] = 0.05;
  options.metric_rel_tol["mean_qdelay_ms"] = 0.10;
  options.metric_rel_tol["p99_qdelay_ms"] = 0.15;
  options.metric_rel_tol["signal_rate"] = 0.20;
  options.metric_rel_tol["cubic_mbps"] = 0.10;
  options.metric_rel_tol["other_mbps"] = 0.10;
  // Raw counts drift more with tiny timing differences: loose bands.
  options.metric_rel_tol["enqueued"] = 0.15;
  options.metric_rel_tol["forwarded"] = 0.15;
  options.metric_rel_tol["aqm_dropped"] = 0.50;
  options.metric_rel_tol["tail_dropped"] = 0.50;
  options.metric_rel_tol["marked"] = 0.50;
  options.metric_rel_tol["events_executed"] = 0.20;
  // Machinery health: any nonzero is a regression, so the band is absolute
  // (abs_floor) — these are 0 in every committed baseline.
  options.metric_rel_tol["invariant_violations"] = 0.0;
  options.metric_rel_tol["clamped_events"] = 0.0;
  options.metric_rel_tol["guard_events"] = 0.0;
  // fig_response settle metrics: -1 means "never settled", so relative
  // bands work for both signs; peaks wobble more.
  options.metric_rel_tol["settle_drop_s"] = 0.25;
  options.metric_rel_tol["settle_rise_s"] = 0.25;
  options.metric_rel_tol["peak_qdelay_ms"] = 0.25;
  // Resilience recovery metrics share the settle semantics (-1 = never
  // reconverged, so a sign flip always trips a relative band); the
  // post-fault delta hovers near zero, so it gets a loose band.
  options.metric_rel_tol["worst_recovery_s"] = 0.25;
  options.metric_rel_tol["mean_recovery_s"] = 0.25;
  options.metric_rel_tol["post_fault_delta_ms"] = 0.50;
  // A violation in quiet time is a regression at any count.
  options.metric_rel_tol["violations_outside"] = 0.0;
  return options;
}

std::vector<std::string> compare_golden(const std::string& baseline_path,
                                        const std::string& candidate_path,
                                        const GoldenOptions& options) {
  std::vector<std::string> mismatches;
  std::string error;
  const auto baseline = parse_records(baseline_path, &error);
  if (!error.empty()) return {"baseline: " + error};
  const auto candidate = parse_records(candidate_path, &error);
  if (!error.empty()) return {"candidate: " + error};

  if (baseline.size() != candidate.size()) {
    mismatches.push_back("record count differs: baseline " +
                         std::to_string(baseline.size()) + " vs candidate " +
                         std::to_string(candidate.size()));
  }
  const auto ignored = [&options](const std::string& key) {
    return std::find(options.ignore_fields.begin(), options.ignore_fields.end(),
                     key) != options.ignore_fields.end();
  };
  const std::size_t n = std::min(baseline.size(), candidate.size());
  for (std::size_t i = 0; i < n; ++i) {
    const JsonRecord& b = baseline[i];
    const JsonRecord& c = candidate[i];
    const std::string label = record_label(baseline, i);

    for (const auto& [key, value] : b.strings) {
      if (ignored(key)) continue;
      const auto it = c.strings.find(key);
      if (it == c.strings.end()) {
        mismatches.push_back(label + ": candidate missing field \"" + key + "\"");
      } else if (it->second != value) {
        mismatches.push_back(label + ": \"" + key + "\" differs: baseline \"" +
                             value + "\" vs candidate \"" + it->second + "\"");
      }
    }
    for (const auto& [key, value] : b.numbers) {
      if (ignored(key)) continue;
      const auto it = c.numbers.find(key);
      if (it == c.numbers.end()) {
        mismatches.push_back(label + ": candidate missing field \"" + key + "\"");
        continue;
      }
      const double got = it->second;
      if (!std::isfinite(got)) {
        mismatches.push_back(label + ": \"" + key + "\" is non-finite");
        continue;
      }
      bool exact = false;
      for (const auto& field : options.exact_fields) exact = exact || field == key;
      double rel_tol = options.default_rel_tol;
      if (const auto tol = options.metric_rel_tol.find(key);
          tol != options.metric_rel_tol.end()) {
        rel_tol = tol->second;
      }
      const double diff = std::abs(got - value);
      const double scale = std::max(std::abs(got), std::abs(value));
      const bool pass = exact ? got == value
                              : diff <= options.abs_floor || diff <= rel_tol * scale;
      if (!pass) {
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "\"%s\" out of band: baseline %.9g vs candidate %.9g "
                      "(rel %.3g > tol %.3g)",
                      key.c_str(), value, got, scale > 0 ? diff / scale : 0.0,
                      exact ? 0.0 : rel_tol);
        mismatches.push_back(label + ": " + buf);
      }
    }
    for (const auto& [key, value] : c.numbers) {
      (void)value;
      if (ignored(key)) continue;
      if (b.numbers.count(key) == 0 && b.strings.count(key) == 0) {
        mismatches.push_back(label + ": candidate has extra field \"" + key + "\"");
      }
    }
  }
  return mismatches;
}

std::string write_perturbed_copy(const std::string& baseline_path,
                                 const std::string& out_path,
                                 const GoldenOptions& options) {
  std::string error;
  auto records = parse_records(baseline_path, &error);
  if (!error.empty() || records.empty()) return "";

  // Pick the first tolerance-checked (non-exact) metric of record 0 and push
  // it far outside its band.
  std::string perturbed;
  for (auto& [key, value] : records[0].numbers) {
    bool exact = false;
    for (const auto& field : options.exact_fields) exact = exact || field == key;
    if (exact) continue;
    double rel_tol = options.default_rel_tol;
    if (const auto tol = options.metric_rel_tol.find(key);
        tol != options.metric_rel_tol.end()) {
      rel_tol = tol->second;
    }
    const double bump = std::max({std::abs(value) * (3.0 * rel_tol + 0.5),
                                  10.0 * options.abs_floor, 1.0});
    value += bump;
    perturbed = key;
    break;
  }
  if (perturbed.empty()) return "";

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) return "";
  std::fputs("[", out);
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(out, "%s\n  {", i == 0 ? "" : ",");
    bool first = true;
    for (const auto& [key, value] : records[i].strings) {
      std::fprintf(out, "%s\"%s\": \"%s\"", first ? "" : ", ", key.c_str(),
                   value.c_str());
      first = false;
    }
    for (const auto& [key, value] : records[i].numbers) {
      std::fprintf(out, "%s\"%s\": %.17g", first ? "" : ", ", key.c_str(), value);
      first = false;
    }
    std::fputs("}", out);
  }
  std::fputs("\n]\n", out);
  std::fclose(out);
  return perturbed;
}

}  // namespace pi2::check
