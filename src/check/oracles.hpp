// Metamorphic / property oracles run over every fuzzed scenario.
//
// None of these oracles knows the *right* queue delay or goodput for a
// random config — instead each checks a relation that must hold for every
// valid scenario:
//
//   conservation   — the probe bus and the link's incremental counters must
//                    tell the same story: bus-counted departures equal the
//                    forwarded counter, transmitted bytes stay within the
//                    packet-size envelope, and every accepted packet is
//                    accounted for (forwarded + dequeue-dropped + final
//                    backlog + at most one in flight).
//   invariants     — the InvariantMonitor stayed clean, no event was
//                    clamped into the past, no non-finite controller update
//                    was rejected, and the monitor actually ran.
//   fluid          — hybrid fluid/packet runs conserve fluid bytes
//                    (arrival == served + final backlog), never serve more
//                    than the link could carry, and tick iff configured.
//   coupling-law   — disciplines implementing the paper's coupled output
//                    (PI2, coupled PI2, Curvy RED) satisfy p = (p'/k)^2 at
//                    every sampled operating point, both driven directly
//                    across queue states and in the run's final snapshot.
//                    DualPI2 publishes the overload-clamped coupled law
//                    instead: p_CL = min(k * p', 1) with p_C = (p')^2, so
//                    scalable == min(k * sqrt(classic), 1) everywhere.
//   dualq          — two-queue (DualPI2) runs slice every counter per band;
//                    the L + C slices must sum exactly to the aggregate
//                    counters (whole run and stats window), and windows
//                    never exceed whole-run totals. Single-queue runs must
//                    report all-zero band slices.
//   telemetry      — the JSONL stream parses back, and its final row equals
//                    the registry's final (frozen) snapshot value for value.
//   journal        — the durable run-journal codec round-trips the result:
//                    encode -> journal record line -> parse -> decode must
//                    preserve the result_digest() fingerprint, or --resume
//                    could silently replay an altered result.
//
// Batch-level oracles (seed-stream independence, --jobs invariance) compare
// result_digest() fingerprints across executions; the digest folds every
// deterministic observable of a run into 64 bits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/dumbbell.hpp"

namespace pi2::telemetry {
class MetricsRegistry;
}  // namespace pi2::telemetry

namespace pi2::topology {
struct TopologyConfig;
struct TopologyResult;
}  // namespace pi2::topology

namespace pi2::check {

struct OracleFailure {
  std::string oracle;  ///< "conservation", "invariants", "coupling-law", ...
  std::string detail;  ///< observed values, actionable
};

struct CaseOutcome {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;  ///< fingerprint of the RunResult
  std::vector<OracleFailure> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

struct OracleOptions {
  /// Directory for the telemetry round-trip artifacts; "" disables that
  /// oracle (the other oracles still use an in-process registry).
  std::string scratch_dir;
  /// Artifact stem inside scratch_dir (defaults to "case_<index>").
  std::string run_id;
  /// Self-test hook: a non-empty name forces one synthetic failure with
  /// this oracle label, proving the failure path (shrinker, repro command)
  /// end to end without needing a real bug.
  std::string inject_failure;
};

/// Runs `config` once and applies every oracle. The run itself uses a
/// telemetry recorder (when scratch_dir is set) or a bare registry, so the
/// probe-bus cross-checks always have data.
CaseOutcome run_case_oracles(const scenario::DumbbellConfig& config,
                             std::uint64_t index, const OracleOptions& options = {});

/// Topology analogue of run_case_oracles: runs `config` through
/// run_topology() and applies the per-link oracles (exact conservation per
/// link, window bounds, per-band slicing, per-link fluid accounting), the
/// coupling law for every distinct link AQM, the invariant checks, the
/// telemetry cross-checks (unprefixed gauges for links[0], "topo.<name>."
/// gauges beyond) and the v4 journal round-trip.
CaseOutcome run_topology_case_oracles(const topology::TopologyConfig& config,
                                      std::uint64_t index,
                                      const OracleOptions& options = {});

/// 64-bit FNV-1a fingerprint of a run's deterministic observables. Two
/// executions of the same config (any thread, any batch) must agree.
[[nodiscard]] std::uint64_t result_digest(const scenario::RunResult& result);

/// Fingerprint of a TopologyResult: the flattened RunResult digest (which
/// folds every per-link slice) plus the flow->route assignment.
[[nodiscard]] std::uint64_t topology_result_digest(
    const topology::TopologyResult& result);

// Granular checks, exposed so the unit suite can exercise each oracle's
// failure detection directly. Each appends to `failures` on violation.

void check_conservation(const scenario::DumbbellConfig& config,
                        const scenario::RunResult& result,
                        const telemetry::MetricsRegistry& registry,
                        std::vector<OracleFailure>& failures);

void check_invariants_clean(const scenario::DumbbellConfig& config,
                            const scenario::RunResult& result,
                            std::vector<OracleFailure>& failures);

/// Fluid-tier accounting: bytes conserved (arrival == served + final
/// backlog), all quantities finite and non-negative, served never exceeds
/// what the link could have carried, and the ensemble actually ticked iff
/// fluid specs were configured.
void check_fluid(const scenario::DumbbellConfig& config,
                 const scenario::RunResult& result,
                 std::vector<OracleFailure>& failures);

/// Direct-drive sampling: instantiates config.aqm's discipline, walks the
/// queue through a deterministic ladder of delays and asserts the coupled
/// output law at every update. No-op for disciplines without the law.
void check_coupling_law(const scenario::DumbbellConfig& config,
                        std::vector<OracleFailure>& failures);

/// Same direct-drive check for a bare AQM config (per-link in topologies).
/// `where` prefixes the failure detail (e.g. the link name).
void check_coupling_law(const scenario::AqmConfig& aqm, std::uint64_t seed,
                        const std::string& where,
                        std::vector<OracleFailure>& failures);

/// Per-link topology accounting: exact conservation (enqueued == forwarded +
/// dequeue_dropped + final backlog + final in-flight), stats-window bounds,
/// DualPI2 band slicing and fluid byte conservation, each applied to every
/// link's slice of `result`.
void check_topology_links(const topology::TopologyConfig& config,
                          const topology::TopologyResult& result,
                          std::vector<OracleFailure>& failures);

/// End-of-run coupling check on the frozen aqm.p / aqm.p_prime gauges.
void check_coupling_snapshot(const scenario::DumbbellConfig& config,
                             const telemetry::MetricsRegistry& registry,
                             std::vector<OracleFailure>& failures);

/// Two-queue accounting: DualPI2 band slices sum to the aggregate counters
/// (whole run and stats window); single-queue runs keep them all zero.
void check_dualq(const scenario::DumbbellConfig& config,
                 const scenario::RunResult& result,
                 std::vector<OracleFailure>& failures);

/// Parses the JSONL stream at `jsonl_path` and compares its final row
/// against `registry`'s (frozen) snapshot.
void check_telemetry_roundtrip(const std::string& jsonl_path,
                               const telemetry::MetricsRegistry& registry,
                               std::vector<OracleFailure>& failures);

/// Round-trips `result` through the durable journal codec (payload + record
/// line) and compares result_digest() before and after — the property the
/// --resume machinery's byte-identical replay depends on.
void check_journal_roundtrip(const scenario::RunResult& result,
                             std::vector<OracleFailure>& failures);

}  // namespace pi2::check
