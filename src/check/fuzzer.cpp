#include "check/fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sim/rng.hpp"

namespace pi2::check {

using pi2::sim::Duration;
using pi2::sim::Rng;
using pi2::sim::Time;
using pi2::sim::from_millis;
using pi2::sim::from_seconds;
using pi2::sim::to_millis;
using pi2::sim::to_seconds;

namespace {

template <typename T, std::size_t N>
const T& pick(Rng& rng, const T (&options)[N]) {
  return options[rng.uniform_below(N)];
}

bool chance(Rng& rng, double p) { return rng.uniform() < p; }

/// The AQM pool. The coupled disciplines are drawn more often because the
/// coupling-law, dualq and overload oracles only bite there.
scenario::AqmType draw_aqm(Rng& rng) {
  static constexpr scenario::AqmType kPool[] = {
      scenario::AqmType::kCoupledPi2, scenario::AqmType::kCoupledPi2,
      scenario::AqmType::kDualPi2,    scenario::AqmType::kDualPi2,
      scenario::AqmType::kPi2,        scenario::AqmType::kPi2,
      scenario::AqmType::kPie,        scenario::AqmType::kBarePie,
      scenario::AqmType::kPi,         scenario::AqmType::kRed,
      scenario::AqmType::kCodel,      scenario::AqmType::kCurvyRed,
      scenario::AqmType::kStep,       scenario::AqmType::kFifo,
  };
  return pick(rng, kPool);
}

tcp::CcType draw_cc(Rng& rng) {
  static constexpr tcp::CcType kPool[] = {
      tcp::CcType::kReno,   tcp::CcType::kCubic,    tcp::CcType::kEcnCubic,
      tcp::CcType::kDctcp,  tcp::CcType::kScalable, tcp::CcType::kRelentless,
  };
  return pick(rng, kPool);
}

void draw_faults(Rng& rng, double duration_s, faults::FaultSchedule& out) {
  const int n = static_cast<int>(rng.uniform_below(3)) + 1;
  // Draw kinds without replacement: windowed events of the same kind must
  // not overlap (FaultSchedule::validate(duration)), and distinct kinds per
  // schedule keeps every draw trivially valid.
  bool used[7] = {};
  for (int i = 0; i < n; ++i) {
    const Time at = from_seconds(rng.uniform(0.0, duration_s * 0.8));
    const Time until =
        at + from_seconds(rng.uniform(0.05, duration_s * 0.5) + 1e-3);
    std::uint64_t kind = rng.uniform_below(7);
    while (used[kind]) kind = (kind + 1) % 7;
    used[kind] = true;
    switch (kind) {
      case 0:
        out.rate_step(at, rng.uniform(1e6, 20e6));
        break;
      case 1:
        out.rate_flap(at, until, rng.uniform(1e6, 5e6), rng.uniform(5e6, 20e6),
                      from_millis(rng.uniform(20.0, 200.0)));
        break;
      case 2:
        out.rtt_step(at, from_millis(rng.uniform(2.0, 150.0)));
        break;
      case 3:
        out.burst_loss(at, static_cast<int>(rng.uniform_below(20)) + 1);
        break;
      case 4:
        out.random_loss(at, until, rng.uniform(1e-3, 0.05));
        break;
      case 5:
        out.ecn_bleach(at, until, rng.uniform(0.05, 1.0));
        break;
      default:
        out.reorder(at, until, rng.uniform(0.01, 0.2),
                    from_millis(rng.uniform(0.5, 20.0)));
        break;
    }
  }
}

}  // namespace

scenario::DumbbellConfig ScenarioFuzzer::make_config(std::uint64_t index) const {
  Rng rng{Rng::derive_seed(options_.base_seed, index)};
  scenario::DumbbellConfig cfg;
  cfg.seed = Rng::derive_seed(options_.base_seed, index);

  const double duration_s =
      rng.uniform(1.0, options_.max_duration_s > 1.0 ? options_.max_duration_s : 1.5);
  cfg.duration = from_seconds(duration_s);
  cfg.stats_start = from_seconds(duration_s * rng.uniform(0.1, 0.5));
  cfg.sample_interval = from_millis(rng.uniform(10.0, 100.0));

  static constexpr double kLinkMbps[] = {1, 2, 4, 8, 12, 20};
  cfg.link_rate_bps = pick(rng, kLinkMbps) * 1e6;
  static constexpr std::int64_t kBuffers[] = {25, 100, 1000, 40000};
  cfg.buffer_packets = pick(rng, kBuffers);

  cfg.aqm.type = draw_aqm(rng);
  cfg.aqm.target = from_millis(rng.uniform(2.0, 40.0));
  cfg.aqm.t_update = from_millis(rng.uniform(4.0, 64.0));
  cfg.aqm.ecn = chance(rng, 0.8);
  cfg.aqm.coupling_k = rng.uniform(1.0, 4.0);
  cfg.aqm.max_classic_prob = rng.uniform(0.1, 1.0);
  if (chance(rng, 0.2)) cfg.aqm.alpha_hz = rng.uniform(0.05, 2.0);
  if (chance(rng, 0.2)) cfg.aqm.beta_hz = rng.uniform(0.5, 20.0);
  if (chance(rng, 0.3)) cfg.aqm.ecn_drop_threshold = rng.uniform(0.0, 1.0);
  // DualPI2 knobs (drawn for every case; only kDualPi2 consumes them).
  cfg.aqm.t_shift = from_millis(rng.uniform(0.0, 60.0));
  if (chance(rng, 0.4)) cfg.aqm.l_drop_percent = rng.uniform(2.0, 60.0);
  if (chance(rng, 0.25)) {
    cfg.aqm.l_thresh_packets = static_cast<std::int64_t>(rng.uniform_below(64)) + 1;
  }
  const bool dualq = cfg.aqm.type == scenario::AqmType::kDualPi2;

  const int tcp_specs = static_cast<int>(rng.uniform_below(3));
  for (int i = 0; i < tcp_specs; ++i) {
    scenario::TcpFlowSpec spec;
    spec.cc = draw_cc(rng);
    spec.count = static_cast<int>(rng.uniform_below(3)) + 1;
    spec.base_rtt = from_millis(rng.uniform(2.0, 150.0));
    spec.stagger = from_millis(rng.uniform(0.0, 100.0));
    spec.start = from_seconds(rng.uniform(0.0, duration_s / 2.0));
    if (chance(rng, 0.3)) {
      spec.stop = spec.start + from_seconds(rng.uniform(0.2, duration_s));
    }
    static constexpr double kCwndCaps[] = {0.0, 50.0, 700.0};
    spec.max_cwnd = pick(rng, kCwndCaps);
    cfg.tcp_flows.push_back(spec);
  }

  // DualPI2 cases always get at least one UDP spec so the unresponsive
  // overload machinery (L-queue flood routing, l_drop switchover) is hit.
  const int udp_specs =
      static_cast<int>(rng.uniform_below(cfg.tcp_flows.empty() ? 2 : 3)) +
      (dualq ? 1 : 0);
  for (int i = 0; i < udp_specs; ++i) {
    scenario::UdpFlowSpec spec;
    // Usually below capacity; occasionally an unresponsive overload — and
    // for DualPI2, often and up to 2x the link (the RFC 9332 campaign).
    spec.rate_bps =
        cfg.link_rate_bps *
        (chance(rng, dualq ? 0.5 : 0.2) ? rng.uniform(1.0, dualq ? 2.0 : 1.5)
                                        : rng.uniform(0.05, 0.6));
    spec.count = 1;
    // Spread floods across codepoints: Not-ECT stays Classic (drop-only),
    // ECT(1) floods the L queue, ECT(0) is the ECN-capable Classic case.
    static constexpr net::Ecn kCodepoints[] = {net::Ecn::kNotEct, net::Ecn::kNotEct,
                                               net::Ecn::kEct0, net::Ecn::kEct1,
                                               net::Ecn::kEct1};
    spec.ecn = pick(rng, kCodepoints);
    spec.base_rtt = from_millis(rng.uniform(2.0, 150.0));
    spec.start = from_seconds(rng.uniform(0.0, duration_s / 2.0));
    if (chance(rng, 0.3)) {
      spec.stop = spec.start + from_seconds(rng.uniform(0.2, duration_s));
    }
    static constexpr std::int32_t kPacketBytes[] = {200, 576, 1500};
    spec.packet_bytes = pick(rng, kPacketBytes);
    cfg.udp_flows.push_back(spec);
  }

  // Fluid-mix cases: ~1 in 3 runs adds fluid background specs so the fluid
  // conservation oracle and the hybrid coupling path see random operating
  // points. Counts reach into the thousands — cheap by construction.
  if (chance(rng, 0.35)) {
    const int fluid_specs = static_cast<int>(rng.uniform_below(2)) + 1;
    for (int i = 0; i < fluid_specs; ++i) {
      scenario::FluidFlowSpec spec;
      spec.cc = draw_cc(rng);
      static constexpr double kCounts[] = {1, 10, 100, 1000, 5000};
      spec.count = pick(rng, kCounts);
      spec.base_rtt = from_millis(rng.uniform(2.0, 150.0));
      spec.start = from_seconds(rng.uniform(0.0, duration_s / 2.0));
      if (chance(rng, 0.3)) {
        spec.stop = spec.start + from_seconds(rng.uniform(0.2, duration_s));
      }
      cfg.fluid_flows.push_back(spec);
    }
    static constexpr double kFluidDtMs[] = {0.5, 1.0, 2.0, 5.0};
    cfg.fluid_dt = from_millis(pick(rng, kFluidDtMs));
  }

  // Batched ACK clock: exercised on a fraction of cases so the batching
  // path faces the full oracle suite too.
  if (chance(rng, 0.25)) {
    cfg.ack_quantum = from_millis(rng.uniform(0.1, 2.0));
  }

  const int rate_changes = static_cast<int>(rng.uniform_below(3));
  for (int i = 0; i < rate_changes; ++i) {
    scenario::RateChange change;
    change.at = from_seconds(rng.uniform(0.0, duration_s));
    change.rate_bps = rng.uniform(1e6, 20e6);
    cfg.rate_changes.push_back(change);
  }

  if (options_.allow_faults && chance(rng, 0.5)) {
    draw_faults(rng, duration_s, cfg.faults);
  }

  if (std::string error = cfg.validate(); !error.empty()) {
    throw std::logic_error("ScenarioFuzzer produced an invalid config (case " +
                           std::to_string(index) + "): " + error);
  }
  return cfg;
}

topology::TopologyConfig ScenarioFuzzer::make_topology_config(
    std::uint64_t index) const {
  // Offset the derivation index so topology case i never shares a stream
  // with dumbbell case i of the same batch.
  const std::uint64_t seed =
      Rng::derive_seed(options_.base_seed, (1ull << 32) + index);
  Rng rng{seed};
  topology::TopologyConfig cfg;
  cfg.seed = seed;

  const double max_s =
      options_.max_duration_s > 1.0
          ? (options_.max_duration_s < 2.5 ? options_.max_duration_s : 2.5)
          : 1.5;
  const double duration_s = rng.uniform(1.0, max_s);
  cfg.duration = from_seconds(duration_s);
  cfg.stats_start = from_seconds(duration_s * rng.uniform(0.1, 0.4));
  cfg.sample_interval = from_millis(rng.uniform(20.0, 100.0));

  // A chain of 2-4 links, each with its own AQM, rate, buffer and faults.
  const int hops = static_cast<int>(rng.uniform_below(3)) + 2;
  for (int i = 0; i <= hops; ++i) {
    cfg.nodes.push_back("n" + std::to_string(i));
  }
  bool any_rtt_fault = false;
  for (int i = 0; i < hops; ++i) {
    topology::LinkSpec link;
    link.from = cfg.nodes[static_cast<std::size_t>(i)];
    link.to = cfg.nodes[static_cast<std::size_t>(i) + 1];
    static constexpr double kLinkMbps[] = {2, 4, 8, 12, 20};
    link.rate_bps = pick(rng, kLinkMbps) * 1e6;
    static constexpr std::int64_t kBuffers[] = {50, 200, 1000, 40000};
    link.buffer_packets = pick(rng, kBuffers);
    link.delay = from_millis(rng.uniform(0.0, 10.0));
    link.aqm.type = draw_aqm(rng);
    link.aqm.target = from_millis(rng.uniform(2.0, 40.0));
    link.aqm.t_update = from_millis(rng.uniform(4.0, 64.0));
    link.aqm.ecn = chance(rng, 0.8);
    link.aqm.coupling_k = rng.uniform(1.0, 4.0);
    link.aqm.max_classic_prob = rng.uniform(0.1, 1.0);
    link.aqm.t_shift = from_millis(rng.uniform(0.0, 60.0));
    if (chance(rng, 0.4)) link.aqm.l_drop_percent = rng.uniform(2.0, 60.0);
    if (chance(rng, 0.2)) {
      scenario::RateChange change;
      change.at = from_seconds(rng.uniform(0.0, duration_s));
      change.rate_bps = rng.uniform(1e6, 20e6);
      link.rate_changes.push_back(change);
    }
    if (options_.allow_faults && chance(rng, 0.4)) {
      draw_faults(rng, duration_s, link.faults);
      for (const faults::FaultEvent& event : link.faults.events) {
        if (event.kind == faults::FaultKind::kRttStep) any_rtt_fault = true;
      }
    }
    cfg.links.push_back(std::move(link));
  }

  const auto path_of = [&cfg](int a, int b) {
    std::vector<std::string> path;
    for (int i = a; i <= b; ++i) {
      path.push_back(cfg.nodes[static_cast<std::size_t>(i)]);
    }
    return path;
  };

  // One long flow crossing every hop (the parking-lot victim), then per-hop
  // cross traffic so every link sees its own load.
  {
    topology::TcpRoute route;
    route.spec.cc = draw_cc(rng);
    route.spec.count = static_cast<int>(rng.uniform_below(2)) + 1;
    route.spec.base_rtt = from_millis(rng.uniform(5.0, 100.0));
    route.path = path_of(0, hops);
    cfg.tcp_flows.push_back(std::move(route));
  }
  for (int i = 0; i < hops; ++i) {
    if (!chance(rng, 0.6)) continue;
    topology::TcpRoute route;
    route.spec.cc = draw_cc(rng);
    route.spec.count = static_cast<int>(rng.uniform_below(2)) + 1;
    route.spec.base_rtt = from_millis(rng.uniform(5.0, 100.0));
    route.spec.start = from_seconds(rng.uniform(0.0, duration_s / 2.0));
    route.path = path_of(i, i + 1);
    cfg.tcp_flows.push_back(std::move(route));
  }

  // Optional unresponsive UDP load over a sub-path of the chain.
  if (chance(rng, 0.4)) {
    const int a = static_cast<int>(rng.uniform_below(
        static_cast<std::uint64_t>(hops)));
    const int b = a + 1 +
                  static_cast<int>(rng.uniform_below(
                      static_cast<std::uint64_t>(hops - a)));
    double min_rate = cfg.links[static_cast<std::size_t>(a)].rate_bps;
    for (int i = a; i < b; ++i) {
      min_rate = std::min(min_rate,
                          cfg.links[static_cast<std::size_t>(i)].rate_bps);
    }
    topology::UdpRoute route;
    route.spec.rate_bps = min_rate * rng.uniform(0.05, 0.8);
    route.spec.count = 1;
    static constexpr net::Ecn kCodepoints[] = {net::Ecn::kNotEct,
                                               net::Ecn::kEct0, net::Ecn::kEct1};
    route.spec.ecn = pick(rng, kCodepoints);
    route.spec.base_rtt = from_millis(rng.uniform(2.0, 100.0));
    static constexpr std::int32_t kPacketBytes[] = {200, 576, 1500};
    route.spec.packet_bytes = pick(rng, kPacketBytes);
    route.path = path_of(a, b);
    cfg.udp_flows.push_back(std::move(route));
  }

  // Optional fluid ensemble on one link (fluid routes are single-hop).
  if (chance(rng, 0.3)) {
    const int a = static_cast<int>(rng.uniform_below(
        static_cast<std::uint64_t>(hops)));
    topology::FluidRoute route;
    route.spec.cc = draw_cc(rng);
    static constexpr double kCounts[] = {1, 10, 100, 1000};
    route.spec.count = pick(rng, kCounts);
    route.spec.base_rtt = from_millis(rng.uniform(2.0, 100.0));
    route.path = path_of(a, a + 1);
    cfg.fluid_flows.push_back(std::move(route));
    static constexpr double kFluidDtMs[] = {0.5, 1.0, 2.0};
    cfg.fluid_dt = from_millis(pick(rng, kFluidDtMs));
  }

  // The batched ACK clock cannot coexist with per-link RTT steps in a
  // multi-link topology (validate() rejects it), so only quantize when no
  // link drew one.
  if (!any_rtt_fault && chance(rng, 0.2)) {
    cfg.ack_quantum = from_millis(rng.uniform(0.1, 2.0));
  }

  if (std::string error = cfg.validate(); !error.empty()) {
    throw std::logic_error(
        "ScenarioFuzzer produced an invalid topology (case " +
        std::to_string(index) + "): " + error);
  }
  return cfg;
}

std::string ScenarioFuzzer::describe(const scenario::DumbbellConfig& config) {
  int tcp = 0;
  for (const auto& f : config.tcp_flows) tcp += f.count;
  int udp = 0;
  for (const auto& f : config.udp_flows) udp += f.count;
  double fluid = 0;
  for (const auto& f : config.fluid_flows) fluid += f.count;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "aqm=%s link=%.3gMbps buf=%lld dur=%.2fs tcp=%d udp=%d "
                "fluid=%g ack_q=%.2gms rate_changes=%zu faults=%zu seed=%llu",
                std::string(scenario::to_string(config.aqm.type)).c_str(),
                config.link_rate_bps / 1e6,
                static_cast<long long>(config.buffer_packets),
                to_seconds(config.duration), tcp, udp, fluid,
                to_millis(config.ack_quantum), config.rate_changes.size(),
                config.faults.events.size(),
                static_cast<unsigned long long>(config.seed));
  return buf;
}

std::string ScenarioFuzzer::describe(const topology::TopologyConfig& config) {
  std::string links;
  for (const auto& link : config.links) {
    char part[64];
    std::snprintf(part, sizeof part, "%s%s@%.3gMbps", links.empty() ? "" : ",",
                  std::string(scenario::to_string(link.aqm.type)).c_str(),
                  link.rate_bps / 1e6);
    links += part;
  }
  int tcp = 0;
  for (const auto& r : config.tcp_flows) tcp += r.spec.count;
  int udp = 0;
  for (const auto& r : config.udp_flows) udp += r.spec.count;
  double fluid = 0;
  for (const auto& r : config.fluid_flows) fluid += r.spec.count;
  std::size_t fault_events = 0;
  for (const auto& link : config.links) fault_events += link.faults.events.size();
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "links=%zu [%s] dur=%.2fs tcp=%d udp=%d fluid=%g ack_q=%.2gms "
                "faults=%zu seed=%llu",
                config.links.size(), links.c_str(),
                to_seconds(config.duration), tcp, udp, fluid,
                to_millis(config.ack_quantum), fault_events,
                static_cast<unsigned long long>(config.seed));
  return buf;
}

std::string ScenarioFuzzer::repro_command(std::uint64_t index) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "check_fuzz --seed %llu --case %llu",
                static_cast<unsigned long long>(options_.base_seed),
                static_cast<unsigned long long>(index));
  return buf;
}

std::string ScenarioFuzzer::topology_repro_command(std::uint64_t index) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "check_fuzz --seed %llu --topo-case %llu",
                static_cast<unsigned long long>(options_.base_seed),
                static_cast<unsigned long long>(index));
  return buf;
}

}  // namespace pi2::check
