// Shrinking minimizer: bisects a failing DumbbellConfig toward a minimal
// configuration that still trips an oracle.
//
// A fuzzed failure usually arrives wrapped in noise — three flow specs, a
// fault schedule, a long duration — of which only a sliver matters. The
// shrinker applies a fixed menu of simplifications (drop a flow spec, halve
// a count, clear the fault schedule, halve the duration, ...) greedily:
// a candidate is kept iff it still validates AND the caller's predicate
// still reports failure. Rounds repeat until a whole pass accepts nothing
// or the evaluation budget is spent.
//
// Everything is deterministic: the transformation order is fixed and the
// predicate re-runs the same seeded simulation, so a shrink is itself
// replayable.
#pragma once

#include <functional>

#include "scenario/dumbbell.hpp"

namespace pi2::check {

struct ShrinkOptions {
  /// Maximum predicate evaluations (each one re-runs the scenario).
  int max_evals = 200;
};

struct ShrinkResult {
  scenario::DumbbellConfig config;  ///< smallest still-failing config found
  int evaluations = 0;              ///< predicate calls spent
  int accepted_steps = 0;           ///< simplifications that kept the failure
};

/// Returns true when the candidate config still exhibits the failure.
using ShrinkPredicate = std::function<bool(const scenario::DumbbellConfig&)>;

/// Minimizes `failing` under `still_fails`. The input config is assumed to
/// fail (it is returned unchanged if nothing smaller still does).
ShrinkResult shrink(const scenario::DumbbellConfig& failing,
                    const ShrinkPredicate& still_fails,
                    const ShrinkOptions& options = {});

}  // namespace pi2::check
