// Golden-figure regression comparison.
//
// The sweep binaries emit one flat JSON record per grid point (--json, the
// SweepJsonWriter format). A golden baseline is such a file committed under
// tests/golden/; the comparator re-parses baseline and candidate and checks
// them record by record:
//
//   * string fields (aqm, mix, status, ...) and structural fields (index)
//     must match exactly;
//   * numeric fields must agree within a per-metric relative tolerance band
//     (|a - b| <= rel_tol * max(|a|, |b|) or <= abs_floor near zero), so the
//     guard survives benign cross-toolchain floating-point drift while still
//     pinning every headline metric of figs 15-18 and fig_response.
//
// The parser handles exactly the subset the writers emit — an array of flat
// objects with string / number values — and is reused by the telemetry
// JSONL parse-back oracle (one flat object per line).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pi2::check {

/// One flat JSON record: {"name": 1.5, "other": "text", ...}.
struct JsonRecord {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};

/// Parses a single flat JSON object. Returns false (and fills *error) on
/// malformed input; nested objects/arrays are rejected.
bool parse_flat_object(const std::string& text, JsonRecord* out,
                       std::string* error);

/// Parses a file holding a JSON array of flat objects (the --json sweep
/// format). On failure returns an empty vector and fills *error.
std::vector<JsonRecord> parse_records(const std::string& path, std::string* error);

struct GoldenOptions {
  /// Tolerance for numeric fields without a per-metric entry.
  double default_rel_tol = 0.10;
  /// Absolute slack near zero: |a - b| <= abs_floor always passes.
  double abs_floor = 1e-6;
  /// Per-metric relative tolerances (overrides the default).
  std::map<std::string, double> metric_rel_tol;
  /// Fields that must match bit-exactly (beyond the always-exact strings).
  std::vector<std::string> exact_fields = {"index", "seed", "link_mbps", "rtt_ms"};
  /// Fields skipped entirely — not compared, and allowed to be missing on
  /// either side. For baselines whose candidate is produced by a different
  /// engine tier (e.g. fluid background vs packet background on the same
  /// figure): the headline metrics must still agree, but packet/event
  /// counts legitimately differ by construction.
  std::vector<std::string> ignore_fields;
};

/// The tolerance table used by the committed baselines: tight bands on the
/// headline metrics, looser ones on raw event/packet counts.
[[nodiscard]] GoldenOptions default_golden_options();

/// Compares candidate against baseline. Returns one message per mismatch
/// (empty = pass). Missing/extra records and missing fields are mismatches.
std::vector<std::string> compare_golden(const std::string& baseline_path,
                                        const std::string& candidate_path,
                                        const GoldenOptions& options);

/// Self-test helper: copies `baseline_path` to `out_path`, bumping the first
/// tolerance-checked numeric field of the first record far beyond its band.
/// Returns the name of the perturbed field ("" on I/O or parse failure).
std::string write_perturbed_copy(const std::string& baseline_path,
                                 const std::string& out_path,
                                 const GoldenOptions& options);

}  // namespace pi2::check
