#include "check/shrinker.hpp"

#include <vector>

#include "sim/time.hpp"

namespace pi2::check {

namespace {

using scenario::DumbbellConfig;

/// One simplification attempt: returns true and fills `out` when the
/// transformation applies to `in` (i.e. would actually change it).
using Transform = bool (*)(const DumbbellConfig& in, DumbbellConfig& out);

bool drop_last_tcp_spec(const DumbbellConfig& in, DumbbellConfig& out) {
  if (in.tcp_flows.empty()) return false;
  out = in;
  out.tcp_flows.pop_back();
  return true;
}

bool drop_last_udp_spec(const DumbbellConfig& in, DumbbellConfig& out) {
  if (in.udp_flows.empty()) return false;
  out = in;
  out.udp_flows.pop_back();
  return true;
}

bool halve_flow_counts(const DumbbellConfig& in, DumbbellConfig& out) {
  bool changed = false;
  out = in;
  for (auto& spec : out.tcp_flows) {
    if (spec.count > 1) {
      spec.count /= 2;
      changed = true;
    }
  }
  for (auto& spec : out.udp_flows) {
    if (spec.count > 1) {
      spec.count /= 2;
      changed = true;
    }
  }
  return changed;
}

bool clear_faults(const DumbbellConfig& in, DumbbellConfig& out) {
  if (in.faults.events.empty()) return false;
  out = in;
  out.faults = faults::FaultSchedule{};
  return true;
}

bool drop_half_faults(const DumbbellConfig& in, DumbbellConfig& out) {
  if (in.faults.events.size() < 2) return false;
  out = in;
  out.faults.events.resize(in.faults.events.size() / 2);
  return true;
}

bool drop_rate_changes(const DumbbellConfig& in, DumbbellConfig& out) {
  if (in.rate_changes.empty()) return false;
  out = in;
  out.rate_changes.clear();
  return true;
}

bool halve_duration(const DumbbellConfig& in, DumbbellConfig& out) {
  const double duration_s = pi2::sim::to_seconds(in.duration);
  if (duration_s <= 0.5) return false;
  out = in;
  out.duration = in.duration / 2;
  // Keep the stats window inside the run and flow/fault times sensible; the
  // validate() gate rejects anything this leaves inconsistent.
  if (out.stats_start >= out.duration) out.stats_start = out.duration / 2;
  return true;
}

bool shrink_buffer(const DumbbellConfig& in, DumbbellConfig& out) {
  if (in.buffer_packets <= 25) return false;
  out = in;
  out.buffer_packets = std::max<std::int64_t>(25, in.buffer_packets / 8);
  return true;
}

bool reset_aqm_overrides(const DumbbellConfig& in, DumbbellConfig& out) {
  if (!in.aqm.alpha_hz && !in.aqm.beta_hz && !in.aqm.ecn_drop_threshold) {
    return false;
  }
  out = in;
  out.aqm.alpha_hz.reset();
  out.aqm.beta_hz.reset();
  out.aqm.ecn_drop_threshold.reset();
  return true;
}

constexpr Transform kTransforms[] = {
    // Biggest simplifications first, so early budget goes to large cuts.
    clear_faults,       drop_last_tcp_spec, drop_last_udp_spec,
    drop_rate_changes,  halve_duration,     halve_flow_counts,
    drop_half_faults,   shrink_buffer,      reset_aqm_overrides,
};

}  // namespace

ShrinkResult shrink(const DumbbellConfig& failing,
                    const ShrinkPredicate& still_fails,
                    const ShrinkOptions& options) {
  ShrinkResult result;
  result.config = failing;

  bool progressed = true;
  while (progressed && result.evaluations < options.max_evals) {
    progressed = false;
    for (const Transform transform : kTransforms) {
      if (result.evaluations >= options.max_evals) break;
      DumbbellConfig candidate;
      if (!transform(result.config, candidate)) continue;
      if (!candidate.validate().empty()) continue;
      ++result.evaluations;
      if (still_fails(candidate)) {
        result.config = candidate;
        ++result.accepted_steps;
        progressed = true;
      }
    }
  }
  return result;
}

}  // namespace pi2::check
