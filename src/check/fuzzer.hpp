// Deterministic scenario fuzzing: random-but-valid DumbbellConfigs (and
// FaultSchedules) derived from a single seed.
//
// The figure sweeps only exercise the hand-picked grids of the paper's
// evaluation; AQM correctness claims, however, hinge on behaviour across the
// whole parameter space (Briscoe's PI^2 Parameters report, Sağlam's
// parameter-space method). The fuzzer searches that space reproducibly:
// case `i` of base seed `s` is built from Rng::derive_seed(s, i), the same
// per-index stream-derivation the parallel sweep runner uses, so
//
//   * every case is replayable in isolation (`check_fuzz --seed s --case i`)
//     and produces the exact same config there as inside a batch;
//   * distinct cases have statistically independent streams, never a shared
//     generator — batches fan out over worker threads untouched.
//
// Every generated config satisfies DumbbellConfig::validate() == "" by
// construction; the fuzzer asserts it and throws if generation ever drifts
// out of the valid envelope (that is a fuzzer bug, not a finding).
#pragma once

#include <cstdint>
#include <string>

#include "scenario/dumbbell.hpp"
#include "topology/topology.hpp"

namespace pi2::check {

struct FuzzOptions {
  std::uint64_t base_seed = 1;
  /// Longest simulated duration a case may draw (cases stay short so a
  /// smoke batch of hundreds finishes in seconds).
  double max_duration_s = 3.0;
  /// Draw scripted impairments (FaultSchedule events) for ~half the cases.
  bool allow_faults = true;
};

class ScenarioFuzzer {
 public:
  ScenarioFuzzer() = default;
  explicit ScenarioFuzzer(FuzzOptions options) : options_(options) {}

  /// Derives case `index`'s config. Pure: same (base_seed, index) -> same
  /// config, on any thread, regardless of other cases.
  [[nodiscard]] scenario::DumbbellConfig make_config(std::uint64_t index) const;

  /// Derives topology case `index`: a 2-4 link chain with per-link AQMs,
  /// rates, buffers and optional fault schedules, one long flow crossing
  /// every hop, per-hop cross traffic, and optional UDP / fluid routes.
  /// Drawn from a stream disjoint from make_config's, with the same purity
  /// contract: same (base_seed, index) -> same topology, on any thread.
  [[nodiscard]] topology::TopologyConfig make_topology_config(
      std::uint64_t index) const;

  /// One-line human summary of a config (AQM, link, flows, faults).
  [[nodiscard]] static std::string describe(const scenario::DumbbellConfig& config);

  /// One-line summary of a topology case (per-link AQM/rate, flow counts).
  [[nodiscard]] static std::string describe(const topology::TopologyConfig& config);

  /// The one-line replay command for case `index`.
  [[nodiscard]] std::string repro_command(std::uint64_t index) const;

  /// The replay command for topology case `index`.
  [[nodiscard]] std::string topology_repro_command(std::uint64_t index) const;

  [[nodiscard]] const FuzzOptions& options() const { return options_; }

 private:
  FuzzOptions options_;
};

}  // namespace pi2::check
