// Campaign-layer property oracles: relations that must hold for *every*
// well-formed campaign spec, checked by the property tests over both the
// committed campaigns/*.json files and randomly generated specs.
//
//   determinism     — expand() run twice yields identical digests, seeds,
//                     keys and values; nothing in the expansion depends on
//                     anything but (spec, options).
//   ordering        — points come out row-major over the axes as listed
//                     (last axis fastest), index i at position i; exactly
//                     the nesting order of the fig binaries' loops.
//   uniqueness      — point keys never collide within a campaign (a journal
//                     replay could otherwise swap two points' results).
//   round-trip      — parse(serialize(spec)) validates and expands to the
//                     same digest: the canonical form loses nothing the
//                     results depend on.
//   digest          — the digest moves when the seed, a value, or an axis
//                     order changes (a stale journal can never pass as
//                     current), and stays put across a pure re-expansion.
//   shard tiling    — for every worker count N, shard_range slices tile
//                     [0, P) exactly: contiguous, disjoint, exhaustive,
//                     within one point of even.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/spec.hpp"
#include "check/oracles.hpp"

namespace pi2::check {

/// "" when every property above holds for `spec` (which must validate())
/// under `opts`; otherwise a one-line description of the first violation.
[[nodiscard]] std::string check_campaign_properties(
    const campaign::CampaignSpec& spec, const campaign::ExpandOptions& opts);

/// Deterministic generator of well-formed specs (validate() == "") for the
/// property tests: template, axis subset order, value counts and values all
/// derive from `seed`.
[[nodiscard]] campaign::CampaignSpec random_campaign_spec(std::uint64_t seed);

/// End-to-end campaign fuzz case for check_fuzz's third sub-batch. From
/// `seed` it (a) runs the full property battery over a random spec of any
/// template, and (b) expands a randomly drawn *resilience* spec — fault
/// presets/inline literals on the fault_schedule axis, fluid background
/// scales on fluid_flows — resolves one point's schedule exactly as the
/// campaign driver does, and pushes the materialized dumbbell config
/// through every scenario oracle. The outcome digest folds the expansion
/// digest, so the batch-level --jobs/determinism rechecks also guard
/// expand().
[[nodiscard]] CaseOutcome run_campaign_case_oracles(
    std::uint64_t seed, std::uint64_t index, const OracleOptions& options = {});

}  // namespace pi2::check
