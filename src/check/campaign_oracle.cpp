#include "check/campaign_oracle.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "campaign/merge.hpp"
#include "durable/journal.hpp"
#include "faults/fault_presets.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pi2::check {
namespace {

using campaign::Axis;
using campaign::AxisValue;
using campaign::CampaignSpec;
using campaign::Expansion;
using campaign::ExpandOptions;

std::string describe_point(std::size_t i) {
  return "point " + std::to_string(i);
}

/// Two expansions of the same (spec, opts) must agree on every observable.
std::string check_determinism(const Expansion& a, const Expansion& b) {
  if (a.digest != b.digest) return "expand() digest is not deterministic";
  if (a.points.size() != b.points.size()) {
    return "expand() point count is not deterministic";
  }
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].key != b.points[i].key ||
        a.points[i].seed != b.points[i].seed ||
        !(a.points[i].values == b.points[i].values)) {
      return "expand() " + describe_point(i) + " is not deterministic";
    }
  }
  return "";
}

/// Row-major order, last axis fastest: position i must decompose as the
/// odometer reading of i over the axis sizes.
std::string check_ordering(const Expansion& x) {
  std::size_t expected = 1;
  for (const Axis& axis : x.axes) expected *= axis.values.size();
  if (x.points.size() != expected) {
    return "expansion has " + std::to_string(x.points.size()) +
           " points, axes multiply to " + std::to_string(expected);
  }
  for (std::size_t i = 0; i < x.points.size(); ++i) {
    if (x.points[i].index != i) {
      return describe_point(i) + " carries index " +
             std::to_string(x.points[i].index);
    }
    std::size_t remainder = i;
    for (std::size_t a = x.axes.size(); a-- > 0;) {
      const std::size_t size = x.axes[a].values.size();
      if (!(x.points[i].values[a] == x.axes[a].values[remainder % size])) {
        return describe_point(i) + " axis '" + x.axes[a].name +
               "' breaks row-major order";
      }
      remainder /= size;
    }
  }
  return "";
}

std::string check_uniqueness(const Expansion& x) {
  std::set<std::uint64_t> keys;
  for (const auto& p : x.points) {
    if (!keys.insert(p.key).second) {
      return "duplicate point key at index " + std::to_string(p.index);
    }
  }
  return "";
}

std::string check_round_trip(const CampaignSpec& spec,
                             const ExpandOptions& opts,
                             const Expansion& reference) {
  CampaignSpec reparsed;
  const std::string err =
      campaign::parse_spec(campaign::serialize_spec(spec), reparsed);
  if (!err.empty()) return "serialize_spec() does not re-parse: " + err;
  const std::string invalid = reparsed.validate();
  if (!invalid.empty()) {
    return "serialize_spec() round-trip fails validate(): " + invalid;
  }
  const Expansion again = campaign::expand(reparsed, opts);
  if (again.digest != reference.digest) {
    return "serialize/parse round-trip changes the campaign digest";
  }
  return "";
}

/// The digest must move when results-determining inputs move.
std::string check_digest_sensitivity(const CampaignSpec& spec,
                                     const ExpandOptions& opts,
                                     const Expansion& reference) {
  if (!opts.use_seed) {
    CampaignSpec reseeded = spec;
    reseeded.seed += 1;
    if (campaign::expand(reseeded, opts).digest == reference.digest) {
      return "digest ignores the base seed";
    }
  }
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    if (spec.axes[a].values.size() < 2) continue;
    CampaignSpec swapped = spec;
    std::swap(swapped.axes[a].values[0], swapped.axes[a].values[1]);
    const Expansion perturbed = campaign::expand(swapped, opts);
    // Capping can truncate the reordered axis back to one value or swap may
    // survive into the expansion; either way the resolved grids differ, so
    // the digests must.
    if (perturbed.digest == reference.digest &&
        !(perturbed.axes[a].values == reference.axes[a].values)) {
      return "digest ignores the value order of axis '" + spec.axes[a].name +
             "'";
    }
    break;  // one perturbed axis suffices
  }
  return "";
}

std::string check_shard_tiling(const Expansion& x) {
  const std::size_t points = x.points.size();
  const std::size_t max_workers = std::min<std::size_t>(points, 8);
  for (std::size_t n = 1; n <= max_workers; ++n) {
    std::size_t covered = 0;
    for (std::size_t i = 1; i <= n; ++i) {
      const campaign::ShardRange r = campaign::shard_range(points, i, n);
      if (r.lo != covered) {
        return "shard " + std::to_string(i) + "/" + std::to_string(n) +
               " starts at " + std::to_string(r.lo) + ", expected " +
               std::to_string(covered);
      }
      if (r.hi < r.lo) {
        return "shard " + std::to_string(i) + "/" + std::to_string(n) +
               " range is inverted";
      }
      const std::size_t size = r.hi - r.lo;
      if (size + 1 < points / n || size > points / n + 1) {
        return "shard " + std::to_string(i) + "/" + std::to_string(n) +
               " is not within one point of even";
      }
      covered = r.hi;
    }
    if (covered != points) {
      return "shards 1.." + std::to_string(n) + " cover " +
             std::to_string(covered) + " of " + std::to_string(points) +
             " points";
    }
  }
  return "";
}

}  // namespace

std::string check_campaign_properties(const CampaignSpec& spec,
                                      const ExpandOptions& opts) {
  const std::string invalid = spec.validate();
  if (!invalid.empty()) return "spec does not validate: " + invalid;
  const Expansion x = campaign::expand(spec, opts);
  if (x.points.empty()) return "";  // capped/filtered away: nothing to check
  std::string err = check_determinism(x, campaign::expand(spec, opts));
  if (err.empty()) err = check_ordering(x);
  if (err.empty()) err = check_uniqueness(x);
  if (err.empty()) err = check_round_trip(spec, opts, x);
  if (err.empty()) err = check_digest_sensitivity(spec, opts, x);
  if (err.empty()) err = check_shard_tiling(x);
  return err;
}

namespace {

/// Draws `count` distinct values out of `pool` in a rotated order.
std::vector<AxisValue> draw(sim::Rng& rng, const std::vector<AxisValue>& pool,
                            std::size_t count) {
  const std::size_t start = rng.uniform_below(pool.size());
  std::vector<AxisValue> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(pool[(start + i) % pool.size()]);
  }
  return out;
}

Axis make_axis(sim::Rng& rng, const std::string& name,
               const std::vector<AxisValue>& pool) {
  Axis axis;
  axis.name = name;
  axis.cap = rng.uniform_below(2) == 0;
  axis.values = draw(rng, pool, 1 + rng.uniform_below(pool.size()));
  if (rng.uniform_below(2) == 0) {
    axis.full_values = draw(rng, pool, 1 + rng.uniform_below(pool.size()));
  }
  return axis;
}

std::vector<AxisValue> numbers(std::initializer_list<double> vs) {
  std::vector<AxisValue> out;
  for (const double v : vs) out.push_back(campaign::axis_number(v));
  return out;
}

std::vector<AxisValue> texts(std::initializer_list<const char*> vs) {
  std::vector<AxisValue> out;
  for (const char* v : vs) out.push_back(campaign::axis_text(v));
  return out;
}

}  // namespace

CampaignSpec random_campaign_spec(std::uint64_t seed) {
  sim::Rng rng{sim::Rng::derive_seed(0x5eedc0deULL, seed)};
  CampaignSpec spec;
  spec.name = "prop-" + std::to_string(seed);
  spec.seed = rng.next_u64() >> 1;

  const std::vector<AxisValue> all_aqms = texts(
      {"fifo", "pie", "bare-pie", "pi", "pi2", "coupled-pi2", "red", "codel",
       "curvy-red", "step", "dualpi2"});
  std::vector<Axis> axes;
  switch (rng.uniform_below(5)) {
    case 0:
      spec.template_name = "dumbbell_sweep";
      axes.push_back(make_axis(rng, "aqm", texts({"pie", "coupled-pi2"})));
      axes.push_back(make_axis(
          rng, "cc_mix", texts({"cubic/ecn-cubic", "cubic/dctcp"})));
      axes.push_back(
          make_axis(rng, "rate_mbps", numbers({4, 12, 40, 120, 200})));
      axes.push_back(make_axis(rng, "rtt_ms", numbers({5, 10, 20, 50, 100})));
      break;
    case 1:
      spec.template_name = "overload";
      axes.push_back(make_axis(rng, "ecn", texts({"not-ect", "ect1", "ect0"})));
      axes.push_back(
          make_axis(rng, "udp_mult", numbers({0.5, 1, 1.5, 2, 3})));
      break;
    case 2:
      spec.template_name = "parking_lot";
      axes.push_back(make_axis(rng, "aqm", all_aqms));
      axes.push_back(make_axis(rng, "hops", numbers({1, 2, 3, 4, 5, 6, 7, 8})));
      break;
    case 3:
      spec.template_name = "rtt_mix";
      axes.push_back(make_axis(rng, "aqm", all_aqms));
      break;
    default:
      // The campaign layer treats fault_schedule values as opaque text (the
      // driver resolves presets/literals), so the pool mixes both forms.
      spec.template_name = "resilience";
      axes.push_back(make_axis(rng, "aqm", texts({"coupled-pi2", "dualpi2",
                                                  "pie"})));
      axes.push_back(make_axis(
          rng, "fault_schedule",
          texts({"none", "rate_step_4x", "rtt_flap", "burst_loss_2pct",
                 "ecn_bleach", "reorder", "rate_step@0.4:rate=0.25",
                 "random_loss@0.3..0.5:p=0.01;rtt_step@0.7:rtt=2"})));
      axes.push_back(make_axis(
          rng, "fluid_flows", numbers({0, 10, 100, 1000, 100000})));
      break;
  }
  // Axis listing order is free (validate() only demands coverage), so the
  // generator exercises every permutation the odometer can see.
  for (std::size_t i = axes.size(); i > 1; --i) {
    std::swap(axes[i - 1], axes[rng.uniform_below(i)]);
  }
  spec.axes = std::move(axes);
  if (rng.uniform_below(2) == 0) spec.link_mbps = rng.uniform(5.0, 50.0);
  if (rng.uniform_below(2) == 0) spec.rtt_ms = rng.uniform(2.0, 80.0);
  return spec;
}

CaseOutcome run_campaign_case_oracles(std::uint64_t seed, std::uint64_t index,
                                      const OracleOptions& options) {
  // (a) Property battery over a random spec of any template.
  campaign::ExpandOptions prop_opts;
  prop_opts.grid_cap = 2;
  const std::string prop_err =
      check_campaign_properties(random_campaign_spec(seed), prop_opts);

  // (b) A randomly drawn resilience spec, expanded and materialized the way
  // bench/pi2_campaign does it: fault_schedule text -> faults::
  // resolve_schedule under the grid's PresetContext, fluid_flows -> one
  // modelled-Reno background ensemble, foreground 1 Cubic + 1 DCTCP.
  sim::Rng rng{sim::Rng::derive_seed(0xca3b41a7ULL, seed)};
  const std::vector<AxisValue> fault_pool = texts(
      {"none", "rate_step_4x", "rtt_flap", "burst_loss_2pct", "ecn_bleach",
       "reorder", "rate_step@0.3:rate=0.5",
       "random_loss@0.3..0.5:p=0.02;rtt_step@0.7:rtt=2"});
  CampaignSpec spec;
  spec.name = "fuzz-resilience-" + std::to_string(index);
  spec.template_name = "resilience";
  spec.seed = rng.next_u64() >> 1;
  spec.axes.push_back(
      make_axis(rng, "aqm", texts({"coupled-pi2", "dualpi2", "pie"})));
  spec.axes.push_back(make_axis(rng, "fault_schedule", fault_pool));
  spec.axes.push_back(
      make_axis(rng, "fluid_flows", numbers({0, 4, 50, 1000})));

  // Short runs keep the fuzz batch cheap; the presets scale to the duration,
  // so every windowed fault still lands inside the run.
  campaign::ExpandOptions eo;
  eo.grid_cap = 2;
  eo.duration_s_override = 2.0;
  eo.stats_start_s_override = 0.5;
  const Expansion x = campaign::expand(spec, eo);

  CaseOutcome outcome;
  outcome.index = index;
  const std::string spec_err = spec.validate();
  if (!spec_err.empty() || x.points.empty()) {
    outcome.failures.push_back(
        {"campaign-expand", spec_err.empty() ? "resilience spec expanded to 0 points"
                                             : spec_err});
    return outcome;
  }

  const campaign::CampaignPoint& p =
      x.points[rng.uniform_below(x.points.size())];
  faults::PresetContext ctx;
  ctx.link_bps = x.link_mbps * 1e6;
  ctx.base_rtt = sim::from_millis(x.rtt_ms);
  ctx.duration = sim::from_seconds(x.duration_s);
  faults::FaultSchedule schedule;
  const std::string resolve_err =
      faults::resolve_schedule(x.text(p, "fault_schedule"), ctx, &schedule);
  if (!resolve_err.empty()) {
    outcome.failures.push_back({"campaign-resolve", resolve_err});
    return outcome;
  }

  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = x.link_mbps * 1e6;
  const std::string& aqm_name = x.text(p, "aqm");
  cfg.aqm.type = aqm_name == "pie"       ? scenario::AqmType::kPie
                 : aqm_name == "dualpi2" ? scenario::AqmType::kDualPi2
                                         : scenario::AqmType::kCoupledPi2;
  cfg.aqm.ecn = true;
  cfg.duration = sim::from_seconds(x.duration_s);
  cfg.stats_start = sim::from_seconds(x.stats_start_s);
  cfg.seed = p.seed;
  cfg.faults = schedule;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = sim::from_millis(x.rtt_ms);
  cfg.tcp_flows.push_back(cubic);
  scenario::TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = sim::from_millis(x.rtt_ms);
  cfg.tcp_flows.push_back(dctcp);
  const double fluid = x.number(p, "fluid_flows");
  if (fluid > 0) {
    scenario::FluidFlowSpec bg;
    bg.cc = tcp::CcType::kReno;
    bg.count = fluid;
    bg.base_rtt = sim::from_millis(x.rtt_ms);
    cfg.fluid_flows.push_back(bg);
  }

  outcome = run_case_oracles(cfg, index, options);
  if (!prop_err.empty()) {
    outcome.failures.push_back({"campaign-properties", prop_err});
  }
  // Fold the expansion digest so the batch-level determinism and --jobs
  // rechecks guard expand() alongside the simulation.
  durable::Fnv1a h;
  h.mix_u64(outcome.digest);
  h.mix_u64(x.digest);
  outcome.digest = h.state;
  return outcome;
}

}  // namespace pi2::check
