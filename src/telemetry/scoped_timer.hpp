// Wall-clock section profiling for the host-side hot paths (ParallelRunner
// workers, Scheduler-driven run loops, exporter I/O).
//
// A SectionProfile owns named sections; a ScopedTimer adds the enclosing
// scope's wall time to one section. Accumulation is atomic, so workers on
// different threads can time into the same profile; section resolution takes
// a mutex, so callers should resolve once and reuse the reference on hot
// paths. Wall-clock numbers are inherently nondeterministic — they are
// reported on stderr / in perf records, never in the byte-identical
// per-run telemetry artifacts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pi2::telemetry {

class SectionProfile {
 public:
  struct Section {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
  };

  struct Snapshot {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };

  /// Finds or creates; the reference is stable for the profile's lifetime.
  Section& section(std::string_view name);

  /// Name-sorted totals.
  [[nodiscard]] std::vector<Snapshot> snapshot() const;

  /// Adds another profile's totals (per-run profiles into a sweep-wide one).
  void merge_from(const SectionProfile& other);

  /// Renders "name: total_s (calls)" lines to `out` (e.g. stderr).
  void print(std::FILE* out, const char* heading) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Section, std::less<>> sections_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(SectionProfile::Section& section)
      : section_(section), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    section_.ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
        std::memory_order_relaxed);
    section_.calls.fetch_add(1, std::memory_order_relaxed);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  SectionProfile::Section& section_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pi2::telemetry
