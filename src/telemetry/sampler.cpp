#include "telemetry/sampler.hpp"

#include <stdexcept>

namespace pi2::telemetry {

Sampler::Sampler(MetricsRegistry& registry, pi2::sim::Duration interval)
    : registry_(registry), interval_(interval) {
  if (interval_ <= pi2::sim::Duration{0}) {
    throw std::invalid_argument("Sampler: interval must be > 0");
  }
}

void Sampler::add_exporter(Exporter* exporter) {
  if (exporter != nullptr) exporters_.push_back(exporter);
}

void Sampler::start(pi2::sim::Simulator& sim) {
  sim_ = &sim;
  next_ = sim_->after(interval_, [this] { tick(); });
}

void Sampler::stop() {
  next_.cancel();
  sim_ = nullptr;
}

void Sampler::tick() {
  sample_at(sim_->now());
  next_ = sim_->after(interval_, [this] { tick(); });
}

void Sampler::sample_at(pi2::sim::Time t) {
  if (sampled_any_ && t <= last_sample_) return;
  do_sample(t);
}

void Sampler::sample_final(pi2::sim::Time t) {
  if (sampled_any_ && t < last_sample_) return;
  do_sample(t);
}

void Sampler::do_sample(pi2::sim::Time t) {
  sampled_any_ = true;
  last_sample_ = t;
  ++samples_;
  const auto& snapshot = registry_.snapshot_view();
  if (series_layout_version_ != registry_.layout_version()) {
    series_slots_.clear();
    series_slots_.reserve(snapshot.size());
    for (const auto& [name, value] : snapshot) {
      series_slots_.push_back(&series_[name]);
    }
    series_layout_version_ = registry_.layout_version();
  }
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    series_slots_[i]->add(t, snapshot[i].second);
  }
  for (Exporter* exporter : exporters_) exporter->on_sample(t, registry_);
}

}  // namespace pi2::telemetry
