#include "telemetry/recorder.hpp"

#include <filesystem>
#include <system_error>

namespace pi2::telemetry {

Recorder::Recorder(RecorderConfig config)
    : config_(std::move(config)), sampler_(registry_, config_.interval) {
  std::error_code ec;  // a failed mkdir surfaces as exporter open failures
  std::filesystem::create_directories(config_.dir, ec);
  jsonl_ = std::make_unique<JsonlExporter>(jsonl_path());
  prometheus_ = std::make_unique<PrometheusExporter>(prometheus_path());
  sampler_.add_exporter(jsonl_.get());
  sampler_.add_exporter(prometheus_.get());
  if (config_.csv) {
    csv_ = std::make_unique<CsvExporter>(csv_path());
    sampler_.add_exporter(csv_.get());
  }
  manifest_.run_id = config_.run_id;
  manifest_.build_flags = build_flags_string();
}

bool Recorder::ok() const {
  if (finished_) return finish_ok_;
  if (!jsonl_->ok() || !prometheus_->ok()) return false;
  return !csv_ || csv_->ok();
}

durable::Status Recorder::status() const {
  durable::Status status;
  status.update(jsonl_->status());
  status.update(prometheus_->status());
  if (csv_) status.update(csv_->status());
  status.update(manifest_status_);
  return status;
}

bool Recorder::finish(pi2::sim::Time end) {
  if (finished_) return finish_ok_;
  finished_ = true;
  // Stop first so the final sample does not count the sampler's own pending
  // tick in the scheduler gauges it is about to record.
  sampler_.stop();
  sampler_.sample_final(end);
  registry_.freeze_gauges();
  manifest_.capture_final(registry_);
  bool ok = jsonl_->finish(registry_);
  ok = prometheus_->finish(registry_) && ok;
  if (csv_) ok = csv_->finish(registry_) && ok;
  manifest_status_ = manifest_.write_json(manifest_path());
  ok = manifest_status_.ok() && ok;
  finish_ok_ = ok;
  return ok;
}

}  // namespace pi2::telemetry
