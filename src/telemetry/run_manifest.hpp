// RunManifest: the reproducibility record written next to a run's metric
// artifacts. It captures everything needed to replay the run byte-for-byte
// — the flattened config, the RNG seed, a digest of the fault schedule, the
// build flags — plus the final metric snapshot, so any sweep point can be
// audited or re-run from its artifact directory alone.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "durable/status.hpp"
#include "faults/fault_schedule.hpp"
#include "telemetry/metrics.hpp"

namespace pi2::telemetry {

struct RunManifest {
  std::string run_id;
  std::uint64_t seed = 0;
  /// Flattened config key/values (e.g. "link_rate_bps" -> "4e+07"). Sorted,
  /// so the serialized manifest is deterministic.
  std::map<std::string, std::string> config;
  /// FNV-1a digest of the fault schedule (16 hex digits; the digest of an
  /// empty schedule for un-faulted runs).
  std::string fault_digest;
  /// Compiler + build configuration the binary was produced with.
  std::string build_flags;
  /// Final metric snapshot, captured when the run finishes.
  std::map<std::string, double> final_metrics;

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);
  void set(const std::string& key, std::uint64_t value);

  /// Fills final_metrics from the registry's flattened snapshot.
  void capture_final(const MetricsRegistry& registry);

  [[nodiscard]] std::string to_json() const;
  /// Atomically replaces `path` (tmp + fsync + rename); on failure the
  /// Status carries the path and errno and no partial manifest exists.
  [[nodiscard]] durable::Status write_json(const std::string& path) const;
};

/// Order- and parameter-sensitive digest of a fault schedule (FNV-1a 64).
[[nodiscard]] std::string fault_schedule_digest(const faults::FaultSchedule& schedule);

/// Compiler version, language level, build type and sanitizer set baked
/// into this binary.
[[nodiscard]] std::string build_flags_string();

}  // namespace pi2::telemetry
