// Metrics registry: named counters, gauges and log-linear histograms.
//
// The registry is the telemetry subsystem's core data structure. Hot-path
// code resolves a metric once by name (a map lookup at wiring time) and then
// holds a stable reference, so recording a sample is an increment or an
// array-indexed bump — no allocation, no hashing, no locking. A simulation
// is single-threaded, so the registry itself is not synchronized; the
// parallel sweep aggregates per-worker registries on the consuming thread
// via merge_from(), which keeps cross-worker totals deterministic.
//
// Histograms use HDR-style log-linear bins (octaves split into equal-width
// sub-buckets), so tail quantiles of per-packet sojourn times (p99, p99.9)
// cost a fixed array walk instead of storing every sample.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pi2::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

/// Point-in-time value: either set explicitly or bound to a callback that is
/// evaluated at sampling time (e.g. "current backlog"). Bound gauges read
/// live objects, so freeze() captures the final value before those objects
/// go away (MetricsRegistry::freeze_gauges, called when a run finishes).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    fn_ = nullptr;
  }
  void bind(std::function<double()> fn) { fn_ = std::move(fn); }
  [[nodiscard]] double value() const { return fn_ ? fn_() : value_; }

  /// Evaluates a bound callback one last time and drops it.
  void freeze() {
    if (fn_) {
      value_ = fn_();
      fn_ = nullptr;
    }
  }

 private:
  double value_ = 0.0;
  std::function<double()> fn_;
};

/// Log-linear histogram of non-negative values (HDR-style). The value range
/// [lowest, highest) is covered by octaves each split into `sub_buckets`
/// equal-width bins, plus an underflow bucket below `lowest` and an overflow
/// bucket at `highest` and above. record() is allocation-free.
class Histogram {
 public:
  struct Config {
    double lowest = 1e-3;  ///< smallest resolvable value (> 0)
    double highest = 1e6;  ///< values at/above land in the overflow bucket
    int sub_buckets = 8;   ///< linear subdivisions per octave
  };

  // Split into two constructors: GCC rejects `Config config = {}` as a
  // default argument because Config's member initializers are not usable
  // until Histogram (the enclosing class) is complete.
  Histogram();
  explicit Histogram(Config config);

  void record(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min_value() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max_value() const { return count_ > 0 ? max_ : 0.0; }

  /// Quantile q in [0, 1] with linear interpolation inside the bucket.
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Adds another histogram's population. The configurations must match
  /// (same bucket layout); used for cross-worker aggregation.
  void merge_from(const Histogram& other);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Bucket boundaries for exporters: bucket i covers
  /// [upper_bound(i-1), upper_bound(i)); the last bucket is unbounded.
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_upper_bound(std::size_t i) const;

 private:
  [[nodiscard]] std::size_t bucket_index(double v) const;
  [[nodiscard]] double bucket_lower_bound(std::size_t i) const;

  Config config_;
  int octaves_;
  // Precomputed for the record() hot path: scaling by inv_lowest_ plus
  // exponent/mantissa extraction replaces a division and a frexp call.
  double inv_lowest_;
  double sub_buckets_d_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> metric store with deterministic (sorted) iteration order, so
/// every exporter emits byte-identical output for identical runs. Metric
/// references are stable for the registry's lifetime (node-based storage).
class MetricsRegistry {
 public:
  /// Finds or creates. The returned reference stays valid until the
  /// registry is destroyed; hot paths should hold it instead of re-looking
  /// up by name.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Creates a gauge bound to `fn` (overwrites any previous binding).
  Gauge& gauge(std::string_view name, std::function<double()> fn);
  Histogram& histogram(std::string_view name,
                       Histogram::Config config = Histogram::Config{});

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Flattened, name-sorted view of everything: counters and gauges by
  /// value, histograms expanded into .count/.mean/.p50/.p99/.p999/.max
  /// pseudo-metrics. This is what the Sampler records and the row-oriented
  /// exporters write.
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const;

  /// Same rows as snapshot(), but returned by reference from a cache that
  /// is only rebuilt when the metric set changes: steady-state sampling
  /// refreshes values in place with zero allocations. The reference is
  /// invalidated by the next snapshot_view()/snapshot() call or by
  /// registering a new metric. Not thread-safe (mutable cache) — like the
  /// rest of the registry, single-threaded by design.
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& snapshot_view() const;

  /// Incremented whenever a metric is first registered; lets callers cache
  /// per-metric wiring (e.g. the Sampler's TimeSeries slots) and rebuild it
  /// only when the layout changes.
  [[nodiscard]] std::uint64_t layout_version() const { return version_; }

  /// Sums counters and histograms from `other` into this registry and
  /// copies gauge values (last writer wins). Metrics missing here are
  /// created. Deterministic when called in a deterministic order.
  void merge_from(const MetricsRegistry& other);

  /// Captures every bound gauge's current value and unbinds it. Call when
  /// the objects gauges observe are about to go away.
  void freeze_gauges();

 private:
  /// One row of the cached snapshot layout: how to recompute the row's
  /// value from its source metric (map nodes are stable, so the pointers
  /// survive later registrations).
  struct SnapshotSlot {
    enum class Kind { kCounter, kGauge, kHistCount, kHistMean, kHistQuantile, kHistMax };
    Kind kind;
    const void* src;
    double q = 0.0;  ///< quantile, for kHistQuantile rows
  };

  [[nodiscard]] static double slot_value(const SnapshotSlot& slot);
  void rebuild_snapshot_cache() const;

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::uint64_t version_ = 0;
  mutable std::vector<std::pair<std::string, double>> snapshot_cache_;
  mutable std::vector<SnapshotSlot> snapshot_slots_;
  mutable std::uint64_t snapshot_version_ = ~std::uint64_t{0};
};

}  // namespace pi2::telemetry
