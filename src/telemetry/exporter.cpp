#include "telemetry/exporter.hpp"

#include <cctype>
#include <charconv>

namespace pi2::telemetry {

namespace {

// std::to_chars is specified to format exactly like printf in the "C"
// locale, so these produce the same bytes as %.9g / %.9f at a fraction of
// the stdio cost — the row exporters run once per sampled metric.
void append_g9(std::string& out, double v) {
  char buf[40];
  const auto r = std::to_chars(buf, buf + sizeof buf, v,
                               std::chars_format::general, 9);
  out.append(buf, r.ptr);
}

void append_f9(std::string& out, double v) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof buf, v,
                               std::chars_format::fixed, 9);
  out.append(buf, r.ptr);
}

}  // namespace

void JsonlExporter::on_sample(pi2::sim::Time t, const MetricsRegistry& registry) {
  if (!file_.healthy()) return;
  line_.clear();
  line_ += "{\"t_s\": ";
  append_f9(line_, pi2::sim::to_seconds(t));
  for (const auto& [name, value] : registry.snapshot_view()) {
    line_ += ", \"";
    line_ += name;
    line_ += "\": ";
    append_g9(line_, value);
  }
  line_ += "}\n";
  file_.write(line_);
}

bool JsonlExporter::finish(const MetricsRegistry&) { return commit(); }

void CsvExporter::on_sample(pi2::sim::Time t, const MetricsRegistry& registry) {
  if (!file_.healthy()) return;
  const auto& snapshot = registry.snapshot_view();
  if (header_.empty()) {
    line_ = "t_s";
    for (const auto& [name, value] : snapshot) {
      header_.push_back(name);
      line_ += ',';
      line_ += name;
    }
    line_ += '\n';
    file_.write(line_);
  }
  line_.clear();
  append_f9(line_, pi2::sim::to_seconds(t));
  // Rows follow the first sample's column set; metrics registered later are
  // not retrofitted into the CSV (JSONL carries the full evolving set).
  std::size_t column = 0;
  for (const auto& [name, value] : snapshot) {
    if (column < header_.size() && header_[column] == name) {
      line_ += ',';
      append_g9(line_, value);
      ++column;
    }
  }
  line_.append(header_.size() - column, ',');
  line_ += '\n';
  file_.write(line_);
}

bool CsvExporter::finish(const MetricsRegistry&) { return commit(); }

void PrometheusExporter::on_sample(pi2::sim::Time, const MetricsRegistry&) {}

bool PrometheusExporter::finish(const MetricsRegistry& registry) {
  for (const auto& [name, c] : registry.counters()) {
    const std::string prom = prometheus_name(name);
    file_.printf("# TYPE %s counter\n%s %llu\n", prom.c_str(), prom.c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string prom = prometheus_name(name);
    file_.printf("# TYPE %s gauge\n%s %.9g\n", prom.c_str(), prom.c_str(),
                 g.value());
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string prom = prometheus_name(name);
    file_.printf("# TYPE %s histogram\n", prom.c_str());
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      cumulative += h.bucket_value(i);
      // Skip interior empty deltas but always emit the first and last
      // bucket so the exposition stays parseable and bounded in size.
      if (h.bucket_value(i) == 0 && i != 0 && i + 1 != h.bucket_count()) continue;
      if (i + 1 == h.bucket_count()) {
        file_.printf("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(cumulative));
      } else {
        file_.printf("%s_bucket{le=\"%.9g\"} %llu\n", prom.c_str(),
                     h.bucket_upper_bound(i),
                     static_cast<unsigned long long>(cumulative));
      }
    }
    file_.printf("%s_sum %.9g\n%s_count %llu\n", prom.c_str(), h.sum(),
                 prom.c_str(), static_cast<unsigned long long>(h.count()));
  }
  return commit();
}

std::string prometheus_name(const std::string& name) {
  std::string out = "pi2_";
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

}  // namespace pi2::telemetry
