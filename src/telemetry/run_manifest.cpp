#include "telemetry/run_manifest.hpp"

#include <cstdio>
#include <cstring>

#include "durable/atomic_file.hpp"

namespace pi2::telemetry {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// FNV-1a 64-bit over raw bytes.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ull;
  void mix(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state ^= bytes[i];
      state *= 0x100000001b3ull;
    }
  }
  void mix_u64(std::uint64_t v) { mix(&v, sizeof v); }
  void mix_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    mix_u64(bits);
  }
};

}  // namespace

void RunManifest::set(const std::string& key, const std::string& value) {
  config[key] = value;
}

void RunManifest::set(const std::string& key, double value) {
  config[key] = format_double(value);
}

void RunManifest::set(const std::string& key, std::uint64_t value) {
  config[key] = std::to_string(value);
}

void RunManifest::capture_final(const MetricsRegistry& registry) {
  final_metrics.clear();
  for (const auto& [name, value] : registry.snapshot()) {
    final_metrics[name] = value;
  }
}

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += "  \"run_id\": \"" + json_escape(run_id) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"fault_digest\": \"" + json_escape(fault_digest) + "\",\n";
  out += "  \"build_flags\": \"" + json_escape(build_flags) + "\",\n";
  out += "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"final_metrics\": {";
  first = true;
  for (const auto& [key, value] : final_metrics) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(key) + "\": " + format_double(value);
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

durable::Status RunManifest::write_json(const std::string& path) const {
  return durable::atomic_write_file(path, to_json());
}

std::string fault_schedule_digest(const faults::FaultSchedule& schedule) {
  Fnv1a h;
  h.mix_u64(schedule.events.size());
  for (const auto& e : schedule.events) {
    h.mix_u64(static_cast<std::uint64_t>(e.kind));
    h.mix_u64(static_cast<std::uint64_t>(e.at.count()));
    h.mix_u64(static_cast<std::uint64_t>(e.until.count()));
    h.mix_double(e.rate_bps);
    h.mix_double(e.rate2_bps);
    h.mix_u64(static_cast<std::uint64_t>(e.period.count()));
    h.mix_u64(static_cast<std::uint64_t>(e.rtt.count()));
    h.mix_double(e.probability);
    h.mix_u64(static_cast<std::uint64_t>(e.burst_packets));
    h.mix_u64(static_cast<std::uint64_t>(e.extra_delay.count()));
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h.state));
  return buf;
}

std::string build_flags_string() {
  std::string out = "cxx=";
#if defined(__clang__)
  out += "clang ";
#elif defined(__GNUC__)
  out += "gcc ";
#endif
  out += __VERSION__;
  out += " std=" + std::to_string(__cplusplus);
#ifdef NDEBUG
  out += " ndebug=1";
#else
  out += " ndebug=0";
#endif
#ifdef PI2_BUILD_TYPE
  out += std::string(" build=") + PI2_BUILD_TYPE;
#endif
#ifdef PI2_SANITIZE
  if (PI2_SANITIZE[0] != '\0') out += std::string(" sanitize=") + PI2_SANITIZE;
#endif
  return out;
}

}  // namespace pi2::telemetry
