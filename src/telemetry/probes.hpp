// Probe wiring: connects the metrics registry to the simulation pipeline.
//
// Counters that the pipeline already maintains (BottleneckLink::Counters,
// Scheduler statistics, AQM probabilities) are exposed as *bound gauges* —
// zero hot-path cost, evaluated only at sampling instants. Per-packet
// signals that need distribution tails (sojourn time) subscribe to the
// link's probe bus and feed a log-linear histogram — one array bump per
// departure, no allocation.
//
// The bound gauges read the attached objects live, so they must outlive the
// last sample; Recorder::finish() freezes them before the run tears down.
#pragma once

#include "net/bottleneck_link.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace pi2::telemetry {

/// Bottleneck counters + queue state gauges, per-departure sojourn histogram
/// ("link.sojourn_ms") and transmitted-bytes counter, drop/mark counters by
/// reason. Subscribes to the link's probe bus.
void attach_link_probes(MetricsRegistry& registry, net::BottleneckLink& link);

/// AQM internals: classic probability p ("aqm.p"), scalable probability p'
/// ("aqm.p_prime"), non-finite guard counter ("aqm.guard_events"). Works for
/// every QueueDiscipline (PI family, RED, CoDel, ...) via the virtual
/// introspection surface.
void attach_aqm_probes(MetricsRegistry& registry, const net::QueueDiscipline& qdisc);

/// Simulator/scheduler state: events executed, clamped schedules, heap
/// occupancy and compaction count.
void attach_simulator_probes(MetricsRegistry& registry, const sim::Simulator& sim);

}  // namespace pi2::telemetry
