#include "telemetry/scoped_timer.hpp"

#include <cstdio>

namespace pi2::telemetry {

SectionProfile::Section& SectionProfile::section(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = sections_.find(name);
  if (it != sections_.end()) return it->second;
  return sections_.try_emplace(std::string{name}).first->second;
}

std::vector<SectionProfile::Snapshot> SectionProfile::snapshot() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<Snapshot> out;
  out.reserve(sections_.size());
  for (const auto& [name, s] : sections_) {
    out.push_back({name,
                   static_cast<double>(s.ns.load(std::memory_order_relaxed)) * 1e-9,
                   s.calls.load(std::memory_order_relaxed)});
  }
  return out;
}

void SectionProfile::merge_from(const SectionProfile& other) {
  for (const Snapshot& s : other.snapshot()) {
    Section& mine = section(s.name);
    mine.ns.fetch_add(static_cast<std::uint64_t>(s.seconds * 1e9),
                      std::memory_order_relaxed);
    mine.calls.fetch_add(s.calls, std::memory_order_relaxed);
  }
}

void SectionProfile::print(std::FILE* out, const char* heading) const {
  const auto sections = snapshot();
  if (sections.empty()) return;
  std::fprintf(out, "%s\n", heading);
  for (const Snapshot& s : sections) {
    std::fprintf(out, "  %-24s %10.3f s  (%llu calls)\n", s.name.c_str(),
                 s.seconds, static_cast<unsigned long long>(s.calls));
  }
}

}  // namespace pi2::telemetry
