#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace pi2::telemetry {

namespace {

int octaves_for(const Histogram::Config& config) {
  if (!(config.lowest > 0.0) || !(config.highest > config.lowest) ||
      config.sub_buckets < 1) {
    throw std::invalid_argument(
        "Histogram::Config: need 0 < lowest < highest and sub_buckets >= 1");
  }
  return static_cast<int>(
      std::ceil(std::log2(config.highest / config.lowest) - 1e-9));
}

}  // namespace

Histogram::Histogram() : Histogram(Config{}) {}

Histogram::Histogram(Config config)
    : config_(config),
      octaves_(octaves_for(config)),
      inv_lowest_(1.0 / config.lowest),
      sub_buckets_d_(static_cast<double>(config.sub_buckets)) {
  // Bucket 0 = underflow [0, lowest); then octaves_ * sub_buckets log-linear
  // bins; last bucket = overflow [highest, inf).
  counts_.assign(static_cast<std::size_t>(octaves_ * config_.sub_buckets) + 2, 0);
}

std::size_t Histogram::bucket_index(double v) const {
  if (!(v > 0.0) || v < config_.lowest) return 0;
  if (v >= config_.highest) return counts_.size() - 1;
  // v * inv_lowest_ is in [1, 2^octaves): the IEEE-754 exponent is the
  // octave and the mantissa fraction (in [0, 1)) is the position within it.
  // Direct bit extraction keeps record() at a handful of cycles — this is
  // the per-packet hot path behind the sojourn probe.
  const auto bits = std::bit_cast<std::uint64_t>(v * inv_lowest_);
  const int octave = static_cast<int>((bits >> 52) & 0x7FF) - 1023;
  const double frac =
      static_cast<double>(bits & ((std::uint64_t{1} << 52) - 1)) * 0x1p-52;
  const int sub = std::min(config_.sub_buckets - 1,
                           static_cast<int>(frac * sub_buckets_d_));
  const auto index = static_cast<std::size_t>(octave * config_.sub_buckets + sub) + 1;
  return std::min(index, counts_.size() - 2);
}

double Histogram::bucket_lower_bound(std::size_t i) const {
  if (i == 0) return 0.0;
  if (i >= counts_.size() - 1) return config_.highest;
  const auto linear = static_cast<int>(i - 1);
  const int octave = linear / config_.sub_buckets;
  const int sub = linear % config_.sub_buckets;
  return config_.lowest * std::ldexp(1.0 + static_cast<double>(sub) /
                                               static_cast<double>(config_.sub_buckets),
                                     octave);
}

double Histogram::bucket_upper_bound(std::size_t i) const {
  if (i >= counts_.size() - 1) return config_.highest;  // overflow: reported cap
  return bucket_lower_bound(i + 1);
}

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  ++counts_[bucket_index(v)];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto next = cumulative + counts_[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = bucket_lower_bound(i);
      const double hi = std::min(bucket_upper_bound(i), max_);
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(counts_[i]);
      return std::clamp(lo + (hi - lo) * within, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.counts_.size() != counts_.size() ||
      other.config_.lowest != config_.lowest ||
      other.config_.highest != config_.highest) {
    throw std::invalid_argument("Histogram::merge_from: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  ++version_;
  return counters_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  ++version_;
  return gauges_.emplace(std::string{name}, Gauge{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::function<double()> fn) {
  Gauge& g = gauge(name);
  g.bind(std::move(fn));
  return g;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Histogram::Config config) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  ++version_;
  return histograms_.emplace(std::string{name}, Histogram{config}).first->second;
}

double MetricsRegistry::slot_value(const SnapshotSlot& slot) {
  switch (slot.kind) {
    case SnapshotSlot::Kind::kCounter:
      return static_cast<double>(static_cast<const Counter*>(slot.src)->value());
    case SnapshotSlot::Kind::kGauge:
      return static_cast<const Gauge*>(slot.src)->value();
    case SnapshotSlot::Kind::kHistCount:
      return static_cast<double>(static_cast<const Histogram*>(slot.src)->count());
    case SnapshotSlot::Kind::kHistMean:
      return static_cast<const Histogram*>(slot.src)->mean();
    case SnapshotSlot::Kind::kHistQuantile:
      return static_cast<const Histogram*>(slot.src)->quantile(slot.q);
    case SnapshotSlot::Kind::kHistMax:
      return static_cast<const Histogram*>(slot.src)->max_value();
  }
  return 0.0;
}

void MetricsRegistry::rebuild_snapshot_cache() const {
  using Kind = SnapshotSlot::Kind;
  std::vector<std::pair<std::string, SnapshotSlot>> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size() * 6);
  for (const auto& [name, c] : counters_) {
    rows.emplace_back(name, SnapshotSlot{Kind::kCounter, &c});
  }
  for (const auto& [name, g] : gauges_) {
    rows.emplace_back(name, SnapshotSlot{Kind::kGauge, &g});
  }
  for (const auto& [name, h] : histograms_) {
    rows.emplace_back(name + ".count", SnapshotSlot{Kind::kHistCount, &h});
    rows.emplace_back(name + ".mean", SnapshotSlot{Kind::kHistMean, &h});
    rows.emplace_back(name + ".p50", SnapshotSlot{Kind::kHistQuantile, &h, 0.50});
    rows.emplace_back(name + ".p99", SnapshotSlot{Kind::kHistQuantile, &h, 0.99});
    rows.emplace_back(name + ".p999", SnapshotSlot{Kind::kHistQuantile, &h, 0.999});
    rows.emplace_back(name + ".max", SnapshotSlot{Kind::kHistMax, &h});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  snapshot_cache_.clear();
  snapshot_slots_.clear();
  snapshot_cache_.reserve(rows.size());
  snapshot_slots_.reserve(rows.size());
  for (auto& [name, slot] : rows) {
    snapshot_cache_.emplace_back(std::move(name), 0.0);
    snapshot_slots_.push_back(slot);
  }
  snapshot_version_ = version_;
}

const std::vector<std::pair<std::string, double>>& MetricsRegistry::snapshot_view()
    const {
  if (snapshot_version_ != version_) rebuild_snapshot_cache();
  for (std::size_t i = 0; i < snapshot_slots_.size(); ++i) {
    snapshot_cache_[i].second = slot_value(snapshot_slots_[i]);
  }
  return snapshot_cache_;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::snapshot() const {
  return snapshot_view();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).inc(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).set(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.config()).merge_from(h);
  }
}

void MetricsRegistry::freeze_gauges() {
  for (auto& entry : gauges_) entry.second.freeze();
}

}  // namespace pi2::telemetry
