// Recorder: one run's telemetry bundle — registry + sampler + exporters +
// manifest + section profile — writing a fixed artifact set into a
// directory:
//
//   <dir>/<run_id>.jsonl          per-sample metric stream (always)
//   <dir>/<run_id>.prom           final Prometheus text snapshot (always)
//   <dir>/<run_id>.csv            per-sample CSV (opt-in)
//   <dir>/<run_id>.manifest.json  RunManifest (always)
//
// A caller constructs a Recorder, hands it to the experiment harness
// (DumbbellConfig::recorder), and the harness wires the pipeline probes,
// starts the sampler and finishes the artifacts when the run ends. All
// artifact bytes depend only on the simulation, never on wall clock or
// thread scheduling, so sweeps produce identical files at any --jobs value.
#pragma once

#include <memory>
#include <string>

#include "sim/simulator.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_manifest.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/scoped_timer.hpp"

namespace pi2::telemetry {

struct RecorderConfig {
  /// Artifact directory; created (recursively) if missing.
  std::string dir = ".";
  /// File stem for this run's artifacts.
  std::string run_id = "run";
  /// Simulated-time sampling cadence.
  pi2::sim::Duration interval = pi2::sim::from_millis(100);
  /// Also write the per-sample CSV next to the JSONL stream.
  bool csv = false;
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig config);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] RunManifest& manifest() { return manifest_; }
  [[nodiscard]] Sampler& sampler() { return sampler_; }
  [[nodiscard]] SectionProfile& profile() { return profile_; }

  /// False once any exporter failed to open or write.
  [[nodiscard]] bool ok() const;

  /// First error observed across the bundle's artifacts (exporters and, at
  /// finish time, the manifest write) — path + errno, never a bare false.
  [[nodiscard]] durable::Status status() const;

  /// Starts the periodic sampling chain on `sim` (harness-called).
  void start(pi2::sim::Simulator& sim) { sampler_.start(sim); }

  /// Takes the final sample at `end`, freezes bound gauges, captures the
  /// manifest's final snapshot and writes every artifact. Returns false if
  /// any artifact failed. Idempotent.
  bool finish(pi2::sim::Time end);

  [[nodiscard]] const std::string& dir() const { return config_.dir; }
  [[nodiscard]] std::string jsonl_path() const { return stem() + ".jsonl"; }
  [[nodiscard]] std::string csv_path() const { return stem() + ".csv"; }
  [[nodiscard]] std::string prometheus_path() const { return stem() + ".prom"; }
  [[nodiscard]] std::string manifest_path() const {
    return stem() + ".manifest.json";
  }

 private:
  [[nodiscard]] std::string stem() const { return config_.dir + "/" + config_.run_id; }

  RecorderConfig config_;
  MetricsRegistry registry_;
  RunManifest manifest_;
  SectionProfile profile_;
  std::unique_ptr<JsonlExporter> jsonl_;
  std::unique_ptr<CsvExporter> csv_;
  std::unique_ptr<PrometheusExporter> prometheus_;
  Sampler sampler_;
  bool finished_ = false;
  bool finish_ok_ = false;
  durable::Status manifest_status_;  ///< outcome of the finish-time write
};

}  // namespace pi2::telemetry
