// Metric exporters: one interface, three wire formats.
//
//  - JsonlExporter: one flat JSON object per sample — the plotting format
//    (each line is {"t_s": ..., "<metric>": value, ...}).
//  - CsvExporter: same rows as aligned CSV columns (header from the first
//    sample's metric set).
//  - PrometheusExporter: text exposition format, written once at finish()
//    as the run's final scrape-style snapshot (histograms with cumulative
//    `le` buckets, counters/gauges with TYPE lines).
//
// All exporters produce byte-identical output for identical runs: metric
// iteration order is sorted (MetricsRegistry guarantees it) and numbers are
// printed with locale-independent printf formatting.
//
// Durability: the file-backed exporters write through durable::AtomicFile —
// rows land in `<path>.tmp` and the destination only appears at finish(),
// complete and fsync'd. A run killed mid-sample leaves no torn artifact,
// and every I/O failure (open, write, fsync, rename) is captured as a
// durable::Status with path + errno instead of being silently dropped.
#pragma once

#include <string>
#include <vector>

#include "durable/atomic_file.hpp"
#include "durable/status.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pi2::telemetry {

class Exporter {
 public:
  virtual ~Exporter() = default;

  /// False once an I/O error (or a failed open) has occurred.
  [[nodiscard]] virtual bool ok() const = 0;

  /// Called by the Sampler at every snapshot instant.
  virtual void on_sample(pi2::sim::Time t, const MetricsRegistry& registry) = 0;

  /// Called once when the run ends; commits the artifact (tmp -> final
  /// rename). Returns ok().
  virtual bool finish(const MetricsRegistry& registry) = 0;
};

/// Shared AtomicFile plumbing for the file-backed exporters.
class FileExporter : public Exporter {
 public:
  explicit FileExporter(const std::string& path) : file_(path) {}
  FileExporter(const FileExporter&) = delete;
  FileExporter& operator=(const FileExporter&) = delete;

  /// True while the artifact is healthy — including after a clean commit
  /// (an exporter that finished successfully stays ok()).
  [[nodiscard]] bool ok() const override { return file_.status().ok(); }
  /// First error observed (open, write or commit), or ok. The message
  /// carries the offending path and errno.
  [[nodiscard]] const durable::Status& status() const { return file_.status(); }
  [[nodiscard]] const std::string& path() const { return file_.path(); }

 protected:
  /// Commits the tmp file over the destination; idempotent.
  bool commit() { return file_.commit().ok(); }
  durable::AtomicFile file_;
};

class JsonlExporter final : public FileExporter {
 public:
  explicit JsonlExporter(const std::string& path) : FileExporter(path) {}
  void on_sample(pi2::sim::Time t, const MetricsRegistry& registry) override;
  bool finish(const MetricsRegistry& registry) override;

 private:
  std::string line_;  ///< reused row buffer (one allocation per run)
};

class CsvExporter final : public FileExporter {
 public:
  explicit CsvExporter(const std::string& path) : FileExporter(path) {}
  void on_sample(pi2::sim::Time t, const MetricsRegistry& registry) override;
  bool finish(const MetricsRegistry& registry) override;

 private:
  std::vector<std::string> header_;
  std::string line_;  ///< reused row buffer (one allocation per run)
};

class PrometheusExporter final : public FileExporter {
 public:
  explicit PrometheusExporter(const std::string& path) : FileExporter(path) {}
  /// Snapshot format: only the final state is exposed, so per-sample calls
  /// are no-ops.
  void on_sample(pi2::sim::Time t, const MetricsRegistry& registry) override;
  bool finish(const MetricsRegistry& registry) override;
};

/// Prometheus metric name: "link.sojourn_ms" -> "pi2_link_sojourn_ms".
[[nodiscard]] std::string prometheus_name(const std::string& name);

}  // namespace pi2::telemetry
