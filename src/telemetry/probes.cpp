#include "telemetry/probes.hpp"

namespace pi2::telemetry {

void attach_link_probes(MetricsRegistry& registry, net::BottleneckLink& link) {
  const net::BottleneckLink::Counters& c = link.counters();
  registry.gauge("link.enqueued", [&c] { return static_cast<double>(c.enqueued); });
  registry.gauge("link.forwarded", [&c] { return static_cast<double>(c.forwarded); });
  registry.gauge("link.aqm_dropped",
                 [&c] { return static_cast<double>(c.aqm_dropped); });
  registry.gauge("link.tail_dropped",
                 [&c] { return static_cast<double>(c.tail_dropped); });
  registry.gauge("link.marked", [&c] { return static_cast<double>(c.marked); });
  registry.gauge("link.fault_dropped",
                 [&c] { return static_cast<double>(c.fault_dropped); });
  registry.gauge("link.rate_mbps", [&link] { return link.link_rate_bps() / 1e6; });
  registry.gauge("queue.backlog_bytes",
                 [&link] { return static_cast<double>(link.backlog_bytes()); });
  registry.gauge("queue.backlog_packets",
                 [&link] { return static_cast<double>(link.backlog_packets()); });
  registry.gauge("queue.delay_ms",
                 [&link] { return pi2::sim::to_millis(link.queue_delay()); });

  // Per-packet distribution tails: sojourn resolved from 1 us to 100 s.
  Histogram& sojourn = registry.histogram(
      "link.sojourn_ms", Histogram::Config{1e-3, 1e5, 8});
  Counter& tx_bytes = registry.counter("link.tx_bytes");
  link.probes().add_departure(
      [&sojourn, &tx_bytes](const net::Packet& p, pi2::sim::Duration d) {
        sojourn.record(pi2::sim::to_millis(d));
        tx_bytes.inc(static_cast<std::uint64_t>(p.size));
      });
}

void attach_aqm_probes(MetricsRegistry& registry,
                       const net::QueueDiscipline& qdisc) {
  registry.gauge("aqm.p", [&qdisc] { return qdisc.classic_probability(); });
  registry.gauge("aqm.p_prime",
                 [&qdisc] { return qdisc.scalable_probability(); });
  registry.gauge("aqm.guard_events",
                 [&qdisc] { return static_cast<double>(qdisc.guard_events()); });
}

void attach_simulator_probes(MetricsRegistry& registry, const sim::Simulator& sim) {
  registry.gauge("sim.events_executed",
                 [&sim] { return static_cast<double>(sim.events_executed()); });
  registry.gauge("sim.clamped_events",
                 [&sim] { return static_cast<double>(sim.clamped_events()); });
  registry.gauge("sim.sched_heap", [&sim] {
    return static_cast<double>(sim.scheduler().heap_size());
  });
  registry.gauge("sim.sched_live", [&sim] {
    return static_cast<double>(sim.scheduler().live_size());
  });
  registry.gauge("sim.sched_compactions", [&sim] {
    return static_cast<double>(sim.scheduler().compactions());
  });
}

}  // namespace pi2::telemetry
