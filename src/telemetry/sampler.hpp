// Periodic metric snapshots on the simulated clock.
//
// A Sampler walks the registry every `interval` of simulated time, appends
// each flattened metric to a per-metric stats::TimeSeries (for in-process
// consumers: plots, settle-time analysis) and forwards the snapshot to every
// attached Exporter (for on-disk artifacts). Sampling runs inside the
// simulation's event loop, so its cost and cadence are deterministic and a
// run's telemetry is byte-identical at any worker count.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "stats/time_series.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/metrics.hpp"

namespace pi2::telemetry {

class Sampler {
 public:
  Sampler(MetricsRegistry& registry, pi2::sim::Duration interval);

  /// Exporters are borrowed; they must outlive the sampler's last sample.
  void add_exporter(Exporter* exporter);

  /// Schedules the periodic snapshots, first at now + interval. The chain
  /// re-arms itself until stop() or the end of the run.
  void start(pi2::sim::Simulator& sim);
  void stop();

  /// Takes one snapshot at `t` immediately (used for the final state at the
  /// end of a run). Skipped if `t` was already sampled by the periodic tick.
  void sample_at(pi2::sim::Time t);

  /// Takes the end-of-run snapshot at `t` even if the periodic tick already
  /// sampled that instant. When the run ends exactly on a tick boundary the
  /// tick may fire before the last same-timestamp events, leaving the final
  /// row stale; this re-samples so the stream always closes with the frozen
  /// end state.
  void sample_final(pi2::sim::Time t);

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] pi2::sim::Duration interval() const { return interval_; }

  /// Per-metric time series accumulated so far, keyed by metric name.
  [[nodiscard]] const std::map<std::string, stats::TimeSeries>& series() const {
    return series_;
  }

 private:
  void tick();
  void do_sample(pi2::sim::Time t);

  MetricsRegistry& registry_;
  pi2::sim::Duration interval_;
  pi2::sim::Simulator* sim_ = nullptr;
  pi2::sim::EventHandle next_;
  std::vector<Exporter*> exporters_;
  std::map<std::string, stats::TimeSeries> series_;
  /// Snapshot-row -> TimeSeries wiring, rebuilt only when the registry's
  /// metric set changes so the steady-state sample loop does no string
  /// lookups (map nodes are stable, the pointers stay valid).
  std::vector<stats::TimeSeries*> series_slots_;
  std::uint64_t series_layout_version_ = ~std::uint64_t{0};
  std::uint64_t samples_ = 0;
  bool sampled_any_ = false;
  pi2::sim::Time last_sample_{};
};

}  // namespace pi2::telemetry
