// Deterministic fan-out of independent tasks across N worker threads.
//
// The experiment sweeps behind the paper's figures run dozens of fully
// independent simulations (each owns its Simulator, RNG and stats); the
// runner executes them concurrently while keeping every observable output
// identical to a serial run:
//
//  - Tasks are indexed 0..count-1 and claimed from a single atomic cursor —
//    no per-thread queues, no work stealing — so scheduling cannot
//    influence which task computes what.
//  - Results are buffered per index and handed to the consumer strictly in
//    submission order, on the calling thread. Anything the consumer prints
//    is therefore byte-identical regardless of the job count.
//  - Tasks must not share mutable state; each derives its randomness from
//    Rng::derive_seed(base_seed, index), never from a shared generator.
//
// With jobs() == 1 (or count == 1) no threads are spawned at all and the
// tasks run inline, which doubles as the reference serial execution.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace pi2::runner {

class ParallelRunner {
 public:
  /// `jobs` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ParallelRunner(unsigned jobs = 0);

  /// Worker count this runner fans out to.
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Executes `work(i)` for every i in [0, count) across the workers, then
  /// `consume(i)` for i = 0, 1, ... in order on the calling thread as soon
  /// as each prefix of results is complete. `work` runs concurrently for
  /// distinct indices and must not touch shared mutable state; `consume`
  /// never runs concurrently with itself. The first exception thrown by
  /// `work` stops consumption and is rethrown after all workers drain.
  void run(std::size_t count, const std::function<void(std::size_t)>& work,
           const std::function<void(std::size_t)>& consume) const;

  /// Typed convenience: `produce(i)` builds a Result on a worker; `consume`
  /// receives them in index order. Each buffered result is destroyed right
  /// after consumption, so peak memory is bounded by the completion skew.
  template <typename Result>
  void run_ordered(
      std::size_t count, const std::function<Result(std::size_t)>& produce,
      const std::function<void(std::size_t, Result&&)>& consume) const {
    std::vector<std::optional<Result>> results(count);
    run(
        count, [&](std::size_t i) { results[i].emplace(produce(i)); },
        [&](std::size_t i) {
          consume(i, std::move(*results[i]));
          results[i].reset();
        });
  }

 private:
  unsigned jobs_;
};

}  // namespace pi2::runner
