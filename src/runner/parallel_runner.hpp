// Deterministic fan-out of independent tasks across N worker threads.
//
// The experiment sweeps behind the paper's figures run dozens of fully
// independent simulations (each owns its Simulator, RNG and stats); the
// runner executes them concurrently while keeping every observable output
// identical to a serial run:
//
//  - Tasks are indexed 0..count-1 and claimed from a single cursor — no
//    per-thread queues, no work stealing — so scheduling cannot influence
//    which task computes what.
//  - Results are buffered per index and handed to the consumer strictly in
//    submission order, on the calling thread. Anything the consumer prints
//    is therefore byte-identical regardless of the job count.
//  - Tasks must not share mutable state; each derives its randomness from
//    Rng::derive_seed(base_seed, index), never from a shared generator.
//
// Failure hardening (run_guarded / run_ordered_guarded): a multi-hour sweep
// must not lose every finished point because one point threw or wedged.
// Guarded runs catch per-task exceptions, retry failed or stuck tasks under
// a configurable durable::RetryPolicy (attempt count, per-attempt wall-clock
// deadline, exponential backoff with deterministic jitter), honor an
// optional cancellation flag for graceful shutdown, and return a RunReport
// with a terminal TaskStatus per index instead of aborting. The strict
// run()/run_ordered() entry points keep throwing, but aggregate *every*
// worker exception into one AggregateError rather than dropping all but the
// first.
//
// With jobs() == 1 (or count == 1) and no deadline, no threads are spawned
// at all and the tasks run inline, which doubles as the reference serial
// execution.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "durable/retry.hpp"

namespace pi2::runner {

/// Terminal state of one task in a guarded run.
enum class TaskStatus : unsigned char {
  kOk,           ///< work completed (possibly after a retry)
  kFailed,       ///< every attempt threw
  kTimeout,      ///< every attempt exceeded the wall-clock deadline
  kInterrupted,  ///< cancelled by the GuardOptions::cancel flag before
                 ///< completing (graceful shutdown); never retried
};

[[nodiscard]] const char* to_string(TaskStatus status);

struct TaskFailure {
  std::size_t index = 0;
  TaskStatus status = TaskStatus::kFailed;
  std::string message;  ///< what() of the last attempt, or the deadline note
};

/// Outcome of a guarded run: one terminal status per index plus the failure
/// details, ordered by index.
struct RunReport {
  std::vector<TaskStatus> status;
  std::vector<TaskFailure> failures;

  [[nodiscard]] bool all_ok() const { return failures.empty(); }
  [[nodiscard]] std::size_t ok_count() const {
    return status.size() - failures.size();
  }
};

/// Thrown by the strict entry points; carries *every* failed task, not just
/// the first. Derives from std::runtime_error so existing catch sites and
/// tests keep working; what() lists each failed index and message.
class AggregateError : public std::runtime_error {
 public:
  explicit AggregateError(std::vector<TaskFailure> failures);
  [[nodiscard]] const std::vector<TaskFailure>& failures() const {
    return failures_;
  }

 private:
  static std::string build_message(const std::vector<TaskFailure>& failures);
  std::vector<TaskFailure> failures_;
};

struct GuardOptions {
  /// Unified retry policy (attempts, per-attempt deadline, backoff).
  ///
  /// `retry.attempt_deadline` drives the watchdog: zero = no watchdog; a
  /// task whose attempt exceeds the deadline is marked stuck, its result
  /// (if the attempt eventually finishes) is discarded and a retry is
  /// dispatched if any attempts remain, on a fresh thread so a wedged
  /// worker cannot starve it. `retry.backoff_*` delays each retry with a
  /// deterministic, seed-derived jitter — never wall-clock randomness — so
  /// guarded runs stay reproducible. The default policy (2 attempts, no
  /// deadline, no backoff) matches the runner's historical "one retry".
  durable::RetryPolicy retry{};
  /// Optional cancellation flag (graceful shutdown). Once it reads true, no
  /// new task or retry attempt starts: pending tasks go terminal with
  /// TaskStatus::kInterrupted (consume still runs for them, in order), and
  /// an in-flight attempt that fails is not retried. An in-flight attempt
  /// that *succeeds* after cancellation still commits — completed work is
  /// never thrown away. Borrowed; must outlive the run.
  const std::atomic<bool>* cancel = nullptr;
};

class ParallelRunner {
 public:
  /// `jobs` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ParallelRunner(unsigned jobs = 0);

  /// Worker count this runner fans out to.
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Strict API: executes `work(i)` for every i in [0, count), then
  /// `consume(i)` in index order on the calling thread. `work` runs
  /// concurrently for distinct indices and must not touch shared mutable
  /// state; `consume` never runs concurrently with itself. Consumption
  /// stops at the first failed index; every worker still drains, and all
  /// failures are rethrown together as AggregateError.
  void run(std::size_t count, const std::function<void(std::size_t)>& work,
           const std::function<void(std::size_t)>& consume) const;

  /// Typed convenience over run(): `produce(i)` builds a Result on a
  /// worker; `consume` receives them in index order. Each buffered result
  /// is destroyed right after consumption, so peak memory is bounded by the
  /// completion skew.
  template <typename Result>
  void run_ordered(
      std::size_t count, const std::function<Result(std::size_t)>& produce,
      const std::function<void(std::size_t, Result&&)>& consume) const {
    std::vector<std::optional<Result>> results(count);
    run(
        count, [&](std::size_t i) { results[i].emplace(produce(i)); },
        [&](std::size_t i) {
          consume(i, std::move(*results[i]));
          results[i].reset();
        });
  }

  /// Hardened API: like run(), but failures degrade instead of aborting.
  /// `consume(i, status)` runs for *every* index in order once that index
  /// is terminal — the caller decides how to render failed points. Returns
  /// the full report; never throws for task failures.
  ///
  /// With a deadline set, a stuck attempt may still be executing `work`
  /// while its retry runs on another thread, so `work` must be pure per
  /// index (true for the simulation sweeps: each point only touches its own
  /// state). Stragglers are joined before this call returns; the deadline
  /// bounds when a point is *reported* stuck, not the thread's lifetime.
  RunReport run_guarded(std::size_t count,
                        const std::function<void(std::size_t)>& work,
                        const std::function<void(std::size_t, TaskStatus)>& consume,
                        const GuardOptions& options = {}) const;

  /// Typed guarded runner: `consume` receives the produced result for kOk
  /// indices and nullptr for failed/timed-out ones. Results from stale
  /// (timed-out) attempts are discarded under the runner's lock, so the
  /// consumer never observes a torn write.
  template <typename Result>
  RunReport run_ordered_guarded(
      std::size_t count, const std::function<Result(std::size_t)>& produce,
      const std::function<void(std::size_t, TaskStatus, Result*)>& consume,
      const GuardOptions& options = {}) const {
    std::vector<std::optional<Result>> results(count);
    return run_guarded_commit(
        count,
        [&results, &produce](std::size_t i) {
          Result local = produce(i);
          // The commit closure runs under the runner's state lock and only
          // if this attempt is still the live one.
          return std::function<void()>(
              [&results, i, r = std::move(local)]() mutable {
                results[i].emplace(std::move(r));
              });
        },
        [&](std::size_t i, TaskStatus status) {
          consume(i, status, results[i] ? &*results[i] : nullptr);
          results[i].reset();
        },
        options);
  }

  /// Building block for the guarded runners: `work` returns a commit
  /// closure that the runner invokes under its state lock iff the attempt
  /// is still live (not superseded by a timeout retry). Prefer
  /// run_guarded/run_ordered_guarded.
  RunReport run_guarded_commit(
      std::size_t count,
      const std::function<std::function<void()>(std::size_t)>& work,
      const std::function<void(std::size_t, TaskStatus)>& consume,
      const GuardOptions& options) const;

 private:
  unsigned jobs_;
};

}  // namespace pi2::runner
