#include "runner/parallel_runner.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace pi2::runner {

const char* to_string(TaskStatus status) {
  switch (status) {
    case TaskStatus::kOk: return "ok";
    case TaskStatus::kFailed: return "failed";
    case TaskStatus::kTimeout: return "timeout";
    case TaskStatus::kInterrupted: return "interrupted";
  }
  return "?";
}

std::string AggregateError::build_message(
    const std::vector<TaskFailure>& failures) {
  std::string msg = std::to_string(failures.size()) + " task(s) failed:";
  for (const TaskFailure& f : failures) {
    msg += " [" + std::to_string(f.index) + " " + to_string(f.status) + "] " +
           f.message + ";";
  }
  if (!msg.empty() && msg.back() == ';') msg.pop_back();
  return msg;
}

AggregateError::AggregateError(std::vector<TaskFailure> failures)
    : std::runtime_error(build_message(failures)),
      failures_(std::move(failures)) {}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) jobs_ = std::thread::hardware_concurrency();
  if (jobs_ == 0) jobs_ = 1;
}

namespace {

/// Per-task lifecycle in a guarded run. Terminal cells map 1:1 to TaskStatus.
enum class Cell : unsigned char {
  kPending,
  kRunning,
  kOk,
  kFailed,
  kTimeout,
  kInterrupted,
};

bool terminal(Cell c) { return c >= Cell::kOk; }

TaskStatus to_status(Cell c) {
  switch (c) {
    case Cell::kOk: return TaskStatus::kOk;
    case Cell::kFailed: return TaskStatus::kFailed;
    case Cell::kInterrupted: return TaskStatus::kInterrupted;
    default: return TaskStatus::kTimeout;
  }
}

std::string deadline_message(std::chrono::milliseconds deadline, int attempts) {
  return "exceeded " + std::to_string(deadline.count()) +
         " ms wall-clock deadline (attempt " + std::to_string(attempts) + ")";
}

constexpr const char* kCancelledMessage = "cancelled before completion";

/// Sleeps `delay` in small slices, returning early once `cancel` is set so
/// a backoff never delays a graceful shutdown.
void interruptible_sleep(std::chrono::milliseconds delay,
                         const std::atomic<bool>* cancel) {
  constexpr std::chrono::milliseconds kSlice{50};
  while (delay.count() > 0) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) return;
    const auto chunk = std::min(delay, kSlice);
    std::this_thread::sleep_for(chunk);
    delay -= chunk;
  }
}

}  // namespace

RunReport ParallelRunner::run_guarded_commit(
    std::size_t count,
    const std::function<std::function<void()>(std::size_t)>& work,
    const std::function<void(std::size_t, TaskStatus)>& consume,
    const GuardOptions& options) const {
  RunReport report;
  if (count == 0) return report;
  const int max_attempts = std::max(1, options.retry.max_attempts);
  const auto deadline = options.retry.attempt_deadline;
  const bool watchdog_enabled = deadline.count() > 0;
  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  const auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_acquire);
  };

  report.status.assign(count, TaskStatus::kOk);

  if (workers <= 1 && !watchdog_enabled) {
    // Reference serial execution: no threads, no buffering. Retries run
    // back-to-back (after their backoff) on the calling thread.
    for (std::size_t i = 0; i < count; ++i) {
      TaskStatus status = TaskStatus::kFailed;
      std::string message;
      for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        if (cancelled()) {
          status = TaskStatus::kInterrupted;
          if (message.empty()) message = kCancelledMessage;
          break;
        }
        if (attempt > 1) {
          interruptible_sleep(options.retry.backoff_before(i, attempt - 1),
                              options.cancel);
          if (cancelled()) {
            status = TaskStatus::kInterrupted;
            break;
          }
        }
        try {
          std::function<void()> commit = work(i);
          if (commit) commit();
          status = TaskStatus::kOk;
          break;
        } catch (const std::exception& e) {
          message = e.what();
        } catch (...) {
          message = "unknown exception";
        }
        // A failure observed after cancellation is an interruption, not a
        // retryable fault: the task most likely aborted *because* of the
        // shutdown (simulator stop flag), and shutdown must not wait for
        // pointless retries either way.
        if (cancelled()) {
          status = TaskStatus::kInterrupted;
          break;
        }
      }
      report.status[i] = status;
      if (status != TaskStatus::kOk) {
        report.failures.push_back({i, status, message});
      }
      consume(i, status);
    }
    return report;
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable work_cv;  ///< workers: retry arrived / all done
    std::condition_variable done_cv;  ///< consumer + watchdog: task terminal
    std::vector<Cell> state;
    std::vector<int> attempts;           ///< attempts started
    std::vector<std::uint32_t> generation;  ///< bumped per attempt start
    std::vector<std::chrono::steady_clock::time_point> started;
    std::vector<std::string> error;
    std::deque<std::size_t> retry_queue;
    std::size_t next = 0;
    std::size_t terminal_count = 0;
    std::size_t count = 0;
    bool cancel_drained = false;  ///< pending tasks already swept on cancel
  };
  Shared s;
  s.state.assign(count, Cell::kPending);
  s.attempts.assign(count, 0);
  s.generation.assign(count, 0);
  s.started.assign(count, {});
  s.error.assign(count, {});
  s.count = count;

  auto mark_terminal = [&s](std::size_t i, Cell cell) {
    // Caller holds s.mutex.
    s.state[i] = cell;
    ++s.terminal_count;
    s.done_cv.notify_all();
    if (s.terminal_count == s.count) s.work_cv.notify_all();
  };

  // On cancellation, every not-yet-started task (unclaimed or queued for
  // retry) goes terminal as kInterrupted. In-flight attempts are left to
  // finish; their own commit path observes the flag. Caller holds s.mutex.
  auto drain_pending_on_cancel = [&s, &mark_terminal] {
    if (s.cancel_drained) return;
    s.cancel_drained = true;
    s.retry_queue.clear();
    s.next = s.count;
    for (std::size_t i = 0; i < s.count; ++i) {
      if (s.state[i] == Cell::kPending) {  // unclaimed or queued for retry
        s.error[i] = kCancelledMessage;
        mark_terminal(i, Cell::kInterrupted);
      }
    }
    s.work_cv.notify_all();
  };

  auto worker_loop = [&]() {
    for (;;) {
      std::size_t i;
      std::uint32_t my_generation;
      std::chrono::milliseconds backoff{0};
      {
        std::unique_lock<std::mutex> lock(s.mutex);
        for (;;) {
          if (cancelled()) drain_pending_on_cancel();
          if (s.terminal_count == s.count) return;
          if (!s.retry_queue.empty() || s.next < s.count) break;
          s.work_cv.wait(lock);
        }
        if (!s.retry_queue.empty()) {
          i = s.retry_queue.front();
          s.retry_queue.pop_front();
        } else {
          i = s.next++;
        }
        s.state[i] = Cell::kRunning;
        ++s.attempts[i];
        my_generation = ++s.generation[i];
        if (s.attempts[i] > 1) {
          backoff = options.retry.backoff_before(i, s.attempts[i] - 1);
        }
        // The deadline clock starts when the attempt actually begins, after
        // any backoff sleep.
        s.started[i] = std::chrono::steady_clock::now() + backoff;
      }

      if (backoff.count() > 0) interruptible_sleep(backoff, options.cancel);

      std::function<void()> commit;
      std::string message;
      bool threw = false;
      try {
        commit = work(i);
      } catch (const std::exception& e) {
        threw = true;
        message = e.what();
      } catch (...) {
        threw = true;
        message = "unknown exception";
      }

      std::lock_guard<std::mutex> lock(s.mutex);
      if (s.generation[i] != my_generation) continue;  // stale: superseded
      if (!threw) {
        if (commit) commit();
        mark_terminal(i, Cell::kOk);
      } else {
        s.error[i] = std::move(message);
        if (cancelled()) {
          // Aborted by shutdown (or failed during it): terminal, no retry.
          mark_terminal(i, Cell::kInterrupted);
        } else if (s.attempts[i] < max_attempts) {
          s.state[i] = Cell::kPending;
          s.retry_queue.push_back(i);
          s.work_cv.notify_one();
        } else {
          mark_terminal(i, Cell::kFailed);
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker_loop);

  // The watchdog retires attempts that exceed the wall-clock deadline. A
  // retry is dispatched on a *fresh* thread because the pool worker running
  // the stuck attempt cannot pick it up.
  std::vector<std::thread> extra_threads;
  std::thread watchdog;
  if (watchdog_enabled) {
    watchdog = std::thread([&] {
      const auto tick = std::min<std::chrono::milliseconds>(
          std::chrono::milliseconds{50},
          std::max<std::chrono::milliseconds>(deadline / 4,
                                              std::chrono::milliseconds{1}));
      for (;;) {
        unsigned spawn = 0;
        {
          std::unique_lock<std::mutex> lock(s.mutex);
          if (s.done_cv.wait_for(lock, tick, [&] {
                return s.terminal_count == s.count;
              })) {
            return;
          }
          if (cancelled()) drain_pending_on_cancel();
          const auto now = std::chrono::steady_clock::now();
          for (std::size_t i = 0; i < s.count; ++i) {
            if (s.state[i] != Cell::kRunning) continue;
            if (now - s.started[i] < deadline) continue;
            ++s.generation[i];  // the in-flight attempt is now stale
            s.error[i] = deadline_message(deadline, s.attempts[i]);
            if (cancelled()) {
              // No fresh threads during shutdown; the stuck attempt is
              // abandoned as interrupted.
              mark_terminal(i, Cell::kInterrupted);
            } else if (s.attempts[i] < max_attempts) {
              s.state[i] = Cell::kPending;
              s.retry_queue.push_back(i);
              s.work_cv.notify_one();
              ++spawn;
            } else {
              mark_terminal(i, Cell::kTimeout);
            }
          }
        }
        for (unsigned k = 0; k < spawn; ++k) {
          extra_threads.emplace_back(worker_loop);
        }
      }
    });
  }

  // Consume the ordered prefix as indices become terminal; failed points
  // are reported, not fatal.
  for (std::size_t i = 0; i < count; ++i) {
    TaskStatus status;
    std::string message;
    {
      std::unique_lock<std::mutex> lock(s.mutex);
      s.done_cv.wait(lock, [&] { return terminal(s.state[i]); });
      status = to_status(s.state[i]);
      message = s.error[i];
    }
    report.status[i] = status;
    if (status != TaskStatus::kOk) {
      report.failures.push_back({i, status, std::move(message)});
    }
    consume(i, status);
  }

  for (std::thread& t : pool) t.join();
  if (watchdog.joinable()) watchdog.join();
  for (std::thread& t : extra_threads) t.join();
  return report;
}

RunReport ParallelRunner::run_guarded(
    std::size_t count, const std::function<void(std::size_t)>& work,
    const std::function<void(std::size_t, TaskStatus)>& consume,
    const GuardOptions& options) const {
  return run_guarded_commit(
      count,
      [&work](std::size_t i) {
        work(i);
        return std::function<void()>{};
      },
      consume, options);
}

void ParallelRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& work,
                         const std::function<void(std::size_t)>& consume) const {
  bool halted = false;
  GuardOptions strict;
  strict.retry.max_attempts = 1;
  RunReport report = run_guarded(
      count, work,
      [&](std::size_t i, TaskStatus status) {
        if (halted) return;
        if (status == TaskStatus::kOk) {
          consume(i);
        } else {
          halted = true;  // strict semantics: consumption stops here
        }
      },
      strict);
  if (!report.all_ok()) throw AggregateError(std::move(report.failures));
}

}  // namespace pi2::runner
