#include "runner/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace pi2::runner {

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) jobs_ = std::thread::hardware_concurrency();
  if (jobs_ == 0) jobs_ = 1;
}

void ParallelRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& work,
                         const std::function<void(std::size_t)>& consume) const {
  if (count == 0) return;
  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  if (workers <= 1) {
    // Reference serial execution: no threads, no buffering.
    for (std::size_t i = 0; i < count; ++i) {
      work(i);
      consume(i);
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  // 0 = pending, 1 = done, 2 = failed. Guarded by `mutex`.
  std::vector<unsigned char> state(count, 0);
  std::exception_ptr error;

  auto worker_loop = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      unsigned char outcome = 1;
      try {
        work(i);
      } catch (...) {
        outcome = 2;
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        state[i] = outcome;
      }
      done_cv.notify_one();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker_loop);

  // Consume the ordered prefix as it completes; stop at the first failure.
  for (std::size_t i = 0; i < count; ++i) {
    unsigned char outcome;
    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return state[i] != 0; });
      outcome = state[i];
    }
    if (outcome != 1) break;
    consume(i);
  }

  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace pi2::runner
