// DumbbellConfig -> TopologyConfig: the dumbbell is the trivial two-node
// instance of the topology engine. run_dumbbell() is exactly
// to_run_result(run_topology(from_dumbbell(config))) — the engine preserves
// the legacy wiring order, so the composition is digest-identical to the
// pre-topology harness (tested in tests/topology and fuzzed in check_fuzz).
#pragma once

#include "scenario/dumbbell.hpp"
#include "topology/topology.hpp"

namespace pi2::topology {

/// Maps a dumbbell config onto nodes {"snd", "rcv"} joined by one
/// "bottleneck" link carrying every flow spec. Borrowed pointers (trace,
/// recorder, registry, stop) carry over unchanged.
[[nodiscard]] TopologyConfig from_dumbbell(const scenario::DumbbellConfig& config);

}  // namespace pi2::topology
