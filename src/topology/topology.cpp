#include "topology/topology.hpp"

#include <cmath>
#include <unordered_set>
#include <utility>

#include "scenario/wiring.hpp"
#include "telemetry/recorder.hpp"

namespace pi2::topology {

using pi2::sim::to_seconds;
using scenario::bad_field;

namespace {

bool known_node(const std::vector<std::string>& nodes,
                const std::string& name) {
  for (const std::string& n : nodes) {
    if (n == name) return true;
  }
  return false;
}

/// Shared path constraints for every route kind: at least two nodes, every
/// node configured, every consecutive pair a configured link, no revisits
/// (a looping path would re-offer packets to a link they already crossed).
std::string validate_path(const TopologyConfig& config,
                          const std::vector<std::string>& path,
                          const std::string& where) {
  if (path.size() < 2) {
    return bad_field(where + "path", "name at least two nodes",
                     static_cast<double>(path.size()));
  }
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!known_node(config.nodes, path[i])) {
      return where + "path[" + std::to_string(i) +
             "] must name a configured node (got \"" + path[i] + "\")";
    }
  }
  std::unordered_set<std::string> seen;
  for (const std::string& node : path) {
    if (!seen.insert(node).second) {
      return where + "path must not revisit a node (got \"" + node + "\")";
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (config.link_between(path[i], path[i + 1]) < 0) {
      return where + "path must follow configured links (no link \"" +
             path[i] + "->" + path[i + 1] + "\")";
    }
  }
  return "";
}

}  // namespace

int TopologyConfig::link_between(const std::string& a,
                                 const std::string& b) const {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i].from == a && links[i].to == b) return static_cast<int>(i);
  }
  return -1;
}

std::string TopologyConfig::validate() const {
  if (nodes.empty()) {
    return bad_field("nodes", "name at least one node", 0.0);
  }
  {
    std::unordered_set<std::string> seen;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].empty()) {
        return "nodes[" + std::to_string(i) + "] must be a non-empty name";
      }
      if (!seen.insert(nodes[i]).second) {
        return "nodes[" + std::to_string(i) + "] must be unique (got \"" +
               nodes[i] + "\")";
      }
    }
  }
  if (links.empty()) {
    return bad_field("links", "contain at least one link", 0.0);
  }
  {
    std::unordered_set<std::string> names;
    std::unordered_set<std::string> pairs;
    for (std::size_t i = 0; i < links.size(); ++i) {
      const LinkSpec& link = links[i];
      const std::string where = "links[" + std::to_string(i) + "].";
      if (!known_node(nodes, link.from)) {
        return where + "from must name a configured node (got \"" + link.from +
               "\")";
      }
      if (!known_node(nodes, link.to)) {
        return where + "to must name a configured node (got \"" + link.to +
               "\")";
      }
      if (link.from == link.to) {
        return where + "to must differ from .from (got \"" + link.to + "\")";
      }
      if (!pairs.insert(link.from + "->" + link.to).second) {
        return where + "from/to must be a unique directed pair (got \"" +
               link.from + "->" + link.to + "\")";
      }
      if (!link.name.empty() && !names.insert(link.name).second) {
        return where + "name must be unique (got \"" + link.name + "\")";
      }
      if (!(link.rate_bps > 0.0) || !std::isfinite(link.rate_bps)) {
        return bad_field(where + "rate_bps", "be finite and > 0",
                         link.rate_bps);
      }
      if (link.buffer_packets <= 0) {
        return bad_field(where + "buffer_packets", "be > 0",
                         static_cast<double>(link.buffer_packets));
      }
      if (link.delay < pi2::sim::Duration{0}) {
        return bad_field(where + "delay", "be >= 0 seconds",
                         to_seconds(link.delay));
      }
      if (std::string e = scenario::validate_aqm(link.aqm, where + "aqm.");
          !e.empty()) {
        return e;
      }
      for (std::size_t j = 0; j < link.rate_changes.size(); ++j) {
        if (std::string e = scenario::validate_rate_change(
                link.rate_changes[j],
                where + "rate_changes[" + std::to_string(j) + "].");
            !e.empty()) {
          return e;
        }
      }
      if (std::string e = link.faults.validate(duration); !e.empty()) {
        return where + e;
      }
    }
  }
  if (duration <= pi2::sim::kTimeZero) {
    return bad_field("duration", "be > 0 seconds", to_seconds(duration));
  }
  if (stats_start < pi2::sim::kTimeZero || stats_start > duration) {
    return bad_field("stats_start", "lie within [0, duration]",
                     to_seconds(stats_start));
  }
  if (sample_interval <= pi2::sim::Duration{0}) {
    return bad_field("sample_interval", "be > 0 seconds",
                     to_seconds(sample_interval));
  }
  if (fluid_dt <= pi2::sim::Duration{0}) {
    return bad_field("fluid_dt", "be > 0 seconds", to_seconds(fluid_dt));
  }
  if (ack_quantum < pi2::sim::Duration{0}) {
    return bad_field("ack_quantum", "be >= 0 seconds", to_seconds(ack_quantum));
  }
  if (links.size() > 1 && ack_quantum > pi2::sim::Duration{0}) {
    // Batched ACK-clock pipes are bucketed by half-RTT across *all* flows,
    // so a per-link RTT step cannot move one flow's bucket without moving
    // every flow that shares it; the exact per-flow path needs quantum 0.
    for (const LinkSpec& link : links) {
      for (const faults::FaultEvent& event : link.faults.events) {
        if (event.kind == faults::FaultKind::kRttStep) {
          return bad_field(
              "ack_quantum",
              "be 0 when a multi-link topology schedules rtt-step faults",
              to_seconds(ack_quantum));
        }
      }
    }
  }
  for (std::size_t i = 0; i < tcp_flows.size(); ++i) {
    const std::string where = "tcp_flows[" + std::to_string(i) + "].";
    if (std::string e = validate_path(*this, tcp_flows[i].path, where);
        !e.empty()) {
      return e;
    }
    if (std::string e =
            scenario::validate_tcp_spec(tcp_flows[i].spec, where + "spec.");
        !e.empty()) {
      return e;
    }
  }
  for (std::size_t i = 0; i < udp_flows.size(); ++i) {
    const std::string where = "udp_flows[" + std::to_string(i) + "].";
    if (std::string e = validate_path(*this, udp_flows[i].path, where);
        !e.empty()) {
      return e;
    }
    if (std::string e =
            scenario::validate_udp_spec(udp_flows[i].spec, where + "spec.");
        !e.empty()) {
      return e;
    }
  }
  for (std::size_t i = 0; i < fluid_flows.size(); ++i) {
    const std::string where = "fluid_flows[" + std::to_string(i) + "].";
    if (std::string e = validate_path(*this, fluid_flows[i].path, where);
        !e.empty()) {
      return e;
    }
    if (fluid_flows[i].path.size() != 2) {
      return bad_field(where + "path", "cross exactly one link",
                       static_cast<double>(fluid_flows[i].path.size() - 1));
    }
    if (std::string e = scenario::validate_fluid_spec(fluid_flows[i].spec,
                                                      where + "spec.");
        !e.empty()) {
      return e;
    }
  }
  if (recorder != nullptr &&
      recorder->sampler().interval() <= pi2::sim::Duration{0}) {
    return bad_field("recorder.interval", "be > 0 seconds",
                     to_seconds(recorder->sampler().interval()));
  }
  return "";
}

double LinkResult::observed_signal_rate() const {
  const auto arrivals = window_counters.enqueued + window_counters.aqm_dropped;
  if (arrivals == 0) return 0.0;
  return static_cast<double>(window_counters.aqm_dropped +
                             window_counters.marked) /
         static_cast<double>(arrivals);
}

double TopologyResult::route_goodput_mbps(std::int32_t route) const {
  double sum = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flow_route[i] == route && !flows[i].is_fluid) {
      sum += flows[i].goodput_mbps;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

scenario::RunResult to_run_result(TopologyResult result) {
  scenario::RunResult out;
  for (const LinkResult& link : result.links) {
    scenario::LinkSlice slice;
    slice.name = link.name;
    slice.mean_qdelay_ms = link.mean_qdelay_ms;
    slice.p99_qdelay_ms = link.p99_qdelay_ms;
    slice.utilization = link.utilization;
    slice.counters = link.counters;
    slice.window_counters = link.window_counters;
    slice.fault_counters = link.fault_counters;
    slice.guard_events = link.guard_events;
    slice.final_backlog_packets = link.final_backlog_packets;
    out.links.push_back(std::move(slice));
  }
  LinkResult& primary = result.links.front();
  out.qdelay_ms_series = std::move(primary.qdelay_ms_series);
  out.qdelay_ms_packets = std::move(primary.qdelay_ms_packets);
  out.mean_qdelay_ms = primary.mean_qdelay_ms;
  out.p99_qdelay_ms = primary.p99_qdelay_ms;
  out.classic_prob_series = std::move(primary.classic_prob_series);
  out.classic_prob_samples = std::move(primary.classic_prob_samples);
  out.scalable_prob_samples = std::move(primary.scalable_prob_samples);
  out.total_throughput_series = std::move(primary.total_throughput_series);
  out.utilization_series = std::move(primary.utilization_series);
  out.utilization = primary.utilization;
  out.counters = primary.counters;
  out.window_counters = primary.window_counters;
  out.band_l = primary.band_l;
  out.band_c = primary.band_c;
  out.window_band_l = primary.window_band_l;
  out.window_band_c = primary.window_band_c;
  out.fluid = primary.fluid;
  out.fault_counters = primary.fault_counters;
  out.guard_events = primary.guard_events;
  out.flows = std::move(result.flows);
  out.events_executed = result.events_executed;
  out.clamped_events = result.clamped_events;
  out.violations = std::move(result.violations);
  out.invariant_checks = result.invariant_checks;
  out.resilience = std::move(result.resilience);
  return out;
}

}  // namespace pi2::topology
