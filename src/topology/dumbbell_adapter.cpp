#include "topology/dumbbell_adapter.hpp"

namespace pi2::topology {

TopologyConfig from_dumbbell(const scenario::DumbbellConfig& config) {
  TopologyConfig topo;
  topo.nodes = {"snd", "rcv"};
  LinkSpec link;
  link.name = "bottleneck";
  link.from = "snd";
  link.to = "rcv";
  link.rate_bps = config.link_rate_bps;
  link.buffer_packets = config.buffer_packets;
  link.aqm = config.aqm;
  link.rate_changes = config.rate_changes;
  link.faults = config.faults;
  topo.links.push_back(std::move(link));

  const std::vector<std::string> path = {"snd", "rcv"};
  for (const scenario::TcpFlowSpec& spec : config.tcp_flows) {
    topo.tcp_flows.push_back({spec, path});
  }
  for (const scenario::UdpFlowSpec& spec : config.udp_flows) {
    topo.udp_flows.push_back({spec, path});
  }
  for (const scenario::FluidFlowSpec& spec : config.fluid_flows) {
    topo.fluid_flows.push_back({spec, path});
  }

  topo.fluid_dt = config.fluid_dt;
  topo.ack_quantum = config.ack_quantum;
  topo.duration = config.duration;
  topo.stats_start = config.stats_start;
  topo.seed = config.seed;
  topo.sample_interval = config.sample_interval;
  topo.check_invariants = config.check_invariants;
  topo.trace = config.trace;
  topo.recorder = config.recorder;
  topo.registry = config.registry;
  topo.stop = config.stop;
  return topo;
}

}  // namespace pi2::topology
