// run_topology(): wires a TopologyConfig graph into the Simulator.
//
// The body is the generalization of the legacy run_dumbbell() wiring with a
// per-link loop around every stage. The stage order — probes, sinks, flows,
// fluid tiers, rate schedules, fault injectors, monitors, telemetry,
// sampler, stats snapshot — is load-bearing: the scheduler breaks same-time
// ties FIFO by scheduling call order, so keeping the single-link sequence
// identical to the legacy harness is what makes run_dumbbell() (now a thin
// adapter over this engine) digest-identical to its pre-topology self.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "control/fluid_flow.hpp"
#include "durable/status.hpp"
#include "faults/fault_presets.hpp"
#include "net/batch_pipe.hpp"
#include "net/packet_pool.hpp"
#include "net/trace.hpp"
#include "scenario/wiring.hpp"
#include "sim/simulator.hpp"
#include "tcp/endpoint.hpp"
#include "tcp/flow_table.hpp"
#include "tcp/udp_sender.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/recorder.hpp"
#include "topology/topology.hpp"

namespace pi2::topology {

using pi2::sim::Duration;
using pi2::sim::from_seconds;
using pi2::sim::Time;
using pi2::sim::to_millis;
using pi2::sim::to_seconds;
using scenario::FluidFlowSpec;
using scenario::RateChange;
using scenario::TcpFlowSpec;
using scenario::UdpFlowSpec;

namespace {

/// Everything one link owns at runtime. Deque-hosted so closures can hold
/// references that stay valid as links are set up.
struct LinkRuntime {
  std::unique_ptr<net::BottleneckLink> link;
  stats::UtilizationMeter util_meter{std::chrono::seconds{1}};
  stats::RateMeter total_meter{std::chrono::seconds{1}};
  double busy_at_stats_start = 0.0;
  // Bytes the link served for packets since the last fluid tick; the fluid
  // tier is work-conserving from the residual capacity.
  double pkt_bytes_this_tick = 0.0;
  // Wall-clock seconds the link spent serializing packets (at the residual
  // rate when fluid is active) — the fluid tier's utilization credit is
  // computed against this measured total.
  double packet_busy_s = 0.0;

  std::unique_ptr<control::FluidFlowEnsemble> fluid;
  double fluid_backlog_bytes = 0.0;
  double fluid_arrival_bytes = 0.0;
  double fluid_served_bytes = 0.0;
  double fluid_dropped_bytes = 0.0;
  std::vector<double> spec_arrival_bytes;
  std::vector<double> spec_arrival_at_stats_start;
  /// Global fluid-route index behind each local ensemble spec.
  std::vector<std::size_t> fluid_route_of_spec;

  std::unique_ptr<faults::FaultInjector> injector;
  std::unique_ptr<faults::InvariantMonitor> monitor;

  bool dualq = false;
  net::BottleneckLink::Counters counters_at_stats_start{};
  net::BottleneckLink::BandCounters band_l_at_stats_start{};
  net::BottleneckLink::BandCounters band_c_at_stats_start{};

  LinkResult out;
};

}  // namespace

TopologyResult run_topology(const TopologyConfig& config) {
  if (std::string error = config.validate(); !error.empty()) {
    throw std::invalid_argument("TopologyConfig: " + error);
  }
  pi2::sim::Simulator sim{config.seed};
  sim.set_stop_flag(config.stop);

  const std::size_t n_links = config.links.size();
  const bool single_link = n_links == 1;

  std::deque<LinkRuntime> links;
  for (const LinkSpec& spec : config.links) {
    LinkRuntime& rt = links.emplace_back();
    net::BottleneckLink::Config link_config;
    link_config.rate_bps = spec.rate_bps;
    link_config.buffer_packets = spec.buffer_packets;
    rt.link = std::make_unique<net::BottleneckLink>(sim, link_config,
                                                    spec.aqm.make());
    rt.out.name = spec.display_name();
  }

  TopologyResult result;
  tcp::FlowTable flows;

  // Routes resolved to link-index sequences. Global route numbering: tcp
  // routes first, then udp, then fluid; `route_of_flow` maps a flow id to
  // its route so the per-packet hop lookup is two dense array reads.
  std::vector<std::vector<std::uint32_t>> route_links;
  const auto resolve_path = [&config](const std::vector<std::string>& path) {
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      out.push_back(static_cast<std::uint32_t>(
          config.link_between(path[i], path[i + 1])));
    }
    return out;
  };
  for (const TcpRoute& route : config.tcp_flows) {
    route_links.push_back(resolve_path(route.path));
  }
  for (const UdpRoute& route : config.udp_flows) {
    route_links.push_back(resolve_path(route.path));
  }
  for (const FluidRoute& route : config.fluid_flows) {
    route_links.push_back(resolve_path(route.path));
  }
  std::vector<std::uint32_t> route_of_flow;

  // --- Wire each bottleneck's probes. --------------------------------------
  if (config.trace != nullptr) config.trace->attach(*links[0].link);
  for (LinkRuntime& rt : links) {
    rt.link->set_busy_probe([&rt](Time from, Time to) {
      rt.util_meter.add_busy(from, to);
      rt.packet_busy_s += to_seconds(to - from);
    });
    rt.link->set_departure_probe(
        [&rt, &sim, &config](const net::Packet& packet, Duration sojourn) {
          if (sim.now() >= config.stats_start) {
            rt.out.qdelay_ms_packets.add(to_millis(sojourn));
          }
          (void)packet;
        });
  }

  // Delivery of a propagated packet to its endpoint (either side of the
  // propagation hop schedules this).
  auto deliver_data = [&flows, &sim](const net::Packet& packet) {
    if (flows.kind(packet.flow) == tcp::FlowTable::Kind::kUdp) {
      flows.goodput(packet.flow).add_bytes(sim.now(), packet.size);
    } else {
      flows.receiver(packet.flow)->on_data(packet);
    }
  };
  auto deliver_ack = [&flows](const net::Packet& ack) {
    flows.sender(ack.flow)->on_ack(ack);
  };

  // ACK-clock batching (config.ack_quantum > 0): the final propagation hop
  // and the ACK return run through BatchDelayPipes bucketed by half-RTT, so
  // same-quantum packets share one scheduler event and one pooled slab.
  // With quantum == 0 every packet keeps its own exactly-timed event.
  const bool batched = config.ack_quantum > Duration{0};
  net::PacketSlabPool slab_pool;
  std::deque<net::BatchDelayPipe> data_pipes;  // deque: stable refs as buckets appear
  std::deque<net::BatchDelayPipe> ack_pipes;
  std::unordered_map<std::int64_t, std::size_t> bucket_by_half_rtt;
  std::vector<std::size_t> bucket_of_flow;
  auto bucket_for = [&](Duration half_rtt) {
    const auto [it, inserted] =
        bucket_by_half_rtt.try_emplace(half_rtt.count(), data_pipes.size());
    if (inserted) {
      data_pipes.emplace_back(sim, half_rtt, config.ack_quantum, slab_pool);
      data_pipes.back().set_sink(deliver_data);
      ack_pipes.emplace_back(sim, half_rtt, config.ack_quantum, slab_pool);
      ack_pipes.back().set_sink(deliver_ack);
    }
    return it->second;
  };

  // Forward path. After an intermediate hop, the packet propagates the
  // link's `delay` to the next queue on its route; after the *final* hop it
  // propagates base_rtt/2 to the flow's receiver, and ACKs return after
  // another base_rtt/2 (the dumbbell semantic — a one-link route degenerates
  // to exactly the legacy path).
  for (std::uint32_t li = 0; li < n_links; ++li) {
    LinkRuntime& rt = links[li];
    rt.link->set_sink([&rt, &sim, &flows, &links, &config, &route_links,
                       &route_of_flow, &deliver_data, &data_pipes,
                       &bucket_of_flow, batched, li](net::Packet packet) {
      if (!flows.contains(packet.flow)) return;
      rt.pkt_bytes_this_tick += packet.size;
      rt.total_meter.add_bytes(sim.now(), packet.size);
      const std::vector<std::uint32_t>& route =
          route_links[route_of_flow[static_cast<std::size_t>(packet.flow)]];
      std::size_t hop = 0;
      while (hop < route.size() && route[hop] != li) ++hop;
      if (hop + 1 < route.size()) {
        net::BottleneckLink& next = *links[route[hop + 1]].link;
        sim.after(config.links[li].delay, [&next, packet]() mutable {
          next.send(std::move(packet));
        });
        return;
      }
      if (batched) {
        data_pipes[bucket_of_flow[static_cast<std::size_t>(packet.flow)]].send(
            std::move(packet));
        return;
      }
      sim.after(flows.half_rtt(packet.flow),
                [&deliver_data, packet] { deliver_data(packet); });
    });
  }

  // --- Create flows. ------------------------------------------------------
  auto add_tcp_flow = [&](const TcpFlowSpec& spec, std::uint32_t route,
                          int index_in_spec) {
    tcp::TcpSender::Config sc;
    sc.flow = static_cast<std::int32_t>(flows.size());
    sc.max_cwnd = spec.max_cwnd;
    auto sender = std::make_unique<tcp::TcpSender>(
        sim, sc, tcp::make_congestion_control(spec.cc));
    auto receiver = std::make_unique<tcp::TcpReceiver>(sim, sc.flow);
    const std::int32_t flow_id =
        flows.add_tcp(spec.cc, spec.base_rtt, std::move(sender),
                      std::move(receiver));
    bucket_of_flow.push_back(batched ? bucket_for(spec.base_rtt / 2) : 0);
    route_of_flow.push_back(route);

    net::BottleneckLink& first = *links[route_links[route][0]].link;
    flows.sender(flow_id)->set_output(
        [&first](net::Packet p) { first.send(std::move(p)); });
    flows.receiver(flow_id)->set_delivery_probe(
        [&flows, flow_id, &sim](const net::Packet& p) {
          flows.goodput(flow_id).add_bytes(sim.now(), p.size);
        });
    if (batched) {
      flows.receiver(flow_id)->set_ack_path(
          [&ack_pipes, &bucket_of_flow, flow_id](net::Packet ack) {
            ack_pipes[bucket_of_flow[static_cast<std::size_t>(flow_id)]].send(
                std::move(ack));
          });
    } else {
      flows.receiver(flow_id)->set_ack_path(
          [&flows, flow_id, &sim](net::Packet ack) {
            sim.after(flows.half_rtt(flow_id), [&flows, flow_id, ack] {
              flows.sender(flow_id)->on_ack(ack);
            });
          });
    }

    const Time start = spec.start + spec.stagger * index_in_spec;
    sim.at(start, [&flows, flow_id] { flows.sender(flow_id)->start(); });
    if (spec.stop < pi2::sim::kTimeInfinity) {
      sim.at(spec.stop, [&flows, flow_id] { flows.sender(flow_id)->stop(); });
    }
  };

  auto add_udp_flow = [&](const UdpFlowSpec& spec, std::uint32_t route) {
    tcp::UdpSender::Config uc;
    uc.flow = static_cast<std::int32_t>(flows.size());
    uc.rate_bps = spec.rate_bps;
    uc.packet_bytes = spec.packet_bytes;
    uc.ecn = spec.ecn;
    auto udp = std::make_unique<tcp::UdpSender>(sim, uc);
    const std::int32_t flow_id = flows.add_udp(spec.base_rtt, std::move(udp));
    bucket_of_flow.push_back(batched ? bucket_for(spec.base_rtt / 2) : 0);
    route_of_flow.push_back(route);
    net::BottleneckLink& first = *links[route_links[route][0]].link;
    flows.udp(flow_id)->set_output(
        [&first](net::Packet p) { first.send(std::move(p)); });
    sim.at(spec.start, [&flows, flow_id] { flows.udp(flow_id)->start(); });
    if (spec.stop < pi2::sim::kTimeInfinity) {
      sim.at(spec.stop, [&flows, flow_id] { flows.udp(flow_id)->stop(); });
    }
  };

  for (std::size_t i = 0; i < config.tcp_flows.size(); ++i) {
    const TcpFlowSpec& spec = config.tcp_flows[i].spec;
    for (int k = 0; k < spec.count; ++k) {
      add_tcp_flow(spec, static_cast<std::uint32_t>(i), k);
      result.flow_route.push_back(static_cast<std::int32_t>(i));
    }
  }
  for (std::size_t i = 0; i < config.udp_flows.size(); ++i) {
    const std::uint32_t route =
        static_cast<std::uint32_t>(config.tcp_flows.size() + i);
    for (int k = 0; k < config.udp_flows[i].spec.count; ++k) {
      add_udp_flow(config.udp_flows[i].spec, route);
      result.flow_route.push_back(static_cast<std::int32_t>(route));
    }
  }

  // --- Fluid tiers. --------------------------------------------------------
  // One ensemble per link that carries fluid routes, integrating against
  // that link's AQM signal; its tick also runs the fluid/packet capacity
  // split (see the legacy harness for the accounting rationale — the code
  // is kept identical per link).
  for (std::uint32_t li = 0; li < n_links; ++li) {
    LinkRuntime& rt = links[li];
    for (std::size_t fi = 0; fi < config.fluid_flows.size(); ++fi) {
      const std::uint32_t route = static_cast<std::uint32_t>(
          config.tcp_flows.size() + config.udp_flows.size() + fi);
      if (route_links[route][0] == li) rt.fluid_route_of_spec.push_back(fi);
    }
    if (rt.fluid_route_of_spec.empty()) continue;
    rt.spec_arrival_bytes.assign(rt.fluid_route_of_spec.size(), 0.0);
    rt.spec_arrival_at_stats_start.assign(rt.fluid_route_of_spec.size(), 0.0);

    control::FluidFlowEnsemble::Config fluid_config;
    fluid_config.dt_s = to_seconds(config.fluid_dt);
    rt.fluid = std::make_unique<control::FluidFlowEnsemble>(sim, fluid_config);
    for (const std::size_t fi : rt.fluid_route_of_spec) {
      const FluidFlowSpec& spec = config.fluid_flows[fi].spec;
      control::FluidFlowSpec fs;
      fs.signal = scenario::fluid_signal_for(spec.cc);
      fs.count = spec.count;
      fs.base_rtt_s = to_seconds(spec.base_rtt);
      fs.mss_bytes = spec.mss_bytes;
      fs.start_s = to_seconds(spec.start);
      fs.stop_s = to_seconds(spec.stop);
      rt.fluid->add_spec(fs);
    }
    control::FluidFlowEnsemble::Sources sources;
    net::BottleneckLink& link = *rt.link;
    sources.classic_probability = [&link] {
      return link.qdisc().classic_probability();
    };
    sources.scalable_probability = [&link] {
      return link.qdisc().scalable_probability();
    };
    sources.queue_delay_s = [&link] { return to_seconds(link.queue_delay()); };
    rt.fluid->set_sources(std::move(sources));
    const double dt_s = to_seconds(config.fluid_dt);
    const std::int64_t buffer_packets = config.links[li].buffer_packets;
    // Utilization bookkeeping across ticks: `target` is the cumulative
    // full-rate-equivalent busy time of everything the link carried
    // ((pkt + served)·8/C per tick); `credited` is what the fluid tier has
    // already added on top of the measured packet serialization time.
    rt.fluid->set_tick_sink([&rt, &sim, dt_s, buffer_packets,
                             target_busy_s = 0.0, credited_busy_s = 0.0,
                             last_packet_busy_s =
                                 0.0](double aggregate_bps) mutable {
      net::BottleneckLink& link = *rt.link;
      const double rate_bps = link.link_rate_bps();
      const double cap_bytes = rate_bps * dt_s / 8.0;
      const double pkt_bytes = std::exchange(rt.pkt_bytes_this_tick, 0.0);
      const double avail = std::max(cap_bytes - pkt_bytes, 0.0);
      const double demand = aggregate_bps * dt_s / 8.0;
      rt.fluid_backlog_bytes += demand;
      rt.fluid_arrival_bytes += demand;
      for (std::size_t i = 0; i < rt.spec_arrival_bytes.size(); ++i) {
        rt.spec_arrival_bytes[i] += rt.fluid->spec_rate_bps(i) * dt_s / 8.0;
      }
      const double served = std::min(rt.fluid_backlog_bytes, avail);
      rt.fluid_backlog_bytes -= served;
      rt.fluid_served_bytes += served;
      // Tail-drop analog: the fluid tier shares the link's buffer. Whatever
      // backlog the buffer cannot hold beyond the packets already queued is
      // discarded, exactly like the buffer-limit drop on the packet path.
      const double buffer_bytes =
          static_cast<double>(buffer_packets) * net::kDefaultMss;
      const double fluid_room = std::max(
          buffer_bytes - static_cast<double>(link.packet_backlog_bytes()), 0.0);
      if (rt.fluid_backlog_bytes > fluid_room) {
        rt.fluid_dropped_bytes += rt.fluid_backlog_bytes - fluid_room;
        rt.fluid_backlog_bytes = fluid_room;
      }
      link.set_fluid_state(std::llround(rt.fluid_backlog_bytes),
                           served * 8.0 / dt_s);
      // Credit the carried fluid bytes to the run's utilization and
      // throughput accounting; the comparison is cumulative because a
      // single packet's serialization spans many ticks at a small residual
      // rate while its bytes land in one.
      target_busy_s += (pkt_bytes + served) * 8.0 / rate_bps;
      // Never credit more than the tick's idle time.
      const double busy_in_tick = rt.packet_busy_s - last_packet_busy_s;
      last_packet_busy_s = rt.packet_busy_s;
      const double credit =
          std::clamp(target_busy_s - (rt.packet_busy_s + credited_busy_s), 0.0,
                     std::max(dt_s - busy_in_tick, 0.0));
      if (credit > 0.0) {
        rt.util_meter.add_busy(sim.now() - from_seconds(credit), sim.now());
        credited_busy_s += credit;
      }
      if (served > 0.0) {
        rt.total_meter.add_bytes(
            sim.now(), static_cast<std::int64_t>(std::llround(served)));
      }
    });
    rt.fluid->start();
  }

  // --- Schedules. ----------------------------------------------------------
  for (std::uint32_t li = 0; li < n_links; ++li) {
    net::BottleneckLink& link = *links[li].link;
    for (const RateChange& change : config.links[li].rate_changes) {
      sim.at(change.at,
             [&link, change] { link.set_rate_bps(change.rate_bps); });
    }
  }

  // Scripted impairments: one injector per link, each replaying its own
  // schedule from its own derived RNG stream (links[0] keeps the config
  // seed so single-link runs replay exactly as the legacy harness did).
  for (std::uint32_t li = 0; li < n_links; ++li) {
    LinkRuntime& rt = links[li];
    const std::uint64_t injector_seed =
        li == 0 ? config.seed
                : pi2::sim::Rng::derive_seed(config.seed, 0x1170ull + li);
    rt.injector = std::make_unique<faults::FaultInjector>(
        sim, config.links[li].faults, injector_seed);
    if (single_link) {
      rt.injector->set_rtt_setter(
          [&flows, &data_pipes, &ack_pipes](Duration rtt) {
            flows.set_all_base_rtt(rtt);
            // RTT steps apply to every flow, so every half-RTT bucket moves.
            for (net::BatchDelayPipe& pipe : data_pipes) pipe.set_delay(rtt / 2);
            for (net::BatchDelayPipe& pipe : ack_pipes) pipe.set_delay(rtt / 2);
          });
    } else {
      // Per-link RTT step: applies to the flows routed across this link.
      // validate() rejects the batched-pipe combination, so the per-flow
      // half-RTT is the only delay state to move.
      rt.injector->set_rtt_setter(
          [&flows, &route_links, &route_of_flow, li](Duration rtt) {
            for (std::int32_t f = 0;
                 f < static_cast<std::int32_t>(flows.size()); ++f) {
              const std::vector<std::uint32_t>& route =
                  route_links[route_of_flow[static_cast<std::size_t>(f)]];
              if (std::find(route.begin(), route.end(), li) != route.end()) {
                flows.set_base_rtt(f, rtt);
              }
            }
          });
    }
    rt.injector->attach(*rt.link);
  }

  // Runtime invariant checking per link, sampled alongside the stats probes.
  for (LinkRuntime& rt : links) {
    faults::InvariantMonitor::Config monitor_config;
    monitor_config.interval = config.sample_interval;
    rt.monitor = std::make_unique<faults::InvariantMonitor>(sim, *rt.link,
                                                            monitor_config);
    if (config.check_invariants) rt.monitor->start();
  }

  // --- Telemetry. ----------------------------------------------------------
  // links[0] owns the legacy unprefixed names so single-link snapshots are
  // byte-identical to the dumbbell harness; additional links get
  // "topo.<link>."-prefixed gauges.
  telemetry::MetricsRegistry* probe_registry =
      config.recorder != nullptr ? &config.recorder->registry()
                                 : config.registry;
  if (probe_registry != nullptr) {
    telemetry::MetricsRegistry& reg = *probe_registry;
    telemetry::attach_link_probes(reg, *links[0].link);
    telemetry::attach_aqm_probes(reg, links[0].link->qdisc());
    telemetry::attach_simulator_probes(reg, sim);
    reg.gauge("tcp.retransmits", [&flows] {
      return static_cast<double>(flows.total_retransmits());
    });
    reg.gauge("tcp.timeouts", [&flows] {
      return static_cast<double>(flows.total_timeouts());
    });
    if (links[0].fluid) {
      LinkRuntime& rt0 = links[0];
      reg.gauge("fluid.backlog_bytes",
                [&rt0] { return rt0.fluid_backlog_bytes; });
      reg.gauge("fluid.aggregate_bps",
                [&f = *rt0.fluid] { return f.aggregate_rate_bps(); });
      reg.gauge("fluid.active_flows",
                [&f = *rt0.fluid] { return f.active_flow_count(); });
    }
    reg.gauge("faults.applied", [&injector = *links[0].injector] {
      const faults::FaultInjector::Counters& fc = injector.counters();
      return static_cast<double>(fc.dropped + fc.bleached + fc.reordered +
                                 fc.rate_changes + fc.rtt_changes);
    });
    if (links[0].link->band_count() > 1) {
      net::BottleneckLink& link = *links[0].link;
      reg.gauge("dualq.l_delay_ms",
                [&link] { return to_millis(link.band_head_sojourn(0)); });
      reg.gauge("dualq.c_delay_ms",
                [&link] { return to_millis(link.band_head_sojourn(1)); });
      reg.gauge("dualq.l_marked", [&link] {
        return static_cast<double>(link.band_counters(0).marked);
      });
      reg.gauge("dualq.l_dropped", [&link] {
        return static_cast<double>(link.band_counters(0).aqm_dropped);
      });
      reg.gauge("dualq.c_marked", [&link] {
        return static_cast<double>(link.band_counters(1).marked);
      });
      reg.gauge("dualq.c_dropped", [&link] {
        return static_cast<double>(link.band_counters(1).aqm_dropped);
      });
      reg.gauge("dualq.coupling_k",
                [&link] { return link.qdisc().coupling_factor(); });
    }
    if (!single_link) {
      for (std::size_t li = 1; li < n_links; ++li) {
        LinkRuntime& rt = links[li];
        const std::string prefix = "topo." + rt.out.name + ".";
        net::BottleneckLink& link = *rt.link;
        reg.gauge(prefix + "qdelay_ms",
                  [&link] { return to_millis(link.queue_delay()); });
        reg.gauge(prefix + "backlog_packets", [&link] {
          return static_cast<double>(link.backlog_packets());
        });
        reg.gauge(prefix + "forwarded", [&link] {
          return static_cast<double>(link.counters().forwarded);
        });
        reg.gauge(prefix + "marked", [&link] {
          return static_cast<double>(link.counters().marked);
        });
        reg.gauge(prefix + "aqm_dropped", [&link] {
          return static_cast<double>(link.counters().aqm_dropped);
        });
      }
    }
  }
  if (config.recorder != nullptr) {
    telemetry::RunManifest& manifest = config.recorder->manifest();
    manifest.seed = config.seed;
    manifest.build_flags = telemetry::build_flags_string();
    if (single_link) {
      // Exactly the legacy manifest block, so single-link artifacts are
      // unchanged down to the key set.
      const LinkSpec& spec = config.links[0];
      manifest.fault_digest = telemetry::fault_schedule_digest(spec.faults);
      manifest.set("link_rate_bps", spec.rate_bps);
      manifest.set("buffer_packets",
                   static_cast<std::uint64_t>(spec.buffer_packets));
      manifest.set("aqm.type", std::string(to_string(spec.aqm.type)));
      manifest.set("aqm.target_ms", to_millis(spec.aqm.target));
      manifest.set("aqm.t_update_ms", to_millis(spec.aqm.t_update));
      manifest.set("aqm.ecn", std::string(spec.aqm.ecn ? "true" : "false"));
      manifest.set("aqm.coupling_k", spec.aqm.coupling_k);
      manifest.set("aqm.max_classic_prob", spec.aqm.max_classic_prob);
      if (spec.aqm.type == scenario::AqmType::kDualPi2) {
        manifest.set("aqm.t_shift_ms", to_millis(spec.aqm.t_shift));
        manifest.set("aqm.l_drop_percent", spec.aqm.l_drop_percent);
        manifest.set("aqm.l_thresh_packets",
                     static_cast<std::uint64_t>(spec.aqm.l_thresh_packets));
      }
      if (spec.aqm.alpha_hz) manifest.set("aqm.alpha_hz", *spec.aqm.alpha_hz);
      if (spec.aqm.beta_hz) manifest.set("aqm.beta_hz", *spec.aqm.beta_hz);
    } else {
      std::string digest;
      for (const LinkSpec& spec : config.links) {
        if (!digest.empty()) digest += ",";
        digest += telemetry::fault_schedule_digest(spec.faults);
      }
      manifest.fault_digest = digest;
      manifest.set("topology.nodes",
                   static_cast<std::uint64_t>(config.nodes.size()));
      manifest.set("topology.links", static_cast<std::uint64_t>(n_links));
      for (std::size_t li = 0; li < n_links; ++li) {
        const LinkSpec& spec = config.links[li];
        const std::string prefix = "link[" + std::to_string(li) + "].";
        manifest.set(prefix + "name", links[li].out.name);
        manifest.set(prefix + "rate_bps", spec.rate_bps);
        manifest.set(prefix + "aqm.type", std::string(to_string(spec.aqm.type)));
      }
    }
    manifest.set("tcp_flow_specs",
                 static_cast<std::uint64_t>(config.tcp_flows.size()));
    manifest.set("udp_flow_specs",
                 static_cast<std::uint64_t>(config.udp_flows.size()));
    manifest.set("fluid_flow_specs",
                 static_cast<std::uint64_t>(config.fluid_flows.size()));
    manifest.set("flows", static_cast<std::uint64_t>(flows.size()));
    manifest.set("duration_s", to_seconds(config.duration));
    manifest.set("stats_start_s", to_seconds(config.stats_start));
    manifest.set("sample_interval_s", to_seconds(config.sample_interval));
    config.recorder->start(sim);
  }

  // Periodic sampling of every link's queue delay and AQM probabilities —
  // one shared chain, so the event count matches the legacy harness.
  std::function<void()> sample = [&] {
    for (LinkRuntime& rt : links) {
      rt.out.qdelay_ms_series.add(sim.now(), to_millis(rt.link->queue_delay()));
      const double pc = rt.link->qdisc().classic_probability();
      const double ps = rt.link->qdisc().scalable_probability();
      rt.out.classic_prob_series.add(sim.now(), pc);
      if (sim.now() >= config.stats_start) {
        rt.out.classic_prob_samples.add(pc);
        rt.out.scalable_prob_samples.add(ps);
      }
    }
    sim.after(config.sample_interval, sample);
  };
  sim.after(config.sample_interval, sample);

  // Snapshot cumulative counters at the start of the stats window (one
  // event for the whole graph).
  for (LinkRuntime& rt : links) rt.dualq = rt.link->band_count() > 1;
  sim.at(config.stats_start, [&] {
    for (LinkRuntime& rt : links) {
      rt.busy_at_stats_start = rt.util_meter.total_busy_seconds();
      rt.counters_at_stats_start = rt.link->counters();
      if (rt.dualq) {
        rt.band_l_at_stats_start = rt.link->band_counters(0);
        rt.band_c_at_stats_start = rt.link->band_counters(1);
      }
      rt.spec_arrival_at_stats_start = rt.spec_arrival_bytes;
    }
    for (std::int32_t f = 0; f < static_cast<std::int32_t>(flows.size());
         ++f) {
      flows.bytes_at_stats_start(f) = flows.goodput(f).total_bytes();
    }
  });

  // --- Run. ----------------------------------------------------------------
  {
    std::unique_ptr<telemetry::ScopedTimer> timer;
    if (config.recorder != nullptr) {
      timer = std::make_unique<telemetry::ScopedTimer>(
          config.recorder->profile().section("sim.run"));
    }
    sim.run_until(config.duration);
  }

  if (sim.stopped()) {
    // Graceful shutdown at an event boundary: commit what telemetry exists
    // while the probed objects are still alive, then report not-done.
    if (config.recorder != nullptr) {
      config.recorder->manifest().set("interrupted", std::string("true"));
      config.recorder->finish(sim.now());
    } else if (config.registry != nullptr) {
      config.registry->freeze_gauges();
    }
    throw durable::InterruptedError(
        "run interrupted by shutdown request at t=" +
        std::to_string(to_seconds(sim.now())) + "s (of " +
        std::to_string(to_seconds(config.duration)) + "s)");
  }

  // --- Collect results. ----------------------------------------------------
  const double stats_span_s = to_seconds(config.duration - config.stats_start);
  for (LinkRuntime& rt : links) {
    rt.util_meter.flush(config.duration);
    rt.total_meter.flush(config.duration);
    LinkResult& out = rt.out;
    out.utilization_series = rt.util_meter.series();
    out.total_throughput_series = rt.total_meter.series();
    out.counters = rt.link->counters();
    out.window_counters =
        scenario::counters_window(out.counters, rt.counters_at_stats_start);
    if (rt.dualq) {
      out.band_l = rt.link->band_counters(0);
      out.band_c = rt.link->band_counters(1);
      out.window_band_l =
          scenario::band_window(out.band_l, rt.band_l_at_stats_start);
      out.window_band_c =
          scenario::band_window(out.band_c, rt.band_c_at_stats_start);
    }
    if (stats_span_s > 0.0) {
      const double busy =
          rt.util_meter.total_busy_seconds() - rt.busy_at_stats_start;
      out.utilization = busy / stats_span_s;
    }
    out.fluid.arrival_bytes = rt.fluid_arrival_bytes;
    out.fluid.served_bytes = rt.fluid_served_bytes;
    out.fluid.dropped_bytes = rt.fluid_dropped_bytes;
    out.fluid.final_backlog_bytes = rt.fluid_backlog_bytes;
    out.fluid.ticks = rt.fluid ? rt.fluid->ticks() : 0;
    out.mean_qdelay_ms = out.qdelay_ms_packets.mean();
    out.p99_qdelay_ms = out.qdelay_ms_packets.p99();
    out.fault_counters = rt.injector->counters();
    out.guard_events = rt.link->qdisc().guard_events();
    out.final_backlog_packets = rt.link->backlog_packets();
    out.final_transmitting = rt.link->transmitting();
  }

  for (std::int32_t f = 0; f < static_cast<std::int32_t>(flows.size()); ++f) {
    scenario::FlowResult fr;
    fr.cc = flows.cc(f);
    fr.is_udp = flows.kind(f) == tcp::FlowTable::Kind::kUdp;
    if (stats_span_s > 0.0) {
      const auto bytes =
          flows.goodput(f).total_bytes() - flows.bytes_at_stats_start(f);
      fr.goodput_mbps = static_cast<double>(bytes) * 8.0 / stats_span_s / 1e6;
    }
    if (const tcp::TcpSender* sender = flows.sender(f)) {
      fr.retransmits = sender->retransmits();
      fr.timeouts = sender->timeouts();
    }
    result.flows.push_back(fr);
  }
  // One FlowResult per fluid route: goodput is the windowed offered rate
  // averaged over the spec's `count` modelled flows.
  for (std::size_t fi = 0; fi < config.fluid_flows.size(); ++fi) {
    const std::uint32_t route = static_cast<std::uint32_t>(
        config.tcp_flows.size() + config.udp_flows.size() + fi);
    const std::uint32_t li = route_links[route][0];
    LinkRuntime& rt = links[li];
    std::size_t local = 0;
    while (rt.fluid_route_of_spec[local] != fi) ++local;
    const FluidFlowSpec& spec = config.fluid_flows[fi].spec;
    scenario::FlowResult fr;
    fr.cc = spec.cc;
    fr.is_fluid = true;
    fr.count = spec.count;
    if (stats_span_s > 0.0 && spec.count > 0.0) {
      const double bytes = rt.spec_arrival_bytes[local] -
                           rt.spec_arrival_at_stats_start[local];
      fr.goodput_mbps = bytes * 8.0 / stats_span_s / 1e6 / spec.count;
    }
    result.flows.push_back(fr);
    result.flow_route.push_back(static_cast<std::int32_t>(route));
  }

  result.events_executed = sim.events_executed();
  result.clamped_events = sim.clamped_events();
  for (LinkRuntime& rt : links) {
    const auto& violations = rt.monitor->violations();
    result.violations.insert(result.violations.end(), violations.begin(),
                             violations.end());
    result.invariant_checks += rt.monitor->checks_run();
    result.links.push_back(std::move(rt.out));
  }

  // Resilience scoring of the primary link's disturbances: how fast the AQM
  // re-converged after each fault window, and whether any invariant
  // violation happened outside a window's recovery transient.
  {
    const std::vector<faults::FaultWindow> fault_windows =
        faults::fault_windows(config.links[0].faults, config.duration);
    std::vector<stats::RecoveryWindow> windows;
    windows.reserve(fault_windows.size());
    for (const faults::FaultWindow& w : fault_windows) {
      windows.push_back({w.start_s, w.end_s});
    }
    std::vector<Time> violation_times;
    violation_times.reserve(result.violations.size());
    for (const faults::InvariantViolation& v : result.violations) {
      violation_times.push_back(v.at);
    }
    stats::RecoveryOptions opts;
    opts.band_ms = 2.0 * to_millis(config.links[0].aqm.target);
    opts.hold_s = 1.0;
    opts.analysis_start_s = to_seconds(config.stats_start);
    opts.duration_s = to_seconds(config.duration);
    result.resilience = stats::analyze_recovery(
        result.links.front().qdelay_ms_series, windows, violation_times, opts);
    // Faulted runs surface the scores as telemetry; fault-free runs keep the
    // legacy gauge set so existing snapshots stay byte-identical.
    if (probe_registry != nullptr && !config.links[0].faults.empty()) {
      const stats::ResilienceReport& rr = result.resilience;
      telemetry::MetricsRegistry& reg = *probe_registry;
      reg.gauge("resilience.windows").set(static_cast<double>(rr.windows));
      reg.gauge("resilience.recovered_windows")
          .set(static_cast<double>(rr.recovered_windows));
      reg.gauge("resilience.worst_recovery_s").set(rr.worst_recovery_s);
      reg.gauge("resilience.mean_recovery_s").set(rr.mean_recovery_s);
      reg.gauge("resilience.peak_qdelay_ms").set(rr.peak_qdelay_ms);
      reg.gauge("resilience.post_fault_delta_ms").set(rr.post_fault_delta_ms);
      reg.gauge("resilience.violations_in_window")
          .set(static_cast<double>(rr.violations_in_window));
      reg.gauge("resilience.violations_outside")
          .set(static_cast<double>(rr.violations_outside));
    }
  }

  // Finish telemetry while the probed objects are still alive: the final
  // sample and manifest snapshot read bound gauges.
  if (config.recorder != nullptr) {
    config.recorder->finish(config.duration);
  } else if (config.registry != nullptr) {
    config.registry->freeze_gauges();
  }
  return result;
}

}  // namespace pi2::topology
