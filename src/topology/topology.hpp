// Declarative multi-bottleneck topologies.
//
// A TopologyConfig is a graph: named nodes, directed links (each owning its
// own AQM + params, rate, buffer, optional fault schedule and rate-change
// script), and flow specs routed along explicit node paths. run_topology()
// wires the graph into the existing Simulator — one BottleneckLink, fault
// injector and invariant monitor per link, the shared TCP/UDP/fluid
// endpoints per flow — and returns a TopologyResult with per-link and
// per-flow slices.
//
// Path semantics (store-and-forward): a packet crosses each link of its
// route in order; after an intermediate hop it propagates `LinkSpec::delay`
// to the next hop's queue. The *final* hop's propagation and the ACK return
// path are the flow's base_rtt/2 — exactly the dumbbell semantic, so a
// single-link topology reproduces run_dumbbell() event for event
// (dumbbell_adapter.hpp relies on this; the equivalence is digest-checked
// in tests and fuzzed in check_fuzz).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/invariant_monitor.hpp"
#include "net/bottleneck_link.hpp"
#include "scenario/aqm_factory.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/time.hpp"
#include "stats/percentile.hpp"
#include "stats/recovery.hpp"
#include "stats/time_series.hpp"

namespace pi2::net {
class PacketTrace;
}  // namespace pi2::net

namespace pi2::telemetry {
class MetricsRegistry;
class Recorder;
}  // namespace pi2::telemetry

namespace pi2::topology {

/// One directed, AQM-managed link of the graph.
struct LinkSpec {
  /// Optional display/telemetry name; "" derives "<from>-><to>". Must be
  /// unique when set (validate() enforces it).
  std::string name;
  std::string from;
  std::string to;
  double rate_bps = 10e6;
  std::int64_t buffer_packets = 40000;
  scenario::AqmConfig aqm;
  /// Store-and-forward propagation towards the *next* hop when a packet
  /// continues along its route. The final hop's propagation (and the ACK
  /// return) is the flow's base_rtt/2 — see the header note.
  pi2::sim::Duration delay{0};
  std::vector<scenario::RateChange> rate_changes;
  /// Per-link scripted impairments, replayed by this link's own injector
  /// from its own derived RNG stream.
  faults::FaultSchedule faults;

  [[nodiscard]] std::string display_name() const {
    return name.empty() ? from + "->" + to : name;
  }
};

/// A flow spec routed along an explicit node path (>= 2 nodes; every
/// consecutive pair must be a configured link).
struct TcpRoute {
  scenario::TcpFlowSpec spec;
  std::vector<std::string> path;
};
struct UdpRoute {
  scenario::UdpFlowSpec spec;
  std::vector<std::string> path;
};
/// Fluid specs integrate against one link's AQM signal, so their path must
/// cross exactly one link.
struct FluidRoute {
  scenario::FluidFlowSpec spec;
  std::vector<std::string> path;
};

struct TopologyConfig {
  std::vector<std::string> nodes;
  std::vector<LinkSpec> links;
  std::vector<TcpRoute> tcp_flows;
  std::vector<UdpRoute> udp_flows;
  std::vector<FluidRoute> fluid_flows;
  /// Integration/tick period of the fluid tier (one ensemble per link that
  /// carries fluid routes).
  pi2::sim::Duration fluid_dt = pi2::sim::from_millis(1);
  /// ACK-clock batching quantum (see DumbbellConfig::ack_quantum). Applies
  /// to the final propagation hop and the ACK return path.
  pi2::sim::Duration ack_quantum{0};
  pi2::sim::Time duration{std::chrono::seconds{100}};
  pi2::sim::Time stats_start{std::chrono::seconds{0}};
  std::uint64_t seed = 1;
  pi2::sim::Duration sample_interval = pi2::sim::from_millis(100);
  bool check_invariants = true;
  /// Optional per-packet trace, attached to links[0] (the primary link).
  net::PacketTrace* trace = nullptr;
  /// Optional telemetry recorder / bare registry (see DumbbellConfig).
  /// links[0] owns the legacy unprefixed metric names; additional links get
  /// "topo.<link>."-prefixed gauges so single-link snapshots are unchanged.
  telemetry::Recorder* recorder = nullptr;
  telemetry::MetricsRegistry* registry = nullptr;
  const std::atomic<bool>* stop = nullptr;

  /// Returns "" when the config is well-formed, otherwise an actionable
  /// message naming the offending field and constraint (unknown node in a
  /// path, disconnected route, non-finite link params, ...).
  /// run_topology() throws std::invalid_argument with this message.
  [[nodiscard]] std::string validate() const;

  /// Index into `links` of the directed link a->b, or -1 when none exists.
  [[nodiscard]] int link_between(const std::string& a,
                                 const std::string& b) const;
};

/// Per-link measurement slice: the same quantities run_dumbbell() reports
/// for its single bottleneck, one per configured link.
struct LinkResult {
  std::string name;

  stats::TimeSeries qdelay_ms_series;
  stats::PercentileSampler qdelay_ms_packets;
  double mean_qdelay_ms = 0.0;
  double p99_qdelay_ms = 0.0;

  stats::TimeSeries classic_prob_series;
  stats::PercentileSampler classic_prob_samples;
  stats::PercentileSampler scalable_prob_samples;

  stats::TimeSeries total_throughput_series;
  stats::TimeSeries utilization_series;
  double utilization = 0.0;

  net::BottleneckLink::Counters counters;
  net::BottleneckLink::Counters window_counters;
  net::BottleneckLink::BandCounters band_l;
  net::BottleneckLink::BandCounters band_c;
  net::BottleneckLink::BandCounters window_band_l;
  net::BottleneckLink::BandCounters window_band_c;

  scenario::FluidStats fluid;
  faults::FaultInjector::Counters fault_counters;
  std::uint64_t guard_events = 0;

  /// End-of-run queue occupancy, for exact per-link conservation:
  ///   enqueued == forwarded + dequeue_dropped
  ///            + final_backlog_packets + final_transmitting.
  std::int64_t final_backlog_packets = 0;
  bool final_transmitting = false;

  /// Observed drop/mark probability over the stats window (signals /
  /// arrivals), comparable with the steady-state laws of Appendix A.
  [[nodiscard]] double observed_signal_rate() const;
};

struct TopologyResult {
  std::vector<LinkResult> links;
  /// Flow results in creation order: tcp routes (expanded per `count`),
  /// then udp routes (expanded), then one per fluid route.
  std::vector<scenario::FlowResult> flows;
  /// Parallel to `flows`: the global route index each result came from.
  /// Routes number tcp_flows first, then udp_flows, then fluid_flows.
  std::vector<std::int32_t> flow_route;

  std::uint64_t events_executed = 0;
  std::uint64_t clamped_events = 0;
  /// Violations across every link's monitor, in link order; checks summed.
  std::vector<faults::InvariantViolation> violations;
  std::uint64_t invariant_checks = 0;
  /// Recovery scoring of links[0]'s fault windows against its sampled
  /// qdelay series (stats::analyze_recovery); `analyzed` stays false when
  /// the primary link has no fault schedule.
  stats::ResilienceReport resilience;

  /// Mean goodput (Mb/s) across the packet flows of one route.
  [[nodiscard]] double route_goodput_mbps(std::int32_t route) const;
};

TopologyResult run_topology(const TopologyConfig& config);

/// Flattens a TopologyResult into the legacy single-bottleneck RunResult:
/// top-level link fields come from links[0] (the primary link), and every
/// link lands in RunResult::links as a codec-v4 slice. With one link this
/// is a lossless renaming — run_dumbbell() is exactly this composition.
[[nodiscard]] scenario::RunResult to_run_result(TopologyResult result);

}  // namespace pi2::topology
