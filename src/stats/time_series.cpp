#include "stats/time_series.hpp"

#include <algorithm>
#include <cassert>

namespace pi2::stats {

using pi2::sim::Duration;
using pi2::sim::Time;
using pi2::sim::to_seconds;

void TimeSeries::add(Time t, double value) {
  assert(points_.empty() || t >= points_.back().t);
  points_.push_back(Point{t, value});
}

std::vector<std::pair<double, double>> TimeSeries::binned(
    Duration bin, Time start, Time stop, Fold fold) const {
  std::vector<std::pair<double, double>> out;
  if (bin.count() <= 0 || stop <= start) return out;
  const auto nbins = static_cast<std::size_t>((stop - start + bin - Duration{1}) / bin);
  out.reserve(nbins);
  auto it = std::lower_bound(points_.begin(), points_.end(), start,
                             [](const Point& p, Time t) { return p.t < t; });
  double held = 0.0;
  for (std::size_t b = 0; b < nbins; ++b) {
    const Time lo = start + bin * static_cast<std::int64_t>(b);
    const Time hi = std::min(lo + bin, stop);
    double acc = 0.0;
    std::size_t n = 0;
    while (it != points_.end() && it->t < hi) {
      if (fold == Fold::kMean) {
        acc += it->value;
      } else {
        acc = n == 0 ? it->value : std::max(acc, it->value);
      }
      ++n;
      ++it;
    }
    if (n > 0) held = fold == Fold::kMean ? acc / static_cast<double>(n) : acc;
    out.emplace_back(to_seconds(lo + (hi - lo) / 2), held);
  }
  return out;
}

std::vector<std::pair<double, double>> TimeSeries::binned_mean(Duration bin, Time start,
                                                               Time stop) const {
  return binned(bin, start, stop, Fold::kMean);
}

std::vector<std::pair<double, double>> TimeSeries::binned_max(Duration bin, Time start,
                                                              Time stop) const {
  return binned(bin, start, stop, Fold::kMax);
}

double TimeSeries::mean_over(Time start, Time stop) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const Point& p : points_) {
    if (p.t >= start && p.t < stop) {
      acc += p.value;
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

double TimeSeries::max_over(Time start, Time stop) const {
  double best = 0.0;
  bool any = false;
  for (const Point& p : points_) {
    if (p.t >= start && p.t < stop) {
      best = any ? std::max(best, p.value) : p.value;
      any = true;
    }
  }
  return best;
}

void TimeWeightedMean::update(Time t, double value) {
  if (!started_) {
    started_ = true;
    first_t_ = t;
  } else if (t > last_t_) {
    weighted_sum_ += last_value_ * to_seconds(t - last_t_);
  }
  last_t_ = t;
  last_value_ = value;
}

double TimeWeightedMean::mean_until(Time t) const {
  if (!started_ || t <= first_t_) return 0.0;
  double total = weighted_sum_;
  if (t > last_t_) total += last_value_ * to_seconds(t - last_t_);
  return total / to_seconds(t - first_t_);
}

}  // namespace pi2::stats
