#include "stats/recovery.hpp"

#include <algorithm>

namespace pi2::stats {

namespace {

using pi2::sim::to_seconds;

/// First time at/after `from_s` from which the sampled qdelay stays inside
/// the band for `hold_s` seconds, as a latency relative to `from_s`; the
/// hold interval must fit before `limit_s`. -1 when the run never settles —
/// the fig_response criterion, verbatim.
double settle_after_s(const TimeSeries& qdelay_ms, double from_s,
                      double limit_s, double band_ms, double hold_s) {
  const auto& pts = qdelay_ms.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double t = to_seconds(pts[i].t);
    if (t < from_s || t + hold_s > limit_s) continue;
    bool held = true;
    for (std::size_t j = i; j < pts.size(); ++j) {
      const double tj = to_seconds(pts[j].t);
      if (tj > t + hold_s) break;
      if (pts[j].value > band_ms) {
        held = false;
        break;
      }
    }
    if (held) return t - from_s;
  }
  return -1.0;
}

}  // namespace

ResilienceReport analyze_recovery(
    const TimeSeries& qdelay_ms, const std::vector<RecoveryWindow>& windows,
    const std::vector<pi2::sim::Time>& violation_times,
    const RecoveryOptions& opts) {
  ResilienceReport report;
  if (windows.empty()) {
    // No disturbances: nothing to score, and every violation is quiet-time.
    report.violations_outside = violation_times.size();
    return report;
  }
  report.analyzed = true;
  report.windows = windows.size();

  // Per-window settle scan, bounded by the next window (a window whose
  // recovery bleeds into the next disturbance never reconverged).
  // quiet_from[i] marks when window i's influence ends: the moment the hold
  // interval completed, or the next window / run end when it never settled.
  std::vector<double> quiet_from(windows.size(), 0.0);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const double limit_s =
        i + 1 < windows.size() ? windows[i + 1].start_s : opts.duration_s;
    const double recovery = settle_after_s(qdelay_ms, windows[i].end_s,
                                           limit_s, opts.band_ms, opts.hold_s);
    report.recovery_s.push_back(recovery);
    if (recovery >= 0.0) {
      ++report.recovered_windows;
      report.mean_recovery_s += recovery;
      report.worst_recovery_s =
          std::max(report.worst_recovery_s, recovery);
      quiet_from[i] = windows[i].end_s + recovery + opts.hold_s;
    } else {
      report.worst_recovery_s = -1.0;
      quiet_from[i] = limit_s;
    }
  }
  if (report.recovered_windows > 0) {
    report.mean_recovery_s /= static_cast<double>(report.recovered_windows);
  }
  // A single unsettled window poisons the worst-case (sticky -1).
  if (report.recovered_windows != report.windows) {
    report.worst_recovery_s = -1.0;
  }

  report.peak_qdelay_ms = qdelay_ms.max_over(
      pi2::sim::from_seconds(windows.front().start_s),
      pi2::sim::from_seconds(opts.duration_s) + pi2::sim::Duration{1});

  if (windows.front().start_s > opts.analysis_start_s) {
    report.pre_fault_mean_qdelay_ms = qdelay_ms.mean_over(
        pi2::sim::from_seconds(opts.analysis_start_s),
        pi2::sim::from_seconds(windows.front().start_s));
  }
  const double post_from = std::min(quiet_from.back(), opts.duration_s);
  report.post_fault_mean_qdelay_ms =
      qdelay_ms.mean_over(pi2::sim::from_seconds(post_from),
                          pi2::sim::from_seconds(opts.duration_s) +
                              pi2::sim::Duration{1});
  report.post_fault_delta_ms =
      report.post_fault_mean_qdelay_ms - report.pre_fault_mean_qdelay_ms;

  for (const pi2::sim::Time at : violation_times) {
    const double t = to_seconds(at);
    bool excused = false;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (t >= windows[i].start_s && t <= quiet_from[i]) {
        excused = true;
        break;
      }
    }
    if (excused) {
      ++report.violations_in_window;
    } else {
      ++report.violations_outside;
    }
  }
  return report;
}

}  // namespace pi2::stats
