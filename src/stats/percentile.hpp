// Percentile estimation over a stream of samples.
//
// Stores every sample up to a configurable cap, then switches to uniform
// reservoir sampling (Algorithm R). Experiments in this repo produce at most
// a few million queue-delay samples per run, so the default cap keeps exact
// percentiles for typical runs while bounding memory on the long sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace pi2::stats {

class PercentileSampler {
 public:
  explicit PercentileSampler(std::size_t capacity = 1u << 21,
                             std::uint64_t seed = 0x5eedf00d);

  void add(double x);

  /// Quantile q in [0, 1], linear interpolation between order statistics.
  /// Returns 0 if no samples. Sorts lazily (const via mutable buffer).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double p01() const { return quantile(0.01); }
  [[nodiscard]] double p25() const { return quantile(0.25); }
  [[nodiscard]] double median() const { return quantile(0.50); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  /// Total samples observed (not the retained count).
  [[nodiscard]] std::int64_t count() const { return seen_; }

  /// Exact mean over all observed samples (not just the retained ones).
  [[nodiscard]] double mean() const {
    return seen_ > 0 ? sum_ / static_cast<double>(seen_) : 0.0;
  }

  /// Sum of every observed sample (exact, independent of the reservoir).
  [[nodiscard]] double sum() const { return sum_; }

  /// The retained reservoir in its current order. Together with count() and
  /// sum() this is the sampler's full statistical state: quantile(), mean()
  /// and cdf_at() depend on nothing else.
  [[nodiscard]] const std::vector<double>& retained() const { return samples_; }

  /// Restores the statistical state captured by count()/sum()/retained() —
  /// the resume path rebuilds a sampler from its journaled snapshot so all
  /// derived statistics are bit-identical to the original run's.
  void restore(std::int64_t seen, double sum, std::vector<double> samples);

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  /// (value, cumulative fraction) pairs at `points` evenly spaced ranks,
  /// suitable for plotting a CDF curve (Figure 14).
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points(int points) const;

 private:
  void ensure_sorted() const;

  std::size_t capacity_;
  std::int64_t seen_ = 0;
  double sum_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  pi2::sim::Rng rng_;
};

}  // namespace pi2::stats
