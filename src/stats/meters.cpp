#include "stats/meters.hpp"

#include <algorithm>

namespace pi2::stats {

using pi2::sim::Duration;
using pi2::sim::Time;
using pi2::sim::to_seconds;

void RateMeter::roll_to(Time t) {
  if (!started_) {
    started_ = true;
    window_start_ = Time{(t.count() / window_.count()) * window_.count()};
    return;
  }
  while (t >= window_start_ + window_) {
    const double mbps =
        static_cast<double>(window_bytes_) * 8.0 / to_seconds(window_) / 1e6;
    series_.add(window_start_ + window_, mbps);
    window_bytes_ = 0;
    window_start_ += window_;
  }
}

void RateMeter::add_bytes(Time t, std::int64_t bytes) {
  roll_to(t);
  window_bytes_ += bytes;
  total_bytes_ += bytes;
}

void RateMeter::flush(Time t) { roll_to(t); }

void UtilizationMeter::roll_to(Time t) {
  if (!started_) {
    started_ = true;
    window_start_ = Time{(t.count() / window_.count()) * window_.count()};
    return;
  }
  while (t >= window_start_ + window_) {
    series_.add(window_start_ + window_, window_busy_s_ / to_seconds(window_));
    window_busy_s_ = 0.0;
    window_start_ += window_;
  }
}

void UtilizationMeter::add_busy(Time from, Time to) {
  if (to <= from) return;
  total_busy_s_ += to_seconds(to - from);
  // Split the busy interval across window boundaries.
  roll_to(from);
  Time cursor = from;
  while (cursor < to) {
    const Time boundary = window_start_ + window_;
    const Time end = std::min(to, boundary);
    window_busy_s_ += to_seconds(end - cursor);
    cursor = end;
    if (cursor >= boundary) roll_to(cursor);
  }
}

void UtilizationMeter::flush(Time t) { roll_to(t); }

}  // namespace pi2::stats
