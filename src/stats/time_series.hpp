// Time series recording and binned resampling for plot reproduction.
#pragma once

#include <vector>

#include "sim/time.hpp"

namespace pi2::stats {

/// An ordered sequence of (time, value) observations.
class TimeSeries {
 public:
  struct Point {
    pi2::sim::Time t;
    double value;
  };

  /// Appends an observation; `t` must be non-decreasing.
  void add(pi2::sim::Time t, double value);

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Mean of observations per fixed-width bin, as (bin centre seconds, mean).
  /// Empty bins carry the previous bin's value (sample-and-hold), matching
  /// how the paper's gnuplot traces render 1 s samples.
  [[nodiscard]] std::vector<std::pair<double, double>> binned_mean(
      pi2::sim::Duration bin, pi2::sim::Time start, pi2::sim::Time stop) const;

  /// Maximum of observations per fixed-width bin (peak-delay plots).
  [[nodiscard]] std::vector<std::pair<double, double>> binned_max(
      pi2::sim::Duration bin, pi2::sim::Time start, pi2::sim::Time stop) const;

  /// Mean value over [start, stop), ignoring observation spacing.
  [[nodiscard]] double mean_over(pi2::sim::Time start, pi2::sim::Time stop) const;

  /// Maximum value over [start, stop).
  [[nodiscard]] double max_over(pi2::sim::Time start, pi2::sim::Time stop) const;

 private:
  enum class Fold { kMean, kMax };
  [[nodiscard]] std::vector<std::pair<double, double>> binned(
      pi2::sim::Duration bin, pi2::sim::Time start, pi2::sim::Time stop,
      Fold fold) const;

  std::vector<Point> points_;
};

/// Tracks a time-weighted mean of a piecewise-constant signal (e.g. queue
/// backlog): `update(t, v)` records that the signal held its previous value
/// up to time t, then became v.
class TimeWeightedMean {
 public:
  void update(pi2::sim::Time t, double value);

  /// Time-weighted mean over everything observed so far, up to time `t`.
  [[nodiscard]] double mean_until(pi2::sim::Time t) const;

 private:
  bool started_ = false;
  pi2::sim::Time last_t_{};
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  pi2::sim::Time first_t_{};
};

}  // namespace pi2::stats
