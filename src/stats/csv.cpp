#include "stats/csv.hpp"

#include <cstdio>
#include <memory>

namespace pi2::stats {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<const TimeSeries*>& series,
                      pi2::sim::Duration bin, pi2::sim::Time start,
                      pi2::sim::Time stop) {
  if (names.size() != series.size() || series.empty()) return false;
  FilePtr f{std::fopen(path.c_str(), "w")};
  if (!f) return false;

  std::fprintf(f.get(), "t_s");
  for (const auto& name : names) std::fprintf(f.get(), ",%s", name.c_str());
  std::fprintf(f.get(), "\n");

  std::vector<std::vector<std::pair<double, double>>> binned;
  binned.reserve(series.size());
  for (const TimeSeries* s : series) {
    binned.push_back(s->binned_mean(bin, start, stop));
  }
  const std::size_t rows = binned.front().size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::fprintf(f.get(), "%.6f", binned.front()[r].first);
    for (const auto& col : binned) {
      std::fprintf(f.get(), ",%.9g", r < col.size() ? col[r].second : 0.0);
    }
    std::fprintf(f.get(), "\n");
  }
  return true;
}

bool write_cdf_csv(const std::string& path, const PercentileSampler& sampler,
                   int points) {
  FilePtr f{std::fopen(path.c_str(), "w")};
  if (!f) return false;
  std::fprintf(f.get(), "value,fraction\n");
  for (const auto& [value, fraction] : sampler.cdf_points(points)) {
    std::fprintf(f.get(), "%.9g,%.6f\n", value, fraction);
  }
  return true;
}

}  // namespace pi2::stats
