// Throughput and utilization meters used by the experiment probes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/time_series.hpp"

namespace pi2::stats {

/// Per-flow (or per-class) throughput meter: accumulates delivered bytes and
/// periodically converts them into a rate sample (Mb/s).
class RateMeter {
 public:
  /// `window` is the sampling interval (the paper samples at 1 s).
  explicit RateMeter(pi2::sim::Duration window = std::chrono::seconds{1})
      : window_(window) {}

  /// Records `bytes` delivered at time `t`. Closes windows as time advances.
  void add_bytes(pi2::sim::Time t, std::int64_t bytes);

  /// Closes any window containing `t` so that `series()` is complete up to t.
  void flush(pi2::sim::Time t);

  /// Rate samples in Mb/s, one per elapsed window.
  [[nodiscard]] const TimeSeries& series() const { return series_; }

  /// Total bytes delivered so far. Snapshot this at the start and end of a
  /// measurement window to get an exact mean rate.
  [[nodiscard]] std::int64_t total_bytes() const { return total_bytes_; }

 private:
  void roll_to(pi2::sim::Time t);

  pi2::sim::Duration window_;
  pi2::sim::Time window_start_{};
  bool started_ = false;
  std::int64_t window_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
  TimeSeries series_;
};

/// Link utilization meter: integrates busy time of a link over windows.
class UtilizationMeter {
 public:
  explicit UtilizationMeter(pi2::sim::Duration window = std::chrono::seconds{1})
      : window_(window) {}

  /// Records that the link was busy transmitting for [from, to).
  void add_busy(pi2::sim::Time from, pi2::sim::Time to);

  /// Utilization samples in [0, 1] per window; call flush(t) first.
  void flush(pi2::sim::Time t);
  [[nodiscard]] const TimeSeries& series() const { return series_; }

  /// Cumulative busy seconds; snapshot at window edges for exact means.
  [[nodiscard]] double total_busy_seconds() const { return total_busy_s_; }

 private:
  void roll_to(pi2::sim::Time t);

  pi2::sim::Duration window_;
  pi2::sim::Time window_start_{};
  bool started_ = false;
  double window_busy_s_ = 0.0;
  double total_busy_s_ = 0.0;
  TimeSeries series_;
};

}  // namespace pi2::stats
