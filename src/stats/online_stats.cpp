#include "stats/online_stats.hpp"

#include <algorithm>
#include <cmath>

namespace pi2::stats {

void OnlineStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace pi2::stats
