// CSV export for time series and samplers, so bench output can be plotted
// with any external tool (gnuplot/matplotlib) exactly like the paper's
// figures.
#pragma once

#include <string>
#include <vector>

#include "stats/percentile.hpp"
#include "stats/time_series.hpp"

namespace pi2::stats {

/// Writes aligned columns "t,<name0>,<name1>,..." of binned series values.
/// All series are binned onto the same grid; returns false on I/O failure.
bool write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<const TimeSeries*>& series,
                      pi2::sim::Duration bin, pi2::sim::Time start,
                      pi2::sim::Time stop);

/// Writes a CDF as "value,fraction" rows.
bool write_cdf_csv(const std::string& path, const PercentileSampler& sampler,
                   int points = 200);

}  // namespace pi2::stats
