// Streaming summary statistics (Welford) — O(1) memory per metric.
#pragma once

#include <cstdint>
#include <limits>

namespace pi2::stats {

/// Count / mean / variance / min / max over a stream of doubles.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other);

  void reset() { *this = OnlineStats{}; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pi2::stats
