// Post-run resilience analyzer: how fast did the AQM re-converge after each
// scheduled disturbance?
//
// The paper's robustness claim is dynamic — PI2's linearized control returns
// to its delay target faster than PIE after load/capacity transients
// (fig_response measures one such step). analyze_recovery() generalizes that
// measurement to any fault schedule: given the sampled queue-delay series
// and the disturbance windows (see faults::fault_windows), it scores each
// window with the fig_response settle criterion — the first time after the
// window from which qdelay stays inside the band for `hold_s` — plus the
// peak excursion, the post-fault steady-state shift, and how the invariant
// violations split across fault windows vs. quiet time.
//
// The module is deliberately faults-agnostic (plain window structs, plain
// violation timestamps) so pi2_stats keeps its single pi2_sim dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/time_series.hpp"

namespace pi2::stats {

/// One disturbance window in run-relative seconds; zero-width for
/// instantaneous events (rate/RTT steps, loss bursts). Must be sorted by
/// start with overlaps merged (faults::fault_windows guarantees both).
struct RecoveryWindow {
  double start_s = 0.0;
  double end_s = 0.0;
};

struct RecoveryOptions {
  /// In-band means sampled qdelay <= band_ms (the drivers use 2x the AQM
  /// delay target, matching fig_response).
  double band_ms = 40.0;
  /// Sustained time inside the band required to count as reconverged.
  double hold_s = 1.0;
  /// Pre-fault steady state is measured over [analysis_start_s, first
  /// window); the drivers pass the stats-window start to skip slow-start.
  double analysis_start_s = 0.0;
  double duration_s = 0.0;  ///< end of the run
};

/// Per-run resilience metrics. Encoded as the trailing pi2-result-v5 codec
/// section; `analyzed` is false (and everything else zero, except
/// violations_outside) for runs without fault windows.
struct ResilienceReport {
  bool analyzed = false;
  std::uint64_t windows = 0;
  std::uint64_t recovered_windows = 0;
  /// Per-window time-to-reconverge in seconds, measured from the window's
  /// end; -1 when the run never settles before the next window / run end.
  std::vector<double> recovery_s;
  /// max over windows, or -1 when any window never reconverges — the single
  /// number the fig_resilience health gate compares across AQMs.
  double worst_recovery_s = 0.0;
  double mean_recovery_s = 0.0;  ///< over recovered windows only
  /// Peak sampled qdelay at/after the first window's start.
  double peak_qdelay_ms = 0.0;
  double pre_fault_mean_qdelay_ms = 0.0;
  double post_fault_mean_qdelay_ms = 0.0;
  /// post - pre steady-state shift (a persistent regression the settle
  /// criterion alone would miss).
  double post_fault_delta_ms = 0.0;
  /// Invariant violations inside a window or its recovery transient vs.
  /// during quiet time. The health gates excuse the former and reject the
  /// latter.
  std::uint64_t violations_in_window = 0;
  std::uint64_t violations_outside = 0;

  [[nodiscard]] bool operator==(const ResilienceReport& other) const {
    return analyzed == other.analyzed && windows == other.windows &&
           recovered_windows == other.recovered_windows &&
           recovery_s == other.recovery_s &&
           worst_recovery_s == other.worst_recovery_s &&
           mean_recovery_s == other.mean_recovery_s &&
           peak_qdelay_ms == other.peak_qdelay_ms &&
           pre_fault_mean_qdelay_ms == other.pre_fault_mean_qdelay_ms &&
           post_fault_mean_qdelay_ms == other.post_fault_mean_qdelay_ms &&
           post_fault_delta_ms == other.post_fault_delta_ms &&
           violations_in_window == other.violations_in_window &&
           violations_outside == other.violations_outside;
  }
};

[[nodiscard]] ResilienceReport analyze_recovery(
    const TimeSeries& qdelay_ms, const std::vector<RecoveryWindow>& windows,
    const std::vector<pi2::sim::Time>& violation_times,
    const RecoveryOptions& opts);

}  // namespace pi2::stats
