#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

namespace pi2::stats {

PercentileSampler::PercentileSampler(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {}

void PercentileSampler::add(double x) {
  ++seen_;
  sum_ += x;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Reservoir sampling: replace a random retained sample with probability
  // capacity / seen.
  const std::uint64_t slot = rng_.uniform_below(static_cast<std::uint64_t>(seen_));
  if (slot < samples_.size()) {
    samples_[slot] = x;
    sorted_ = false;
  }
}

void PercentileSampler::restore(std::int64_t seen, double sum,
                                std::vector<double> samples) {
  seen_ = seen;
  sum_ = sum;
  samples_ = std::move(samples);
  sorted_ = false;
}

void PercentileSampler::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileSampler::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileSampler::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> PercentileSampler::cdf_points(int points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  ensure_sorted();
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / (points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace pi2::stats
