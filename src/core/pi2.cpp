#include "core/pi2.hpp"

#include <algorithm>
#include <cmath>

namespace pi2::core {

using pi2::sim::to_seconds;

Pi2Aqm::Pi2Aqm() : Pi2Aqm(Params{}) {}

Pi2Aqm::Pi2Aqm(Params params)
    : params_(params),
      pi_(params.alpha_hz, params.beta_hz,
          std::sqrt(std::clamp(params.max_classic_prob, 0.0, 1.0))) {}

void Pi2Aqm::install(pi2::sim::Simulator& sim, const net::QueueView& view) {
  QueueDiscipline::install(sim, view);
  schedule_update();
}

void Pi2Aqm::schedule_update() {
  sim().after(params_.t_update, [this] {
    pi_.update(to_seconds(view().queue_delay()), to_seconds(params_.target));
    schedule_update();
  });
}

Pi2Aqm::Verdict Pi2Aqm::enqueue(const net::Packet& packet) {
  // "Think twice to drop": two independent uniforms implement the square
  // without a multiplication wider than the random word.
  const double p_prime = pi_.prob();
  if (std::max(rng().uniform(), rng().uniform()) >= p_prime) return Verdict::kAccept;
  if (params_.ecn && net::ecn_capable(packet.ecn)) return Verdict::kMark;
  return Verdict::kDrop;
}

}  // namespace pi2::core
