#include "core/dualpi2.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pi2::core {

using pi2::net::Ecn;
using pi2::net::Packet;
using pi2::sim::Duration;
using pi2::sim::from_seconds;
using pi2::sim::to_seconds;
using pi2::sim::Time;

// --- DualPi2Core -------------------------------------------------------------

DualPi2Core::DualPi2Core(const DualPi2Params& params)
    : params_(params),
      // p' is the base probability: Classic applies (p')^2, L applies k*p'.
      // Capping p' at sqrt(max_classic_prob) bounds the applied Classic
      // probability at the overload cap (with the defaults k*p' then
      // saturates at exactly 2*sqrt(0.25) = 1).
      pi_(params.alpha_hz, params.beta_hz,
          std::sqrt(std::clamp(params.max_classic_prob, 0.0, 1.0))) {}

double DualPi2Core::p_coupled() const {
  return std::min(params_.k * pi_.prob(), 1.0);
}

void DualPi2Core::update(double c_delay_s) {
  pi_.update(c_delay_s, to_seconds(params_.target));
  // Overload hysteresis on the coupled probability: engage at the l_drop
  // threshold, re-arm only once the controller has backed off to half of
  // it, so the switchover cannot chatter around the boundary.
  const double engage = params_.l_drop_percent / 100.0;
  if (engage <= 0.0) {
    overloaded_ = true;  // l_drop 0: always in drop mode
    return;
  }
  const double coupled = params_.k * pi_.prob();
  if (!overloaded_) {
    if (coupled >= engage) overloaded_ = true;
  } else if (coupled < 0.5 * engage) {
    overloaded_ = false;
  }
}

double DualPi2Core::l_native(double sojourn_s, std::int64_t l_backlog_packets) {
  if (!std::isfinite(sojourn_s)) {
    ++guard_events_;
    sojourn_s = 0.0;
  }
  if (params_.l_thresh_packets > 0 &&
      l_backlog_packets >= params_.l_thresh_packets) {
    return 1.0;
  }
  const double min_th = to_seconds(params_.l_min_th);
  const double range = std::max(to_seconds(params_.l_range), 1e-9);
  return std::clamp((sojourn_s - min_th) / range, 0.0, 1.0);
}

DualPi2Core::Signal DualPi2Core::classic_signal(pi2::sim::Rng& rng,
                                                bool ecn_capable) {
  // "Think twice to drop": P[signal] = (p')^2.
  if (std::max(rng.uniform(), rng.uniform()) >= pi_.prob()) return Signal::kNone;
  if (!ecn_capable || overloaded_) return Signal::kDrop;
  return Signal::kMark;
}

DualPi2Core::Signal DualPi2Core::l_signal(pi2::sim::Rng& rng, double sojourn_s,
                                          std::int64_t l_backlog_packets) {
  const double p_l = std::max(l_native(sojourn_s, l_backlog_packets), p_coupled());
  if (overloaded_) {
    // RFC 9332 overload: ECN marking is no longer sufficient (the flood may
    // ignore CE), so the L queue drops with the same squared probability
    // the Classic queue applies; survivors still carry the mark.
    if (std::max(rng.uniform(), rng.uniform()) < pi_.prob()) return Signal::kDrop;
  }
  return rng.uniform() < p_l ? Signal::kMark : Signal::kNone;
}

// --- DualPi2Link -------------------------------------------------------------

DualPi2Link::DualPi2Link(pi2::sim::Simulator& sim, Params params)
    : sim_(sim), params_(params), core_(params), rng_(sim.rng().split()) {
  schedule_update();
}

Duration DualPi2Link::l_queue_delay() const {
  return from_seconds(static_cast<double>(l_backlog_bytes_) * 8.0 / params_.rate_bps);
}

Duration DualPi2Link::c_queue_delay() const {
  return from_seconds(static_cast<double>(c_backlog_bytes_) * 8.0 / params_.rate_bps);
}

void DualPi2Link::schedule_update() {
  sim_.after(params_.t_update, [this] {
    update();
    schedule_update();
  });
}

void DualPi2Link::update() {
  // The PI controller regulates the Classic queue's delay, measured as the
  // sojourn of the head packet (as Linux sch_dualpi2 does). Backlog/rate
  // would under-estimate it: C drains at less than the full link rate while
  // the scheduler favours L, and the controller must see that extra wait.
  double c_delay_s = 0.0;
  if (!c_queue_.empty()) {
    c_delay_s = to_seconds(sim_.now() - c_queue_.front().enqueued_at);
  }
  core_.update(c_delay_s);
}

void DualPi2Link::send(Packet packet) {
  const bool scalable = net::is_scalable(packet.ecn);
  if (total_backlog_packets() >= params_.buffer_packets) {
    ++counters_.tail_dropped;
    ++(scalable ? counters_.l_tail_dropped : counters_.c_tail_dropped);
    return;
  }
  if (!scalable) {
    switch (core_.classic_signal(rng_, net::ecn_capable(packet.ecn))) {
      case DualPi2Core::Signal::kMark:
        packet.ecn = Ecn::kCe;
        ++counters_.c_marked;
        break;
      case DualPi2Core::Signal::kDrop:
        ++counters_.c_dropped;
        return;
      case DualPi2Core::Signal::kNone:
        break;
    }
  }
  packet.enqueued_at = sim_.now();
  if (scalable) {
    ++counters_.l_enqueued;
    l_backlog_bytes_ += packet.size;
    l_queue_.push_back(packet);
  } else {
    ++counters_.c_enqueued;
    c_backlog_bytes_ += packet.size;
    c_queue_.push_back(packet);
  }
  try_start_transmission();
}

void DualPi2Link::try_start_transmission() {
  if (transmitting_) return;
  while (!l_queue_.empty() || !c_queue_.empty()) {
    // Time-shifted FIFO: compare head sojourns, crediting the L queue.
    bool from_l;
    const Time now = sim_.now();
    if (l_queue_.empty()) {
      from_l = false;
    } else if (c_queue_.empty()) {
      from_l = true;
    } else {
      const Duration l_sojourn = now - l_queue_.front().enqueued_at + params_.t_shift;
      const Duration c_sojourn = now - c_queue_.front().enqueued_at;
      from_l = l_sojourn >= c_sojourn;
    }

    Packet packet = from_l ? l_queue_.front() : c_queue_.front();
    if (from_l) {
      const auto l_backlog = static_cast<std::int64_t>(l_queue_.size());
      l_queue_.pop_front();
      l_backlog_bytes_ -= packet.size;
      const double sojourn_s = to_seconds(now - packet.enqueued_at);
      switch (core_.l_signal(rng_, sojourn_s, l_backlog)) {
        case DualPi2Core::Signal::kMark:
          packet.ecn = Ecn::kCe;
          ++counters_.l_marked;
          break;
        case DualPi2Core::Signal::kDrop:
          ++counters_.l_dropped;
          continue;  // offer the next head packet
        case DualPi2Core::Signal::kNone:
          break;
      }
    } else {
      c_queue_.pop_front();
      c_backlog_bytes_ -= packet.size;
    }

    const Duration tx_time =
        from_seconds(static_cast<double>(packet.size) * 8.0 / params_.rate_bps);
    transmitting_ = true;
    sim_.after(tx_time, [this, packet, from_l]() mutable {
      finish_transmission(std::move(packet), from_l);
    });
    return;
  }
}

void DualPi2Link::finish_transmission(Packet packet, bool from_l) {
  transmitting_ = false;
  if (departure_probe_) {
    departure_probe_(packet, sim_.now() - packet.enqueued_at, from_l);
  }
  if (sink_) sink_(packet);
  try_start_transmission();
}

// --- DualPi2Qdisc ------------------------------------------------------------

void DualPi2Qdisc::install(pi2::sim::Simulator& sim, const net::QueueView& view) {
  QueueDiscipline::install(sim, view);
  schedule_update();
}

void DualPi2Qdisc::schedule_update() {
  sim().after(params_.t_update, [this] {
    // Same controller input as the link: the C head packet's sojourn.
    core_.update(to_seconds(view().band_head_sojourn(kCBand)));
    schedule_update();
  });
}

std::size_t DualPi2Qdisc::select_band() {
  const net::QueueView& v = view();
  if (v.band_backlog_packets(kLBand) == 0) return kCBand;
  if (v.band_backlog_packets(kCBand) == 0) return kLBand;
  return v.band_head_sojourn(kLBand) + params_.t_shift >=
                 v.band_head_sojourn(kCBand)
             ? kLBand
             : kCBand;
}

DualPi2Qdisc::Verdict DualPi2Qdisc::enqueue(const net::Packet& packet) {
  if (net::is_scalable(packet.ecn)) return Verdict::kAccept;  // signalled at dequeue
  switch (core_.classic_signal(rng(), net::ecn_capable(packet.ecn))) {
    case DualPi2Core::Signal::kMark:
      return Verdict::kMark;
    case DualPi2Core::Signal::kDrop:
      return Verdict::kDrop;
    case DualPi2Core::Signal::kNone:
      break;
  }
  return Verdict::kAccept;
}

DualPi2Qdisc::Verdict DualPi2Qdisc::dequeue_band(const net::Packet& packet,
                                                 std::size_t band) {
  if (band != kLBand) return Verdict::kAccept;  // C was signalled at enqueue
  const double sojourn_s = to_seconds(sim().now() - packet.enqueued_at);
  // The head packet has already left the band's FIFO, so the view's count
  // excludes it; add it back for the l_thresh comparison.
  const std::int64_t l_backlog = view().band_backlog_packets(kLBand) + 1;
  switch (core_.l_signal(rng(), sojourn_s, l_backlog)) {
    case DualPi2Core::Signal::kMark:
      return Verdict::kMark;
    case DualPi2Core::Signal::kDrop:
      return Verdict::kDrop;
    case DualPi2Core::Signal::kNone:
      break;
  }
  return Verdict::kAccept;
}

}  // namespace pi2::core
