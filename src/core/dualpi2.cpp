#include "core/dualpi2.hpp"

#include <algorithm>
#include <cmath>

namespace pi2::core {

using pi2::net::Ecn;
using pi2::net::Packet;
using pi2::sim::Duration;
using pi2::sim::from_seconds;
using pi2::sim::to_seconds;
using pi2::sim::Time;

DualPi2Link::DualPi2Link(pi2::sim::Simulator& sim, Params params)
    : sim_(sim),
      params_(params),
      pi_(params.alpha_hz, params.beta_hz,
          std::min(1.0, params.k * std::sqrt(std::clamp(params.max_classic_prob,
                                                        0.0, 1.0)))),
      rng_(sim.rng().split()) {
  schedule_update();
}

Duration DualPi2Link::l_queue_delay() const {
  return from_seconds(static_cast<double>(l_backlog_bytes_) * 8.0 / params_.rate_bps);
}

Duration DualPi2Link::c_queue_delay() const {
  return from_seconds(static_cast<double>(c_backlog_bytes_) * 8.0 / params_.rate_bps);
}

void DualPi2Link::schedule_update() {
  sim_.after(params_.t_update, [this] {
    update();
    schedule_update();
  });
}

void DualPi2Link::update() {
  // The PI controller regulates the Classic queue's delay, measured as the
  // sojourn of the head packet (as Linux sch_dualpi2 does). Backlog/rate
  // would under-estimate it: C drains at less than the full link rate while
  // the scheduler favours L, and the controller must see that extra wait.
  double c_delay_s = 0.0;
  if (!c_queue_.empty()) {
    c_delay_s = to_seconds(sim_.now() - c_queue_.front().enqueued_at);
  }
  pi_.update(c_delay_s, to_seconds(params_.target));
}

void DualPi2Link::send(Packet packet) {
  if (total_backlog_packets() >= params_.buffer_packets) {
    ++counters_.tail_dropped;
    return;
  }
  const bool scalable = net::is_scalable(packet.ecn);
  if (!scalable) {
    // Classic: squared, coupled signal at enqueue.
    const double p_root = pi_.prob() / params_.k;
    if (std::max(rng_.uniform(), rng_.uniform()) < p_root) {
      if (net::ecn_capable(packet.ecn)) {
        packet.ecn = Ecn::kCe;
        ++counters_.c_marked;
      } else {
        ++counters_.c_dropped;
        return;
      }
    }
  }
  packet.enqueued_at = sim_.now();
  if (scalable) {
    ++counters_.l_enqueued;
    l_backlog_bytes_ += packet.size;
    l_queue_.push_back(packet);
  } else {
    ++counters_.c_enqueued;
    c_backlog_bytes_ += packet.size;
    c_queue_.push_back(packet);
  }
  try_start_transmission();
}

void DualPi2Link::try_start_transmission() {
  if (transmitting_) return;
  if (l_queue_.empty() && c_queue_.empty()) return;

  // Time-shifted FIFO: compare head sojourns, crediting the L queue.
  bool from_l;
  const Time now = sim_.now();
  if (l_queue_.empty()) {
    from_l = false;
  } else if (c_queue_.empty()) {
    from_l = true;
  } else {
    const Duration l_sojourn = now - l_queue_.front().enqueued_at + params_.t_shift;
    const Duration c_sojourn = now - c_queue_.front().enqueued_at;
    from_l = l_sojourn >= c_sojourn;
  }

  Packet packet = from_l ? l_queue_.front() : c_queue_.front();
  if (from_l) {
    l_queue_.pop_front();
    l_backlog_bytes_ -= packet.size;
    // L-queue marking at dequeue: max of the native sojourn ramp and the
    // coupled probability k * p'.
    const double sojourn_s = to_seconds(now - packet.enqueued_at);
    const double min_th = to_seconds(params_.l_min_th);
    const double range = std::max(to_seconds(params_.l_range), 1e-9);
    const double native = std::clamp((sojourn_s - min_th) / range, 0.0, 1.0);
    const double p_cl = std::min(params_.k * pi_.prob(), 1.0);
    const double p_l = std::max(native, p_cl);
    if (rng_.uniform() < p_l) {
      packet.ecn = Ecn::kCe;
      ++counters_.l_marked;
    }
  } else {
    c_queue_.pop_front();
    c_backlog_bytes_ -= packet.size;
  }

  const Duration tx_time =
      from_seconds(static_cast<double>(packet.size) * 8.0 / params_.rate_bps);
  transmitting_ = true;
  sim_.after(tx_time, [this, packet, from_l]() mutable {
    finish_transmission(std::move(packet), from_l);
  });
}

void DualPi2Link::finish_transmission(Packet packet, bool from_l) {
  transmitting_ = false;
  if (departure_probe_) {
    departure_probe_(packet, sim_.now() - packet.enqueued_at, from_l);
  }
  if (sink_) sink_(packet);
  try_start_transmission();
}

}  // namespace pi2::core
