// DualPI2 — the DualQ Coupled AQM the paper names as its deployment goal
// (references [12]/[13], later standardized as RFC 9332). Provided as the
// repository's extension beyond the single-queue experiments.
//
// Two queues share one link:
//   L queue: Scalable traffic (ECT(1)/CE). Immediate (unsmoothed) native
//            marking from a sojourn-time ramp, combined with the coupled
//            probability p_CL = k * p' from the Classic controller:
//            p_L = max(native, p_CL).
//   C queue: Classic traffic. PI controller on the C-queue delay produces
//            p'; Classic packets are dropped/marked with (p')^2.
// A time-shifted FIFO scheduler gives the L queue a head start of `t_shift`
// without starving the C queue.
//
// The component mirrors BottleneckLink's interface so scenarios can swap it
// in for the single-queue bottleneck.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "aqm/pi_core.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pi2::core {

class DualPi2Link {
 public:
  struct Params {
    double rate_bps = 40e6;
    std::int64_t buffer_packets = 40000;  ///< shared across both queues
    pi2::sim::Duration target = pi2::sim::from_millis(20);   // C queue target
    pi2::sim::Duration t_update = pi2::sim::from_millis(32);
    double alpha_hz = 0.625;
    double beta_hz = 6.25;
    double k = 2.0;
    double max_classic_prob = 0.25;
    /// Native L-queue ramp: marking rises linearly from 0 at `l_min_th`
    /// to 1 at `l_min_th + l_range` of sojourn time.
    pi2::sim::Duration l_min_th = pi2::sim::from_millis(1);
    pi2::sim::Duration l_range = pi2::sim::from_millis(1);
    /// Scheduler time shift in favour of the L queue.
    pi2::sim::Duration t_shift = pi2::sim::from_millis(50);
  };

  struct Counters {
    std::int64_t l_enqueued = 0;
    std::int64_t c_enqueued = 0;
    std::int64_t l_marked = 0;
    std::int64_t c_marked = 0;
    std::int64_t c_dropped = 0;
    std::int64_t tail_dropped = 0;
  };

  DualPi2Link(pi2::sim::Simulator& sim, Params params);

  void set_sink(std::function<void(net::Packet)> sink) { sink_ = std::move(sink); }
  /// Observer per departure: packet, sojourn time, and whether it used the
  /// L (Scalable) queue.
  void set_departure_probe(
      std::function<void(const net::Packet&, pi2::sim::Duration, bool)> probe) {
    departure_probe_ = std::move(probe);
  }

  void send(net::Packet packet);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] double p_prime() const { return pi_.prob(); }
  [[nodiscard]] pi2::sim::Duration l_queue_delay() const;
  [[nodiscard]] pi2::sim::Duration c_queue_delay() const;

 private:
  void update();
  void schedule_update();
  void try_start_transmission();
  void finish_transmission(net::Packet packet, bool from_l);
  [[nodiscard]] std::int64_t total_backlog_packets() const {
    return static_cast<std::int64_t>(l_queue_.size() + c_queue_.size());
  }

  pi2::sim::Simulator& sim_;
  Params params_;
  pi2::aqm::PiCore pi_;
  pi2::sim::Rng rng_;
  std::deque<net::Packet> l_queue_;
  std::deque<net::Packet> c_queue_;
  std::int64_t l_backlog_bytes_ = 0;
  std::int64_t c_backlog_bytes_ = 0;
  bool transmitting_ = false;
  Counters counters_;
  std::function<void(net::Packet)> sink_;
  std::function<void(const net::Packet&, pi2::sim::Duration, bool)> departure_probe_;
};

}  // namespace pi2::core
