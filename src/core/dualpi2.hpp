// DualPI2 — the DualQ Coupled AQM the paper names as its deployment goal
// (references [12]/[13], later standardized as RFC 9332).
//
// Two queues share one link:
//   L queue: Scalable traffic (ECT(1)/CE). Immediate (unsmoothed) native
//            marking from a sojourn-time ramp (saturated once the L backlog
//            reaches `l_thresh` packets), combined with the coupled
//            probability p_CL = min(k * p', 1) from the Classic controller:
//            p_L = max(native, p_CL).
//   C queue: Classic traffic. PI controller on the C-queue delay produces
//            p'; Classic packets are dropped/marked with (p')^2.
// A time-shifted FIFO scheduler gives the L queue a head start of `t_shift`
// without starving the C queue: a C head packet waits at most t_shift plus
// one L service time beyond an L head of equal age.
//
// Overload protection (RFC 9332 §4.2.3, Linux sch_pi2 `l_drop`): once the
// coupled probability k*p' reaches l_drop/100, ECN marking is no longer a
// sufficient signal (an unresponsive ECT(1) flood ignores CE), so the L
// queue switches from marking to squared-probability dropping — and
// ECN-capable Classic packets are dropped instead of marked — until k*p'
// falls back below half the threshold (hysteresis). p' itself is capped at
// sqrt(max_classic_prob) so the applied Classic probability never exceeds
// the paper's 25% overload cap; beyond that the shared buffer tail-drops,
// attributed per queue.
//
// Three faces share one DualPi2Core:
//   - DualPi2Link:  standalone two-queue bottleneck (the original extension
//                    component, kept for direct experiments).
//   - DualPi2Qdisc: first-class QueueDiscipline. The owning BottleneckLink
//                    keeps band 0 (L) and band 1 (C) FIFOs; the discipline
//                    classifies by ECT codepoint and schedules via the
//                    time-shifted comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "aqm/pi_core.hpp"
#include "net/packet.hpp"
#include "net/queue_discipline.hpp"
#include "sim/simulator.hpp"

namespace pi2::core {

/// Knobs shared by DualPi2Link and DualPi2Qdisc. Defaults follow the Linux
/// sch_pi2 reference parameterization (k 2, t_shift 30ms, l_drop 100,
/// l_thresh 3000) with this repo's PI gains/target.
struct DualPi2Params {
  pi2::sim::Duration target = pi2::sim::from_millis(20);  ///< C-queue target
  pi2::sim::Duration t_update = pi2::sim::from_millis(32);
  double alpha_hz = 0.625;
  double beta_hz = 6.25;
  double k = 2.0;  ///< coupling factor: p_CL = k * p'
  double max_classic_prob = pi2::aqm::kDefaultMaxClassicProb;
  /// Native L-queue ramp: marking rises linearly from 0 at `l_min_th`
  /// to 1 at `l_min_th + l_range` of sojourn time.
  pi2::sim::Duration l_min_th = pi2::sim::from_millis(1);
  pi2::sim::Duration l_range = pi2::sim::from_millis(1);
  /// Scheduler time shift in favour of the L queue.
  pi2::sim::Duration t_shift = pi2::sim::from_millis(30);
  /// Overload switchover threshold as a percentage of coupled probability:
  /// marking turns into dropping once k*p' >= l_drop_percent/100. The
  /// sch_pi2 default (100) engages exactly when the coupling saturates.
  double l_drop_percent = 100.0;
  /// L backlog (in packets) that saturates the native ramp to 1 regardless
  /// of sojourn time — a count-based backstop against sojourn-blind floods.
  std::int64_t l_thresh_packets = 3000;
};

/// Controller + signalling policy shared by the link and the qdisc. Holds
/// the PI state, the overload hysteresis, and the per-packet decision
/// helpers, so the two front ends cannot drift.
class DualPi2Core {
 public:
  enum class Signal { kNone, kMark, kDrop };

  explicit DualPi2Core(const DualPi2Params& params);

  /// One PI tick on the Classic queue delay (head sojourn, seconds),
  /// followed by the overload hysteresis. Non-finite samples are rejected
  /// by the PiCore guards.
  void update(double c_delay_s);

  /// Decision for an arriving Classic packet: squared probability via the
  /// double roll max(Y1,Y2) < p'. Under overload ECN capability is ignored
  /// and the packet is dropped, not marked.
  Signal classic_signal(pi2::sim::Rng& rng, bool ecn_capable);

  /// Decision for a departing L packet: p_L = max(native, k*p') marking,
  /// switched to squared-probability dropping under overload (survivors
  /// still carry the mark).
  Signal l_signal(pi2::sim::Rng& rng, double sojourn_s,
                  std::int64_t l_backlog_packets);

  /// Native sojourn-ramp probability, saturated at `l_thresh` packets of L
  /// backlog. A non-finite sojourn is guarded to 0 and counted.
  [[nodiscard]] double l_native(double sojourn_s,
                                std::int64_t l_backlog_packets);

  [[nodiscard]] double p_prime() const { return pi_.prob(); }
  /// Applied Classic probability p_C = (p')^2.
  [[nodiscard]] double p_classic() const { return pi_.prob() * pi_.prob(); }
  /// Coupled L probability p_CL = min(k * p', 1).
  [[nodiscard]] double p_coupled() const;
  [[nodiscard]] bool overloaded() const { return overloaded_; }
  [[nodiscard]] std::uint64_t guard_events() const {
    return pi_.guard_events() + guard_events_;
  }
  [[nodiscard]] const DualPi2Params& params() const { return params_; }

 private:
  DualPi2Params params_;
  pi2::aqm::PiCore pi_;
  bool overloaded_ = false;
  std::uint64_t guard_events_ = 0;
};

/// Standalone two-queue bottleneck mirroring BottleneckLink's interface so
/// direct experiments can swap it in for the single-queue bottleneck.
class DualPi2Link {
 public:
  struct Params : DualPi2Params {
    double rate_bps = 40e6;
    std::int64_t buffer_packets = 40000;  ///< shared across both queues
  };

  struct Counters {
    std::int64_t l_enqueued = 0;
    std::int64_t c_enqueued = 0;
    std::int64_t l_marked = 0;
    std::int64_t c_marked = 0;
    std::int64_t l_dropped = 0;  ///< overload-mode squared drops
    std::int64_t c_dropped = 0;
    std::int64_t tail_dropped = 0;
    /// Per-queue attribution of the shared-buffer tail drops.
    std::int64_t l_tail_dropped = 0;
    std::int64_t c_tail_dropped = 0;
  };

  DualPi2Link(pi2::sim::Simulator& sim, Params params);

  void set_sink(std::function<void(net::Packet)> sink) { sink_ = std::move(sink); }
  /// Observer per departure: packet, sojourn time, and whether it used the
  /// L (Scalable) queue.
  void set_departure_probe(
      std::function<void(const net::Packet&, pi2::sim::Duration, bool)> probe) {
    departure_probe_ = std::move(probe);
  }

  void send(net::Packet packet);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] double p_prime() const { return core_.p_prime(); }
  [[nodiscard]] bool overloaded() const { return core_.overloaded(); }
  [[nodiscard]] std::uint64_t guard_events() const { return core_.guard_events(); }
  [[nodiscard]] pi2::sim::Duration l_queue_delay() const;
  [[nodiscard]] pi2::sim::Duration c_queue_delay() const;

 private:
  void update();
  void schedule_update();
  void try_start_transmission();
  void finish_transmission(net::Packet packet, bool from_l);
  [[nodiscard]] std::int64_t total_backlog_packets() const {
    return static_cast<std::int64_t>(l_queue_.size() + c_queue_.size());
  }

  pi2::sim::Simulator& sim_;
  Params params_;
  DualPi2Core core_;
  pi2::sim::Rng rng_;
  std::deque<net::Packet> l_queue_;
  std::deque<net::Packet> c_queue_;
  std::int64_t l_backlog_bytes_ = 0;
  std::int64_t c_backlog_bytes_ = 0;
  bool transmitting_ = false;
  Counters counters_;
  std::function<void(net::Packet)> sink_;
  std::function<void(const net::Packet&, pi2::sim::Duration, bool)> departure_probe_;
};

/// First-class DualPI2 queue discipline. The owning queue keeps two FIFO
/// bands — band 0 is L (Scalable), band 1 is C (Classic) — and consults
/// select_band() for the time-shifted scheduling decision. Classic signals
/// apply at enqueue, L signals at dequeue (immediate sojourn marking).
class DualPi2Qdisc final : public net::QueueDiscipline {
 public:
  using Params = DualPi2Params;
  static constexpr std::size_t kLBand = 0;
  static constexpr std::size_t kCBand = 1;

  DualPi2Qdisc() : DualPi2Qdisc(Params{}) {}
  explicit DualPi2Qdisc(Params params) : params_(params), core_(params) {}

  void install(pi2::sim::Simulator& sim, const net::QueueView& view) override;

  [[nodiscard]] std::size_t band_count() const override { return 2; }
  [[nodiscard]] std::size_t classify(const net::Packet& packet) const override {
    return net::is_scalable(packet.ecn) ? kLBand : kCBand;
  }
  [[nodiscard]] std::size_t select_band() override;

  Verdict enqueue(const net::Packet& packet) override;
  Verdict dequeue_band(const net::Packet& packet, std::size_t band) override;

  /// The applied Classic probability p_C = (p')^2.
  [[nodiscard]] double classic_probability() const override {
    return core_.p_classic();
  }
  /// The coupled L probability p_CL = min(k * p', 1) (the native ramp is
  /// per-packet and not part of the gauge).
  [[nodiscard]] double scalable_probability() const override {
    return core_.p_coupled();
  }
  [[nodiscard]] double coupling_factor() const override { return params_.k; }
  [[nodiscard]] std::uint64_t guard_events() const override {
    return core_.guard_events();
  }
  [[nodiscard]] bool overloaded() const { return core_.overloaded(); }
  [[nodiscard]] double p_prime() const { return core_.p_prime(); }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  void schedule_update();

  Params params_;
  DualPi2Core core_;
};

}  // namespace pi2::core
