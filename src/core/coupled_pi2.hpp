// Coupled PI + PI2 in a single queue (paper Figure 9).
//
// One linear PI controller drives the Scalable marking probability p_s.
// Packets are classified by ECN codepoint:
//   ECT(1) or CE  (Scalable, e.g. DCTCP):  mark  iff Y < p_s
//   ECT(0)        (Classic ECN):           mark  iff max(Y1,Y2) < p_s / k
//   Not-ECT       (Classic drop-based):    drop  iff max(Y1,Y2) < p_s / k
//
// so the Classic probability is p_c = (p_s / k)^2 — paper equation (14) —
// which equalizes steady-state rates between DCTCP and Cubic/CReno. The
// coupling factor k defaults to 2 (derived ~1.19, validated empirically as 2;
// k = 2 is also the optimal gain ratio for stability, paper §4).
//
// Overload: p_s is capped at k * sqrt(max_classic_prob) (with the defaults,
// 2 * sqrt(0.25) = 1), i.e. 100% Scalable marking and 25% Classic drop; any
// further excess grows the queue until tail-drop takes over, which also
// handles unresponsive floods.
#pragma once

#include "aqm/pi_core.hpp"
#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::core {

class CoupledPi2Aqm : public net::QueueDiscipline {
 public:
  struct Params {
    pi2::sim::Duration target = pi2::sim::from_millis(20);
    pi2::sim::Duration t_update = pi2::sim::from_millis(32);
    /// Table 1 ("PI/PI2 + DCTCP"): alpha = 10/16 Hz, beta = 100/16 Hz —
    /// double the Classic PI2 gains, matching k = 2.
    double alpha_hz = 0.625;
    double beta_hz = 6.25;
    double k = 2.0;  ///< coupling factor between Scalable and Classic
    double max_classic_prob = pi2::aqm::kDefaultMaxClassicProb;
  };

  CoupledPi2Aqm();
  explicit CoupledPi2Aqm(Params params);

  void install(pi2::sim::Simulator& sim, const net::QueueView& view) override;
  Verdict enqueue(const net::Packet& packet) override;

  /// Classic drop/mark probability p_c = (p_s / k)^2.
  [[nodiscard]] double classic_probability() const override;
  /// Scalable marking probability p_s.
  [[nodiscard]] double scalable_probability() const override { return pi_.prob(); }
  [[nodiscard]] std::uint64_t guard_events() const override { return pi_.guard_events(); }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  void schedule_update();

  Params params_;
  pi2::aqm::PiCore pi_;
};

}  // namespace pi2::core
