// PI2 — "PI Improved with a square" (the paper's contribution, Figure 8).
//
// A plain linear PI controller drives a pseudo-probability p' that is by
// definition proportional to load; the output stage squares it when applying
// congestion signals to Classic traffic:
//
//   drop/mark  iff  max(Y1, Y2) < p'      =>  P[signal] = (p')^2
//
// This counterbalances the square-root law of Classic TCP (W ~ 1/sqrt(p)),
// flattening the loop gain in p' so that *constant* gain factors work over
// the whole load range — no autotune table, no heuristics. The flat margin
// allows gains 2.5x higher than PIE's base values (total loop gain ~3.5x,
// ~5.5 dB) without instability (paper §4 and Appendix B).
#pragma once

#include "aqm/pi_core.hpp"
#include "net/queue_discipline.hpp"
#include "sim/time.hpp"

namespace pi2::core {

class Pi2Aqm : public net::QueueDiscipline {
 public:
  struct Params {
    pi2::sim::Duration target = pi2::sim::from_millis(20);
    pi2::sim::Duration t_update = pi2::sim::from_millis(32);
    /// 2.5x the PIE base gains (paper Figures 6/7: alpha = 0.3125 Hz,
    /// beta = 3.125 Hz), safe because the PI2 gain margin is flat.
    double alpha_hz = 0.3125;
    double beta_hz = 3.125;
    bool ecn = true;  ///< mark ECN-capable (Classic ECT(0)) packets
    /// Overload cap on the applied Classic probability (paper §5: 25%).
    /// Beyond it the queue grows and tail-drop takes over, which also
    /// controls unresponsive traffic. Internally caps p' at sqrt(cap).
    double max_classic_prob = pi2::aqm::kDefaultMaxClassicProb;
  };

  Pi2Aqm();
  explicit Pi2Aqm(Params params);

  void install(pi2::sim::Simulator& sim, const net::QueueView& view) override;
  Verdict enqueue(const net::Packet& packet) override;

  /// The applied (squared) probability p = (p')^2.
  [[nodiscard]] double classic_probability() const override {
    return pi_.prob() * pi_.prob();
  }
  /// The internal linear pseudo-probability p'.
  [[nodiscard]] double scalable_probability() const override { return pi_.prob(); }
  [[nodiscard]] std::uint64_t guard_events() const override { return pi_.guard_events(); }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  void schedule_update();

  Params params_;
  pi2::aqm::PiCore pi_;
};

}  // namespace pi2::core
