#include "core/coupled_pi2.hpp"

#include <algorithm>
#include <cmath>

namespace pi2::core {

using pi2::sim::to_seconds;

CoupledPi2Aqm::CoupledPi2Aqm() : CoupledPi2Aqm(Params{}) {}

CoupledPi2Aqm::CoupledPi2Aqm(Params params)
    : params_(params),
      pi_(params.alpha_hz, params.beta_hz,
          std::min(1.0, params.k * std::sqrt(std::clamp(params.max_classic_prob,
                                                        0.0, 1.0)))) {}

void CoupledPi2Aqm::install(pi2::sim::Simulator& sim, const net::QueueView& view) {
  QueueDiscipline::install(sim, view);
  schedule_update();
}

void CoupledPi2Aqm::schedule_update() {
  sim().after(params_.t_update, [this] {
    pi_.update(to_seconds(view().queue_delay()), to_seconds(params_.target));
    schedule_update();
  });
}

double CoupledPi2Aqm::classic_probability() const {
  const double p = pi_.prob() / params_.k;
  return p * p;
}

CoupledPi2Aqm::Verdict CoupledPi2Aqm::enqueue(const net::Packet& packet) {
  const double p_s = pi_.prob();
  if (net::is_scalable(packet.ecn)) {
    // "Think once to mark": linear probability for Scalable traffic.
    return rng().uniform() < p_s ? Verdict::kMark : Verdict::kAccept;
  }
  // "Think twice to drop": squared, coupled probability for Classic.
  const double p_classic_root = p_s / params_.k;
  if (std::max(rng().uniform(), rng().uniform()) >= p_classic_root) {
    return Verdict::kAccept;
  }
  return net::ecn_capable(packet.ecn) ? Verdict::kMark : Verdict::kDrop;
}

}  // namespace pi2::core
