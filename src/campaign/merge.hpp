// Shard split and merge: how one campaign runs as N worker processes.
//
// shard_range() deals point [lo, hi) slices so the N shards tile the
// campaign exactly; each worker journals its slice independently (its
// journal carries a `shard` record declaring the claim). merge_shards()
// stitches the journals back together, refusing anything that would make
// the merged artifact differ from a serial run: a journal from another
// campaign, a stale digest, overlapping or gappy ranges, a point missing
// inside a declared range, or one point journaled twice with different
// bytes. Every refusal maps to its own durable::StatusCode (see
// src/durable/status.hpp's shard-merge taxonomy), so tests and operators
// can tell the failure modes apart from the exit alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "durable/status.hpp"

namespace pi2::campaign {

/// Half-open global point range.
struct ShardRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// The slice shard `index` (1-based) of `count` claims out of `points`:
/// [floor((i-1)*P/N), floor(i*P/N)). Contiguous, exhaustive, and within one
/// point of even.
[[nodiscard]] ShardRange shard_range(std::size_t points, std::size_t index,
                                     std::size_t count);

/// Parses a `--shard i/N` argument. 1 <= i <= N required.
[[nodiscard]] bool parse_shard(const std::string& arg, std::size_t& index,
                               std::size_t& count);

/// What a successful merge hands back: one journal payload per campaign
/// point, in global index order, ready to decode and replay through the
/// serial consume path.
struct MergeResult {
  std::vector<std::string> payloads;
  std::size_t shards = 0;       ///< journals merged
  std::size_t interrupted = 0;  ///< interruption markers seen across shards
};

/// Validates `journal_paths` against the expanded campaign and collects the
/// payloads. On any defect, returns the taxonomy Status (message names the
/// offending journal) and `out` must be discarded.
[[nodiscard]] durable::Status merge_shards(
    const Expansion& campaign, const std::vector<std::string>& journal_paths,
    MergeResult& out);

}  // namespace pi2::campaign
