// Campaign spec: the declarative grid language behind bench/pi2_campaign.
//
// A campaign is a JSON-subset file that names a scenario *template* (which
// figure family builds the per-point config) and lists its *axes* (the
// swept parameters). expand() turns the spec into an ordered point list —
// row-major, last axis fastest, exactly the nesting order of the hand-rolled
// loops in the fig binaries it replaces — and stamps the whole expansion
// with a stable FNV-1a digest. The digest covers everything that determines
// results (template, seed, durations, resolved axis values *after* smoke
// capping), so a journal keyed by it can never replay points from a grid
// that no longer exists.
//
// Spec grammar (strict: unknown keys are parse errors):
//
//   {
//     "name": "fig15",                 // campaign identity (journal checks)
//     "template": "dumbbell_sweep",    // | "overload" | "parking_lot"
//                                      // | "rtt_mix" | "resilience"
//     "seed": 1,                       // base RNG seed (CLI --seed overrides)
//     "link_mbps": 10,                 // optional fixed-parameter overrides
//     "rtt_ms": 10,
//     "axes": [
//       {"name": "aqm", "cap": false, "values": ["pie", "coupled-pi2"]},
//       {"name": "rate_mbps", "values": [4, 40, 120],
//        "full": [4, 12, 40, 120, 200]}
//     ]
//   }
//
// Per axis: `values` is the quick grid, `full` (optional) the --full grid,
// and `cap` (default true) says whether --grid-cap truncates the axis —
// matching the fig binaries, where --smoke caps the numeric grids but never
// the AQM/mix enumerations of the 15-18 sweep.
//
// The campaign layer is deliberately scenario-free: axis values are strings
// and numbers, and bench/pi2_campaign maps them onto scenario types. That
// keeps pi2_campaign (the library) linkable from tests and check oracles
// without dragging in the simulator. `fault_schedule` axis values follow the
// same rule: the spec treats them as opaque non-empty strings (preset names
// or inline literals, see faults/fault_presets.hpp) folded into the digest,
// and the driver resolves them against the faults registry at run time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pi2::campaign {

/// Scenario families a spec can instantiate; each maps to one fig binary's
/// grid loop and per-point config builder.
enum class TemplateId {
  kDumbbellSweep,
  kOverload,
  kParkingLot,
  kRttMix,
  kResilience,
};

[[nodiscard]] const char* to_string(TemplateId id);

/// All recognizable axis names, alphabetical — the same set (and order) the
/// unknown-axis validate() message lists. For CLI enumeration (--list/--help).
[[nodiscard]] const std::vector<std::string>& axis_names();

/// All template names, declaration order.
[[nodiscard]] const std::vector<std::string>& template_names();

/// The axes a template requires (all of them mandatory in a spec).
[[nodiscard]] const std::vector<std::string>& axes_of_template(TemplateId id);

/// One swept value: a finite double or a non-empty string, never both.
struct AxisValue {
  bool is_number = false;
  double number = 0.0;
  std::string text;

  [[nodiscard]] bool operator==(const AxisValue& other) const {
    return is_number == other.is_number && number == other.number &&
           text == other.text;
  }
};

[[nodiscard]] AxisValue axis_number(double v);
[[nodiscard]] AxisValue axis_text(std::string v);

struct Axis {
  std::string name;
  /// --grid-cap truncates this axis (the fig binaries cap numeric grids but
  /// not the sweep's AQM/mix enumerations).
  bool cap = true;
  std::vector<AxisValue> values;       ///< quick-mode grid
  std::vector<AxisValue> full_values;  ///< --full grid (empty = use `values`)
};

struct CampaignSpec {
  std::string name;
  std::string template_name;
  std::uint64_t seed = 1;
  std::vector<Axis> axes;
  /// Fixed-parameter overrides (0 = the template's default: 10 Mb/s link,
  /// 10 ms RTT for the single-bottleneck templates).
  double link_mbps = 0;
  double rtt_ms = 0;

  /// "" when the spec is well-formed; otherwise one message in the
  /// TopologyConfig::validate() house style ("axes[1].values[0] must ...").
  [[nodiscard]] std::string validate() const;

  /// Only meaningful when validate() == "".
  [[nodiscard]] TemplateId template_id() const;
};

/// Parses a spec from JSON text. Returns "" and fills `spec` on success,
/// else a parse-level error message ("spec: ..."). Semantic checks live in
/// validate(), not here.
[[nodiscard]] std::string parse_spec(const std::string& text,
                                     CampaignSpec& spec);

/// Reads and parses the file at `path`.
[[nodiscard]] std::string load_spec(const std::string& path,
                                    CampaignSpec& spec);

/// Canonical serialization: parse_spec(serialize_spec(s)) reproduces `s`
/// exactly (field order, shortest round-trip number formatting).
[[nodiscard]] std::string serialize_spec(const CampaignSpec& spec);

/// The mode/override knobs the CLI resolves before expansion (mirrors the
/// fig binaries' --full / --smoke / --grid-cap / --min-link-mbps handling).
struct ExpandOptions {
  bool full = false;
  int grid_cap = 0;             ///< truncate cap-enabled axes to this length
  double min_link_mbps = 0;     ///< drop rate_mbps values below this
  double duration_s_override = 0;
  double stats_start_s_override = 0;
  bool use_seed = false;        ///< replace the spec's seed (CLI --seed)
  std::uint64_t seed = 0;
};

struct CampaignPoint {
  std::size_t index = 0;    ///< global position, row-major over the axes
  std::uint64_t seed = 0;   ///< sim::Rng::derive_seed(base_seed, index)
  std::uint64_t key = 0;    ///< journal key (digest + index + seed + values)
  std::vector<AxisValue> values;  ///< aligned with Expansion::axes
};

/// A fully resolved campaign: the ordered point list plus everything the
/// runner needs to rebuild any point's config.
struct Expansion {
  std::string name;
  TemplateId template_id = TemplateId::kDumbbellSweep;
  std::uint64_t base_seed = 1;
  double duration_s = 0;
  double stats_start_s = 0;
  double link_mbps = 0;   ///< resolved (template default applied)
  double rtt_ms = 0;
  std::vector<Axis> axes;  ///< post mode-selection/filter/cap; values only
  std::vector<CampaignPoint> points;
  std::uint64_t digest = 0;

  /// Index of `axis` in `axes`, or -1.
  [[nodiscard]] int axis_of(const std::string& axis) const;
  /// Value of `axis` at `point`; requires the axis to exist with the right
  /// kind (expansion comes from a validated spec, so lookups are total).
  [[nodiscard]] double number(const CampaignPoint& point,
                              const std::string& axis) const;
  [[nodiscard]] const std::string& text(const CampaignPoint& point,
                                        const std::string& axis) const;
};

/// Expands a *validated* spec. Order is row-major over the axes as listed
/// (last axis fastest); per-point seeds derive from (base seed, index).
[[nodiscard]] Expansion expand(const CampaignSpec& spec,
                               const ExpandOptions& opts);

}  // namespace pi2::campaign
