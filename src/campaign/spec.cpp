#include "campaign/spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "durable/journal.hpp"
#include "sim/rng.hpp"

namespace pi2::campaign {

namespace {

/// Shortest round-trip rendering (4 -> "4", 0.5 -> "0.5"), so serialized
/// specs stay human-readable and parse back to the identical double.
std::string format_number(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- JSON subset parser -----------------------------------------------------
// Hand-rolled (no dependencies): objects, arrays, strings, numbers, bools,
// null. Field order is preserved so strict key checking can point at the
// offending key.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// "" on success; the parsed document lands in `out`.
  std::string parse(JsonValue& out) {
    skip_ws();
    std::string err = parse_value(out);
    if (!err.empty()) return err;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing content");
    return "";
  }

 private:
  std::string error(const std::string& what) const {
    return "spec: " + what + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.text);
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return error(std::string("unexpected character '") + c + "'");
  }

  std::string parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return "";
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected a quoted key");
      }
      std::string key;
      std::string err = parse_string(key);
      if (!err.empty()) return err;
      skip_ws();
      if (!eat(':')) return error("expected ':' after key");
      skip_ws();
      JsonValue value;
      err = parse_value(value);
      if (!err.empty()) return err;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return "";
      return error("expected ',' or '}' in object");
    }
  }

  std::string parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return "";
    while (true) {
      skip_ws();
      JsonValue value;
      std::string err = parse_value(value);
      if (!err.empty()) return err;
      out.items.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return "";
      return error("expected ',' or ']' in array");
    }
  }

  std::string parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return "";
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char next = text_[pos_++];
      switch (next) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape");
          }
          out += static_cast<char>(value);  // BMP-ASCII subset is enough here
          break;
        }
        default:
          return error("unknown escape");
      }
    }
    return error("unterminated string");
  }

  std::string parse_number(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(start, &end);
    if (end == start) return error("malformed number");
    if (!std::isfinite(out.number)) return error("non-finite number");
    // Raw token, kept alongside the double: 64-bit seeds overflow the
    // double's 53-bit mantissa, so the seed mapping rereads the digits.
    out.text.assign(start, static_cast<std::size_t>(end - start));
    pos_ += static_cast<std::size_t>(end - start);
    return "";
  }

  std::string parse_keyword(JsonValue& out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return "";
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      pos_ += 5;
      return "";
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.type = JsonValue::Type::kNull;
      pos_ += 4;
      return "";
    }
    return error("unknown keyword");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- spec mapping -----------------------------------------------------------

std::string values_from_json(const JsonValue& array, const char* what,
                             std::vector<AxisValue>& out) {
  if (array.type != JsonValue::Type::kArray) {
    return std::string("spec: '") + what + "' must be an array";
  }
  out.clear();
  for (const JsonValue& item : array.items) {
    if (item.type == JsonValue::Type::kNumber) {
      out.push_back(axis_number(item.number));
    } else if (item.type == JsonValue::Type::kString) {
      out.push_back(axis_text(item.text));
    } else {
      return "spec: axis values must be numbers or strings";
    }
  }
  return "";
}

std::string axis_from_json(const JsonValue& object, Axis& axis) {
  if (object.type != JsonValue::Type::kObject) {
    return "spec: axis entries must be objects";
  }
  for (const auto& [key, value] : object.fields) {
    if (key == "name") {
      if (value.type != JsonValue::Type::kString) {
        return "spec: axis 'name' must be a string";
      }
      axis.name = value.text;
    } else if (key == "cap") {
      if (value.type != JsonValue::Type::kBool) {
        return "spec: 'cap' must be true or false";
      }
      axis.cap = value.boolean;
    } else if (key == "values") {
      const std::string err = values_from_json(value, "values", axis.values);
      if (!err.empty()) return err;
    } else if (key == "full") {
      const std::string err = values_from_json(value, "full", axis.full_values);
      if (!err.empty()) return err;
    } else {
      return "spec: unknown axis key '" + key + "'";
    }
  }
  return "";
}

struct AxisRule {
  const char* name;
  bool numeric;
};

/// All recognizable axes, alphabetical (the error message lists them).
constexpr AxisRule kAxes[] = {
    {"aqm", false},      {"cc_mix", false},      {"ecn", false},
    {"fault_schedule", false}, {"fluid_flows", true}, {"hops", true},
    {"rate_mbps", true}, {"rtt_ms", true},       {"udp_mult", true},
};

const AxisRule* axis_rule(const std::string& name) {
  for (const AxisRule& rule : kAxes) {
    if (name == rule.name) return &rule;
  }
  return nullptr;
}

/// Axes each template accepts — all of them required, matching the fixed
/// loop nests of the fig binaries the templates reproduce.
const std::vector<std::string>& template_axes(TemplateId id) {
  static const std::vector<std::string> dumbbell{"aqm", "cc_mix", "rate_mbps",
                                                 "rtt_ms"};
  static const std::vector<std::string> overload{"ecn", "udp_mult"};
  static const std::vector<std::string> parking{"aqm", "hops"};
  static const std::vector<std::string> rtt_mix{"aqm"};
  static const std::vector<std::string> resilience{"aqm", "fault_schedule",
                                                   "fluid_flows"};
  switch (id) {
    case TemplateId::kDumbbellSweep: return dumbbell;
    case TemplateId::kOverload: return overload;
    case TemplateId::kParkingLot: return parking;
    case TemplateId::kRttMix: return rtt_mix;
    case TemplateId::kResilience: return resilience;
  }
  return dumbbell;
}

bool known_template(const std::string& name, TemplateId& id) {
  if (name == "dumbbell_sweep") { id = TemplateId::kDumbbellSweep; return true; }
  if (name == "overload") { id = TemplateId::kOverload; return true; }
  if (name == "parking_lot") { id = TemplateId::kParkingLot; return true; }
  if (name == "rtt_mix") { id = TemplateId::kRttMix; return true; }
  if (name == "resilience") { id = TemplateId::kResilience; return true; }
  return false;
}

bool known_aqm(TemplateId id, const std::string& name) {
  if (id == TemplateId::kDumbbellSweep) {
    // The 15-18 sweep engine labels records "PIE" / "PI2(coupled)" only.
    return name == "pie" || name == "coupled-pi2";
  }
  if (id == TemplateId::kResilience) {
    // The resilience grid compares recovery across the paper's contenders.
    return name == "coupled-pi2" || name == "dualpi2" || name == "pie";
  }
  static const char* kNames[] = {"fifo",       "pie",   "bare-pie", "pi",
                                 "pi2",        "coupled-pi2", "red", "codel",
                                 "curvy-red",  "step",  "dualpi2"};
  return std::any_of(std::begin(kNames), std::end(kNames),
                     [&](const char* n) { return name == n; });
}

bool known_cc_mix(const std::string& name) {
  return name == "cubic/ecn-cubic" || name == "cubic/dctcp";
}

bool known_ecn(const std::string& name) {
  return name == "not-ect" || name == "ect1" || name == "ect0";
}

/// One axis value against its rule; `label` is e.g. "axes[0].values[2]".
std::string validate_value(TemplateId id, const AxisRule& rule,
                           const AxisValue& value, const std::string& label) {
  if (rule.numeric) {
    if (!value.is_number) {
      return label + " must be a number for axis '" + rule.name + "'";
    }
    if (std::string("fluid_flows") == rule.name) {
      // 0 is a legal background level (the no-fluid baseline) and counts are
      // whole flows; the fluid tier is O(1) in count, so 10^5+ is fine.
      if (!std::isfinite(value.number) || value.number < 0 ||
          value.number != std::floor(value.number)) {
        return label + " must be a whole number of fluid flows >= 0 (got " +
               format_number(value.number) + ")";
      }
      return "";
    }
    if (!std::isfinite(value.number) || value.number <= 0) {
      return label + " must be a finite value > 0 (got " +
             format_number(value.number) + ")";
    }
    if (std::string("hops") == rule.name &&
        (value.number != std::floor(value.number) || value.number > 8)) {
      return label + " must be a whole number of hops in [1, 8] (got " +
             format_number(value.number) + ")";
    }
    return "";
  }
  if (value.is_number) {
    return label + " must be a string for axis '" + rule.name + "'";
  }
  if (std::string("fault_schedule") == rule.name) {
    // Opaque to the campaign layer: presets / literals resolve against
    // faults::resolve_schedule() in the driver (the spec stays scenario-free).
    if (value.text.empty()) {
      return label + " must be a non-empty fault preset name or literal";
    }
    return "";
  }
  if (std::string("aqm") == rule.name && !known_aqm(id, value.text)) {
    return label + " '" + value.text + "' is not a recognized aqm for template '" +
           to_string(id) + "'";
  }
  if (std::string("cc_mix") == rule.name && !known_cc_mix(value.text)) {
    return label + " '" + value.text +
           "' is not a recognized cc_mix (cubic/ecn-cubic, cubic/dctcp)";
  }
  if (std::string("ecn") == rule.name && !known_ecn(value.text)) {
    return label + " '" + value.text +
           "' is not a recognized ecn codepoint (not-ect, ect1, ect0)";
  }
  return "";
}

std::string values_to_json(const std::vector<AxisValue>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    if (values[i].is_number) {
      out += format_number(values[i].number);
    } else {
      out += "\"" + escape(values[i].text) + "\"";
    }
  }
  return out + "]";
}

}  // namespace

const char* to_string(TemplateId id) {
  switch (id) {
    case TemplateId::kDumbbellSweep: return "dumbbell_sweep";
    case TemplateId::kOverload: return "overload";
    case TemplateId::kParkingLot: return "parking_lot";
    case TemplateId::kRttMix: return "rtt_mix";
    case TemplateId::kResilience: return "resilience";
  }
  return "?";
}

const std::vector<std::string>& axis_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const AxisRule& rule : kAxes) out.emplace_back(rule.name);
    return out;
  }();
  return names;
}

const std::vector<std::string>& template_names() {
  static const std::vector<std::string> names{
      "dumbbell_sweep", "overload", "parking_lot", "rtt_mix", "resilience"};
  return names;
}

const std::vector<std::string>& axes_of_template(TemplateId id) {
  return template_axes(id);
}

AxisValue axis_number(double v) {
  AxisValue value;
  value.is_number = true;
  value.number = v;
  return value;
}

AxisValue axis_text(std::string v) {
  AxisValue value;
  value.text = std::move(v);
  return value;
}

TemplateId CampaignSpec::template_id() const {
  TemplateId id = TemplateId::kDumbbellSweep;
  known_template(template_name, id);
  return id;
}

std::string CampaignSpec::validate() const {
  if (name.empty()) return "name must be a non-empty string";
  TemplateId id = TemplateId::kDumbbellSweep;
  if (!known_template(template_name, id)) {
    return "template '" + template_name +
           "' is not a recognized template (dumbbell_sweep, overload, "
           "parking_lot, rtt_mix, resilience)";
  }
  if (link_mbps < 0 || (link_mbps != 0 && !std::isfinite(link_mbps))) {
    return "link_mbps must be a finite rate > 0 (got " +
           format_number(link_mbps) + ")";
  }
  if (rtt_ms < 0 || (rtt_ms != 0 && !std::isfinite(rtt_ms))) {
    return "rtt_ms must be a finite delay > 0 (got " + format_number(rtt_ms) +
           ")";
  }
  if (axes.empty()) return "axes must list at least one axis";
  const std::vector<std::string>& allowed = template_axes(id);
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const Axis& axis = axes[i];
    const std::string label = "axes[" + std::to_string(i) + "]";
    if (axis.name.empty()) return label + ".name must be a non-empty name";
    const AxisRule* rule = axis_rule(axis.name);
    if (rule == nullptr) {
      return label + ".name '" + axis.name +
             "' is not a recognized axis (aqm, cc_mix, ecn, fault_schedule, "
             "fluid_flows, hops, rate_mbps, rtt_ms, udp_mult)";
    }
    if (std::find(allowed.begin(), allowed.end(), axis.name) == allowed.end()) {
      return label + ".name '" + axis.name + "' is not an axis of template '" +
             template_name + "'";
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (axes[j].name == axis.name) {
        return label + ".name '" + axis.name + "' duplicates axes[" +
               std::to_string(j) + "]";
      }
    }
    if (axis.values.empty()) {
      return label + ".values must list at least one value";
    }
    for (std::size_t j = 0; j < axis.values.size(); ++j) {
      const std::string err =
          validate_value(id, *rule, axis.values[j],
                         label + ".values[" + std::to_string(j) + "]");
      if (!err.empty()) return err;
    }
    for (std::size_t j = 0; j < axis.full_values.size(); ++j) {
      const std::string err =
          validate_value(id, *rule, axis.full_values[j],
                         label + ".full[" + std::to_string(j) + "]");
      if (!err.empty()) return err;
    }
  }
  for (const std::string& required : allowed) {
    const bool present =
        std::any_of(axes.begin(), axes.end(),
                    [&](const Axis& a) { return a.name == required; });
    if (!present) {
      return "template '" + template_name + "' requires axis '" + required +
             "'";
    }
  }
  return "";
}

std::string parse_spec(const std::string& text, CampaignSpec& spec) {
  spec = CampaignSpec{};
  JsonValue doc;
  JsonParser parser{text};
  std::string err = parser.parse(doc);
  if (!err.empty()) return err;
  if (doc.type != JsonValue::Type::kObject) {
    return "spec: top level must be an object";
  }
  for (const auto& [key, value] : doc.fields) {
    if (key == "name") {
      if (value.type != JsonValue::Type::kString) {
        return "spec: 'name' must be a string";
      }
      spec.name = value.text;
    } else if (key == "template") {
      if (value.type != JsonValue::Type::kString) {
        return "spec: 'template' must be a string";
      }
      spec.template_name = value.text;
    } else if (key == "seed") {
      if (value.type != JsonValue::Type::kNumber || value.number < 0 ||
          value.number != std::floor(value.number)) {
        return "spec: 'seed' must be a non-negative whole number";
      }
      spec.seed =
          value.text.find_first_not_of("0123456789") == std::string::npos
              ? std::strtoull(value.text.c_str(), nullptr, 10)
              : static_cast<std::uint64_t>(value.number);
    } else if (key == "link_mbps") {
      if (value.type != JsonValue::Type::kNumber) {
        return "spec: 'link_mbps' must be a number";
      }
      spec.link_mbps = value.number;
    } else if (key == "rtt_ms") {
      if (value.type != JsonValue::Type::kNumber) {
        return "spec: 'rtt_ms' must be a number";
      }
      spec.rtt_ms = value.number;
    } else if (key == "axes") {
      if (value.type != JsonValue::Type::kArray) {
        return "spec: 'axes' must be an array of axis objects";
      }
      for (const JsonValue& item : value.items) {
        Axis axis;
        err = axis_from_json(item, axis);
        if (!err.empty()) return err;
        spec.axes.push_back(std::move(axis));
      }
    } else {
      return "spec: unknown key '" + key + "'";
    }
  }
  return "";
}

std::string load_spec(const std::string& path, CampaignSpec& spec) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return "spec: cannot open " + path;
  std::ostringstream text;
  text << in.rdbuf();
  const std::string err = parse_spec(text.str(), spec);
  if (!err.empty()) return err + " (" + path + ")";
  return "";
}

std::string serialize_spec(const CampaignSpec& spec) {
  std::string out = "{\n";
  out += "  \"name\": \"" + escape(spec.name) + "\",\n";
  out += "  \"template\": \"" + escape(spec.template_name) + "\",\n";
  out += "  \"seed\": " + std::to_string(spec.seed) + ",\n";
  if (spec.link_mbps != 0) {
    out += "  \"link_mbps\": " + format_number(spec.link_mbps) + ",\n";
  }
  if (spec.rtt_ms != 0) {
    out += "  \"rtt_ms\": " + format_number(spec.rtt_ms) + ",\n";
  }
  out += "  \"axes\": [\n";
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    const Axis& axis = spec.axes[i];
    out += "    {\"name\": \"" + escape(axis.name) + "\"";
    if (!axis.cap) out += ", \"cap\": false";
    out += ", \"values\": " + values_to_json(axis.values);
    if (!axis.full_values.empty()) {
      out += ", \"full\": " + values_to_json(axis.full_values);
    }
    out += i + 1 < spec.axes.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

int Expansion::axis_of(const std::string& axis) const {
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (axes[i].name == axis) return static_cast<int>(i);
  }
  return -1;
}

double Expansion::number(const CampaignPoint& point,
                         const std::string& axis) const {
  const int i = axis_of(axis);
  return i >= 0 ? point.values[static_cast<std::size_t>(i)].number : 0.0;
}

const std::string& Expansion::text(const CampaignPoint& point,
                                   const std::string& axis) const {
  static const std::string kEmpty;
  const int i = axis_of(axis);
  return i >= 0 ? point.values[static_cast<std::size_t>(i)].text : kEmpty;
}

Expansion expand(const CampaignSpec& spec, const ExpandOptions& opts) {
  Expansion out;
  out.name = spec.name;
  out.template_id = spec.template_id();
  out.base_seed = opts.use_seed ? opts.seed : spec.seed;

  // Durations mirror the fig binaries: the 15-18 sweep runs 40 s quick /
  // 100 s full with a fixed stats window, the campaign-style figures run
  // 20 s quick / 60 s full with stats from the final three quarters.
  const bool dumbbell = out.template_id == TemplateId::kDumbbellSweep;
  if (opts.duration_s_override > 0) {
    out.duration_s = opts.duration_s_override;
  } else if (dumbbell) {
    out.duration_s = opts.full ? 100.0 : 40.0;
  } else {
    out.duration_s = opts.full ? 60.0 : 20.0;
  }
  if (opts.stats_start_s_override > 0) {
    out.stats_start_s = opts.stats_start_s_override;
  } else if (dumbbell) {
    out.stats_start_s = opts.full ? 30.0 : 15.0;
  } else {
    out.stats_start_s = out.duration_s / 4.0;
  }
  out.link_mbps = spec.link_mbps != 0 ? spec.link_mbps : (dumbbell ? 0 : 10.0);
  out.rtt_ms = spec.rtt_ms != 0 ? spec.rtt_ms : (dumbbell ? 0 : 10.0);

  // Resolve each axis: mode selection, rate filter, smoke cap — the same
  // order bench_common applies to the hand-rolled grids.
  for (const Axis& axis : spec.axes) {
    Axis resolved;
    resolved.name = axis.name;
    resolved.cap = axis.cap;
    resolved.values = opts.full && !axis.full_values.empty() ? axis.full_values
                                                             : axis.values;
    if (axis.name == "rate_mbps" && opts.min_link_mbps > 0) {
      std::erase_if(resolved.values, [&](const AxisValue& v) {
        return v.number < opts.min_link_mbps;
      });
    }
    if (axis.cap && opts.grid_cap > 0 &&
        resolved.values.size() > static_cast<std::size_t>(opts.grid_cap)) {
      resolved.values.resize(static_cast<std::size_t>(opts.grid_cap));
    }
    out.axes.push_back(std::move(resolved));
  }

  durable::Fnv1a digest;
  digest.mix_string("pi2-campaign-v1");
  digest.mix_string(out.name);
  digest.mix_string(to_string(out.template_id));
  digest.mix_u64(out.base_seed);
  digest.mix_double(out.duration_s);
  digest.mix_double(out.stats_start_s);
  digest.mix_double(out.link_mbps);
  digest.mix_double(out.rtt_ms);
  digest.mix_u64(out.axes.size());
  std::size_t total = out.axes.empty() ? 0 : 1;
  for (const Axis& axis : out.axes) {
    digest.mix_string(axis.name);
    digest.mix_u64(axis.values.size());
    for (const AxisValue& v : axis.values) {
      digest.mix_u64(v.is_number ? 1 : 0);
      if (v.is_number) {
        digest.mix_double(v.number);
      } else {
        digest.mix_string(v.text);
      }
    }
    total *= axis.values.size();
  }
  out.digest = digest.state;

  // Row-major, last axis fastest — the loop nesting of the fig binaries.
  out.points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    CampaignPoint point;
    point.index = i;
    point.seed = sim::Rng::derive_seed(out.base_seed, i);
    point.values.resize(out.axes.size());
    std::size_t remainder = i;
    for (std::size_t a = out.axes.size(); a-- > 0;) {
      const std::vector<AxisValue>& values = out.axes[a].values;
      point.values[a] = values[remainder % values.size()];
      remainder /= values.size();
    }
    durable::Fnv1a key;
    key.mix_string("pi2-campaign-point-v1");
    key.mix_u64(out.digest);
    key.mix_u64(point.index);
    key.mix_u64(point.seed);
    for (const AxisValue& v : point.values) {
      key.mix_u64(v.is_number ? 1 : 0);
      if (v.is_number) {
        key.mix_double(v.number);
      } else {
        key.mix_string(v.text);
      }
    }
    point.key = key.state;
    out.points.push_back(std::move(point));
  }
  return out;
}

}  // namespace pi2::campaign
