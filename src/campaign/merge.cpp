#include "campaign/merge.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "durable/journal.hpp"

namespace pi2::campaign {

namespace {

std::string hex64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

std::string range_str(std::uint64_t lo, std::uint64_t hi) {
  return std::to_string(lo) + ".." + std::to_string(hi);
}

}  // namespace

ShardRange shard_range(std::size_t points, std::size_t index,
                       std::size_t count) {
  ShardRange range;
  if (index == 0 || count == 0 || index > count) return range;
  range.lo = points * (index - 1) / count;
  range.hi = points * index / count;
  return range;
}

bool parse_shard(const std::string& arg, std::size_t& index,
                 std::size_t& count) {
  unsigned long long i = 0;
  unsigned long long n = 0;
  char trailing = '\0';
  if (std::sscanf(arg.c_str(), "%llu/%llu%c", &i, &n, &trailing) != 2) {
    return false;
  }
  if (i == 0 || n == 0 || i > n) return false;
  index = static_cast<std::size_t>(i);
  count = static_cast<std::size_t>(n);
  return true;
}

durable::Status merge_shards(const Expansion& campaign,
                             const std::vector<std::string>& journal_paths,
                             MergeResult& out) {
  out = MergeResult{};
  if (journal_paths.empty()) {
    return durable::Status::invalid("merge: no shard journals given");
  }
  const std::size_t total = campaign.points.size();

  // Global key -> index map; point keys are digest-salted, so a key that
  // resolves here is this campaign's by construction.
  std::map<std::uint64_t, std::size_t> key_to_index;
  for (const CampaignPoint& point : campaign.points) {
    key_to_index[point.key] = point.index;
  }

  struct ShardView {
    std::string path;
    durable::ShardJournalData data;
  };
  std::vector<ShardView> shards;
  shards.reserve(journal_paths.size());
  for (const std::string& path : journal_paths) {
    ShardView view;
    view.path = path;
    const durable::Status loaded =
        durable::load_shard_journal(path, view.data);
    if (!loaded.ok()) return loaded;

    // Identity checks, most-specific first: no shard record at all means
    // the journal was never part of a sharded campaign (a fig binary's
    // resume journal, say); a name mismatch is a different campaign; a
    // digest mismatch under the same name means the spec changed since the
    // shard ran and its grid no longer exists.
    if (!view.data.shard.present) {
      return durable::Status::foreign_campaign(
          path + ": no shard record — not a campaign shard journal");
    }
    if (view.data.shard.campaign != campaign.name) {
      return durable::Status::foreign_campaign(
          path + ": journal belongs to campaign '" + view.data.shard.campaign +
          "', expected '" + campaign.name + "'");
    }
    if (view.data.shard.digest != campaign.digest ||
        view.data.header_key != campaign.digest) {
      return durable::Status::stale_digest(
          path + ": campaign '" + campaign.name + "' digest " +
          hex64(view.data.shard.digest != campaign.digest
                    ? view.data.shard.digest
                    : view.data.header_key) +
          " does not match this spec (" + hex64(campaign.digest) +
          ") — the spec or its flags changed since the shard ran");
    }
    if (view.data.shard.hi > total || view.data.shard.lo > view.data.shard.hi) {
      return durable::Status::invalid(
          path + ": declared range " +
          range_str(view.data.shard.lo, view.data.shard.hi) +
          " exceeds the campaign's " + std::to_string(total) + " point(s)");
    }
    out.interrupted += view.data.interrupted;
    shards.push_back(std::move(view));
  }

  // The declared ranges must tile [0, total) exactly.
  std::sort(shards.begin(), shards.end(), [](const ShardView& a,
                                             const ShardView& b) {
    return a.data.shard.lo != b.data.shard.lo
               ? a.data.shard.lo < b.data.shard.lo
               : a.data.shard.hi < b.data.shard.hi;
  });
  std::uint64_t covered = 0;  ///< next uncovered index
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const durable::ShardInfo& shard = shards[s].data.shard;
    if (shard.lo < covered) {
      return durable::Status::shard_overlap(
          shards[s].path + " claims points " + range_str(shard.lo, shard.hi) +
          ", overlapping " + shards[s - 1].path + " (" +
          range_str(shards[s - 1].data.shard.lo,
                    shards[s - 1].data.shard.hi) +
          ")");
    }
    if (shard.lo > covered) {
      return durable::Status::shard_gap(
          "points " + range_str(covered, shard.lo) +
          " are not claimed by any shard journal");
    }
    covered = shard.hi;
  }
  if (covered < total) {
    return durable::Status::shard_gap(
        "points " + range_str(covered, total) +
        " are not claimed by any shard journal (missing shard?)");
  }

  // Collect payloads, enforcing that every record lands inside its shard's
  // declared claim and that re-appends (a resumed shard re-journaling a
  // point) are byte-identical.
  out.payloads.assign(total, std::string{});
  std::vector<bool> have(total, false);
  for (const ShardView& view : shards) {
    const durable::ShardInfo& shard = view.data.shard;
    for (const auto& [key, payload] : view.data.points) {
      const auto it = key_to_index.find(key);
      if (it == key_to_index.end()) {
        return durable::Status::corrupt(
            view.path + ": point key " + hex64(key) +
            " is not a point of this campaign");
      }
      const std::size_t index = it->second;
      if (index < shard.lo || index >= shard.hi) {
        return durable::Status::invalid(
            view.path + ": point " + std::to_string(index) +
            " lies outside the journal's declared range " +
            range_str(shard.lo, shard.hi));
      }
      if (have[index] && out.payloads[index] != payload) {
        return durable::Status::duplicate_point(
            view.path + ": point " + std::to_string(index) +
            " journaled twice with different payloads");
      }
      out.payloads[index] = payload;
      have[index] = true;
    }
    for (std::size_t i = shard.lo; i < shard.hi; ++i) {
      if (!have[i]) {
        return durable::Status::shard_gap(
            view.path + ": point " + std::to_string(i) +
            " is missing from its shard's declared range " +
            range_str(shard.lo, shard.hi) +
            " (shard killed mid-run? resume it with --resume first)");
      }
    }
  }
  out.shards = shards.size();
  return {};
}

}  // namespace pi2::campaign
