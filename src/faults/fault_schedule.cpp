#include "faults/fault_schedule.hpp"

#include <cstdio>

namespace pi2::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRateStep: return "rate-step";
    case FaultKind::kRateFlap: return "rate-flap";
    case FaultKind::kRttStep: return "rtt-step";
    case FaultKind::kBurstLoss: return "burst-loss";
    case FaultKind::kRandomLoss: return "random-loss";
    case FaultKind::kEcnBleach: return "ecn-bleach";
    case FaultKind::kReorder: return "reorder";
  }
  return "?";
}

bool FaultSchedule::has_packet_faults() const {
  for (const FaultEvent& e : events) {
    switch (e.kind) {
      case FaultKind::kBurstLoss:
      case FaultKind::kRandomLoss:
      case FaultKind::kEcnBleach:
      case FaultKind::kReorder:
        return true;
      default:
        break;
    }
  }
  return false;
}

FaultSchedule& FaultSchedule::rate_step(pi2::sim::Time at, double rate_bps) {
  FaultEvent e;
  e.kind = FaultKind::kRateStep;
  e.at = at;
  e.rate_bps = rate_bps;
  events.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::rate_flap(pi2::sim::Time at, pi2::sim::Time until,
                                        double low_bps, double high_bps,
                                        pi2::sim::Duration period) {
  FaultEvent e;
  e.kind = FaultKind::kRateFlap;
  e.at = at;
  e.until = until;
  e.rate_bps = low_bps;
  e.rate2_bps = high_bps;
  e.period = period;
  events.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::rtt_step(pi2::sim::Time at, pi2::sim::Duration rtt) {
  FaultEvent e;
  e.kind = FaultKind::kRttStep;
  e.at = at;
  e.rtt = rtt;
  events.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::burst_loss(pi2::sim::Time at, int packets) {
  FaultEvent e;
  e.kind = FaultKind::kBurstLoss;
  e.at = at;
  e.burst_packets = packets;
  events.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::random_loss(pi2::sim::Time at, pi2::sim::Time until,
                                          double probability) {
  FaultEvent e;
  e.kind = FaultKind::kRandomLoss;
  e.at = at;
  e.until = until;
  e.probability = probability;
  events.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::ecn_bleach(pi2::sim::Time at, pi2::sim::Time until,
                                         double fraction) {
  FaultEvent e;
  e.kind = FaultKind::kEcnBleach;
  e.at = at;
  e.until = until;
  e.probability = fraction;
  events.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::reorder(pi2::sim::Time at, pi2::sim::Time until,
                                      double fraction,
                                      pi2::sim::Duration extra_delay) {
  FaultEvent e;
  e.kind = FaultKind::kReorder;
  e.at = at;
  e.until = until;
  e.probability = fraction;
  e.extra_delay = extra_delay;
  events.push_back(e);
  return *this;
}

namespace {

std::string event_error(std::size_t index, FaultKind kind, const char* what) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "fault event #%zu (%s): %s", index,
                to_string(kind), what);
  return buf;
}

bool is_windowed(FaultKind kind) {
  return kind == FaultKind::kRateFlap || kind == FaultKind::kRandomLoss ||
         kind == FaultKind::kEcnBleach || kind == FaultKind::kReorder;
}

}  // namespace

std::string FaultSchedule::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.at < pi2::sim::kTimeZero) {
      return event_error(i, e.kind, "`at` must be >= 0 (events cannot target the past)");
    }
    if (is_windowed(e.kind) && e.until <= e.at) {
      return event_error(i, e.kind, "`until` must be after `at` (empty window)");
    }
    const bool probabilistic = e.kind == FaultKind::kRandomLoss ||
                               e.kind == FaultKind::kEcnBleach ||
                               e.kind == FaultKind::kReorder;
    if (probabilistic && !(e.probability > 0.0 && e.probability <= 1.0)) {
      return event_error(i, e.kind,
                         "`probability` must be in (0, 1] (use no event instead of 0)");
    }
    switch (e.kind) {
      case FaultKind::kRateStep:
        if (!(e.rate_bps > 0.0)) {
          return event_error(i, e.kind, "`rate_bps` must be > 0");
        }
        break;
      case FaultKind::kRateFlap:
        if (!(e.rate_bps > 0.0) || !(e.rate2_bps > 0.0)) {
          return event_error(i, e.kind, "both flap rates must be > 0");
        }
        if (e.period <= pi2::sim::Duration{0}) {
          return event_error(i, e.kind, "`period` must be > 0");
        }
        break;
      case FaultKind::kRttStep:
        if (e.rtt <= pi2::sim::Duration{0}) {
          return event_error(i, e.kind, "`rtt` must be > 0");
        }
        break;
      case FaultKind::kBurstLoss:
        if (e.burst_packets <= 0) {
          return event_error(i, e.kind, "`burst_packets` must be > 0");
        }
        break;
      case FaultKind::kReorder:
        if (e.extra_delay <= pi2::sim::Duration{0}) {
          return event_error(i, e.kind, "`extra_delay` must be > 0");
        }
        break;
      default:
        break;
    }
  }
  return "";
}

std::string FaultSchedule::validate(pi2::sim::Time duration) const {
  if (std::string e = validate(); !e.empty()) return e;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (duration > pi2::sim::kTimeZero && events[i].at >= duration) {
      return event_error(
          i, events[i].kind,
          "`at` must be < duration_s (the event would start after the run ends)");
    }
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!is_windowed(events[i].kind)) continue;
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].kind != events[i].kind) continue;
      if (events[i].at < events[j].until && events[j].at < events[i].until) {
        char what[128];
        std::snprintf(
            what, sizeof what,
            "window overlaps fault event #%zu of the same kind (windows must be disjoint)",
            i);
        return event_error(j, events[j].kind, what);
      }
    }
  }
  return "";
}

}  // namespace pi2::faults
