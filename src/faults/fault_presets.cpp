#include "faults/fault_presets.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace pi2::faults {

using pi2::sim::from_millis;
using pi2::sim::from_seconds;
using pi2::sim::to_seconds;

namespace {

// Each preset is itself an inline literal, so presets exercise exactly the
// parser/scaling path user literals take.
const std::pair<const char*, const char*> kPresets[] = {
    {"none", ""},
    {"rate_step_4x", "rate_step@0.4:rate=0.25;rate_step@0.7:rate=1"},
    {"rtt_flap", "rtt_step@0.4:rtt=3;rtt_step@0.6:rtt=1"},
    {"burst_loss_2pct", "random_loss@0.4..0.6:p=0.02"},
    {"ecn_bleach", "ecn_bleach@0.4..0.6:p=1"},
    {"reorder", "reorder@0.4..0.6:p=0.05,delay_ms=5"},
};

std::string known_presets() {
  std::string out;
  for (const auto& [name, literal] : kPresets) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string literal_error(std::size_t index, const std::string& what) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "fault literal event #%zu: ", index);
  return buf + what;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(trim(s));
      return out;
    }
    out.push_back(trim(s.substr(0, pos)));
    s.remove_prefix(pos + 1);
  }
}

bool parse_double(std::string_view s, double* out) {
  const std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool windowed_kind(FaultKind kind) {
  return kind == FaultKind::kRateFlap || kind == FaultKind::kRandomLoss ||
         kind == FaultKind::kEcnBleach || kind == FaultKind::kReorder;
}

const std::pair<const char*, FaultKind> kKinds[] = {
    {"rate_step", FaultKind::kRateStep},   {"rate_flap", FaultKind::kRateFlap},
    {"rtt_step", FaultKind::kRttStep},     {"burst_loss", FaultKind::kBurstLoss},
    {"random_loss", FaultKind::kRandomLoss},
    {"ecn_bleach", FaultKind::kEcnBleach}, {"reorder", FaultKind::kReorder},
};

std::string known_kinds() {
  std::string out;
  for (const auto& [name, kind] : kKinds) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Parses one `kind@start[..end][:k=v,...]` event and appends it to `out`.
std::string parse_event(std::string_view text, std::size_t index,
                        const PresetContext& ctx, FaultSchedule* out) {
  const std::size_t at_pos = text.find('@');
  if (at_pos == std::string_view::npos) {
    return literal_error(index, "expected `kind@start` (got '" +
                                    std::string(text) + "')");
  }
  const std::string_view kind_name = trim(text.substr(0, at_pos));
  FaultKind kind{};
  bool known = false;
  for (const auto& [name, k] : kKinds) {
    if (kind_name == name) {
      kind = k;
      known = true;
      break;
    }
  }
  if (!known) {
    return literal_error(index, "unknown kind '" + std::string(kind_name) +
                                    "' (kinds: " + known_kinds() + ")");
  }
  std::string_view rest = text.substr(at_pos + 1);
  std::string_view time_part = rest;
  std::string_view param_part;
  if (const std::size_t colon = rest.find(':');
      colon != std::string_view::npos) {
    time_part = trim(rest.substr(0, colon));
    param_part = trim(rest.substr(colon + 1));
  }
  double start_frac = 0.0;
  double end_frac = 0.0;
  const std::size_t dots = time_part.find("..");
  const bool has_window = dots != std::string_view::npos;
  if (has_window != windowed_kind(kind)) {
    return literal_error(
        index, windowed_kind(kind)
                   ? std::string(kind_name) + " needs a window (`start..end`)"
                   : std::string(kind_name) + " takes a single `@start` time");
  }
  if (!parse_double(trim(time_part.substr(0, dots)), &start_frac)) {
    return literal_error(index, "`start` must be a number (got '" +
                                    std::string(time_part) + "')");
  }
  if (!(start_frac >= 0.0 && start_frac < 1.0)) {
    return literal_error(
        index, "`start` must be a duration fraction in [0, 1)");
  }
  if (has_window) {
    if (!parse_double(trim(time_part.substr(dots + 2)), &end_frac)) {
      return literal_error(index, "`end` must be a number (got '" +
                                      std::string(time_part) + "')");
    }
    if (!(end_frac > start_frac && end_frac <= 1.0)) {
      return literal_error(
          index, "`end` must be a duration fraction in (start, 1]");
    }
  }

  // Per-kind parameter defaults, overridable via `key=value` pairs.
  std::map<std::string, double> params;
  const char* valid_keys = "";
  switch (kind) {
    case FaultKind::kRateStep:
      params = {{"rate", 0.25}};
      valid_keys = "rate";
      break;
    case FaultKind::kRateFlap:
      params = {{"low", 0.25}, {"high", 1.0}, {"period_s", 0.5}};
      valid_keys = "low, high, period_s";
      break;
    case FaultKind::kRttStep:
      params = {{"rtt", 3.0}};
      valid_keys = "rtt";
      break;
    case FaultKind::kBurstLoss:
      params = {{"packets", 50.0}};
      valid_keys = "packets";
      break;
    case FaultKind::kRandomLoss:
      params = {{"p", 0.02}};
      valid_keys = "p";
      break;
    case FaultKind::kEcnBleach:
      params = {{"p", 1.0}};
      valid_keys = "p";
      break;
    case FaultKind::kReorder:
      params = {{"p", 0.05}, {"delay_ms", 5.0}};
      valid_keys = "p, delay_ms";
      break;
  }
  if (!param_part.empty()) {
    for (const std::string_view pair : split(param_part, ',')) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        return literal_error(index, "expected `key=value` (got '" +
                                        std::string(pair) + "')");
      }
      const std::string key(trim(pair.substr(0, eq)));
      const auto it = params.find(key);
      if (it == params.end()) {
        return literal_error(index, std::string(kind_name) +
                                        " has no key '" + key +
                                        "' (keys: " + valid_keys + ")");
      }
      if (!parse_double(trim(pair.substr(eq + 1)), &it->second)) {
        return literal_error(index, "`" + key + "` must be a number (got '" +
                                        std::string(pair) + "')");
      }
    }
  }

  const double dur_s = to_seconds(ctx.duration);
  const pi2::sim::Time at = from_seconds(start_frac * dur_s);
  const pi2::sim::Time until = from_seconds(end_frac * dur_s);
  switch (kind) {
    case FaultKind::kRateStep:
      out->rate_step(at, params["rate"] * ctx.link_bps);
      break;
    case FaultKind::kRateFlap:
      out->rate_flap(at, until, params["low"] * ctx.link_bps,
                     params["high"] * ctx.link_bps,
                     from_seconds(params["period_s"]));
      break;
    case FaultKind::kRttStep:
      out->rtt_step(at, from_seconds(params["rtt"] *
                                     to_seconds(ctx.base_rtt)));
      break;
    case FaultKind::kBurstLoss:
      out->burst_loss(at, static_cast<int>(params["packets"]));
      break;
    case FaultKind::kRandomLoss:
      out->random_loss(at, until, params["p"]);
      break;
    case FaultKind::kEcnBleach:
      out->ecn_bleach(at, until, params["p"]);
      break;
    case FaultKind::kReorder:
      out->reorder(at, until, params["p"], from_millis(params["delay_ms"]));
      break;
  }
  return "";
}

std::string parse_literal(std::string_view text, const PresetContext& ctx,
                          FaultSchedule* out) {
  std::size_t index = 0;
  for (const std::string_view event : split(text, ';')) {
    if (event.empty()) continue;
    if (std::string e = parse_event(event, index, ctx, out); !e.empty()) {
      return e;
    }
    ++index;
  }
  return out->validate(ctx.duration);
}

}  // namespace

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, literal] : kPresets) out.emplace_back(name);
    return out;
  }();
  return names;
}

bool is_preset(std::string_view name) {
  for (const auto& [known, literal] : kPresets) {
    if (name == known) return true;
  }
  return false;
}

std::string preset(std::string_view name, const PresetContext& ctx,
                   FaultSchedule* out) {
  out->events.clear();
  for (const auto& [known, literal] : kPresets) {
    if (name == known) return parse_literal(literal, ctx, out);
  }
  return "unknown fault preset '" + std::string(name) +
         "' (presets: " + known_presets() + ")";
}

std::string resolve_schedule(std::string_view value, const PresetContext& ctx,
                             FaultSchedule* out) {
  out->events.clear();
  if (is_preset(value)) return preset(value, ctx, out);
  if (value.find('@') != std::string_view::npos) {
    return parse_literal(value, ctx, out);
  }
  return "unknown fault preset '" + std::string(value) +
         "' (presets: " + known_presets() +
         "; or an inline literal like 'rate_step@0.4:rate=0.25')";
}

std::vector<FaultWindow> fault_windows(const FaultSchedule& schedule,
                                       pi2::sim::Time duration) {
  const double dur_s = to_seconds(duration);
  std::vector<FaultWindow> raw;
  for (const FaultEvent& e : schedule.events) {
    FaultWindow w;
    w.start_s = to_seconds(e.at);
    w.end_s = windowed_kind(e.kind)
                  ? std::min(to_seconds(e.until), dur_s)
                  : w.start_s;
    if (w.start_s > dur_s || w.end_s < w.start_s) continue;
    raw.push_back(w);
  }
  std::sort(raw.begin(), raw.end(), [](const FaultWindow& a,
                                       const FaultWindow& b) {
    return a.start_s < b.start_s || (a.start_s == b.start_s &&
                                     a.end_s < b.end_s);
  });
  std::vector<FaultWindow> merged;
  for (const FaultWindow& w : raw) {
    if (!merged.empty() && w.start_s <= merged.back().end_s) {
      merged.back().end_s = std::max(merged.back().end_s, w.end_s);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

}  // namespace pi2::faults
