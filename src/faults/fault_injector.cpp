#include "faults/fault_injector.hpp"

#include <cassert>
#include <utility>

namespace pi2::faults {

using net::BottleneckLink;
using net::Packet;
using pi2::sim::Duration;
using pi2::sim::Time;

FaultInjector::FaultInjector(pi2::sim::Simulator& sim, FaultSchedule schedule,
                             std::uint64_t seed)
    : sim_(sim),
      schedule_(std::move(schedule)),
      rng_(pi2::sim::Rng::derive_seed(seed, kSeedStream)) {}

void FaultInjector::schedule_flap(BottleneckLink& link, const FaultEvent& e,
                                  bool low) {
  // Toggles until the window closes; the final transition restores the
  // high rate so the link leaves the flap in its healthy state.
  link.set_rate_bps(low ? e.rate_bps : e.rate2_bps);
  ++counters_.rate_changes;
  const Time next = sim_.now() + e.period;
  if (next >= e.until) {
    if (low) {
      sim_.at(e.until, [this, &link, &e] {
        link.set_rate_bps(e.rate2_bps);
        ++counters_.rate_changes;
      });
    }
    return;
  }
  sim_.at(next, [this, &link, &e, low] { schedule_flap(link, e, !low); });
}

void FaultInjector::attach(BottleneckLink& link) {
  assert(schedule_.validate().empty() && "attach() requires a valid schedule");
  for (const FaultEvent& e : schedule_.events) {
    switch (e.kind) {
      case FaultKind::kRateStep:
        sim_.at(e.at, [this, &link, &e] {
          link.set_rate_bps(e.rate_bps);
          ++counters_.rate_changes;
        });
        break;
      case FaultKind::kRateFlap:
        sim_.at(e.at, [this, &link, &e] { schedule_flap(link, e, true); });
        break;
      case FaultKind::kRttStep:
        sim_.at(e.at, [this, &e] {
          if (rtt_setter_) {
            rtt_setter_(e.rtt);
            ++counters_.rtt_changes;
          }
        });
        break;
      case FaultKind::kBurstLoss:
        sim_.at(e.at, [this, &e] { burst_remaining_ += e.burst_packets; });
        break;
      case FaultKind::kRandomLoss:
      case FaultKind::kEcnBleach:
      case FaultKind::kReorder:
        break;  // handled per packet by the filter
    }
  }
  if (schedule_.has_packet_faults()) {
    link.set_ingress_filter(
        [this](Packet& packet) { return filter(packet); });
  }
}

BottleneckLink::IngressVerdict FaultInjector::filter(Packet& packet) {
  BottleneckLink::IngressVerdict verdict;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++counters_.dropped;
    verdict.action = BottleneckLink::IngressVerdict::Action::kDrop;
    return verdict;
  }
  const Time now = sim_.now();
  for (const FaultEvent& e : schedule_.events) {
    const bool active = now >= e.at && now < e.until;
    if (!active) continue;
    switch (e.kind) {
      case FaultKind::kRandomLoss:
        if (rng_.uniform() < e.probability) {
          ++counters_.dropped;
          verdict.action = BottleneckLink::IngressVerdict::Action::kDrop;
          return verdict;
        }
        break;
      case FaultKind::kEcnBleach:
        if (packet.ecn != net::Ecn::kNotEct && rng_.uniform() < e.probability) {
          packet.ecn = net::Ecn::kNotEct;
          ++counters_.bleached;
        }
        break;
      case FaultKind::kReorder:
        if (rng_.uniform() < e.probability) {
          ++counters_.reordered;
          verdict.action = BottleneckLink::IngressVerdict::Action::kDelay;
          verdict.delay = e.extra_delay;
          return verdict;
        }
        break;
      default:
        break;
    }
  }
  return verdict;
}

}  // namespace pi2::faults
