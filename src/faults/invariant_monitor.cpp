#include "faults/invariant_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pi2::faults {

using pi2::sim::Time;
using pi2::sim::to_seconds;

InvariantMonitor::InvariantMonitor(pi2::sim::Simulator& sim,
                                   const net::BottleneckLink& link,
                                   Config config)
    : sim_(sim), link_(link), config_(config) {}

void InvariantMonitor::start() {
  sim_.after(config_.interval, [this]() {
    check_now();
    start();
  });
}

void InvariantMonitor::fail(const char* check, std::string detail) {
  ++total_violations_;
  if (violations_.size() < config_.max_reports) {
    violations_.push_back({sim_.now(), check, std::move(detail)});
  }
}

namespace {

std::string format(const char* fmt, double a, double b = 0.0) {
  char buf[192];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

std::string format_ll(const char* fmt, long long a, long long b = 0) {
  char buf[192];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

}  // namespace

void InvariantMonitor::check_now() {
  ++checks_run_;
  const Time now = sim_.now();

  // Monotone clock across samples.
  if (now < last_sample_) {
    fail("clock-monotone",
         format("sample time %.9fs went backwards from %.9fs",
                to_seconds(now), to_seconds(last_sample_)));
  }
  last_sample_ = now;

  // Probabilities finite and in range.
  const double pc = link_.qdisc().classic_probability();
  const double ps = link_.qdisc().scalable_probability();
  if (!std::isfinite(pc) || pc < 0.0 || pc > 1.0) {
    fail("prob-classic", format("classic probability p = %g outside [0, 1]", pc));
  }
  if (!std::isfinite(ps) || ps < 0.0 || ps > 1.0) {
    fail("prob-scalable",
         format("scalable probability p' = %g outside [0, 1]", ps));
  }

  // Backlogs non-negative and byte accounting consistent. The drift check
  // targets the packet buffer's running counter specifically: the AQM-facing
  // backlog_bytes() additionally includes the fluid tier, whose backlog is
  // modelled rather than recountable from buffer contents.
  const std::int64_t bytes = link_.backlog_bytes();
  const std::int64_t packets = link_.backlog_packets();
  if (bytes < 0) {
    fail("backlog-bytes", format_ll("backlog_bytes = %lld is negative",
                                    static_cast<long long>(bytes)));
  }
  if (packets < 0) {
    fail("backlog-packets", format_ll("backlog_packets = %lld is negative",
                                      static_cast<long long>(packets)));
  }
  const std::int64_t packet_bytes = link_.packet_backlog_bytes();
  const std::int64_t recount = link_.recount_backlog_bytes();
  if (packet_bytes != recount) {
    fail("backlog-drift",
         format_ll("incremental packet_backlog_bytes = %lld but buffer recount = %lld",
                   static_cast<long long>(packet_bytes),
                   static_cast<long long>(recount)));
  }

  // Packet conservation.
  const auto& c = link_.counters();
  const std::int64_t accounted = c.forwarded + packets +
                                 (link_.transmitting() ? 1 : 0) +
                                 c.dequeue_dropped;
  if (c.enqueued != accounted) {
    fail("packet-conservation",
         format_ll("enqueued = %lld but forwarded+backlog+in-flight+"
                   "dequeue-drops = %lld",
                   static_cast<long long>(c.enqueued),
                   static_cast<long long>(accounted)));
  }

  // Multi-band (DualQ) invariants: per-band packet conservation, band
  // counters summing to the aggregate, and the coupled law.
  if (link_.band_count() > 1) {
    std::int64_t band_enqueued = 0;
    std::int64_t band_forwarded = 0;
    for (std::size_t b = 0; b < link_.band_count(); ++b) {
      const auto& bc = link_.band_counters(b);
      band_enqueued += bc.enqueued;
      band_forwarded += bc.forwarded;
      const std::int64_t band_accounted =
          bc.forwarded + link_.band_backlog_packets(b) +
          ((link_.transmitting() && link_.transmitting_band() == b) ? 1 : 0) +
          bc.dequeue_dropped;
      if (bc.enqueued != band_accounted) {
        fail("band-conservation",
             format_ll("band enqueued = %lld but forwarded+backlog+in-flight+"
                       "dequeue-drops = %lld",
                       static_cast<long long>(bc.enqueued),
                       static_cast<long long>(band_accounted)));
      }
    }
    if (band_enqueued != c.enqueued || band_forwarded != c.forwarded) {
      fail("band-sum",
           format_ll("band counters sum to %lld enqueued / %lld forwarded, "
                     "aggregate disagrees",
                     static_cast<long long>(band_enqueued),
                     static_cast<long long>(band_forwarded)));
    }
    // Coupled law p_CL = min(k * p', 1): the discipline publishes the
    // coupled probability as scalable_probability() and (p')^2 as
    // classic_probability(), so ps must equal min(k * sqrt(pc), 1).
    const double k = link_.qdisc().coupling_factor();
    if (k > 0.0 && std::isfinite(pc) && pc >= 0.0) {
      const double expected = std::min(k * std::sqrt(pc), 1.0);
      if (std::isfinite(ps) && std::abs(ps - expected) > 1e-9) {
        fail("coupled-law",
             format("scalable probability %g != min(k*sqrt(p_C), 1) = %g", ps,
                    expected));
      }
    }
  }

  // No events scheduled into the past since the last check.
  const std::uint64_t clamped = sim_.clamped_events();
  if (clamped != last_clamped_) {
    fail("clamped-events",
         format_ll("%lld event(s) targeted the past and were clamped "
                   "(total %lld)",
                   static_cast<long long>(clamped - last_clamped_),
                   static_cast<long long>(clamped)));
    last_clamped_ = clamped;
  }

  // Controller rejected a non-finite update (PiCore saturating guard).
  const std::uint64_t guards = link_.qdisc().guard_events();
  if (guards != last_guards_) {
    fail("controller-guard",
         format_ll("controller rejected %lld non-finite update(s) "
                   "(total %lld)",
                   static_cast<long long>(guards - last_guards_),
                   static_cast<long long>(guards)));
    last_guards_ = guards;
  }
}

std::string InvariantMonitor::report() const {
  if (ok()) return "";
  std::string out = "invariant violations (" +
                    std::to_string(total_violations_) + " total, " +
                    std::to_string(violations_.size()) + " reported):\n";
  for (const InvariantViolation& v : violations_) {
    char line[256];
    std::snprintf(line, sizeof line, "  t=%.3fs [%s] %s\n",
                  to_seconds(v.at), v.check.c_str(), v.detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace pi2::faults
