// Named fault presets and inline schedule literals for campaign specs.
//
// A campaign `fault_schedule` axis value like "rate_step_4x" resolves to a
// FaultSchedule scaled to the run's link rate, base RTT and duration, so the
// same preset means the same *relative* disturbance at every grid point.
// Values that are not preset names are parsed as inline literals, a compact
// event DSL:
//
//   literal := event (';' event)*
//   event   := kind '@' start [ '..' end ] [ ':' key '=' value (',' ...)* ]
//
// start/end are fractions of the run duration (start in [0, 1), end in
// (start, 1]). Windowed kinds (rate_flap, random_loss, ecn_bleach, reorder)
// require `start..end`; instantaneous kinds (rate_step, rtt_step,
// burst_loss) take a single `start`. Per-kind keys — rates are multiples of
// the link rate, `rtt` a multiple of the base RTT, everything else absolute:
//
//   rate_step:   rate (default 0.25)
//   rate_flap:   low (0.25), high (1.0), period_s (0.5)
//   rtt_step:    rtt (3.0)
//   burst_loss:  packets (50)
//   random_loss: p (0.02)
//   ecn_bleach:  p (1.0)
//   reorder:     p (0.05), delay_ms (5)
//
// Example: "rate_step@0.4:rate=0.25;rate_step@0.7:rate=1"
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_schedule.hpp"
#include "sim/time.hpp"

namespace pi2::faults {

/// Run parameters a preset or literal is scaled against.
struct PresetContext {
  double link_bps = 10e6;
  pi2::sim::Duration base_rtt = pi2::sim::from_millis(100);
  pi2::sim::Time duration{std::chrono::seconds{20}};
};

/// Preset names accepted by preset()/resolve_schedule(), in display order
/// ("none" first, then the disturbance presets).
[[nodiscard]] const std::vector<std::string>& preset_names();

[[nodiscard]] bool is_preset(std::string_view name);

/// Resolves a named preset into `*out` (replacing its contents). Returns ""
/// on success, otherwise an actionable message listing the known presets.
[[nodiscard]] std::string preset(std::string_view name,
                                 const PresetContext& ctx, FaultSchedule* out);

/// Resolves a campaign axis value — a preset name or an inline literal —
/// into `*out`. Returns "" on success, otherwise an actionable message
/// naming the offending preset/event and constraint.
[[nodiscard]] std::string resolve_schedule(std::string_view value,
                                           const PresetContext& ctx,
                                           FaultSchedule* out);

/// One disturbance window per event, in seconds: [at, until] for windowed
/// kinds (clamped to the run), zero-width [at, at] for instantaneous ones.
/// Sorted by start with overlapping windows merged — the recovery analyzer
/// measures re-convergence after each window's end.
struct FaultWindow {
  double start_s = 0.0;
  double end_s = 0.0;
};

[[nodiscard]] std::vector<FaultWindow> fault_windows(
    const FaultSchedule& schedule, pi2::sim::Time duration);

}  // namespace pi2::faults
