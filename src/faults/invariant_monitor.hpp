// Runtime invariant checking alongside the stats sampler.
//
// A long sweep must not silently absorb corruption: a NaN probability, a
// drifting byte backlog or an event scheduled into the past would otherwise
// only show up — if at all — as a subtly wrong number in a table hours
// later. The monitor samples the queue and its discipline every interval
// and converts any violated invariant into a structured InvariantViolation
// report. Checks:
//
//   * classic/scalable probabilities are finite and within [0, 1];
//   * byte and packet backlogs are non-negative;
//   * the incremental byte backlog matches a recount of the buffer;
//   * packet conservation:
//       enqueued == forwarded + backlog + transmitting + dequeue_dropped;
//   * the simulated clock is monotone across samples;
//   * Simulator::clamped_events() stays zero (no event targeted the past);
//   * the discipline's PiCore guard counter stays zero (no NaN rejected);
//   * multi-band queues (DualPI2) additionally: per-band packet
//     conservation, band counters summing to the aggregate, and the coupled
//     law p_CL = min(k * p', 1) between the published probabilities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/bottleneck_link.hpp"
#include "sim/simulator.hpp"

namespace pi2::faults {

struct InvariantViolation {
  pi2::sim::Time at{};   ///< sim time of the failing check
  std::string check;     ///< short invariant name, e.g. "prob-finite"
  std::string detail;    ///< actionable message with the observed values
};

class InvariantMonitor {
 public:
  struct Config {
    pi2::sim::Duration interval = pi2::sim::from_millis(100);
    /// Reports are capped so a persistent violation cannot eat the heap;
    /// total_violations() keeps counting past the cap.
    std::size_t max_reports = 64;
  };

  InvariantMonitor(pi2::sim::Simulator& sim, const net::BottleneckLink& link)
      : InvariantMonitor(sim, link, Config{}) {}
  InvariantMonitor(pi2::sim::Simulator& sim, const net::BottleneckLink& link,
                   Config config);

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Starts the periodic sampling (first check after one interval).
  void start();

  /// Runs every check once at the current sim time. Usable directly from
  /// tests; start() calls it on a timer.
  void check_now();

  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t total_violations() const { return total_violations_; }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }

  /// Human-readable multi-line report ("" when ok()).
  [[nodiscard]] std::string report() const;

 private:
  void fail(const char* check, std::string detail);

  pi2::sim::Simulator& sim_;
  const net::BottleneckLink& link_;
  Config config_;
  pi2::sim::Time last_sample_{pi2::sim::kTimeZero};
  std::uint64_t last_clamped_ = 0;
  std::uint64_t last_guards_ = 0;
  std::uint64_t checks_run_ = 0;
  std::uint64_t total_violations_ = 0;
  std::vector<InvariantViolation> violations_;
};

}  // namespace pi2::faults
