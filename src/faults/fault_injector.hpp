// Replays a FaultSchedule against a live simulation.
//
// Scheduled state changes (rate steps/flaps, RTT steps) go through
// Simulator::at; per-packet impairments (loss, ECN bleaching, reordering)
// install themselves as the BottleneckLink's ingress filter. All randomness
// comes from a dedicated Rng stream derived via Rng::derive_seed from the
// run's seed and a fixed tag, so adding a schedule never perturbs any other
// stream in the run and results stay deterministic and --jobs-invariant.
#pragma once

#include <cstdint>
#include <functional>

#include "faults/fault_schedule.hpp"
#include "net/bottleneck_link.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace pi2::faults {

class FaultInjector {
 public:
  /// Stream tag mixed with the run seed for the injector's private Rng.
  /// Distinct from flow indices used by derive_seed in the sweep engine.
  static constexpr std::uint64_t kSeedStream = 0xfa17u;

  struct Counters {
    std::int64_t dropped = 0;       ///< burst + random loss discards
    std::int64_t bleached = 0;      ///< packets whose ECN codepoint was cleared
    std::int64_t reordered = 0;     ///< packets deflected through the scheduler
    std::int64_t rate_changes = 0;  ///< rate step/flap transitions applied
    std::int64_t rtt_changes = 0;   ///< RTT steps applied
  };

  /// `seed` is the *run* seed; the injector derives its own stream from it.
  /// The schedule must already be validated (attach asserts on a malformed
  /// one in debug builds and ignores invalid events otherwise).
  FaultInjector(pi2::sim::Simulator& sim, FaultSchedule schedule,
                std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Hook for RTT-step events; the scenario decides what an RTT change
  /// means (the dumbbell applies it to every flow's base RTT). Without a
  /// setter, RTT steps are ignored (and counted as applied = 0).
  void set_rtt_setter(std::function<void(pi2::sim::Duration)> setter) {
    rtt_setter_ = std::move(setter);
  }

  /// Schedules every event and, if the schedule has per-packet faults,
  /// installs the ingress filter on `link`. Call once, before the run.
  void attach(net::BottleneckLink& link);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

 private:
  net::BottleneckLink::IngressVerdict filter(net::Packet& packet);
  void schedule_flap(net::BottleneckLink& link, const FaultEvent& e, bool low);

  pi2::sim::Simulator& sim_;
  FaultSchedule schedule_;
  pi2::sim::Rng rng_;
  std::function<void(pi2::sim::Duration)> rtt_setter_;
  Counters counters_;
  std::int64_t burst_remaining_ = 0;
};

}  // namespace pi2::faults
