// Scriptable impairments: a FaultSchedule is a list of timed fault events
// that a FaultInjector replays against a running simulation.
//
// The paper's discriminating regimes for AQM designs are *dynamic*: load
// steps, capacity changes and imperfect congestion signals (Briscoe's PI^2
// parameters report and the Curvy RED insights report both stress them).
// A schedule expresses those regimes declaratively so experiments stay
// reproducible: the same schedule + seed gives a byte-identical run.
//
// Event kinds:
//   kRateStep   — set the bottleneck rate at `at` (Figure 12-style steps).
//   kRateFlap   — toggle the rate between rate_bps and rate2_bps every
//                 `period` over [at, until) — a flapping backhaul.
//   kRttStep    — set every flow's base RTT at `at` (path change).
//   kBurstLoss  — drop the next `burst_packets` arrivals from `at`
//                 (a microwave fade / outage burst).
//   kRandomLoss — drop each arrival with `probability` over [at, until)
//                 (bursty non-congestive loss).
//   kEcnBleach  — clear the ECN codepoint (-> Not-ECT) on `probability` of
//                 arrivals over [at, until) — ECN bleaching middleboxes.
//   kReorder    — deflect `probability` of arrivals over [at, until),
//                 re-offering each to the queue `extra_delay` later.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pi2::faults {

enum class FaultKind {
  kRateStep,
  kRateFlap,
  kRttStep,
  kBurstLoss,
  kRandomLoss,
  kEcnBleach,
  kReorder,
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kRateStep;
  pi2::sim::Time at{0};                         ///< start (absolute sim time)
  pi2::sim::Time until{pi2::sim::kTimeInfinity};  ///< end of windowed events
  double rate_bps = 0.0;        ///< kRateStep; kRateFlap low rate
  double rate2_bps = 0.0;       ///< kRateFlap high rate
  pi2::sim::Duration period{};  ///< kRateFlap toggle period
  pi2::sim::Duration rtt{};     ///< kRttStep new base RTT
  double probability = 0.0;     ///< kRandomLoss / kEcnBleach / kReorder
  int burst_packets = 0;        ///< kBurstLoss length
  pi2::sim::Duration extra_delay{};  ///< kReorder hold time
};

/// Ordered collection of fault events with fluent builders. Builders return
/// *this so schedules read like scripts:
///   FaultSchedule s;
///   s.rate_step(at(20), 10e6).rate_step(at(40), 40e6)
///    .random_loss(at(25), at(30), 0.01);
struct FaultSchedule {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// True if any event needs the per-packet ingress filter (loss, bleach,
  /// reorder) as opposed to purely scheduled state changes.
  [[nodiscard]] bool has_packet_faults() const;

  FaultSchedule& rate_step(pi2::sim::Time at, double rate_bps);
  FaultSchedule& rate_flap(pi2::sim::Time at, pi2::sim::Time until,
                           double low_bps, double high_bps,
                           pi2::sim::Duration period);
  FaultSchedule& rtt_step(pi2::sim::Time at, pi2::sim::Duration rtt);
  FaultSchedule& burst_loss(pi2::sim::Time at, int packets);
  FaultSchedule& random_loss(pi2::sim::Time at, pi2::sim::Time until,
                             double probability);
  FaultSchedule& ecn_bleach(pi2::sim::Time at, pi2::sim::Time until,
                            double fraction);
  FaultSchedule& reorder(pi2::sim::Time at, pi2::sim::Time until,
                         double fraction, pi2::sim::Duration extra_delay);

  /// Returns "" when every event is well-formed, otherwise an actionable
  /// message naming the offending event index, field and constraint.
  [[nodiscard]] std::string validate() const;

  /// Duration-aware validation: everything validate() checks, plus no event
  /// may start at/after `duration` (it could never fire) and windowed events
  /// of the same kind must not overlap (the injector replays each kind as a
  /// single state machine, so concurrent windows are ambiguous). Scenario
  /// configs call this form with their run duration; `duration <= 0` skips
  /// the end-of-run check (the config rejects such durations separately).
  [[nodiscard]] std::string validate(pi2::sim::Time duration) const;
};

}  // namespace pi2::faults
