// Fluid-model loop transfer functions and Bode margins (paper Appendix B).
//
// Implements the three loop transfer functions the paper derives:
//   (35) L_renop   — Reno controlled by a direct probability p (PI / PIE)
//   (36) L_renop'2 — Reno controlled by a squared pseudo-probability (PI2)
//   (37) L_scalp'  — a Scalable control (DCTCP-like, half-packet reduction
//                    per mark) controlled directly by p'
//
// and computes gain/phase margins by sweeping L(jw) over a log grid with an
// unwrapped phase and bisection refinement — the C++ equivalent of the
// octave scripts behind Figures 4 and 7.
#pragma once

#include <complex>
#include <optional>

namespace pi2::control {

/// PI gains as implemented (per-update, dimensionless deltas with delays in
/// seconds — "Hz" in the paper's equation (4)) plus the update interval.
struct PiGains {
  double alpha_hz = 0.125;
  double beta_hz = 1.25;
  double t_update_s = 0.032;
};

enum class LoopType {
  kRenoP,         ///< (35): Reno on direct p (plain PI, or PIE with tune)
  kRenoPSquared,  ///< (36): Reno on squared p' (PI2)
  kScalableP,     ///< (37): Scalable control on direct p'
};

/// One operating point of the control loop.
///
/// `prob` is the *applied* probability p for kRenoP and the linear
/// pseudo-probability p' for the other two loop types. `rtt_s` is R0, the
/// (maximum) round-trip time the AQM is provisioned for.
class LoopModel {
 public:
  LoopModel(LoopType type, double prob, double rtt_s, PiGains gains);

  /// L(j omega), omega in rad/s.
  [[nodiscard]] std::complex<double> eval(double omega) const;

  struct Margins {
    double gain_margin_db;    ///< -20 log10 |L| at the phase crossover
    double phase_margin_deg;  ///< 180 + arg L at the gain crossover
    double omega_180;         ///< phase-crossover frequency (rad/s)
    double omega_c;           ///< gain-crossover frequency (rad/s)
  };

  /// Margins over omega in [omega_lo, omega_hi] (rad/s). Returns nullopt if
  /// a crossover cannot be found in the range (e.g. |L| < 1 everywhere).
  [[nodiscard]] std::optional<Margins> margins(double omega_lo = 1e-3,
                                               double omega_hi = 1e4) const;

  /// Operating-point window W0 for the configured probability/loop type.
  [[nodiscard]] double w0() const { return w0_; }

 private:
  LoopType type_;
  double prob_;
  double rtt_s_;
  PiGains gains_;
  double w0_;
};

/// The stepped PIE autotune factor (re-export for the analysis binaries; the
/// live implementation is aqm::PieAqm::tune_factor).
double pie_tune_factor(double prob);

/// sqrt(2p) — the curve the paper shows the tune table tracks (Figure 5).
double sqrt_2p(double prob);

}  // namespace pi2::control
