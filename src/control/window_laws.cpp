#include "control/window_laws.hpp"

#include <cmath>

namespace pi2::control {

double reno_window(double p) { return 1.22 / std::sqrt(p); }

double creno_window(double p) { return 1.68 / std::sqrt(p); }

double cubic_window(double p, double rtt_s) {
  return 1.17 * std::pow(rtt_s, 0.75) / std::pow(p, 0.75);
}

bool cubic_in_creno_region(double window, double rtt_s) {
  return window * std::pow(rtt_s, 1.5) < 3.5;
}

double dctcp_window_probabilistic(double p) { return 2.0 / p; }

double dctcp_window_step(double p) { return 2.0 / (p * p); }

double reno_prob(double window) {
  const double r = 1.22 / window;
  return r * r;
}

double creno_prob(double window) {
  const double r = 1.68 / window;
  return r * r;
}

double dctcp_prob_probabilistic(double window) { return 2.0 / window; }

double coupled_classic_prob(double p_s, double k) {
  const double r = p_s / k;
  return r * r;
}

double derived_coupling_factor() { return 2.0 / 1.68; }

double signals_per_rtt_exponent(double b) { return 1.0 - 1.0 / b; }

}  // namespace pi2::control
