// Time-domain integration of the paper's nonlinear fluid model
// (Appendix B, equations (15)-(18), (22) plus the PI update law) — the
// delay-differential system behind the Bode analysis.
//
// This provides a third, independent view between the frequency-domain
// margins (control/fluid_model) and the packet simulator (scenario/):
// step responses here must oscillate exactly where the margins go negative,
// and settle where they are positive.
#pragma once

#include <vector>

#include "control/fluid_model.hpp"

namespace pi2::control {

struct FluidConfig {
  LoopType type = LoopType::kRenoPSquared;
  double n_flows = 5.0;          ///< N
  double capacity_pps = 833.0;   ///< C in packets/s (10 Mb/s of 1500 B)
  double base_rtt_s = 0.1;       ///< propagation part Tp of R(t)
  double target_s = 0.02;        ///< AQM delay target tau_0
  PiGains gains;
  double duration_s = 50.0;
  double dt_s = 1e-4;            ///< Euler step
  /// Optional step change of N at a given time (load step experiments).
  double n_step_at_s = -1.0;
  double n_step_to = 0.0;
  /// Classic probability cap (the PI2 overload rule); 1 = uncapped.
  double max_prob = 1.0;
};

struct FluidTrace {
  std::vector<double> t_s;
  std::vector<double> window;     ///< W(t), segments
  std::vector<double> qdelay_s;   ///< q(t)/C
  std::vector<double> prob;       ///< controller output p or p'

  /// Peak queue delay after `from_s`.
  [[nodiscard]] double peak_qdelay_s(double from_s = 0.0) const;
  /// Mean queue delay over the last `tail_s` seconds.
  [[nodiscard]] double settled_qdelay_s(double tail_s) const;
  /// Amplitude of residual oscillation over the last `tail_s` seconds
  /// (max - min of the queue delay).
  [[nodiscard]] double residual_oscillation_s(double tail_s) const;
};

/// Integrates the fluid model and returns the trace (sampled every ~1 ms).
FluidTrace simulate_fluid(const FluidConfig& config);

}  // namespace pi2::control
