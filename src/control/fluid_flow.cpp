#include "control/fluid_flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pi2::control {

using pi2::sim::from_seconds;
using pi2::sim::to_seconds;

FluidFlowEnsemble::FluidFlowEnsemble(pi2::sim::Simulator& sim, Config config)
    : sim_(sim), config_(config) {
  if (!(config_.dt_s > 0.0) || !std::isfinite(config_.dt_s)) {
    throw std::invalid_argument("FluidFlowEnsemble: dt_s must be finite and > 0");
  }
  if (!(config_.max_lag_s >= config_.dt_s)) {
    throw std::invalid_argument("FluidFlowEnsemble: max_lag_s must be >= dt_s");
  }
  hist_len_ = static_cast<std::size_t>(config_.max_lag_s / config_.dt_s) + 1;
}

std::size_t FluidFlowEnsemble::add_spec(const FluidFlowSpec& spec) {
  if (started_) {
    throw std::logic_error("FluidFlowEnsemble: add_spec after start");
  }
  // DumbbellConfig::validate() covers scenario-level specs; validating here
  // too keeps the ensemble safe for standalone users (tests, benches).
  if (!(spec.count >= 0.0) || !std::isfinite(spec.count)) {
    throw std::invalid_argument("FluidFlowSpec: count must be finite and >= 0");
  }
  if (!(spec.base_rtt_s > 0.0) || !std::isfinite(spec.base_rtt_s)) {
    throw std::invalid_argument(
        "FluidFlowSpec: base_rtt_s must be finite and > 0");
  }
  if (!(spec.mss_bytes > 0.0) || !std::isfinite(spec.mss_bytes)) {
    throw std::invalid_argument(
        "FluidFlowSpec: mss_bytes must be finite and > 0");
  }
  if (!(spec.start_s >= 0.0) || !(spec.stop_s > spec.start_s)) {
    throw std::invalid_argument(
        "FluidFlowSpec: need start_s >= 0 and stop_s > start_s");
  }
  SpecState s;
  s.spec = spec;
  s.w = std::max(spec.initial_window, 1.0);
  // Pre-fill the rings with the initial state so early lag lookups (before
  // one RTT of history exists) see the starting conditions, matching
  // fluid_sim's warm-up behaviour.
  s.w_hist.assign(hist_len_, s.w);
  s.p_hist.assign(hist_len_, 0.0);
  s.r_hist.assign(hist_len_, std::max(spec.base_rtt_s, 1e-6));
  specs_.push_back(std::move(s));
  return specs_.size() - 1;
}

void FluidFlowEnsemble::start() {
  if (started_) return;
  if (!sources_.classic_probability || !sources_.scalable_probability ||
      !sources_.queue_delay_s) {
    throw std::logic_error("FluidFlowEnsemble: sources not set before start");
  }
  started_ = true;
  sim_.after(from_seconds(config_.dt_s), [this] { tick(); });
}

void FluidFlowEnsemble::advance(SpecState& s, double now_s, double p_classic,
                                double p_scalable, double qdelay_s) {
  const bool active = now_s >= s.spec.start_s && now_s < s.spec.stop_s;
  const std::size_t idx = ticks_ % hist_len_;
  if (!active) {
    // Inactive specs idle at their initial conditions so a later start (or
    // a stop/restart in fuzzed configs) begins from a clean slate.
    s.w = std::max(s.spec.initial_window, 1.0);
    s.rate_bps = 0.0;
    s.w_hist[idx] = s.w;
    s.p_hist[idx] = 0.0;
    s.r_hist[idx] = std::max(s.spec.base_rtt_s, 1e-6);
    return;
  }

  const double r = std::max(s.spec.base_rtt_s + qdelay_s, 1e-6);
  const double p =
      s.spec.signal == FluidSignal::kClassic ? p_classic : p_scalable;

  // Delayed terms at t - R(t), clamped to both the spec's own lifetime and
  // the ring depth.
  const double lag = std::min({r, now_s - s.spec.start_s, config_.max_lag_s});
  const auto lag_steps = std::min(
      static_cast<std::size_t>(lag / config_.dt_s), hist_len_ - 1);
  const std::size_t lag_idx = (ticks_ + hist_len_ - lag_steps) % hist_len_;
  const double w_lag = s.w_hist[lag_idx];
  const double p_lag = s.p_hist[lag_idx];
  const double r_lag = s.r_hist[lag_idx];

  // Window dynamics: equation (15) for the Classic signal (Reno halves the
  // window once per congested RTT), equation (22) for the Scalable signal
  // (one 1/2-segment decrease per mark).
  double dw;
  if (s.spec.signal == FluidSignal::kClassic) {
    dw = 1.0 / r - 0.5 * s.w * (w_lag / r_lag) * p_lag;
  } else {
    dw = 1.0 / r - 0.5 * (w_lag / r_lag) * p_lag;
  }
  s.w = std::max(s.w + dw * config_.dt_s, 1.0);
  s.rate_bps = s.spec.count * s.w * s.spec.mss_bytes * 8.0 / r;

  s.w_hist[idx] = s.w;
  s.p_hist[idx] = p;
  s.r_hist[idx] = r;
}

void FluidFlowEnsemble::tick() {
  const double now_s = to_seconds(sim_.now());
  const double p_classic = sources_.classic_probability();
  const double p_scalable = sources_.scalable_probability();
  const double qdelay_s = sources_.queue_delay_s();

  double aggregate = 0.0;
  for (SpecState& s : specs_) {
    advance(s, now_s, p_classic, p_scalable, qdelay_s);
    aggregate += s.rate_bps;
  }
  ++ticks_;
  aggregate_bps_ = aggregate;
  if (sink_) sink_(aggregate);
  sim_.after(from_seconds(config_.dt_s), [this] { tick(); });
}

double FluidFlowEnsemble::window(std::size_t spec_index) const {
  assert(spec_index < specs_.size());
  return specs_[spec_index].w;
}

double FluidFlowEnsemble::spec_rate_bps(std::size_t spec_index) const {
  assert(spec_index < specs_.size());
  return specs_[spec_index].rate_bps;
}

double FluidFlowEnsemble::active_flow_count() const {
  const double now_s = to_seconds(sim_.now());
  double n = 0.0;
  for (const SpecState& s : specs_) {
    if (now_s >= s.spec.start_s && now_s < s.spec.stop_s) n += s.spec.count;
  }
  return n;
}

std::size_t FluidFlowEnsemble::state_bytes_per_spec() const {
  return sizeof(SpecState) + 3 * hist_len_ * sizeof(double);
}

double FluidFlowEnsemble::fixed_point_window(FluidSignal signal,
                                             double probability) {
  if (!(probability > 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  // dW = 0 in steady state (W = W_lag, R = R_lag):
  //   Classic:  1/R = W²p / 2R  =>  W = sqrt(2/p)
  //   Scalable: 1/R = Wp' / 2R  =>  W = 2/p'
  return signal == FluidSignal::kClassic ? std::sqrt(2.0 / probability)
                                         : 2.0 / probability;
}

}  // namespace pi2::control
