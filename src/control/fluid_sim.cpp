#include "control/fluid_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace pi2::control {

double FluidTrace::peak_qdelay_s(double from_s) const {
  double peak = 0.0;
  for (std::size_t i = 0; i < t_s.size(); ++i) {
    if (t_s[i] >= from_s) peak = std::max(peak, qdelay_s[i]);
  }
  return peak;
}

double FluidTrace::settled_qdelay_s(double tail_s) const {
  if (t_s.empty()) return 0.0;
  const double from = t_s.back() - tail_s;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t_s.size(); ++i) {
    if (t_s[i] >= from) {
      sum += qdelay_s[i];
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double FluidTrace::residual_oscillation_s(double tail_s) const {
  if (t_s.empty()) return 0.0;
  const double from = t_s.back() - tail_s;
  double lo = 1e9;
  double hi = -1e9;
  for (std::size_t i = 0; i < t_s.size(); ++i) {
    if (t_s[i] >= from) {
      lo = std::min(lo, qdelay_s[i]);
      hi = std::max(hi, qdelay_s[i]);
    }
  }
  return hi > lo ? hi - lo : 0.0;
}

FluidTrace simulate_fluid(const FluidConfig& config) {
  const double dt = config.dt_s;
  const auto steps = static_cast<std::size_t>(config.duration_s / dt);

  // History ring for delayed terms, indexed on the dt grid. The maximum
  // delay we ever look back is base_rtt + max queueing delay; cap at 10 s.
  const auto hist_len = static_cast<std::size_t>(10.0 / dt);
  std::vector<double> w_hist(hist_len, 1.0);
  std::vector<double> p_hist(hist_len, 0.0);
  std::vector<double> r_hist(hist_len, config.base_rtt_s);

  double n = config.n_flows;
  double w = 2.0;   // start near slow-start exit
  double q = 0.0;   // packets
  double prob = 0.0;
  double prev_qdelay = 0.0;
  double next_update = config.gains.t_update_s;

  FluidTrace trace;
  const auto sample_every = std::max<std::size_t>(1, static_cast<std::size_t>(1e-3 / dt));
  trace.t_s.reserve(steps / sample_every + 1);

  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * dt;
    if (config.n_step_at_s >= 0.0 && t >= config.n_step_at_s) {
      n = config.n_step_to;
    }
    const double r = q / config.capacity_pps + config.base_rtt_s;

    // Delayed values at t - R(t) (clamped to the start of the run).
    const std::size_t idx = i % hist_len;
    const double lag = std::min(r, t);
    const auto lag_steps = static_cast<std::size_t>(lag / dt);
    const std::size_t lag_idx = (i + hist_len - lag_steps) % hist_len;
    const double w_lag = w_hist[lag_idx];
    const double p_lag = p_hist[lag_idx];
    const double r_lag = r_hist[lag_idx];

    // Window dynamics (equations (15)/(18)/(22)).
    double dw;
    switch (config.type) {
      case LoopType::kRenoP:
        dw = 1.0 / r - 0.5 * w * (w_lag / r_lag) * p_lag;
        break;
      case LoopType::kRenoPSquared:
        dw = 1.0 / r - 0.5 * w * (w_lag / r_lag) * p_lag * p_lag;
        break;
      case LoopType::kScalableP:
        dw = 1.0 / r - 0.5 * (w_lag / r_lag) * p_lag;
        break;
      default:
        dw = 0.0;
    }
    w = std::max(w + dw * dt, 1.0);

    // Queue dynamics (equation (16)), non-negative.
    const double dq = n * w / r - config.capacity_pps;
    q = std::max(q + dq * dt, 0.0);

    // PI update every t_update.
    if (t >= next_update) {
      const double qdelay = q / config.capacity_pps;
      prob += config.gains.alpha_hz * (qdelay - config.target_s) +
              config.gains.beta_hz * (qdelay - prev_qdelay);
      prob = std::clamp(prob, 0.0, config.max_prob);
      prev_qdelay = qdelay;
      next_update += config.gains.t_update_s;
    }

    w_hist[idx] = w;
    p_hist[idx] = prob;
    r_hist[idx] = r;

    if (i % sample_every == 0) {
      trace.t_s.push_back(t);
      trace.window.push_back(w);
      trace.qdelay_s.push_back(q / config.capacity_pps);
      trace.prob.push_back(prob);
    }
  }
  return trace;
}

}  // namespace pi2::control
