// First-class fluid flows: the Appendix B window equations integrated live
// against a bottleneck's p/p' signal, as an event-driven ensemble.
//
// Where control/fluid_sim integrates the whole closed loop offline (its own
// queue, its own PI controller), a FluidFlowEnsemble integrates *only* the
// window dynamics and leaves queue and controller to the packet simulation
// it is embedded in: each tick it reads the live AQM probabilities and queue
// delay through caller-supplied sources, advances every spec's window ODE,
// and reports the aggregate arrival rate to a sink. That makes a spec of
// N homogeneous flows cost one ODE state and one scheduler event per tick —
// O(1) in N — so thousands to millions of background flows can share a
// bottleneck with a handful of full packet flows (fidelity foreground,
// fluid load).
//
// Signal routing follows the paper's architecture: Reno-family flows react
// to the Classic signal p (which a PI2 coupling already squares, p=(p'/k)²),
// Scalable-family flows react to the linear signal p' — equations (15) and
// (22) with the probability sourced from the live qdisc instead of a
// modelled controller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/simulator.hpp"

namespace pi2::control {

/// Which AQM output a fluid spec's window law consumes.
enum class FluidSignal {
  kClassic,   ///< p: Reno-family multiplicative decrease, eq. (15)
  kScalable,  ///< p': Scalable-family per-mark decrease, eq. (22)
};

/// N homogeneous fluid flows sharing one window ODE (the Appendix B
/// aggregation): one state per spec, whatever the count.
struct FluidFlowSpec {
  FluidSignal signal = FluidSignal::kClassic;
  double count = 1000.0;      ///< N
  double base_rtt_s = 0.1;    ///< propagation part of R(t)
  double mss_bytes = 1500.0;  ///< segment size the window is denominated in
  double start_s = 0.0;
  double stop_s = std::numeric_limits<double>::infinity();
  double initial_window = 2.0;  ///< W at start (near slow-start exit)
};

class FluidFlowEnsemble {
 public:
  struct Config {
    /// Euler step and tick period: one scheduler event per dt regardless of
    /// spec count or N.
    double dt_s = 1e-3;
    /// Depth of the per-spec history rings for the delayed terms
    /// W(t-R), p(t-R), R(t-R); lags beyond this clamp to the oldest entry.
    double max_lag_s = 2.0;
  };

  /// Live signals read at every tick. All three must be set before start().
  struct Sources {
    std::function<double()> classic_probability;
    std::function<double()> scalable_probability;
    std::function<double()> queue_delay_s;
  };

  FluidFlowEnsemble(pi2::sim::Simulator& sim, Config config);

  /// Adds a spec before start(). Returns its index.
  std::size_t add_spec(const FluidFlowSpec& spec);

  void set_sources(Sources sources) { sources_ = std::move(sources); }

  /// Called once per tick, after the windows advanced, with the aggregate
  /// arrival rate in bits/s (sum over active specs of N·W·mss·8/R).
  void set_tick_sink(std::function<void(double aggregate_bps)> sink) {
    sink_ = std::move(sink);
  }

  /// Schedules the periodic tick. Ticks run until the simulation ends.
  void start();

  [[nodiscard]] double aggregate_rate_bps() const { return aggregate_bps_; }
  [[nodiscard]] double window(std::size_t spec_index) const;
  /// Demand (bits/s) spec `i` contributed to the last aggregate.
  [[nodiscard]] double spec_rate_bps(std::size_t spec_index) const;
  [[nodiscard]] std::size_t spec_count() const { return specs_.size(); }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// Sum of `count` over currently-active specs.
  [[nodiscard]] double active_flow_count() const;
  /// Bytes of ODE + history state held per spec (bytes-per-flow accounting:
  /// divide by the spec's count).
  [[nodiscard]] std::size_t state_bytes_per_spec() const;

  /// Closed-form steady state of the window ODE under a constant
  /// probability: dW = 0 gives W = sqrt(2/p) for the Classic law and
  /// W = 2/p' for the Scalable law. Used by the step-input convergence
  /// tests.
  [[nodiscard]] static double fixed_point_window(FluidSignal signal,
                                                 double probability);

 private:
  struct SpecState {
    FluidFlowSpec spec;
    double w = 2.0;
    double rate_bps = 0.0;
    /// History rings on the dt grid, indexed by tick count.
    std::vector<double> w_hist;
    std::vector<double> p_hist;
    std::vector<double> r_hist;
  };

  void tick();
  void advance(SpecState& s, double now_s, double p_classic, double p_scalable,
               double qdelay_s);

  pi2::sim::Simulator& sim_;
  Config config_;
  Sources sources_;
  std::function<void(double)> sink_;
  std::vector<SpecState> specs_;
  std::size_t hist_len_ = 0;
  std::uint64_t ticks_ = 0;
  double aggregate_bps_ = 0.0;
  bool started_ = false;
};

}  // namespace pi2::control
