// Steady-state window/probability laws from Appendix A of the paper.
//
// All windows are in segments per RTT; probabilities are per-packet
// drop/mark probabilities. These close the loop between the analytic layer
// and the packet simulator: property tests check the simulated flows against
// them, and the fluid model uses them for operating points.
#pragma once

namespace pi2::control {

/// Equation (5): TCP Reno, W = 1.22 / p^{1/2}.
double reno_window(double p);

/// Equation (7): Cubic in Reno mode (CReno, beta = 0.7), W = 1.68 / p^{1/2}.
double creno_window(double p);

/// Equation (6): pure Cubic, W = 1.17 R^{3/4} / p^{3/4} (R in seconds).
double cubic_window(double p, double rtt_s);

/// Equation (8): Cubic runs in its Reno (CReno) mode while W R^{3/2} < 3.5.
bool cubic_in_creno_region(double window, double rtt_s);

/// Equation (11): DCTCP under probabilistic (PI-driven) marking, W = 2 / p.
double dctcp_window_probabilistic(double p);

/// Equation (12): DCTCP under a step threshold (on-off marking), W = 2 / p^2.
double dctcp_window_step(double p);

/// Inverse laws: probability needed for a given window.
double reno_prob(double window);
double creno_prob(double window);
double dctcp_prob_probabilistic(double window);

/// Equation (14): Classic probability coupled from the Scalable one,
/// p_c = (p_s / k)^2.
double coupled_classic_prob(double p_s, double k);

/// The analytically derived coupling factor for CReno vs DCTCP rate
/// equality: k = 2 / 1.68 ~ 1.19 (the paper rounds to 2 in deployment,
/// which also matches the optimal gain ratio).
double derived_coupling_factor();

/// Scaling exponent B of a control with W ~ 1/p^B: signals per RTT
/// c = p W ~ W^(1 - 1/B) — equation (3). Scalable iff B >= 1.
double signals_per_rtt_exponent(double b);

}  // namespace pi2::control
