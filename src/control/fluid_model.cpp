#include "control/fluid_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "aqm/pie.hpp"

namespace pi2::control {

namespace {
constexpr double kPi = std::numbers::pi;

double operating_window(LoopType type, double prob) {
  switch (type) {
    case LoopType::kRenoP:
      // W0^2 p0 = 2 (paper operating point, eq (19) with p = p0).
      return std::sqrt(2.0 / prob);
    case LoopType::kRenoPSquared:
      // W0^2 p0'^2 = 2 (eq (19)).
      return std::sqrt(2.0) / prob;
    case LoopType::kScalableP:
      // W0 p0' = 2 (eq (23)).
      return 2.0 / prob;
  }
  return 1.0;
}
}  // namespace

double pie_tune_factor(double prob) { return aqm::PieAqm::tune_factor(prob); }

double sqrt_2p(double prob) { return std::sqrt(2.0 * prob); }

LoopModel::LoopModel(LoopType type, double prob, double rtt_s, PiGains gains)
    : type_(type),
      prob_(prob),
      rtt_s_(rtt_s),
      gains_(gains),
      w0_(operating_window(type, prob)) {}

std::complex<double> LoopModel::eval(double omega) const {
  using namespace std::complex_literals;
  const std::complex<double> s{0.0, omega};
  const std::complex<double> delay = std::exp(-s * rtt_s_);

  // AQM stage (eq (30)/(31)): PI controller + queue integrator.
  const double alpha = gains_.alpha_hz;
  const double beta = gains_.beta_hz;
  const double t = gains_.t_update_s;
  const std::complex<double> aqm_num = (beta + alpha / 2.0) * s + alpha / t;
  const std::complex<double> aqm_den = w0_ * s * (s + 1.0 / rtt_s_);
  const std::complex<double> a = aqm_num / aqm_den;

  // TCP stage (eqs (32)-(34)); the leading minus signs of A and P cancel in
  // the loop, so both are taken positive here.
  std::complex<double> p;
  switch (type_) {
    case LoopType::kRenoP: {
      const double kappa_r = 1.0 / (2.0 * prob_);
      const double s_r = std::sqrt(2.0 * prob_) / rtt_s_;
      p = w0_ * kappa_r * delay / (s / s_r + (1.0 + delay) / 2.0);
      break;
    }
    case LoopType::kRenoPSquared: {
      const double kappa_s = 1.0 / prob_;
      const double s_r = std::sqrt(2.0) * prob_ / rtt_s_;
      p = w0_ * (kappa_s / 2.0) * 2.0 * delay / (s / s_r + (1.0 + delay) / 2.0);
      break;
    }
    case LoopType::kScalableP: {
      const double kappa_s = 1.0 / prob_;
      const double s_s = prob_ / (2.0 * rtt_s_);
      p = w0_ * kappa_s * delay / (s / s_s + delay);
      break;
    }
  }
  return a * p;
}

std::optional<LoopModel::Margins> LoopModel::margins(double omega_lo,
                                                     double omega_hi) const {
  constexpr int kGridPoints = 4000;
  const double log_lo = std::log10(omega_lo);
  const double log_hi = std::log10(omega_hi);

  // Sweep with phase unwrapping.
  std::vector<double> omegas(kGridPoints);
  std::vector<double> mags(kGridPoints);
  std::vector<double> phases(kGridPoints);  // unwrapped, degrees
  double prev_raw = 0.0;
  double offset = 0.0;
  for (int i = 0; i < kGridPoints; ++i) {
    const double w =
        std::pow(10.0, log_lo + (log_hi - log_lo) * i / (kGridPoints - 1));
    const std::complex<double> l = eval(w);
    const double raw = std::arg(l) * 180.0 / kPi;
    if (i > 0) {
      double d = raw - prev_raw;
      while (d > 180.0) {
        offset -= 360.0;
        d -= 360.0;
      }
      while (d < -180.0) {
        offset += 360.0;
        d += 360.0;
      }
    }
    prev_raw = raw;
    omegas[i] = w;
    mags[i] = std::abs(l);
    phases[i] = raw + offset;
  }

  // Phase crossover: first grid cell where the unwrapped phase crosses -180.
  std::optional<double> omega_180;
  for (int i = 1; i < kGridPoints; ++i) {
    if ((phases[i - 1] > -180.0) != (phases[i] > -180.0)) {
      double lo = omegas[i - 1];
      double hi = omegas[i];
      const bool descending = phases[i - 1] > phases[i];
      for (int it = 0; it < 60; ++it) {
        const double mid = std::sqrt(lo * hi);
        // Local phase relative to the bracketing cell (no wraps inside one
        // fine cell of the 4000-point grid).
        const double ph = std::arg(eval(mid)) * 180.0 / kPi;
        double ph_unwrapped = ph;
        while (ph_unwrapped > phases[i - 1] + 180.0) ph_unwrapped -= 360.0;
        while (ph_unwrapped < phases[i] - 180.0) ph_unwrapped += 360.0;
        if ((ph_unwrapped > -180.0) == descending) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      omega_180 = std::sqrt(lo * hi);
      break;
    }
  }

  // Gain crossover: first cell where |L| falls through 1.
  std::optional<double> omega_c;
  for (int i = 1; i < kGridPoints; ++i) {
    if ((mags[i - 1] >= 1.0) != (mags[i] >= 1.0)) {
      double lo = omegas[i - 1];
      double hi = omegas[i];
      const bool descending = mags[i - 1] > mags[i];
      for (int it = 0; it < 60; ++it) {
        const double mid = std::sqrt(lo * hi);
        if ((std::abs(eval(mid)) >= 1.0) == descending) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      omega_c = std::sqrt(lo * hi);
      break;
    }
  }

  if (!omega_180 || !omega_c) return std::nullopt;

  Margins m{};
  m.omega_180 = *omega_180;
  m.omega_c = *omega_c;
  m.gain_margin_db = -20.0 * std::log10(std::abs(eval(*omega_180)));

  // Phase margin: unwrapped phase at omega_c, interpolated from the grid.
  const auto it = std::lower_bound(omegas.begin(), omegas.end(), *omega_c);
  const auto idx = std::clamp<std::ptrdiff_t>(it - omegas.begin(), 1, kGridPoints - 1);
  const double w0g = omegas[idx - 1];
  const double w1g = omegas[idx];
  const double frac = (std::log(*omega_c) - std::log(w0g)) / (std::log(w1g) - std::log(w0g));
  const double phase_at_c = phases[idx - 1] + frac * (phases[idx] - phases[idx - 1]);
  m.phase_margin_deg = 180.0 + phase_at_c;
  return m;
}

}  // namespace pi2::control
