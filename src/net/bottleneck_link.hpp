// The bottleneck: a FIFO buffer drained by a rate-limited link, with a
// pluggable queue discipline (AQM) deciding drops and ECN marks.
//
// Semantics follow a Linux qdisc + NIC: a packet is removed from the buffer
// when its transmission starts, serializes for size*8/rate seconds, and is
// delivered to the sink when transmission completes. The drain rate can be
// changed mid-run (Figure 12's varying-link-capacity experiment).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/probe_bus.hpp"
#include "net/queue_discipline.hpp"
#include "sim/simulator.hpp"

namespace pi2::net {

class BottleneckLink final : public QueueView {
 public:
  struct Config {
    double rate_bps = 10e6;
    /// Buffer limit in packets (the paper uses 40000 packets ~ 2.4 s at
    /// 200 Mb/s). Arrivals beyond this are tail-dropped regardless of AQM.
    std::int64_t buffer_packets = 40000;
  };

  struct Counters {
    std::int64_t enqueued = 0;
    std::int64_t forwarded = 0;
    std::int64_t aqm_dropped = 0;
    std::int64_t tail_dropped = 0;
    std::int64_t marked = 0;
    /// Packets discarded by the ingress fault filter (injected impairments;
    /// never counted in aqm_dropped/tail_dropped).
    std::int64_t fault_dropped = 0;
    /// Subset of aqm_dropped decided at dequeue time. Needed for packet
    /// conservation: these packets were counted in `enqueued` but never
    /// reach `forwarded`.
    std::int64_t dequeue_dropped = 0;
  };

  /// Per-band slice of the aggregate counters (multi-band disciplines:
  /// DualPI2's L queue is band 0, C is band 1). Single-band queues keep one
  /// slice that mirrors the aggregate (minus fault_dropped, which happens
  /// before classification). aqm_dropped includes the dequeue_dropped
  /// subset, matching the aggregate semantics; tail_dropped attributes the
  /// shared-buffer drops to the band the packet would have joined.
  struct BandCounters {
    std::int64_t enqueued = 0;
    std::int64_t forwarded = 0;
    std::int64_t marked = 0;
    std::int64_t aqm_dropped = 0;
    std::int64_t tail_dropped = 0;
    std::int64_t dequeue_dropped = 0;
  };

  /// Kept as a nested alias for source compatibility; the enum itself lives
  /// at namespace scope (net/probe_bus.hpp) so the probe bus can carry it.
  using DropReason = pi2::net::DropReason;

  /// Verdict of the ingress fault filter, applied before the AQM sees the
  /// packet. kDelay re-offers the packet to the queue after `delay` via the
  /// scheduler (packet reordering); re-injected packets bypass the filter.
  struct IngressVerdict {
    enum class Action { kPass, kDrop, kDelay } action = Action::kPass;
    pi2::sim::Duration delay{};
  };

  BottleneckLink(pi2::sim::Simulator& sim, Config config,
                 std::unique_ptr<QueueDiscipline> qdisc);

  /// Where departing packets go (e.g. a propagation-delay pipe).
  void set_sink(std::function<void(Packet)> sink) { sink_ = std::move(sink); }

  /// The probe bus every observer of this queue subscribes to (multicast —
  /// every registered probe fires). PacketTrace, stats meters and telemetry
  /// all attach here.
  [[nodiscard]] ProbeBus& probes() { return probes_; }
  [[nodiscard]] const ProbeBus& probes() const { return probes_; }

  // Convenience forwarders onto the bus (the pre-bus public API).
  void add_departure_probe(ProbeBus::DepartureProbe probe) {
    probes_.add_departure(std::move(probe));
  }
  void add_busy_probe(ProbeBus::BusyProbe probe) {
    probes_.add_busy(std::move(probe));
  }
  void add_drop_probe(ProbeBus::DropProbe probe) {
    probes_.add_drop(std::move(probe));
  }
  /// Fires when a packet is accepted into the queue (after AQM marking).
  void add_enqueue_probe(ProbeBus::EnqueueProbe probe) {
    probes_.add_enqueue(std::move(probe));
  }

  // Single-probe setters kept for convenience (equivalent to add_*).
  void set_departure_probe(ProbeBus::DepartureProbe probe) {
    add_departure_probe(std::move(probe));
  }
  void set_busy_probe(ProbeBus::BusyProbe probe) {
    add_busy_probe(std::move(probe));
  }
  void set_drop_probe(ProbeBus::DropProbe probe) {
    add_drop_probe(std::move(probe));
  }

  /// Offers a packet to the queue. The ingress fault filter (if any) runs
  /// first and may drop, delay or mutate the packet (impairment injection);
  /// then the AQM verdict and the buffer limit apply; accepted packets are
  /// eventually delivered to the sink.
  void send(Packet packet);

  /// Installs the impairment hook send() consults. The filter may mutate
  /// the packet in place (e.g. clear its ECN codepoint). One filter at a
  /// time; the fault subsystem composes its impairments internally.
  void set_ingress_filter(std::function<IngressVerdict(Packet&)> filter) {
    ingress_filter_ = std::move(filter);
  }

  /// Changes the drain rate; applies from the next transmission start.
  void set_rate_bps(double bps) { config_.rate_bps = bps; }

  /// Injects the fluid-tier queue state (hybrid fluid/packet runs). The
  /// fluid backlog joins the AQM's view of the queue (backlog_bytes and
  /// queue_delay) so the controller reacts to the aggregate congestion, and
  /// the fluid service rate reduces the capacity packets serialize at.
  /// Called once per fluid tick by the scenario glue; both zero when no
  /// fluid flows are configured.
  void set_fluid_state(std::int64_t fluid_backlog_bytes,
                       double fluid_rate_bps) {
    fluid_backlog_bytes_ = fluid_backlog_bytes;
    fluid_rate_bps_ = fluid_rate_bps;
  }
  [[nodiscard]] std::int64_t fluid_backlog_bytes() const {
    return fluid_backlog_bytes_;
  }

  /// Byte backlog of the packet buffer alone, excluding the fluid tier.
  /// This is the quantity conserved by enqueue/dequeue/drop accounting (the
  /// InvariantMonitor cross-checks it against recount_backlog_bytes()).
  [[nodiscard]] std::int64_t packet_backlog_bytes() const {
    return packet_backlog_bytes_;
  }

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const BandCounters& band_counters(std::size_t band) const {
    return band_counters_[band];
  }
  [[nodiscard]] const pi2::sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] QueueDiscipline& qdisc() { return *qdisc_; }
  [[nodiscard]] const QueueDiscipline& qdisc() const { return *qdisc_; }

  /// True while a packet is serializing on the wire (it has left the buffer
  /// but is not yet counted in `forwarded`). Exposed for the packet
  /// conservation invariant:
  ///   enqueued == forwarded + backlog_packets + transmitting + dequeue_dropped
  [[nodiscard]] bool transmitting() const { return transmitting_; }
  /// Band the in-flight packet came from; meaningful only while
  /// transmitting() (per-band conservation needs the attribution).
  [[nodiscard]] std::size_t transmitting_band() const { return transmitting_band_; }

  /// Recomputes the byte backlog from the buffer contents. O(queue length);
  /// the InvariantMonitor compares it against the incremental
  /// packet_backlog_bytes() accounting to catch drift/corruption. Never on
  /// the AQM decision path — backlog_bytes() is the O(1) running counter.
  [[nodiscard]] std::int64_t recount_backlog_bytes() const {
    std::int64_t total = 0;
    for (const auto& band : bands_) {
      for (const Packet& p : band) total += p.size;
    }
    return total;
  }

  // QueueView. backlog_bytes is the congestion signal the AQM integrates:
  // packet buffer plus the fluid tier's backlog, so PI2 regulates the
  // aggregate queue in hybrid runs.
  [[nodiscard]] std::int64_t backlog_bytes() const override {
    return packet_backlog_bytes_ + fluid_backlog_bytes_;
  }
  [[nodiscard]] std::int64_t backlog_packets() const override {
    std::int64_t total = 0;
    for (const auto& band : bands_) total += static_cast<std::int64_t>(band.size());
    return total;
  }
  [[nodiscard]] double link_rate_bps() const override { return config_.rate_bps; }
  [[nodiscard]] pi2::sim::Duration queue_delay() const override;
  [[nodiscard]] std::size_t band_count() const override { return bands_.size(); }
  [[nodiscard]] std::int64_t band_backlog_bytes(std::size_t band) const override {
    return band_backlog_bytes_[band];
  }
  [[nodiscard]] std::int64_t band_backlog_packets(std::size_t band) const override {
    return static_cast<std::int64_t>(bands_[band].size());
  }
  [[nodiscard]] pi2::sim::Duration band_head_sojourn(std::size_t band) const override;

 private:
  void accept(Packet packet);  ///< post-filter path: AQM + buffer limit
  void try_start_transmission();
  void finish_transmission(Packet packet, pi2::sim::Time started);
  void drop(const Packet& packet, DropReason reason);
  /// Capacity left for packets after the fluid tier's service share.
  [[nodiscard]] double packet_rate_bps() const;
  /// Debug-build sampled audit: every 256th mutation recounts the buffer
  /// and asserts it matches the running counter. Compiles away in Release.
  void audit_backlog() const;

  pi2::sim::Simulator& sim_;
  Config config_;
  std::unique_ptr<QueueDiscipline> qdisc_;
  /// One FIFO per discipline band (size 1 for every single-queue AQM; the
  /// single-band path is behaviourally identical to the old flat buffer).
  std::vector<std::deque<Packet>> bands_;
  std::vector<BandCounters> band_counters_;
  std::vector<std::int64_t> band_backlog_bytes_;
  std::int64_t packet_backlog_bytes_ = 0;
  std::int64_t fluid_backlog_bytes_ = 0;
  double fluid_rate_bps_ = 0.0;
#ifndef NDEBUG
  mutable std::uint32_t audit_countdown_ = 256;
#endif
  bool transmitting_ = false;
  std::size_t transmitting_band_ = 0;
  Counters counters_;
  std::function<void(Packet)> sink_;
  std::function<IngressVerdict(Packet&)> ingress_filter_;
  ProbeBus probes_;
};

/// Fixed-delay pipe: models propagation (and the uncongested reverse path).
class DelayPipe {
 public:
  DelayPipe(pi2::sim::Simulator& sim, pi2::sim::Duration delay)
      : sim_(sim), delay_(delay) {}

  void set_sink(std::function<void(Packet)> sink) { sink_ = std::move(sink); }
  void set_delay(pi2::sim::Duration delay) { delay_ = delay; }
  [[nodiscard]] pi2::sim::Duration delay() const { return delay_; }

  void send(Packet packet) {
    sim_.after(delay_, [this, packet]() mutable {
      if (sink_) sink_(packet);
    });
  }

 private:
  pi2::sim::Simulator& sim_;
  pi2::sim::Duration delay_;
  std::function<void(Packet)> sink_;
};

}  // namespace pi2::net
