#include "net/trace.hpp"

#include <cstdio>
#include <memory>

namespace pi2::net {

std::string_view to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kEnqueue: return "enqueue";
    case TraceEventType::kDeparture: return "departure";
    case TraceEventType::kDropAqm: return "drop-aqm";
    case TraceEventType::kDropTail: return "drop-tail";
    case TraceEventType::kDropFault: return "drop-fault";
  }
  return "?";
}

void PacketTrace::add(TraceRecord record) {
  if (records_.size() >= capacity_) {
    ++overflow_;
    return;
  }
  records_.push_back(record);
}

void PacketTrace::attach(BottleneckLink& link) {
  attach(link.probes(), link.simulator());
}

void PacketTrace::attach(ProbeBus& bus, const pi2::sim::Simulator& sim) {
  bus.add_enqueue([this](const Packet& p) {
    add({p.enqueued_at, TraceEventType::kEnqueue, p.flow, p.seq, p.size, p.ecn,
         pi2::sim::Duration{0}});
  });
  bus.add_departure([this](const Packet& p, pi2::sim::Duration sojourn) {
    add({p.enqueued_at + sojourn, TraceEventType::kDeparture, p.flow, p.seq,
         p.size, p.ecn, sojourn});
  });
  const pi2::sim::Simulator* simp = &sim;
  bus.add_drop([this, simp](const Packet& p, DropReason reason) {
    TraceEventType type = TraceEventType::kDropTail;
    if (reason == DropReason::kAqm) {
      type = TraceEventType::kDropAqm;
    } else if (reason == DropReason::kFault) {
      type = TraceEventType::kDropFault;
    }
    add({simp->now(), type, p.flow, p.seq, p.size, p.ecn,
         pi2::sim::Duration{0}});
  });
}

std::vector<TraceRecord> PacketTrace::for_flow(std::int32_t flow) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.flow == flow) out.push_back(r);
  }
  return out;
}

std::int64_t PacketTrace::count(TraceEventType type, std::int32_t flow) const {
  std::int64_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.type == type && (flow < 0 || r.flow == flow)) ++n;
  }
  return n;
}

bool PacketTrace::write_csv(const std::string& path) const {
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> f{std::fopen(path.c_str(), "w")};
  if (!f) return false;
  std::fprintf(f.get(), "t_s,event,flow,seq,size,ecn,sojourn_ms\n");
  for (const TraceRecord& r : records_) {
    std::fprintf(f.get(), "%.9f,%s,%d,%lld,%d,%s,%.6f\n", pi2::sim::to_seconds(r.t),
                 std::string(to_string(r.type)).c_str(), r.flow,
                 static_cast<long long>(r.seq), r.size,
                 std::string(to_string(r.ecn)).c_str(),
                 pi2::sim::to_millis(r.sojourn));
  }
  return true;
}

}  // namespace pi2::net
