// Per-packet event tracing (ns-3 style): attach to a BottleneckLink and
// record enqueue / departure / drop events, then export to CSV or query
// per-flow summaries. Intended for debugging experiments and for users who
// want packet-level visibility without touching the probe API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/bottleneck_link.hpp"

namespace pi2::net {

enum class TraceEventType : unsigned char {
  kEnqueue,
  kDeparture,
  kDropAqm,
  kDropTail,
  kDropFault,  ///< discarded by an injected impairment (fault subsystem)
};

[[nodiscard]] std::string_view to_string(TraceEventType type);

struct TraceRecord {
  pi2::sim::Time t;
  TraceEventType type;
  std::int32_t flow;
  std::int64_t seq;
  std::int32_t size;
  Ecn ecn;
  pi2::sim::Duration sojourn;  ///< departures only; 0 otherwise
};

class PacketTrace {
 public:
  /// `capacity` bounds memory; older records are discarded beyond it.
  explicit PacketTrace(std::size_t capacity = 1u << 20) : capacity_(capacity) {}

  /// Registers this trace's probes with the link. Coexists with any other
  /// probes (stats meters etc.) already registered.
  void attach(BottleneckLink& link);

  /// Lower-level form: subscribe directly to a probe bus. The simulator is
  /// needed to timestamp drop events (drops carry no enqueue time).
  void attach(ProbeBus& bus, const pi2::sim::Simulator& sim);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t dropped_records() const { return overflow_; }

  /// Events of one flow, in time order.
  [[nodiscard]] std::vector<TraceRecord> for_flow(std::int32_t flow) const;

  /// Count of records of a given type (optionally for one flow).
  [[nodiscard]] std::int64_t count(TraceEventType type, std::int32_t flow = -1) const;

  /// Writes "t_s,event,flow,seq,size,ecn,sojourn_ms" rows.
  bool write_csv(const std::string& path) const;

  /// Discards the buffered records. The overflow counter is deliberately
  /// preserved: it reports lifetime loss of visibility, and resetting it on
  /// clear() would hide that a previous window overflowed.
  void clear() { records_.clear(); }

 private:
  void add(TraceRecord record);

  std::size_t capacity_;
  std::size_t overflow_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace pi2::net
