// The packet-event probe bus: the single multicast point every observer of
// a bottleneck queue subscribes to.
//
// The bus carries four event streams — enqueue, departure, drop (with a
// reason), and link-busy intervals — and fans each out to every registered
// listener. PacketTrace, the stats meters and the telemetry subsystem all
// ride this one bus, so adding an observer never requires touching the
// queue's data path and observers compose freely.
#pragma once

#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pi2::net {

/// Why the queue discarded a packet.
enum class DropReason { kAqm, kTailDrop, kFault };

class ProbeBus {
 public:
  using EnqueueProbe = std::function<void(const Packet&)>;
  /// Receives the packet and its total time in the system (queue wait +
  /// serialization).
  using DepartureProbe = std::function<void(const Packet&, pi2::sim::Duration)>;
  using DropProbe = std::function<void(const Packet&, DropReason)>;
  /// Receives each transmission interval, for utilization accounting.
  using BusyProbe = std::function<void(pi2::sim::Time, pi2::sim::Time)>;

  void add_enqueue(EnqueueProbe probe) {
    enqueue_.push_back(std::move(probe));
  }
  void add_departure(DepartureProbe probe) {
    departure_.push_back(std::move(probe));
  }
  void add_drop(DropProbe probe) { drop_.push_back(std::move(probe)); }
  void add_busy(BusyProbe probe) { busy_.push_back(std::move(probe)); }

  // Emission (called by the queue owning the bus).
  void emit_enqueue(const Packet& packet) const {
    for (const auto& probe : enqueue_) probe(packet);
  }
  void emit_departure(const Packet& packet, pi2::sim::Duration sojourn) const {
    for (const auto& probe : departure_) probe(packet, sojourn);
  }
  void emit_drop(const Packet& packet, DropReason reason) const {
    for (const auto& probe : drop_) probe(packet, reason);
  }
  void emit_busy(pi2::sim::Time from, pi2::sim::Time to) const {
    for (const auto& probe : busy_) probe(from, to);
  }

 private:
  std::vector<EnqueueProbe> enqueue_;
  std::vector<DepartureProbe> departure_;
  std::vector<DropProbe> drop_;
  std::vector<BusyProbe> busy_;
};

}  // namespace pi2::net
