// The simulated packet.
//
// One struct serves both data segments and ACKs; a real header would be a
// union but the simulator favours a flat, trivially-copyable record (packets
// are passed by value through queues and links).
#pragma once

#include <cstdint>

#include "net/ecn.hpp"
#include "sim/time.hpp"

namespace pi2::net {

inline constexpr std::int32_t kDefaultMss = 1500;  ///< bytes on the wire
inline constexpr std::int32_t kAckBytes = 64;

struct Packet {
  std::int32_t flow = -1;     ///< flow identifier (index into the scenario's flow table)
  std::int64_t seq = 0;       ///< data: segment sequence number (in MSS units)
  std::int32_t size = kDefaultMss;  ///< wire size in bytes
  Ecn ecn = Ecn::kNotEct;

  bool is_ack = false;
  std::int64_t ack_seq = 0;   ///< cumulative ACK: next expected segment
  bool ece = false;           ///< Classic ECN echo (RFC 3168 ECE flag)
  bool ce_echo = false;       ///< accurate per-packet CE echo (DCTCP feedback)

  bool retransmit = false;    ///< data: this segment is a retransmission
  bool cwr = false;           ///< data: Congestion Window Reduced (stops ECE echo)

  pi2::sim::Time sent_at{};      ///< stamped by the sender; echoed in the ACK
  pi2::sim::Time enqueued_at{};  ///< stamped by the bottleneck queue
};

}  // namespace pi2::net
