#include "net/bottleneck_link.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pi2::net {

using pi2::sim::Duration;
using pi2::sim::from_seconds;
using pi2::sim::Time;

BottleneckLink::BottleneckLink(pi2::sim::Simulator& sim, Config config,
                               std::unique_ptr<QueueDiscipline> qdisc)
    : sim_(sim), config_(config), qdisc_(std::move(qdisc)) {
  assert(config_.rate_bps > 0);
  assert(qdisc_ != nullptr);
  const std::size_t bands = std::max<std::size_t>(qdisc_->band_count(), 1);
  bands_.resize(bands);
  band_counters_.resize(bands);
  band_backlog_bytes_.resize(bands, 0);
  qdisc_->install(sim_, *this);
}

pi2::sim::Duration BottleneckLink::band_head_sojourn(std::size_t band) const {
  const auto& q = bands_[band];
  if (q.empty()) return {};
  return sim_.now() - q.front().enqueued_at;
}

Duration BottleneckLink::queue_delay() const {
  // Aggregate (packet + fluid) backlog over the full link rate: the sojourn
  // time a byte arriving now would see, which is what the AQM regulates.
  return from_seconds(static_cast<double>(backlog_bytes()) * 8.0 / config_.rate_bps);
}

double BottleneckLink::packet_rate_bps() const {
  // The fluid tier is served work-conserving from the same capacity, so
  // packets serialize at what remains. Floor at 1% of the link so a fluid
  // overload slows the packet tier down rather than stalling it outright.
  return std::max(config_.rate_bps - fluid_rate_bps_, 0.01 * config_.rate_bps);
}

void BottleneckLink::audit_backlog() const {
#ifndef NDEBUG
  if (--audit_countdown_ == 0) {
    audit_countdown_ = 256;
    assert(packet_backlog_bytes_ == recount_backlog_bytes() &&
           "packet backlog counter drifted from buffer contents");
  }
#endif
}

void BottleneckLink::drop(const Packet& packet, DropReason reason) {
  switch (reason) {
    case DropReason::kAqm:
      ++counters_.aqm_dropped;
      break;
    case DropReason::kTailDrop:
      ++counters_.tail_dropped;
      break;
    case DropReason::kFault:
      ++counters_.fault_dropped;
      break;
  }
  probes_.emit_drop(packet, reason);
}

void BottleneckLink::send(Packet packet) {
  if (ingress_filter_) {
    const IngressVerdict verdict = ingress_filter_(packet);
    switch (verdict.action) {
      case IngressVerdict::Action::kDrop:
        drop(packet, DropReason::kFault);
        return;
      case IngressVerdict::Action::kDelay:
        // Deflect through the scheduler; the re-offer bypasses the filter so
        // a held packet cannot be deflected again.
        sim_.after(verdict.delay, [this, packet]() mutable { accept(packet); });
        return;
      case IngressVerdict::Action::kPass:
        break;
    }
  }
  accept(std::move(packet));
}

void BottleneckLink::accept(Packet packet) {
  // Classify on the arrival codepoint, before any CE mark the enqueue
  // verdict applies (a marked Classic packet must stay in its band).
  const std::size_t band = bands_.size() == 1 ? 0 : qdisc_->classify(packet);
  if (backlog_packets() >= config_.buffer_packets) {
    ++band_counters_[band].tail_dropped;
    drop(packet, DropReason::kTailDrop);
    return;
  }
  switch (qdisc_->enqueue(packet)) {
    case QueueDiscipline::Verdict::kDrop:
      ++band_counters_[band].aqm_dropped;
      drop(packet, DropReason::kAqm);
      return;
    case QueueDiscipline::Verdict::kMark:
      packet.ecn = Ecn::kCe;
      ++counters_.marked;
      ++band_counters_[band].marked;
      break;
    case QueueDiscipline::Verdict::kAccept:
      break;
  }
  packet.enqueued_at = sim_.now();
  ++counters_.enqueued;
  ++band_counters_[band].enqueued;
  packet_backlog_bytes_ += packet.size;
  band_backlog_bytes_[band] += packet.size;
  audit_backlog();
  probes_.emit_enqueue(packet);
  bands_[band].push_back(packet);
  try_start_transmission();
}

void BottleneckLink::try_start_transmission() {
  if (transmitting_) return;
  while (backlog_packets() > 0) {
    const std::size_t band = bands_.size() == 1 ? 0 : qdisc_->select_band();
    auto& queue = bands_[band];
    assert(!queue.empty() && "select_band() returned an empty band");
    Packet packet = queue.front();
    queue.pop_front();
    packet_backlog_bytes_ -= packet.size;
    band_backlog_bytes_[band] -= packet.size;
    audit_backlog();
    switch (qdisc_->dequeue_band(packet, band)) {
      case QueueDiscipline::Verdict::kDrop:
        ++counters_.dequeue_dropped;
        ++band_counters_[band].dequeue_dropped;
        ++band_counters_[band].aqm_dropped;
        drop(packet, DropReason::kAqm);
        continue;  // offer the next head packet
      case QueueDiscipline::Verdict::kMark:
        packet.ecn = Ecn::kCe;
        ++counters_.marked;
        ++band_counters_[band].marked;
        break;
      case QueueDiscipline::Verdict::kAccept:
        break;
    }
    const Time started = sim_.now();
    const Duration tx_time =
        from_seconds(static_cast<double>(packet.size) * 8.0 / packet_rate_bps());
    transmitting_ = true;
    transmitting_band_ = band;
    sim_.after(tx_time, [this, packet, started]() mutable {
      finish_transmission(std::move(packet), started);
    });
    return;
  }
}

void BottleneckLink::finish_transmission(Packet packet, Time started) {
  transmitting_ = false;
  ++counters_.forwarded;
  ++band_counters_[transmitting_band_].forwarded;
  probes_.emit_busy(started, sim_.now());
  probes_.emit_departure(packet, sim_.now() - packet.enqueued_at);
  if (sink_) sink_(packet);
  try_start_transmission();
}

}  // namespace pi2::net
