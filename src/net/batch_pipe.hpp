// Batched fixed-delay pipe: the O(buckets)-not-O(packets) ACK clock.
//
// A DelayPipe schedules one event per packet, and each event's lambda
// captures the ~80-byte Packet by value — past UniqueFunction's inline
// buffer, so every packet costs a heap allocation plus a scheduler node.
// At 10⁵ flows the scheduler sees millions of such timers per simulated
// second and the allocator dominates.
//
// BatchDelayPipe quantizes due times onto a grid: packets whose delivery
// falls in the same quantum share one scheduler event and one pooled slab.
// The first packet to land in a quantum opens the batch (acquiring a slab
// from the PacketSlabPool and scheduling a single flush); later arrivals
// from ANY flow with the same quantized due time just append. On flush the
// slab is drained through the sink in arrival order and returned to the
// pool — steady state runs with zero allocations and O(quanta) timers.
//
// quantum == 0 degenerates to exact per-packet delivery (every packet gets
// its own batch), preserving DelayPipe timing bit-for-bit; with quantum > 0
// delivery is deferred to the end of the quantum containing the exact due
// time, bounding added latency by one quantum.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/simulator.hpp"

namespace pi2::net {

class BatchDelayPipe {
 public:
  BatchDelayPipe(pi2::sim::Simulator& sim, pi2::sim::Duration delay,
                 pi2::sim::Duration quantum, PacketSlabPool& pool)
      : sim_(sim), delay_(delay), quantum_(quantum), pool_(pool) {}

  void set_sink(std::function<void(Packet)> sink) { sink_ = std::move(sink); }
  void set_delay(pi2::sim::Duration delay) { delay_ = delay; }
  [[nodiscard]] pi2::sim::Duration delay() const { return delay_; }

  void send(Packet packet) {
    const pi2::sim::Time due = sim_.now() + delay_;
    const pi2::sim::Time slot = quantize(due);
    auto [it, opened] = open_.try_emplace(slot.count());
    if (opened) {
      it->second = pool_.acquire();
      ++batches_;
      sim_.at(slot, [this, slot] { flush(slot); });
    }
    it->second.push_back(std::move(packet));
  }

  /// Scheduler events this pipe has created (one per open batch). The
  /// per-packet equivalent would equal the packet count.
  [[nodiscard]] std::uint64_t batches() const { return batches_; }

 private:
  [[nodiscard]] pi2::sim::Time quantize(pi2::sim::Time due) const {
    if (quantum_.count() <= 0) return due;
    // Round up: a batch must never deliver before its packets' exact due
    // times (that would hand a receiver a packet from its own future).
    const std::int64_t q = quantum_.count();
    const std::int64_t slot = (due.count() + q - 1) / q * q;
    return pi2::sim::Time{slot};
  }

  void flush(pi2::sim::Time slot) {
    auto it = open_.find(slot.count());
    if (it == open_.end()) return;
    PacketSlabPool::Slab slab = std::move(it->second);
    open_.erase(it);
    for (Packet& p : slab) {
      if (sink_) sink_(std::move(p));
    }
    pool_.release(std::move(slab));
  }

  pi2::sim::Simulator& sim_;
  pi2::sim::Duration delay_;
  pi2::sim::Duration quantum_;
  PacketSlabPool& pool_;
  std::function<void(Packet)> sink_;
  /// Batches not yet flushed, keyed by quantized due tick.
  std::unordered_map<std::int64_t, PacketSlabPool::Slab> open_;
  std::uint64_t batches_ = 0;
};

}  // namespace pi2::net
