// Abstract queue discipline (AQM) interface.
//
// A QueueDiscipline owns the drop/mark policy of a bottleneck queue. The
// queue consults it on every enqueue and dequeue; the discipline may also
// schedule its own periodic work (the PI/PIE probability update timer) via
// the Simulator it receives in install().
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace pi2::net {

/// Read-only view of the queue a discipline controls.
class QueueView {
 public:
  virtual ~QueueView() = default;
  [[nodiscard]] virtual std::int64_t backlog_bytes() const = 0;
  [[nodiscard]] virtual std::int64_t backlog_packets() const = 0;
  /// Current drain rate in bits per second (may change mid-run, Figure 12).
  [[nodiscard]] virtual double link_rate_bps() const = 0;
  /// Queue delay estimate: backlog divided by drain rate. This mirrors the
  /// PIE/DOCSIS approach of converting queue length to delay with a rate
  /// estimate instead of timestamping every packet.
  [[nodiscard]] virtual pi2::sim::Duration queue_delay() const = 0;

  // Per-band views for multi-band disciplines (DualPI2's L/C queues).
  // Single-band queues fall back to the aggregate.
  [[nodiscard]] virtual std::size_t band_count() const { return 1; }
  [[nodiscard]] virtual std::int64_t band_backlog_bytes(std::size_t band) const {
    (void)band;
    return backlog_bytes();
  }
  [[nodiscard]] virtual std::int64_t band_backlog_packets(std::size_t band) const {
    (void)band;
    return backlog_packets();
  }
  /// Sojourn time of the band's head packet; zero when the band is empty.
  /// Multi-band schedulers (time-shifted FIFO) compare these.
  [[nodiscard]] virtual pi2::sim::Duration band_head_sojourn(std::size_t band) const {
    (void)band;
    return {};
  }
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  enum class Verdict {
    kAccept,  ///< enqueue/forward unchanged
    kMark,    ///< set CE and enqueue/forward
    kDrop,    ///< discard
  };

  /// Binds the discipline to its queue and simulation context. Called once
  /// by the bottleneck before any traffic flows. Subclasses that need a
  /// periodic update timer override and call the base first.
  virtual void install(pi2::sim::Simulator& sim, const QueueView& view) {
    sim_ = &sim;
    view_ = &view;
    rng_ = sim.rng().split();
  }

  /// Decision for an arriving packet (before it is appended to the queue).
  virtual Verdict enqueue(const Packet& packet) = 0;

  /// Decision for a departing packet (CoDel-style disciplines drop here;
  /// a drop verdict discards and the queue offers the next head packet).
  virtual Verdict dequeue(const Packet& packet) {
    (void)packet;
    return Verdict::kAccept;
  }

  /// Number of FIFO bands the owning queue must maintain (DualPI2: 2,
  /// everything else: 1).
  [[nodiscard]] virtual std::size_t band_count() const { return 1; }

  /// Band an arriving packet files into (0..band_count()-1). Must be pure
  /// (no RNG, no state mutation): the queue also calls it for per-band drop
  /// accounting. Always evaluated on the arrival codepoint, before any CE
  /// mark this discipline's enqueue verdict applies.
  [[nodiscard]] virtual std::size_t classify(const Packet& packet) const {
    (void)packet;
    return 0;
  }

  /// Band the scheduler should serve next. Called only while the queue is
  /// non-empty; must return a non-empty band.
  [[nodiscard]] virtual std::size_t select_band() { return 0; }

  /// Dequeue decision carrying the band the packet was filed under. The
  /// band disambiguates packets whose codepoint changed after
  /// classification (a Classic ECT(0) packet CE-marked at enqueue would
  /// otherwise re-classify as Scalable). Defaults to the band-less
  /// dequeue() for single-band disciplines.
  virtual Verdict dequeue_band(const Packet& packet, std::size_t band) {
    (void)band;
    return dequeue(packet);
  }

  /// DualQ coupling factor k; 0 for uncoupled/single-queue disciplines.
  /// Lets the InvariantMonitor and oracles check the coupled law
  /// p_CL = min(k * p', 1) without downcasting.
  [[nodiscard]] virtual double coupling_factor() const { return 0.0; }

  /// Current probability the controller would apply to a Classic packet
  /// (drop probability p). For introspection/probes only.
  [[nodiscard]] virtual double classic_probability() const { return 0.0; }

  /// Current probability applied to a Scalable packet (marking probability
  /// p'). Equals classic_probability() for single-signal disciplines.
  [[nodiscard]] virtual double scalable_probability() const {
    return classic_probability();
  }

  /// Times the discipline's controller rejected a non-finite update (see
  /// PiCore::guard_events). 0 for disciplines without such guards; the
  /// InvariantMonitor reports growth as a violation.
  [[nodiscard]] virtual std::uint64_t guard_events() const { return 0; }

 protected:
  [[nodiscard]] pi2::sim::Simulator& sim() const { return *sim_; }
  [[nodiscard]] const QueueView& view() const { return *view_; }
  [[nodiscard]] pi2::sim::Rng& rng() { return rng_; }
  [[nodiscard]] bool installed() const { return sim_ != nullptr; }

 private:
  pi2::sim::Simulator* sim_ = nullptr;
  const QueueView* view_ = nullptr;
  pi2::sim::Rng rng_{0};
};

/// Pass-through discipline: pure tail-drop FIFO (the "no AQM" baseline).
class FifoTailDrop final : public QueueDiscipline {
 public:
  Verdict enqueue(const Packet&) override { return Verdict::kAccept; }
};

}  // namespace pi2::net
