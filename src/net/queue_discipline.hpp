// Abstract queue discipline (AQM) interface.
//
// A QueueDiscipline owns the drop/mark policy of a bottleneck queue. The
// queue consults it on every enqueue and dequeue; the discipline may also
// schedule its own periodic work (the PI/PIE probability update timer) via
// the Simulator it receives in install().
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace pi2::net {

/// Read-only view of the queue a discipline controls.
class QueueView {
 public:
  virtual ~QueueView() = default;
  [[nodiscard]] virtual std::int64_t backlog_bytes() const = 0;
  [[nodiscard]] virtual std::int64_t backlog_packets() const = 0;
  /// Current drain rate in bits per second (may change mid-run, Figure 12).
  [[nodiscard]] virtual double link_rate_bps() const = 0;
  /// Queue delay estimate: backlog divided by drain rate. This mirrors the
  /// PIE/DOCSIS approach of converting queue length to delay with a rate
  /// estimate instead of timestamping every packet.
  [[nodiscard]] virtual pi2::sim::Duration queue_delay() const = 0;
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  enum class Verdict {
    kAccept,  ///< enqueue/forward unchanged
    kMark,    ///< set CE and enqueue/forward
    kDrop,    ///< discard
  };

  /// Binds the discipline to its queue and simulation context. Called once
  /// by the bottleneck before any traffic flows. Subclasses that need a
  /// periodic update timer override and call the base first.
  virtual void install(pi2::sim::Simulator& sim, const QueueView& view) {
    sim_ = &sim;
    view_ = &view;
    rng_ = sim.rng().split();
  }

  /// Decision for an arriving packet (before it is appended to the queue).
  virtual Verdict enqueue(const Packet& packet) = 0;

  /// Decision for a departing packet (CoDel-style disciplines drop here;
  /// a drop verdict discards and the queue offers the next head packet).
  virtual Verdict dequeue(const Packet& packet) {
    (void)packet;
    return Verdict::kAccept;
  }

  /// Current probability the controller would apply to a Classic packet
  /// (drop probability p). For introspection/probes only.
  [[nodiscard]] virtual double classic_probability() const { return 0.0; }

  /// Current probability applied to a Scalable packet (marking probability
  /// p'). Equals classic_probability() for single-signal disciplines.
  [[nodiscard]] virtual double scalable_probability() const {
    return classic_probability();
  }

  /// Times the discipline's controller rejected a non-finite update (see
  /// PiCore::guard_events). 0 for disciplines without such guards; the
  /// InvariantMonitor reports growth as a violation.
  [[nodiscard]] virtual std::uint64_t guard_events() const { return 0; }

 protected:
  [[nodiscard]] pi2::sim::Simulator& sim() const { return *sim_; }
  [[nodiscard]] const QueueView& view() const { return *view_; }
  [[nodiscard]] pi2::sim::Rng& rng() { return rng_; }
  [[nodiscard]] bool installed() const { return sim_ != nullptr; }

 private:
  pi2::sim::Simulator* sim_ = nullptr;
  const QueueView* view_ = nullptr;
  pi2::sim::Rng rng_{0};
};

/// Pass-through discipline: pure tail-drop FIFO (the "no AQM" baseline).
class FifoTailDrop final : public QueueDiscipline {
 public:
  Verdict enqueue(const Packet&) override { return Verdict::kAccept; }
};

}  // namespace pi2::net
