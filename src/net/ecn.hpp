// ECN codepoints (RFC 3168) and the Scalable/Classic classifier.
//
// The paper identifies Scalable (DCTCP-like) traffic by the ECT(1) codepoint
// (the L4S identifier that later became RFC 9331); ECT(0) stays available for
// Classic ECN, and both share CE for "Congestion Experienced".
#pragma once

#include <string_view>

namespace pi2::net {

enum class Ecn : unsigned char {
  kNotEct = 0b00,  ///< Not ECN-capable: congestion is signalled by drop.
  kEct1 = 0b01,    ///< ECN-capable, Scalable identifier (DCTCP/L4S).
  kEct0 = 0b10,    ///< ECN-capable, Classic semantics (mark == drop).
  kCe = 0b11,      ///< Congestion Experienced.
};

/// True if the packet may be marked instead of dropped.
constexpr bool ecn_capable(Ecn e) { return e != Ecn::kNotEct; }

/// The paper's classifier (Figure 9): ECT(1) and CE packets take the
/// Scalable (linear-probability marking) path; everything else is Classic.
///
/// CE is classified as Scalable because a Classic CE packet has already been
/// marked upstream — remarking is harmless — while failing to treat a
/// Scalable CE packet as Scalable would under-signal it.
constexpr bool is_scalable(Ecn e) { return e == Ecn::kEct1 || e == Ecn::kCe; }

constexpr std::string_view to_string(Ecn e) {
  switch (e) {
    case Ecn::kNotEct: return "Not-ECT";
    case Ecn::kEct1: return "ECT(1)";
    case Ecn::kEct0: return "ECT(0)";
    case Ecn::kCe: return "CE";
  }
  return "?";
}

}  // namespace pi2::net
