// Slab pool for Packet batches.
//
// The per-packet cost that dominates large-flow-count runs is not the queue
// logic but the allocator: a delivery/ACK event that captures an ~80-byte
// Packet in its lambda exceeds UniqueFunction's inline buffer and
// heap-allocates, once per packet per hop. The BatchDelayPipe instead parks
// packets in pooled slabs (vectors recycled through a free list), so steady
// state performs zero allocations on the packet path: a slab is acquired,
// filled, flushed, and returned.
#pragma once

#include <cstddef>
#include <vector>

#include "net/packet.hpp"

namespace pi2::net {

class PacketSlabPool {
 public:
  using Slab = std::vector<Packet>;

  /// `slab_capacity` is the reserve applied to fresh slabs; recycled slabs
  /// keep whatever capacity they grew to.
  explicit PacketSlabPool(std::size_t slab_capacity = 64)
      : slab_capacity_(slab_capacity) {}

  /// An empty slab, recycled when possible.
  [[nodiscard]] Slab acquire() {
    if (free_.empty()) {
      ++allocated_;
      Slab slab;
      slab.reserve(slab_capacity_);
      return slab;
    }
    ++reused_;
    Slab slab = std::move(free_.back());
    free_.pop_back();
    return slab;
  }

  /// Returns a slab to the free list (cleared, capacity retained).
  void release(Slab slab) {
    slab.clear();
    free_.push_back(std::move(slab));
  }

  /// Slabs created from the heap (steady state: stops growing).
  [[nodiscard]] std::size_t allocated() const { return allocated_; }
  /// Acquisitions served from the free list.
  [[nodiscard]] std::size_t reused() const { return reused_; }
  [[nodiscard]] std::size_t free_slabs() const { return free_.size(); }

 private:
  std::size_t slab_capacity_;
  std::vector<Slab> free_;
  std::size_t allocated_ = 0;
  std::size_t reused_ = 0;
};

}  // namespace pi2::net
