#include "tcp/dctcp.hpp"

#include <algorithm>

namespace pi2::tcp {

Dctcp::Dctcp() : Dctcp(Params{}) {}

void Dctcp::end_observation_window() {
  if (window_acked_ > 0) {
    const double f =
        static_cast<double>(window_marked_) / static_cast<double>(window_acked_);
    alpha_ = (1.0 - params_.g) * alpha_ + params_.g * f;
    if (window_marked_ > 0) {
      // At most one reduction per observation window (~1 RTT).
      cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0), kMinWindow);
      ssthresh_ = std::min(ssthresh_, cwnd_);  // leave slow start for good
    }
  }
  window_acked_ = 0;
  window_marked_ = 0;
  acked_since_window_ = 0.0;
}

void Dctcp::on_ecn_sample(std::int64_t acked, bool marked, pi2::sim::Time /*now*/) {
  window_acked_ += acked;
  if (marked) window_marked_ += acked;
}

void Dctcp::on_ack(std::int64_t newly_acked, pi2::sim::Duration /*rtt*/,
                   pi2::sim::Time /*now*/, bool in_recovery) {
  // The observation window is one cwnd's worth of ACKed segments — a proxy
  // for one RTT that needs no extra sequence plumbing.
  acked_since_window_ += static_cast<double>(newly_acked);
  if (acked_since_window_ >= cwnd_) end_observation_window();

  if (in_recovery) return;
  const auto acked = static_cast<double>(newly_acked);
  if (in_slow_start()) {
    // Exit slow start on the first mark of the current window.
    if (window_marked_ > 0) {
      ssthresh_ = std::max(cwnd_, kMinWindow);
      return;
    }
    cwnd_ = std::min(cwnd_ + acked, std::max(ssthresh_, kMinWindow));
  } else {
    cwnd_ += acked / cwnd_;
  }
}

void Dctcp::on_congestion_event(pi2::sim::Time /*now*/) {
  // Packet loss: fall back to Reno-style halving (as Linux DCTCP does).
  ssthresh_ = std::max(cwnd_ * 0.5, kMinWindow);
  cwnd_ = ssthresh_;
}

void Dctcp::on_timeout(pi2::sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ * 0.5, kMinWindow);
  cwnd_ = 1.0;
}

}  // namespace pi2::tcp
