#include "tcp/flow_table.hpp"

#include <utility>

#include "tcp/endpoint.hpp"
#include "tcp/udp_sender.hpp"

namespace pi2::tcp {

FlowTable::FlowTable() = default;
FlowTable::~FlowTable() = default;

std::int32_t FlowTable::add_tcp(CcType cc, pi2::sim::Duration base_rtt,
                                std::unique_ptr<TcpSender> sender,
                                std::unique_ptr<TcpReceiver> receiver) {
  const auto id = static_cast<std::int32_t>(kind_.size());
  half_rtt_.push_back(base_rtt / 2);
  kind_.push_back(Kind::kTcp);
  Cold& cold = cold_.emplace_back();
  cold.cc = cc;
  cold.sender = std::move(sender);
  cold.receiver = std::move(receiver);
  return id;
}

std::int32_t FlowTable::add_udp(pi2::sim::Duration base_rtt,
                                std::unique_ptr<UdpSender> udp) {
  const auto id = static_cast<std::int32_t>(kind_.size());
  half_rtt_.push_back(base_rtt / 2);
  kind_.push_back(Kind::kUdp);
  Cold& cold = cold_.emplace_back();
  cold.udp = std::move(udp);
  return id;
}

void FlowTable::set_all_base_rtt(pi2::sim::Duration rtt) {
  const pi2::sim::Duration half = rtt / 2;
  for (pi2::sim::Duration& h : half_rtt_) h = half;
}

TcpSender* FlowTable::sender(std::int32_t flow) {
  return cold_[static_cast<std::size_t>(flow)].sender.get();
}

const TcpSender* FlowTable::sender(std::int32_t flow) const {
  return cold_[static_cast<std::size_t>(flow)].sender.get();
}

TcpReceiver* FlowTable::receiver(std::int32_t flow) {
  return cold_[static_cast<std::size_t>(flow)].receiver.get();
}

UdpSender* FlowTable::udp(std::int32_t flow) {
  return cold_[static_cast<std::size_t>(flow)].udp.get();
}

CcType FlowTable::cc(std::int32_t flow) const {
  return cold_[static_cast<std::size_t>(flow)].cc;
}

stats::RateMeter& FlowTable::goodput(std::int32_t flow) {
  return cold_[static_cast<std::size_t>(flow)].goodput;
}

std::int64_t& FlowTable::bytes_at_stats_start(std::int32_t flow) {
  return cold_[static_cast<std::size_t>(flow)].bytes_at_stats_start;
}

std::int64_t FlowTable::total_retransmits() const {
  std::int64_t n = 0;
  for (const Cold& c : cold_) {
    if (c.sender) n += c.sender->retransmits();
  }
  return n;
}

std::int64_t FlowTable::total_timeouts() const {
  std::int64_t n = 0;
  for (const Cold& c : cold_) {
    if (c.sender) n += c.sender->timeouts();
  }
  return n;
}

}  // namespace pi2::tcp
