#include "tcp/scalable.hpp"

#include <algorithm>

namespace pi2::tcp {

ScalableTcp::ScalableTcp() : ScalableTcp(Params{}) {}

void ScalableTcp::on_ack(std::int64_t newly_acked, pi2::sim::Duration /*rtt*/,
                         pi2::sim::Time /*now*/, bool in_recovery) {
  if (in_recovery) return;
  const auto acked = static_cast<double>(newly_acked);
  if (in_slow_start()) {
    cwnd_ = std::min(cwnd_ + acked, std::max(ssthresh_, kMinWindow));
  } else {
    // MIMD: a segments of growth per ACKed segment.
    cwnd_ += params_.a * acked;
  }
}

void ScalableTcp::on_ecn_sample(std::int64_t /*acked*/, bool marked,
                                pi2::sim::Time now) {
  // One multiplicative decrease per RTT's worth of marks (the standard
  // Scalable-TCP response, paced so a marking train is one event).
  if (marked && now >= mark_holdoff_until_) {
    cwnd_ = std::max(cwnd_ * (1.0 - params_.b), kMinWindow);
    // Stay in congestion avoidance: a reduction must not drop the window
    // below ssthresh or slow start would resume between marks.
    ssthresh_ = cwnd_;
    mark_holdoff_until_ = now + std::chrono::milliseconds{10};
  }
}

void ScalableTcp::on_congestion_event(pi2::sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ * (1.0 - params_.b), kMinWindow);
  cwnd_ = ssthresh_;
}

void ScalableTcp::on_timeout(pi2::sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ * (1.0 - params_.b), kMinWindow);
  cwnd_ = 1.0;
}

void RelentlessTcp::on_ack(std::int64_t newly_acked, pi2::sim::Duration /*rtt*/,
                           pi2::sim::Time /*now*/, bool in_recovery) {
  if (in_recovery) return;
  const auto acked = static_cast<double>(newly_acked);
  if (in_slow_start()) {
    cwnd_ = std::min(cwnd_ + acked, std::max(ssthresh_, kMinWindow));
  } else {
    cwnd_ += acked / cwnd_;  // Reno-style additive increase
  }
}

void RelentlessTcp::on_ecn_sample(std::int64_t /*acked*/, bool marked,
                                  pi2::sim::Time /*now*/) {
  // Relentless: subtract exactly one segment per congestion signal.
  if (marked) {
    cwnd_ = std::max(cwnd_ - 1.0, kMinWindow);
    ssthresh_ = cwnd_;  // stay in congestion avoidance
  }
}

void RelentlessTcp::on_congestion_event(pi2::sim::Time /*now*/) {
  // Loss: treated like a single-segment reduction too, but leave slow start.
  ssthresh_ = std::max(cwnd_ * 0.5, kMinWindow);
  cwnd_ = std::max(cwnd_ - 1.0, ssthresh_);
}

void RelentlessTcp::on_timeout(pi2::sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ * 0.5, kMinWindow);
  cwnd_ = 1.0;
}

}  // namespace pi2::tcp
