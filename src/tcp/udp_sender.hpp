// Constant-bit-rate UDP source — the unresponsive load in the paper's
// "5 TCP + 2 UDP" mixes (each UDP flow sends 6 Mb/s).
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pi2::tcp {

class UdpSender {
 public:
  struct Config {
    std::int32_t flow = 0;
    double rate_bps = 6e6;
    std::int32_t packet_bytes = net::kDefaultMss;
    net::Ecn ecn = net::Ecn::kNotEct;
  };

  UdpSender(pi2::sim::Simulator& sim, Config config) : sim_(sim), config_(config) {}

  void set_output(std::function<void(net::Packet)> output) {
    output_ = std::move(output);
  }

  void start();
  void stop();

  [[nodiscard]] std::int64_t packets_sent() const { return packets_sent_; }

 private:
  void tick();

  pi2::sim::Simulator& sim_;
  Config config_;
  std::function<void(net::Packet)> output_;
  pi2::sim::EventHandle timer_;
  bool running_ = false;
  std::int64_t packets_sent_ = 0;
};

}  // namespace pi2::tcp
