// Struct-of-arrays flow state for the scenario hot path.
//
// The per-packet work in run_dumbbell touches exactly two facts about a
// flow: its half-RTT (to schedule the propagation hop) and whether it is
// UDP (to pick delivery handling). With the AoS layout
// (vector<unique_ptr<FlowContext>>) each lookup chases a pointer into a
// ~200-byte heap object, so at 10⁴+ flows the delivery path is a cache
// miss per packet. FlowTable splits the state: the two hot facts live in
// dense parallel arrays indexed by flow id, everything touched only at
// setup/collection time (endpoints, meters, congestion-control tag) lives
// in a cold deque the hot path never reads.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "stats/meters.hpp"
#include "tcp/congestion_control.hpp"

namespace pi2::tcp {

class TcpSender;
class TcpReceiver;
class UdpSender;

class FlowTable {
 public:
  enum class Kind : std::uint8_t { kTcp, kUdp };

  FlowTable();
  ~FlowTable();
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Adds a flow; returns its id (dense, starting at 0 — also the Packet
  /// `flow` field).
  std::int32_t add_tcp(CcType cc, pi2::sim::Duration base_rtt,
                       std::unique_ptr<TcpSender> sender,
                       std::unique_ptr<TcpReceiver> receiver);
  std::int32_t add_udp(pi2::sim::Duration base_rtt,
                       std::unique_ptr<UdpSender> udp);

  [[nodiscard]] std::size_t size() const { return kind_.size(); }
  [[nodiscard]] bool contains(std::int32_t flow) const {
    return flow >= 0 && static_cast<std::size_t>(flow) < kind_.size();
  }

  // Hot path: dense array reads, no pointer chase.
  [[nodiscard]] Kind kind(std::int32_t flow) const {
    return kind_[static_cast<std::size_t>(flow)];
  }
  [[nodiscard]] pi2::sim::Duration half_rtt(std::int32_t flow) const {
    return half_rtt_[static_cast<std::size_t>(flow)];
  }

  [[nodiscard]] pi2::sim::Duration base_rtt(std::int32_t flow) const {
    return half_rtt(flow) * 2;
  }
  /// Fault-injected RTT step: applies to every flow.
  void set_all_base_rtt(pi2::sim::Duration rtt);
  /// RTT step scoped to one flow (per-link faults in multi-link topologies).
  void set_base_rtt(std::int32_t flow, pi2::sim::Duration rtt) {
    half_rtt_[static_cast<std::size_t>(flow)] = rtt / 2;
  }

  // Cold path (setup / stats collection).
  [[nodiscard]] TcpSender* sender(std::int32_t flow);
  [[nodiscard]] const TcpSender* sender(std::int32_t flow) const;
  [[nodiscard]] TcpReceiver* receiver(std::int32_t flow);
  [[nodiscard]] UdpSender* udp(std::int32_t flow);
  [[nodiscard]] CcType cc(std::int32_t flow) const;
  [[nodiscard]] stats::RateMeter& goodput(std::int32_t flow);
  [[nodiscard]] std::int64_t& bytes_at_stats_start(std::int32_t flow);

  [[nodiscard]] std::int64_t total_retransmits() const;
  [[nodiscard]] std::int64_t total_timeouts() const;

 private:
  struct Cold {
    CcType cc{};
    std::unique_ptr<TcpSender> sender;
    std::unique_ptr<TcpReceiver> receiver;
    std::unique_ptr<UdpSender> udp;
    stats::RateMeter goodput;
    std::int64_t bytes_at_stats_start = 0;
  };

  // Hot arrays, parallel, indexed by flow id.
  std::vector<pi2::sim::Duration> half_rtt_;
  std::vector<Kind> kind_;
  // Cold state; deque so entries stay put as flows are added.
  std::deque<Cold> cold_;
};

}  // namespace pi2::tcp
