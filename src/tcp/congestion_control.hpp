// Congestion-control algorithm interface.
//
// The window is kept in segments (MSS units) as a double; the sender floors
// it when deciding whether to transmit. Algorithms receive ACK events from
// the sender and adjust the window; the sender owns loss detection,
// retransmission and ECN echo bookkeeping.
#pragma once

#include <memory>
#include <string_view>

#include "net/ecn.hpp"
#include "sim/time.hpp"

namespace pi2::tcp {

/// Initial window (segments), per Linux of the paper's era (IW10).
inline constexpr double kInitialWindow = 10.0;
/// Floor for the congestion window (segments).
inline constexpr double kMinWindow = 2.0;

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// ECN codepoint this sender stamps on data packets. Not-ECT for plain
  /// Reno/Cubic, ECT(0) for ECN-Cubic, ECT(1) for DCTCP (the paper's
  /// Scalable identifier).
  [[nodiscard]] virtual net::Ecn ect() const { return net::Ecn::kNotEct; }

  /// Window growth on a cumulative ACK of `newly_acked` segments.
  /// `in_recovery` suppresses growth during fast recovery.
  virtual void on_ack(std::int64_t newly_acked, pi2::sim::Duration rtt,
                      pi2::sim::Time now, bool in_recovery) = 0;

  /// Multiplicative decrease on loss or Classic ECN echo. The sender
  /// guarantees at most one call per round trip.
  virtual void on_congestion_event(pi2::sim::Time now) = 0;

  /// Accurate per-ACK ECN accounting (DCTCP); `marked` says whether the
  /// ACKed data crossed the bottleneck with CE set. Default: ignored.
  virtual void on_ecn_sample(std::int64_t acked, bool marked, pi2::sim::Time now) {
    (void)acked;
    (void)marked;
    (void)now;
  }

  /// Retransmission timeout: collapse to loss-recovery start state.
  virtual void on_timeout(pi2::sim::Time now) = 0;

  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

  /// True if this control responds to the Scalable (linear) signal; used by
  /// tests and probes, mirrors net::is_scalable of the packets it sends.
  [[nodiscard]] bool is_scalable() const { return ect() == net::Ecn::kEct1; }

 protected:
  double cwnd_ = kInitialWindow;
  double ssthresh_ = 1e9;  // effectively infinite until the first loss
};

/// Factory helpers (definitions in the per-algorithm sources).
std::unique_ptr<CongestionControl> make_reno();
std::unique_ptr<CongestionControl> make_cubic();
std::unique_ptr<CongestionControl> make_ecn_cubic();
std::unique_ptr<CongestionControl> make_dctcp();
std::unique_ptr<CongestionControl> make_scalable();
std::unique_ptr<CongestionControl> make_relentless();

enum class CcType { kReno, kCubic, kEcnCubic, kDctcp, kScalable, kRelentless };

std::unique_ptr<CongestionControl> make_congestion_control(CcType type);
[[nodiscard]] std::string_view to_string(CcType type);

}  // namespace pi2::tcp
