#include "tcp/endpoint.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pi2::tcp {

using pi2::sim::Duration;
using pi2::sim::from_seconds;
using pi2::sim::Time;
using pi2::sim::to_seconds;

TcpSender::TcpSender(pi2::sim::Simulator& sim, Config config,
                     std::unique_ptr<CongestionControl> cc)
    : sim_(sim), config_(config), cc_(std::move(cc)) {
  assert(cc_ != nullptr);
}

void TcpSender::start() {
  if (running_) return;
  running_ = true;
  maybe_send();
}

void TcpSender::stop() {
  running_ = false;
  rto_timer_.cancel();
}

double TcpSender::effective_window() const {
  double w = cc_->cwnd();
  if (config_.max_cwnd > 0.0) w = std::min(w, config_.max_cwnd);
  // Packet conservation during fast recovery: each duplicate ACK signals a
  // departure, so the usable window inflates by the duplicate count.
  if (in_recovery_) w += dup_acks_;
  return w;
}

void TcpSender::maybe_send() {
  if (!running_ || completed_) return;
  while (static_cast<double>(inflight()) < std::floor(effective_window()) &&
         !all_data_sent()) {
    transmit(snd_nxt_, /*is_retransmit=*/false);
    ++snd_nxt_;
  }
  // Ensure a timer is running while data is outstanding — but never push an
  // already-armed timer forward (duplicate ACKs must not delay the RTO, or a
  // lost retransmission would stall the flow in recovery forever).
  if (inflight() > 0 && !rto_timer_.pending()) arm_rto();
}

void TcpSender::transmit(std::int64_t seq, bool is_retransmit) {
  net::Packet packet;
  packet.flow = config_.flow;
  packet.seq = seq;
  packet.size = config_.mss_bytes;
  packet.ecn = cc_->ect();
  packet.retransmit = is_retransmit;
  packet.sent_at = sim_.now();
  if (send_cwr_) {
    packet.cwr = true;
    send_cwr_ = false;
  }
  ++segments_sent_;
  if (is_retransmit) ++retransmits_;
  if (output_) output_(packet);
}

Duration TcpSender::rto() const {
  double rto_s = rtt_valid_ ? srtt_s_ + 4.0 * rttvar_s_ : 1.0;
  rto_s = std::max(rto_s, to_seconds(kMinRto));
  rto_s = std::ldexp(rto_s, std::min(backoff_, 6));  // exponential backoff
  return from_seconds(rto_s);
}

void TcpSender::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = sim_.after(rto(), [this] { on_rto(); });
}

void TcpSender::on_rto() {
  if (!running_ || completed_) return;
  ++timeouts_;
  ++backoff_;
  // Go-back-N: rewind and re-enter slow start from one segment.
  snd_nxt_ = snd_una_;
  in_recovery_ = false;
  dup_acks_ = 0;
  cc_->on_timeout(sim_.now());
  maybe_send();
  arm_rto();
}

void TcpSender::on_ack(const net::Packet& ack) {
  if (!running_ || completed_) return;
  assert(ack.is_ack);

  // DCTCP accurate feedback: account every ACK, duplicates included — each
  // reports the CE state of one received packet.
  cc_->on_ecn_sample(std::max<std::int64_t>(ack.ack_seq - snd_una_, 1), ack.ce_echo,
                     sim_.now());

  // Classic ECN echo: at most one window reduction per RTT.
  if (ack.ece && cc_->ect() == net::Ecn::kEct0 && sim_.now() >= ecn_cwr_until_) {
    cc_->on_congestion_event(sim_.now());
    const double srtt = rtt_valid_ ? srtt_s_ : 0.1;
    ecn_cwr_until_ = sim_.now() + from_seconds(srtt);
    send_cwr_ = true;
    if (in_recovery_) {
      // Already reducing for loss; do not double-count.
    }
  }

  if (ack.ack_seq > snd_una_) {
    const std::int64_t newly = ack.ack_seq - snd_una_;
    const bool was_in_recovery = in_recovery_;
    snd_una_ = ack.ack_seq;
    // After a go-back-N rewind, in-flight originals may be ACKed past the
    // rewound snd_nxt; never re-send data the ACK already covered.
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    backoff_ = 0;

    // RTT sample from the echoed send timestamp (Karn's rule: the receiver
    // echoes the timestamp of the packet that triggered the ACK).
    const double sample = to_seconds(sim_.now() - ack.sent_at);
    if (sample > 0.0) {
      if (!rtt_valid_) {
        srtt_s_ = sample;
        rttvar_s_ = sample / 2.0;
        rtt_valid_ = true;
      } else {
        rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample);
        srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample;
      }
    }

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        dup_acks_ = 0;
      } else {
        // NewReno partial ACK: the next hole is lost too; retransmit it and
        // stay in recovery without a further window reduction.
        transmit(snd_una_, /*is_retransmit=*/true);
      }
    } else {
      dup_acks_ = 0;
    }

    // Window growth. A cumulative ACK that ends loss recovery (or follows a
    // go-back-N rewind) can cover thousands of segments at once; feeding it
    // into the growth law verbatim would explode the window, so growth is
    // suppressed on the recovery-exit ACK (Linux leaves recovery with
    // cwnd = ssthresh) and the ACKed amount is clamped to one window's
    // worth for everything else.
    const auto growth_cap = static_cast<std::int64_t>(cc_->cwnd()) + 1;
    cc_->on_ack(std::min(newly, growth_cap), from_seconds(srtt_s_), sim_.now(),
                in_recovery_ || was_in_recovery);

    if (config_.total_segments >= 0 && snd_una_ >= config_.total_segments) {
      completed_ = true;
      running_ = false;
      rto_timer_.cancel();
      if (on_complete_) on_complete_();
      return;
    }
    arm_rto();
  } else if (inflight() > 0) {
    // Duplicate ACK.
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ >= 3) {
      in_recovery_ = true;
      recover_ = snd_nxt_;
      cc_->on_congestion_event(sim_.now());
      transmit(snd_una_, /*is_retransmit=*/true);
      arm_rto();
    }
  }

  maybe_send();
}

void TcpReceiver::emit_ack(bool ce_echo, Time data_sent_at) {
  delack_timer_.cancel();
  unacked_segments_ = 0;
  net::Packet ack;
  ack.flow = flow_;
  ack.is_ack = true;
  ack.size = net::kAckBytes;
  ack.ack_seq = rcv_nxt_;
  ack.ece = ece_latched_;
  ack.ce_echo = ce_echo;  // DCTCP accurate per-packet echo
  ack.sent_at = data_sent_at;
  if (ack_path_) ack_path_(ack);
}

void TcpReceiver::on_data(const net::Packet& data) {
  assert(!data.is_ack);
  const bool was_ce = data.ecn == net::Ecn::kCe;
  if (was_ce) ++ce_received_;

  // Classic ECN latch (RFC 3168): set ECE on every ACK from the first CE
  // until the sender signals CWR.
  if (was_ce) ece_latched_ = true;
  if (data.cwr) ece_latched_ = false;

  const bool in_order = data.seq == rcv_nxt_;
  if (in_order) {
    ++rcv_nxt_;
    if (delivery_probe_) delivery_probe_(data);
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_nxt_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_nxt_;
      if (delivery_probe_) delivery_probe_(data);
    }
  } else if (data.seq > rcv_nxt_) {
    out_of_order_.insert(data.seq);
  }
  // data.seq < rcv_nxt_: spurious retransmission; still ACK it.

  // Delayed ACKs apply only to clean in-order, unmarked data; gaps,
  // duplicates and CE marks are acknowledged immediately.
  if (options_.delayed_acks && in_order && !was_ce && out_of_order_.empty()) {
    ++unacked_segments_;
    if (unacked_segments_ < options_.ack_every) {
      pending_sent_at_ = data.sent_at;
      delack_timer_.cancel();
      delack_timer_ = sim_.after(options_.delack_timeout, [this] {
        emit_ack(/*ce_echo=*/false, pending_sent_at_);
      });
      return;
    }
  }
  emit_ack(was_ce, data.sent_at);
}

}  // namespace pi2::tcp
