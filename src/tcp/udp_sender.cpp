#include "tcp/udp_sender.hpp"

namespace pi2::tcp {

using pi2::sim::from_seconds;

void UdpSender::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void UdpSender::stop() {
  running_ = false;
  timer_.cancel();
}

void UdpSender::tick() {
  if (!running_) return;
  net::Packet packet;
  packet.flow = config_.flow;
  packet.seq = packets_sent_;
  packet.size = config_.packet_bytes;
  packet.ecn = config_.ecn;
  packet.sent_at = sim_.now();
  ++packets_sent_;
  if (output_) output_(packet);
  const double interval_s =
      static_cast<double>(config_.packet_bytes) * 8.0 / config_.rate_bps;
  timer_ = sim_.after(from_seconds(interval_s), [this] { tick(); });
}

}  // namespace pi2::tcp
