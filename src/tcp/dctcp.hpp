// Data Center TCP (Alizadeh et al., SIGCOMM 2010), the paper's Scalable
// congestion control.
//
// Window reduction is proportional to the fraction of CE-marked bytes per
// observation window: alpha <- (1-g) alpha + g F, cwnd <- cwnd (1 - alpha/2).
// Under a probabilistic (PI-driven) marker the steady state obeys
// W = 2 / p' — paper equation (11) — which is what makes the linear PI
// output directly usable as its congestion signal.
//
// Per the paper's modification, data packets carry ECT(1) so the network can
// classify the flow as Scalable.
#pragma once

#include "tcp/congestion_control.hpp"

namespace pi2::tcp {

class Dctcp final : public CongestionControl {
 public:
  struct Params {
    double g = 1.0 / 16.0;   ///< EWMA gain (Linux default)
    double alpha0 = 1.0;     ///< initial alpha (conservative, Linux default)
  };

  Dctcp();
  explicit Dctcp(Params params) : params_(params), alpha_(params.alpha0) {}

  [[nodiscard]] std::string_view name() const override { return "dctcp"; }
  [[nodiscard]] net::Ecn ect() const override { return net::Ecn::kEct1; }

  void on_ack(std::int64_t newly_acked, pi2::sim::Duration rtt, pi2::sim::Time now,
              bool in_recovery) override;
  void on_ecn_sample(std::int64_t acked, bool marked, pi2::sim::Time now) override;
  void on_congestion_event(pi2::sim::Time now) override;
  void on_timeout(pi2::sim::Time now) override;

  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  void end_observation_window();

  Params params_;
  double alpha_;
  std::int64_t window_acked_ = 0;
  std::int64_t window_marked_ = 0;
  double acked_since_window_ = 0.0;  // segments ACKed since the window began
};

}  // namespace pi2::tcp
