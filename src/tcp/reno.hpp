// TCP Reno (NewReno-style window arithmetic).
//
// Steady state obeys W = 1.22 / sqrt(p) — paper equation (5); the property
// tests validate the simulated flow against it.
#pragma once

#include "tcp/congestion_control.hpp"

namespace pi2::tcp {

class Reno : public CongestionControl {
 public:
  /// `beta` is the multiplicative-decrease factor (0.5 for Reno, 0.7 for
  /// CReno — Cubic's Reno-friendly mode uses this class via Cubic).
  explicit Reno(double beta = 0.5) : beta_(beta) {}

  [[nodiscard]] std::string_view name() const override { return "reno"; }

  void on_ack(std::int64_t newly_acked, pi2::sim::Duration rtt, pi2::sim::Time now,
              bool in_recovery) override;
  void on_congestion_event(pi2::sim::Time now) override;
  void on_timeout(pi2::sim::Time now) override;

 private:
  double beta_;
};

}  // namespace pi2::tcp
