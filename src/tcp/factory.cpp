#include "tcp/congestion_control.hpp"
#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/reno.hpp"
#include "tcp/scalable.hpp"

namespace pi2::tcp {

std::unique_ptr<CongestionControl> make_reno() { return std::make_unique<Reno>(); }
std::unique_ptr<CongestionControl> make_cubic() { return std::make_unique<Cubic>(); }
std::unique_ptr<CongestionControl> make_ecn_cubic() {
  return std::make_unique<EcnCubic>();
}
std::unique_ptr<CongestionControl> make_dctcp() { return std::make_unique<Dctcp>(); }
std::unique_ptr<CongestionControl> make_scalable() {
  return std::make_unique<ScalableTcp>();
}
std::unique_ptr<CongestionControl> make_relentless() {
  return std::make_unique<RelentlessTcp>();
}

std::unique_ptr<CongestionControl> make_congestion_control(CcType type) {
  switch (type) {
    case CcType::kReno: return make_reno();
    case CcType::kCubic: return make_cubic();
    case CcType::kEcnCubic: return make_ecn_cubic();
    case CcType::kDctcp: return make_dctcp();
    case CcType::kScalable: return make_scalable();
    case CcType::kRelentless: return make_relentless();
  }
  return make_reno();
}

std::string_view to_string(CcType type) {
  switch (type) {
    case CcType::kReno: return "reno";
    case CcType::kCubic: return "cubic";
    case CcType::kEcnCubic: return "ecn-cubic";
    case CcType::kDctcp: return "dctcp";
    case CcType::kScalable: return "scalable";
    case CcType::kRelentless: return "relentless";
  }
  return "?";
}

}  // namespace pi2::tcp
