// TCP Cubic (Ha, Rhee, Xu 2008) with the Linux CReno fallback.
//
// Window growth follows W(t) = C (t - K)^3 + W_max, with a TCP-friendly
// estimate that takes over at small RTT/rate — the paper calls this mode
// CReno (Reno response with beta = 0.7, equation (7): W = 1.68 / sqrt(p)).
// Equation (8) gives the switch-over condition W * R^{3/2} < 3.5 between
// CReno and pure Cubic (equation (6): W = 1.17 R^{3/4} / p^{3/4}).
#pragma once

#include "tcp/congestion_control.hpp"

namespace pi2::tcp {

class Cubic : public CongestionControl {
 public:
  /// Linux defaults: C = 0.4, beta = 0.7, fast convergence on.
  struct Params {
    double c = 0.4;
    double beta = 0.7;
    bool fast_convergence = true;
    bool tcp_friendliness = true;  ///< enable the CReno region
    /// HyStart delay-increase exit from slow start (Linux default since
    /// 2.6.29): leave slow start when the RTT has risen by max(min_rtt/8,
    /// 4 ms) over the minimum, long before the queue overflows.
    bool hystart = true;
  };

  Cubic();
  explicit Cubic(Params params) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "cubic"; }

  void on_ack(std::int64_t newly_acked, pi2::sim::Duration rtt, pi2::sim::Time now,
              bool in_recovery) override;
  void on_congestion_event(pi2::sim::Time now) override;
  void on_timeout(pi2::sim::Time now) override;

  /// True if the friendly (CReno) estimate currently exceeds the cubic
  /// target — i.e. the flow is operating in its Reno mode.
  [[nodiscard]] bool in_creno_mode() const { return creno_mode_; }

 private:
  void reset_epoch();

  Params params_;
  double w_max_ = 0.0;
  double k_ = 0.0;           // seconds to return to w_max
  double origin_ = 0.0;      // cwnd at epoch start (plateau origin)
  pi2::sim::Time epoch_start_{pi2::sim::kTimeInfinity};
  double tcp_cwnd_ = 0.0;    // Reno-friendly estimate
  bool creno_mode_ = false;
  double min_rtt_s_ = 1e9;   // HyStart baseline
};

/// Cubic that negotiates Classic ECN: data packets carry ECT(0) and the
/// sender treats an ECE echo exactly like a loss (RFC 3168 semantics).
class EcnCubic final : public Cubic {
 public:
  using Cubic::Cubic;
  [[nodiscard]] std::string_view name() const override { return "ecn-cubic"; }
  [[nodiscard]] net::Ecn ect() const override { return net::Ecn::kEct0; }
};

}  // namespace pi2::tcp
