#include "tcp/reno.hpp"

#include <algorithm>

namespace pi2::tcp {

void Reno::on_ack(std::int64_t newly_acked, pi2::sim::Duration /*rtt*/,
                  pi2::sim::Time /*now*/, bool in_recovery) {
  if (in_recovery) return;
  const auto acked = static_cast<double>(newly_acked);
  if (in_slow_start()) {
    // Exponential growth, capped at ssthresh so we do not overshoot it.
    cwnd_ = std::min(cwnd_ + acked, std::max(ssthresh_, kMinWindow));
  } else {
    // Additive increase: +1 segment per window's worth of ACKs.
    cwnd_ += acked / cwnd_;
  }
}

void Reno::on_congestion_event(pi2::sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ * beta_, kMinWindow);
  cwnd_ = ssthresh_;
}

void Reno::on_timeout(pi2::sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ * beta_, kMinWindow);
  cwnd_ = 1.0;
}

}  // namespace pi2::tcp
