#include "tcp/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace pi2::tcp {

using pi2::sim::Duration;
using pi2::sim::Time;
using pi2::sim::to_seconds;

Cubic::Cubic() : Cubic(Params{}) {}

void Cubic::reset_epoch() { epoch_start_ = pi2::sim::kTimeInfinity; }

void Cubic::on_ack(std::int64_t newly_acked, Duration rtt, Time now,
                   bool in_recovery) {
  if (in_recovery) return;
  const auto acked = static_cast<double>(newly_acked);

  const double rtt_s = to_seconds(rtt);
  if (rtt_s > 0.0) min_rtt_s_ = std::min(min_rtt_s_, rtt_s);

  if (in_slow_start()) {
    if (params_.hystart && rtt_s > 0.0 && min_rtt_s_ < 1e8 &&
        rtt_s > min_rtt_s_ + std::max(min_rtt_s_ / 8.0, 0.004)) {
      ssthresh_ = std::max(cwnd_, kMinWindow);  // delay-based exit
    } else {
      cwnd_ = std::min(cwnd_ + acked, std::max(ssthresh_, kMinWindow));
      return;
    }
  }

  if (epoch_start_ == pi2::sim::kTimeInfinity) {
    epoch_start_ = now;
    if (cwnd_ < w_max_) {
      k_ = std::cbrt((w_max_ - cwnd_) / params_.c);
      origin_ = w_max_;
    } else {
      k_ = 0.0;
      origin_ = cwnd_;
    }
    tcp_cwnd_ = cwnd_;
  }

  // Cubic target one RTT into the future (standard implementation trick to
  // keep growth ahead of the feedback loop).
  const double t = to_seconds(now - epoch_start_) + to_seconds(rtt);
  const double target = origin_ + params_.c * std::pow(t - k_, 3.0);

  double cnt;  // ACKs per +1 segment of growth
  if (target > cwnd_) {
    cnt = cwnd_ / (target - cwnd_);
  } else {
    cnt = 100.0 * cwnd_;  // effectively no growth in the concave plateau
  }

  creno_mode_ = false;
  if (params_.tcp_friendliness) {
    // Reno-friendly estimate with beta = 0.7: slope 3(1-b)/(1+b) per RTT.
    tcp_cwnd_ += 3.0 * (1.0 - params_.beta) / (1.0 + params_.beta) * acked / cwnd_;
    if (tcp_cwnd_ > cwnd_ && tcp_cwnd_ > target) {
      // CReno region: grow towards the friendly estimate instead.
      cnt = cwnd_ / (tcp_cwnd_ - cwnd_);
      creno_mode_ = true;
    }
  }

  // Linux lower bound: at most one segment of growth per two ACKed segments
  // (1.5x per RTT), which also tames convex catch-up after a stale epoch.
  cnt = std::max(cnt, 2.0);
  cwnd_ += acked / cnt;
}

void Cubic::on_congestion_event(Time /*now*/) {
  reset_epoch();
  if (params_.fast_convergence && cwnd_ < w_max_) {
    w_max_ = cwnd_ * (2.0 - params_.beta) / 2.0;
  } else {
    w_max_ = cwnd_;
  }
  ssthresh_ = std::max(cwnd_ * params_.beta, kMinWindow);
  cwnd_ = ssthresh_;
}

void Cubic::on_timeout(Time /*now*/) {
  reset_epoch();
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * params_.beta, kMinWindow);
  cwnd_ = 1.0;
}

}  // namespace pi2::tcp
