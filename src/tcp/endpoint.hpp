// TCP sender and receiver endpoints.
//
// A deliberately compact but faithful transport model: ACK-clocked window
// transmission, slow start / congestion avoidance via the plugged-in
// CongestionControl, NewReno fast retransmit & recovery on three duplicate
// ACKs, go-back-N retransmission timeouts with exponential backoff, Classic
// ECN echo with CWR latching (RFC 3168), and DCTCP's accurate per-packet CE
// feedback. SACK is intentionally absent — the evaluated steady-state
// behaviour does not depend on it, and NewReno partial-ACK recovery handles
// multi-drop windows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/congestion_control.hpp"

namespace pi2::tcp {

/// Minimum retransmission timeout (Linux: 200 ms).
inline constexpr pi2::sim::Duration kMinRto = std::chrono::milliseconds{200};

class TcpSender {
 public:
  struct Config {
    std::int32_t flow = 0;
    std::int32_t mss_bytes = net::kDefaultMss;
    /// Total segments to send; negative means unbounded (bulk flow).
    std::int64_t total_segments = -1;
    /// Cap on cwnd in segments (receive-window stand-in); <= 0: unlimited.
    double max_cwnd = 0.0;
  };

  TcpSender(pi2::sim::Simulator& sim, Config config,
            std::unique_ptr<CongestionControl> cc);

  /// Where data packets go (the bottleneck queue).
  void set_output(std::function<void(net::Packet)> output) {
    output_ = std::move(output);
  }

  /// Invoked when the last segment of a finite flow is cumulatively ACKed.
  void set_completion_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  /// Begins transmitting (schedules the first window immediately).
  void start();

  /// Stops transmitting new data and cancels timers (flow churn tests).
  void stop();

  /// ACK input from the network.
  void on_ack(const net::Packet& ack);

  [[nodiscard]] const CongestionControl& cc() const { return *cc_; }
  [[nodiscard]] double smoothed_rtt_s() const { return srtt_s_; }
  [[nodiscard]] std::int64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::int64_t timeouts() const { return timeouts_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::int64_t snd_una() const { return snd_una_; }
  [[nodiscard]] std::int64_t snd_nxt() const { return snd_nxt_; }
  [[nodiscard]] bool in_recovery() const { return in_recovery_; }

 private:
  void maybe_send();
  void transmit(std::int64_t seq, bool is_retransmit);
  void arm_rto();
  void on_rto();
  [[nodiscard]] pi2::sim::Duration rto() const;
  [[nodiscard]] std::int64_t inflight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] double effective_window() const;
  [[nodiscard]] bool all_data_sent() const {
    return config_.total_segments >= 0 && snd_nxt_ >= config_.total_segments;
  }

  pi2::sim::Simulator& sim_;
  Config config_;
  std::unique_ptr<CongestionControl> cc_;
  std::function<void(net::Packet)> output_;
  std::function<void()> on_complete_;

  bool running_ = false;
  bool completed_ = false;
  std::int64_t snd_una_ = 0;  // first unacknowledged segment
  std::int64_t snd_nxt_ = 0;  // next new segment to send

  // Fast recovery (NewReno).
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;  // recovery ends when snd_una_ passes this
  int dup_acks_ = 0;

  // RTT estimation (RFC 6298).
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  bool rtt_valid_ = false;

  // ECN (Classic): one response per RTT, CWR signalling to the receiver.
  pi2::sim::Time ecn_cwr_until_{};
  bool send_cwr_ = false;

  pi2::sim::EventHandle rto_timer_;
  int backoff_ = 0;

  std::int64_t segments_sent_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t timeouts_ = 0;
};

class TcpReceiver {
 public:
  struct Options {
    /// Delayed ACKs (RFC 1122): acknowledge every 2nd in-order segment, or
    /// after `delack_timeout`. Out-of-order data and CE-marked segments are
    /// ACKed immediately (duplicate-ACK loss detection and DCTCP's accurate
    /// feedback both require it). Default off: one ACK per segment, which
    /// matches the window laws of Appendix A exactly.
    bool delayed_acks = false;
    int ack_every = 2;
    pi2::sim::Duration delack_timeout = pi2::sim::from_millis(40);
  };

  TcpReceiver(pi2::sim::Simulator& sim, std::int32_t flow)
      : TcpReceiver(sim, flow, Options{}) {}
  TcpReceiver(pi2::sim::Simulator& sim, std::int32_t flow, Options options)
      : sim_(sim), flow_(flow), options_(options) {}

  /// Where ACKs go (the reverse-path delay pipe back to the sender).
  void set_ack_path(std::function<void(net::Packet)> path) {
    ack_path_ = std::move(path);
  }

  /// Observer for every in-order delivered segment (goodput accounting).
  void set_delivery_probe(std::function<void(const net::Packet&)> probe) {
    delivery_probe_ = std::move(probe);
  }

  /// Data input from the network.
  void on_data(const net::Packet& data);

  [[nodiscard]] std::int64_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::int64_t ce_received() const { return ce_received_; }

 private:
  void emit_ack(bool ce_echo, pi2::sim::Time data_sent_at);

  pi2::sim::Simulator& sim_;
  std::int32_t flow_;
  Options options_;
  std::function<void(net::Packet)> ack_path_;
  std::function<void(const net::Packet&)> delivery_probe_;

  std::int64_t rcv_nxt_ = 0;
  std::set<std::int64_t> out_of_order_;
  bool ece_latched_ = false;  // Classic ECN: echo until CWR seen
  std::int64_t ce_received_ = 0;

  // Delayed-ACK state.
  int unacked_segments_ = 0;
  pi2::sim::EventHandle delack_timer_;
  pi2::sim::Time pending_sent_at_{};
};

}  // namespace pi2::tcp
