// The other Scalable congestion controls the paper names alongside DCTCP
// (§5: "scalable congestion controls (DCTCP, Relentless, Scalable, ...)").
//
// Scalable TCP (Kelly 2003): MIMD — W += a per ACK (a = 0.01), W *= (1-b)
// per congestion event (b = 0.125). Signals per RTT c = pW stay proportional
// to a/b as W grows, so B = 1 in the paper's taxonomy: scalable.
//
// Relentless TCP (Mathis 2009): congestion avoidance like Reno, but each
// loss/mark reduces the window by exactly the number of segments signalled
// (W -= 1 per signal) instead of halving — again B = 1.
#pragma once

#include "tcp/congestion_control.hpp"

namespace pi2::tcp {

class ScalableTcp final : public CongestionControl {
 public:
  struct Params {
    double a = 0.01;   ///< per-ACK additive gain
    double b = 0.125;  ///< multiplicative decrease per congestion event
  };

  ScalableTcp();
  explicit ScalableTcp(Params params) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "scalable"; }
  [[nodiscard]] net::Ecn ect() const override { return net::Ecn::kEct1; }

  void on_ack(std::int64_t newly_acked, pi2::sim::Duration rtt, pi2::sim::Time now,
              bool in_recovery) override;
  void on_ecn_sample(std::int64_t acked, bool marked, pi2::sim::Time now) override;
  void on_congestion_event(pi2::sim::Time now) override;
  void on_timeout(pi2::sim::Time now) override;

 private:
  Params params_;
  pi2::sim::Time mark_holdoff_until_{};
};

class RelentlessTcp final : public CongestionControl {
 public:
  [[nodiscard]] std::string_view name() const override { return "relentless"; }
  [[nodiscard]] net::Ecn ect() const override { return net::Ecn::kEct1; }

  void on_ack(std::int64_t newly_acked, pi2::sim::Duration rtt, pi2::sim::Time now,
              bool in_recovery) override;
  void on_ecn_sample(std::int64_t acked, bool marked, pi2::sim::Time now) override;
  void on_congestion_event(pi2::sim::Time now) override;
  void on_timeout(pi2::sim::Time now) override;
};

}  // namespace pi2::tcp
