#include "durable/journal.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>

#include "durable/atomic_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define PI2_DURABLE_POSIX 1
#endif

namespace pi2::durable {

namespace {

constexpr const char* kHeaderKind = "header";
constexpr const char* kShardKind = "shard";
constexpr const char* kInterruptedKind = "interrupted";

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool unescape(const std::string& s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) return false;
    const char next = s[++i];
    switch (next) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= s.size()) return false;
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[++i];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        out += static_cast<char>(value);
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

std::uint64_t record_crc(const std::string& kind, std::uint64_t key,
                         const std::string& payload) {
  Fnv1a h;
  h.mix_string(kind);
  h.mix_u64(key);
  h.mix_string(payload);
  return h.state;
}

/// Extracts the raw (still-escaped) value of `"name":"` from `line`.
bool extract_field(const std::string& line, const char* name, std::string& raw) {
  const std::string needle = std::string("\"") + name + "\":\"";
  const auto start = line.find(needle);
  if (start == std::string::npos) return false;
  std::size_t i = start + needle.size();
  std::string out;
  while (i < line.size()) {
    if (line[i] == '\\') {
      if (i + 1 >= line.size()) return false;
      out += line[i];
      out += line[i + 1];
      i += 2;
      continue;
    }
    if (line[i] == '"') {
      raw = std::move(out);
      return true;
    }
    out += line[i];
    ++i;
  }
  return false;
}

bool parse_hex64(const std::string& s, std::uint64_t& value) {
  if (s.size() != 16) return false;
  value = 0;
  for (const char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  return true;
}

std::string hex64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

}  // namespace

std::string encode_shard_info(const ShardInfo& shard) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "shard=%llu/%llu range=%llu..%llu name=",
                static_cast<unsigned long long>(shard.index),
                static_cast<unsigned long long>(shard.count),
                static_cast<unsigned long long>(shard.lo),
                static_cast<unsigned long long>(shard.hi));
  return std::string(buf) + shard.campaign;
}

bool parse_shard_info(const std::string& payload, ShardInfo& shard) {
  unsigned long long index = 0;
  unsigned long long count = 0;
  unsigned long long lo = 0;
  unsigned long long hi = 0;
  int consumed = 0;
  if (std::sscanf(payload.c_str(), "shard=%llu/%llu range=%llu..%llu name=%n",
                  &index, &count, &lo, &hi, &consumed) != 4 ||
      consumed <= 0) {
    return false;
  }
  if (index == 0 || count == 0 || index > count || hi < lo) return false;
  shard.present = true;
  shard.index = index;
  shard.count = count;
  shard.lo = lo;
  shard.hi = hi;
  shard.campaign = payload.substr(static_cast<std::size_t>(consumed));
  return true;
}

std::string encode_record(const JournalRecord& record) {
  std::string line = "{\"kind\":\"";
  line += escape(record.kind);
  line += "\",\"key\":\"";
  line += hex64(record.key);
  line += "\",\"payload\":\"";
  line += escape(record.payload);
  line += "\",\"crc\":\"";
  line += hex64(record_crc(record.kind, record.key, record.payload));
  line += "\"}\n";
  return line;
}

Status parse_record(const std::string& line, JournalRecord& record) {
  std::string raw_kind;
  std::string raw_key;
  std::string raw_payload;
  std::string raw_crc;
  if (!extract_field(line, "kind", raw_kind) ||
      !extract_field(line, "key", raw_key) ||
      !extract_field(line, "payload", raw_payload) ||
      !extract_field(line, "crc", raw_crc)) {
    return Status::corrupt("journal record: missing field");
  }
  std::uint64_t key = 0;
  std::uint64_t crc = 0;
  if (!parse_hex64(raw_key, key) || !parse_hex64(raw_crc, crc)) {
    return Status::corrupt("journal record: bad hex field");
  }
  std::string kind;
  std::string payload;
  if (!unescape(raw_kind, kind) || !unescape(raw_payload, payload)) {
    return Status::corrupt("journal record: bad escape");
  }
  if (record_crc(kind, key, payload) != crc) {
    return Status::corrupt("journal record: crc mismatch (torn write)");
  }
  record.kind = std::move(kind);
  record.key = key;
  record.payload = std::move(payload);
  return {};
}

LoadedJournal load_journal(const std::string& path, std::uint64_t campaign_key) {
  LoadedJournal loaded;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return loaded;
  loaded.exists = true;

  bool first = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalRecord record;
    if (!parse_record(line, record).ok()) {
      ++loaded.dropped;
      continue;
    }
    if (first) {
      first = false;
      loaded.header_key = record.key;
      loaded.header_ok =
          record.kind == kHeaderKind && record.key == campaign_key;
      if (!loaded.header_ok) {
        // Foreign campaign: count the rest only as evidence, never as
        // reusable points.
        continue;
      }
      continue;
    }
    if (record.kind == kInterruptedKind) {
      ++loaded.interrupted;
    } else if (record.kind == kShardKind && loaded.header_ok &&
               !loaded.shard.present) {
      if (parse_shard_info(record.payload, loaded.shard)) {
        loaded.shard.digest = record.key;
      }
    } else if (record.kind == "point" && loaded.header_ok) {
      loaded.points[record.key] = std::move(record.payload);
    }
  }
  if (!loaded.header_ok) loaded.points.clear();
  return loaded;
}

Status load_shard_journal(const std::string& path, ShardJournalData& out) {
  out = ShardJournalData{};
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::io_error(path, errno, "open shard journal");
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JournalRecord record;
    const Status parsed = parse_record(line, record);
    if (!parsed.ok()) {
      // A structurally broken line is the torn-tail signature (the writer
      // died mid-append); a complete line whose crc disagrees is bit rot.
      // Both refuse the merge, with distinguishable messages.
      const bool torn = parsed.message().find("crc mismatch") == std::string::npos;
      return Status::corrupt(path + " line " + std::to_string(line_no) +
                             (torn ? ": torn record (" : ": ") +
                             parsed.message() + (torn ? ")" : ""));
    }
    if (line_no == 1) {
      if (record.kind != kHeaderKind) {
        return Status::corrupt(path + ": first record is '" + record.kind +
                               "', expected the campaign header");
      }
      out.header_seen = true;
      out.header_key = record.key;
      continue;
    }
    if (record.kind == kShardKind) {
      if (out.shard.present) {
        return Status::corrupt(path + " line " + std::to_string(line_no) +
                               ": second shard record");
      }
      if (!parse_shard_info(record.payload, out.shard)) {
        return Status::corrupt(path + " line " + std::to_string(line_no) +
                               ": unparseable shard record");
      }
      out.shard.digest = record.key;
    } else if (record.kind == kInterruptedKind) {
      ++out.interrupted;
    } else if (record.kind == "point") {
      out.points.emplace_back(record.key, std::move(record.payload));
    } else {
      return Status::corrupt(path + " line " + std::to_string(line_no) +
                             ": unknown record kind '" + record.kind + "'");
    }
  }
  if (!out.header_seen) {
    return Status::corrupt(path + ": empty journal (no header record)");
  }
  return {};
}

JournalWriter::JournalWriter(std::string path, std::uint64_t campaign_key,
                             bool keep_existing)
    : path_(std::move(path)) {
  if (path_.empty()) {
    status_ = Status::invalid("JournalWriter: empty path");
    return;
  }
  file_ = std::fopen(path_.c_str(), keep_existing ? "a" : "w");
  if (file_ == nullptr) {
    status_ = Status::io_error(path_, errno, "open journal");
    return;
  }
  if (!keep_existing) {
    JournalRecord header;
    header.kind = kHeaderKind;
    header.key = campaign_key;
    status_.update(append(header));
  }
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status JournalWriter::append(const JournalRecord& record) {
  if (file_ == nullptr) {
    return status_.ok() ? Status::invalid("journal not open") : status_;
  }
  const std::string line = encode_record(record);
  // Shares the AtomicFile fault budget so disk-full behaves identically for
  // streaming journal appends and atomic artifact writes.
  Status write_status;
  if (inject_write_fault(line.size())) {
    write_status = Status::io_error(path_, ENOSPC, "append (injected fault)");
  } else if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    write_status = Status::io_error(path_, errno, "append journal record");
  }
  if (write_status.ok() && std::fflush(file_) != 0) {
    write_status = Status::io_error(path_, errno, "flush journal");
  }
#ifdef PI2_DURABLE_POSIX
  if (write_status.ok() && ::fsync(fileno(file_)) != 0) {
    write_status = Status::io_error(path_, errno, "fsync journal");
  }
#endif
  status_.update(write_status);
  return write_status;
}

Status JournalWriter::append_point(std::uint64_t key, const std::string& payload) {
  JournalRecord record;
  record.kind = "point";
  record.key = key;
  record.payload = payload;
  return append(record);
}

Status JournalWriter::append_shard(const ShardInfo& shard) {
  JournalRecord record;
  record.kind = kShardKind;
  record.key = shard.digest;
  record.payload = encode_shard_info(shard);
  return append(record);
}

Status JournalWriter::append_interrupted(const std::string& reason) {
  JournalRecord record;
  record.kind = kInterruptedKind;
  record.key = 0;
  record.payload = reason;
  return append(record);
}

}  // namespace pi2::durable
