// Run journal: the append-only completion log that makes sweeps resumable.
//
// One JSONL record is appended — and fsync'd — per completed unit of work
// (a sweep grid point, a fuzz case), keyed by a digest of the unit's config
// and seed. On restart with --resume, journaled units are skipped and their
// cached payloads replayed, so the final table/JSON is byte-identical to an
// uninterrupted run while only the missing work re-executes.
//
// Record format (one per line):
//
//   {"kind":"<header|point|interrupted>","key":"<16 hex>",
//    "payload":"<escaped bytes>","crc":"<16 hex>"}
//
// `crc` is FNV-1a over kind+key+payload. A record that fails to parse or
// whose crc mismatches is *dropped* (counted in LoadedJournal::dropped) —
// the classic torn final line after a SIGKILL re-runs that point instead of
// silently reusing garbage. Records after a torn line are still recovered.
//
// The first record is a `header` keyed by a digest of the whole campaign
// (grid, seed, durations). Loading a journal whose header key differs from
// the caller's refuses the cached points: a stale journal from a different
// campaign can never leak results into this one.
//
// `interrupted` markers are appended by the graceful-shutdown path; load()
// surfaces them so a resumed run can report what it recovered from.
//
// Sharding: a campaign split across N worker processes gives each worker a
// disjoint point range and its own journal. A `shard` record (appended right
// after the header) declares which slice this journal claims — campaign
// name, shard i/N, half-open global point range [lo, hi) — keyed by the
// campaign digest like the header. The resume path ignores it; the merge
// path (load_shard_journal + the campaign layer) uses it to prove the shard
// set tiles the campaign exactly before stitching results back together.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "durable/status.hpp"

namespace pi2::durable {

struct JournalRecord {
  std::string kind;        ///< "header", "shard", "point" or "interrupted"
  std::uint64_t key = 0;   ///< config+seed digest of the unit
  std::string payload;     ///< opaque serialized result (may be empty)
};

/// The slice of a campaign one shard journal claims. Serialized as the
/// payload of a `shard` record; `digest` doubles as that record's key.
struct ShardInfo {
  bool present = false;       ///< a shard record was seen / will be written
  std::string campaign;       ///< campaign (spec) name — tells foreign from
                              ///< stale on merge
  std::uint64_t digest = 0;   ///< campaign digest the shard ran under
  std::uint64_t index = 1;    ///< 1-based shard number
  std::uint64_t count = 1;    ///< total shards in the split
  std::uint64_t lo = 0;       ///< first global point index claimed
  std::uint64_t hi = 0;       ///< one past the last point index claimed
};

/// Serializes/parses the `shard` record payload
/// (`shard=<i>/<N> range=<lo>..<hi> name=<campaign>`).
[[nodiscard]] std::string encode_shard_info(const ShardInfo& shard);
[[nodiscard]] bool parse_shard_info(const std::string& payload,
                                    ShardInfo& shard);

/// Serializes a record to its single-line wire form (newline included).
[[nodiscard]] std::string encode_record(const JournalRecord& record);

/// Parses one line (with or without trailing newline). Returns kCorrupt on
/// structural damage or crc mismatch; `record` is only valid on kOk.
[[nodiscard]] Status parse_record(const std::string& line, JournalRecord& record);

/// Everything recovered from an on-disk journal.
struct LoadedJournal {
  bool exists = false;            ///< the file was present and readable
  bool header_ok = false;         ///< first record is a header with the
                                  ///< caller's campaign key
  std::uint64_t header_key = 0;   ///< key of the header actually found
  std::size_t interrupted = 0;    ///< interrupted markers seen
  std::size_t dropped = 0;        ///< torn/corrupt records skipped
  /// Shard slice this journal declared (present=false for pre-shard
  /// journals). Only trusted when header_ok.
  ShardInfo shard;
  /// Completed units by key (last record wins). Empty unless header_ok.
  std::map<std::uint64_t, std::string> points;

  [[nodiscard]] bool has(std::uint64_t key) const {
    return points.find(key) != points.end();
  }
};

/// Reads the journal at `path`, dropping corrupt records. `campaign_key`
/// must match the header for the cached points to be trusted.
[[nodiscard]] LoadedJournal load_journal(const std::string& path,
                                         std::uint64_t campaign_key);

/// Everything a *strict* read of one shard journal recovers, for merging.
/// Unlike LoadedJournal this keeps records in file order and never drops a
/// damaged line silently — a merge must refuse corruption, not re-run it.
struct ShardJournalData {
  bool header_seen = false;
  std::uint64_t header_key = 0;
  ShardInfo shard;                ///< shard.present iff a shard record exists
  std::size_t interrupted = 0;
  /// Point records in append order (duplicates preserved for the merge's
  /// duplicate-point check).
  std::vector<std::pair<std::uint64_t, std::string>> points;
};

/// Strict loader behind `--merge`: any unreadable file is kIoError, any
/// torn/corrupt/unparseable line is kCorrupt (message carries path + line
/// number + whether the damage looks like a torn tail or a crc mismatch),
/// a missing or misplaced header is kCorrupt. Validation *against* a
/// campaign (foreign/stale/range checks) is the caller's job — this only
/// guarantees the bytes are intact.
[[nodiscard]] Status load_shard_journal(const std::string& path,
                                        ShardJournalData& out);

/// Appender. Every append is flushed and fsync'd before returning, so a
/// record that was reported written survives a SIGKILL one instruction
/// later. Shares AtomicFile's injectable write-fault budget.
class JournalWriter {
 public:
  /// Opens `path` for appending; writes a header record (and truncates any
  /// prior content) unless `keep_existing` — the resume path loads first,
  /// then reopens with keep_existing=true.
  JournalWriter(std::string path, std::uint64_t campaign_key, bool keep_existing);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends + fsyncs one completed-unit record.
  Status append_point(std::uint64_t key, const std::string& payload);
  /// Appends + fsyncs the shard-slice declaration (keyed by shard.digest).
  /// Campaign runs write it immediately after the header; resumed shards
  /// must not re-append it (check LoadedJournal::shard.present first).
  Status append_shard(const ShardInfo& shard);
  /// Appends + fsyncs a graceful-shutdown marker.
  Status append_interrupted(const std::string& reason);

  [[nodiscard]] bool healthy() const { return file_ != nullptr && status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Status append(const JournalRecord& record);

  std::string path_;
  std::FILE* file_ = nullptr;
  Status status_;
};

/// FNV-1a 64-bit streaming hasher — the digest behind journal keys and
/// record crcs. Deliberately tiny and dependency-free.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ull;
  void mix_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state ^= bytes[i];
      state *= 0x100000001b3ull;
    }
  }
  void mix_u64(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix_double(double v) { mix_bytes(&v, sizeof v); }
  void mix_string(const std::string& s) {
    mix_u64(s.size());
    mix_bytes(s.data(), s.size());
  }
};

}  // namespace pi2::durable
