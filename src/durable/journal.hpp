// Run journal: the append-only completion log that makes sweeps resumable.
//
// One JSONL record is appended — and fsync'd — per completed unit of work
// (a sweep grid point, a fuzz case), keyed by a digest of the unit's config
// and seed. On restart with --resume, journaled units are skipped and their
// cached payloads replayed, so the final table/JSON is byte-identical to an
// uninterrupted run while only the missing work re-executes.
//
// Record format (one per line):
//
//   {"kind":"<header|point|interrupted>","key":"<16 hex>",
//    "payload":"<escaped bytes>","crc":"<16 hex>"}
//
// `crc` is FNV-1a over kind+key+payload. A record that fails to parse or
// whose crc mismatches is *dropped* (counted in LoadedJournal::dropped) —
// the classic torn final line after a SIGKILL re-runs that point instead of
// silently reusing garbage. Records after a torn line are still recovered.
//
// The first record is a `header` keyed by a digest of the whole campaign
// (grid, seed, durations). Loading a journal whose header key differs from
// the caller's refuses the cached points: a stale journal from a different
// campaign can never leak results into this one.
//
// `interrupted` markers are appended by the graceful-shutdown path; load()
// surfaces them so a resumed run can report what it recovered from.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "durable/status.hpp"

namespace pi2::durable {

struct JournalRecord {
  std::string kind;        ///< "header", "point" or "interrupted"
  std::uint64_t key = 0;   ///< config+seed digest of the unit
  std::string payload;     ///< opaque serialized result (may be empty)
};

/// Serializes a record to its single-line wire form (newline included).
[[nodiscard]] std::string encode_record(const JournalRecord& record);

/// Parses one line (with or without trailing newline). Returns kCorrupt on
/// structural damage or crc mismatch; `record` is only valid on kOk.
[[nodiscard]] Status parse_record(const std::string& line, JournalRecord& record);

/// Everything recovered from an on-disk journal.
struct LoadedJournal {
  bool exists = false;            ///< the file was present and readable
  bool header_ok = false;         ///< first record is a header with the
                                  ///< caller's campaign key
  std::uint64_t header_key = 0;   ///< key of the header actually found
  std::size_t interrupted = 0;    ///< interrupted markers seen
  std::size_t dropped = 0;        ///< torn/corrupt records skipped
  /// Completed units by key (last record wins). Empty unless header_ok.
  std::map<std::uint64_t, std::string> points;

  [[nodiscard]] bool has(std::uint64_t key) const {
    return points.find(key) != points.end();
  }
};

/// Reads the journal at `path`, dropping corrupt records. `campaign_key`
/// must match the header for the cached points to be trusted.
[[nodiscard]] LoadedJournal load_journal(const std::string& path,
                                         std::uint64_t campaign_key);

/// Appender. Every append is flushed and fsync'd before returning, so a
/// record that was reported written survives a SIGKILL one instruction
/// later. Shares AtomicFile's injectable write-fault budget.
class JournalWriter {
 public:
  /// Opens `path` for appending; writes a header record (and truncates any
  /// prior content) unless `keep_existing` — the resume path loads first,
  /// then reopens with keep_existing=true.
  JournalWriter(std::string path, std::uint64_t campaign_key, bool keep_existing);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends + fsyncs one completed-unit record.
  Status append_point(std::uint64_t key, const std::string& payload);
  /// Appends + fsyncs a graceful-shutdown marker.
  Status append_interrupted(const std::string& reason);

  [[nodiscard]] bool healthy() const { return file_ != nullptr && status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Status append(const JournalRecord& record);

  std::string path_;
  std::FILE* file_ = nullptr;
  Status status_;
};

/// FNV-1a 64-bit streaming hasher — the digest behind journal keys and
/// record crcs. Deliberately tiny and dependency-free.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ull;
  void mix_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state ^= bytes[i];
      state *= 0x100000001b3ull;
    }
  }
  void mix_u64(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix_double(double v) { mix_bytes(&v, sizeof v); }
  void mix_string(const std::string& s) {
    mix_u64(s.size());
    mix_bytes(s.data(), s.size());
  }
};

}  // namespace pi2::durable
