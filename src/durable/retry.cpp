#include "durable/retry.hpp"

#include <algorithm>
#include <cmath>

namespace pi2::durable {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and stateless.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::chrono::milliseconds RetryPolicy::backoff_before(std::uint64_t task_index,
                                                      int attempt) const {
  if (attempt <= 0 || backoff_base.count() <= 0) {
    return std::chrono::milliseconds{0};
  }
  double delay = static_cast<double>(backoff_base.count()) *
                 std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  delay = std::min(delay, static_cast<double>(backoff_max.count()));
  if (jitter_fraction > 0.0) {
    const std::uint64_t h =
        mix64(jitter_seed ^ mix64(task_index ^ (static_cast<std::uint64_t>(
                                                    attempt)
                                                << 32)));
    // Map the hash to [-1, 1) and scale by the jitter fraction.
    const double unit =
        (static_cast<double>(h >> 11) / 9007199254740992.0) * 2.0 - 1.0;
    delay *= 1.0 + jitter_fraction * unit;
  }
  delay = std::clamp(delay, 0.0, static_cast<double>(backoff_max.count()));
  return std::chrono::milliseconds{static_cast<long long>(delay + 0.5)};
}

}  // namespace pi2::durable
