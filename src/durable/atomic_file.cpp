#include "durable/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define PI2_DURABLE_POSIX 1
#endif

namespace pi2::durable {

namespace {

// Process-wide fault plan. The switches are atomics so a test can arm them
// while sweep workers write concurrently without a data race; real runs
// never touch them (armed_ stays false and the checks reduce to one load).
std::atomic<bool> g_faults_armed{false};
std::atomic<bool> g_fail_open{false};
std::atomic<bool> g_fail_commit{false};
std::atomic<long long> g_write_budget{-1};

/// fsync the directory containing `path` so the rename itself is durable.
Status sync_parent_dir(const std::string& path) {
#ifdef PI2_DURABLE_POSIX
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::io_error(dir, errno, "open directory for fsync");
  Status status;
  if (::fsync(fd) != 0) {
    status = Status::io_error(dir, errno, "fsync directory");
  }
  ::close(fd);
  return status;
#else
  (void)path;
  return {};
#endif
}

}  // namespace

bool inject_write_fault(std::size_t size) {
  if (!g_faults_armed.load(std::memory_order_relaxed)) return false;
  long long budget = g_write_budget.load(std::memory_order_relaxed);
  for (;;) {
    if (budget < 0) return false;  // write faults not configured (-1 sentinel)
    // Exhausted budgets stay at their floor instead of going negative: a
    // full disk keeps failing every write, it does not recover after one.
    if (budget < static_cast<long long>(size)) return true;
    if (g_write_budget.compare_exchange_weak(
            budget, budget - static_cast<long long>(size),
            std::memory_order_relaxed)) {
      return false;
    }
  }
}

void AtomicFile::set_faults(const Faults& faults) {
  g_fail_open.store(faults.fail_open, std::memory_order_relaxed);
  g_fail_commit.store(faults.fail_commit, std::memory_order_relaxed);
  g_write_budget.store(faults.fail_write_after_bytes, std::memory_order_relaxed);
  g_faults_armed.store(true, std::memory_order_release);
}

void AtomicFile::clear_faults() {
  g_faults_armed.store(false, std::memory_order_release);
  g_fail_open.store(false, std::memory_order_relaxed);
  g_fail_commit.store(false, std::memory_order_relaxed);
  g_write_budget.store(-1, std::memory_order_relaxed);
}

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    status_ = Status::invalid("AtomicFile: empty path");
    return;
  }
  if (g_faults_armed.load(std::memory_order_acquire) &&
      g_fail_open.load(std::memory_order_relaxed)) {
    status_ = Status::io_error(tmp_path(), EIO, "open (injected fault)");
    return;
  }
  file_ = std::fopen(tmp_path().c_str(), "w");
  if (file_ == nullptr) {
    status_ = Status::io_error(tmp_path(), errno, "open");
  }
}

AtomicFile::~AtomicFile() {
  if (!committed_) abort();
}

bool AtomicFile::write(const void* data, std::size_t size) {
  if (!healthy()) return false;
  if (inject_write_fault(size)) {
    status_ = Status::io_error(tmp_path(), ENOSPC, "write (injected fault)");
    return false;
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    status_ = Status::io_error(tmp_path(), errno, "write");
    return false;
  }
  return true;
}

bool AtomicFile::printf(const char* format, ...) {
  if (!healthy()) return false;
  va_list args;
  va_start(args, format);
  char stack_buf[512];
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof stack_buf, format, copy);
  va_end(copy);
  bool ok = false;
  if (needed < 0) {
    status_ = Status::invalid("AtomicFile::printf: bad format");
  } else if (static_cast<std::size_t>(needed) < sizeof stack_buf) {
    ok = write(stack_buf, static_cast<std::size_t>(needed));
  } else {
    std::vector<char> heap_buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(heap_buf.data(), heap_buf.size(), format, args);
    ok = write(heap_buf.data(), static_cast<std::size_t>(needed));
  }
  va_end(args);
  return ok;
}

Status AtomicFile::commit() {
  if (committed_ || aborted_) return status_;
  if (file_ == nullptr || !status_.ok()) {
    abort();
    if (status_.ok()) status_ = Status::invalid("commit after abort");
    return status_;
  }
  const bool inject_commit_fail =
      g_faults_armed.load(std::memory_order_acquire) &&
      g_fail_commit.load(std::memory_order_relaxed);
  if (std::fflush(file_) != 0) {
    status_ = Status::io_error(tmp_path(), errno, "flush");
  }
#ifdef PI2_DURABLE_POSIX
  if (status_.ok() && (inject_commit_fail || ::fsync(fileno(file_)) != 0)) {
    status_ = Status::io_error(tmp_path(), inject_commit_fail ? EIO : errno,
                               inject_commit_fail ? "fsync (injected fault)"
                                                  : "fsync");
  }
#else
  if (status_.ok() && inject_commit_fail) {
    status_ = Status::io_error(tmp_path(), EIO, "fsync (injected fault)");
  }
#endif
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::io_error(tmp_path(), errno, "close");
  }
  file_ = nullptr;
  if (!status_.ok()) {
    std::remove(tmp_path().c_str());
    aborted_ = true;
    return status_;
  }
  if (std::rename(tmp_path().c_str(), path_.c_str()) != 0) {
    status_ = Status::io_error(path_, errno, "rename");
    std::remove(tmp_path().c_str());
    aborted_ = true;
    return status_;
  }
  status_.update(sync_parent_dir(path_));
  committed_ = true;
  return status_;
}

void AtomicFile::abort() {
  if (committed_ || aborted_) return;
  aborted_ = true;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!path_.empty()) std::remove(tmp_path().c_str());
}

Status atomic_write_file(const std::string& path, const std::string& contents) {
  AtomicFile file{path};
  file.write(contents);
  return file.commit();
}

}  // namespace pi2::durable
