// RetryPolicy: one retry vocabulary for every guarded run in the repo.
//
// The parallel runner used to hard-code "one retry, immediately". That is
// the wrong shape for both of its uses: transient faults (an injected I/O
// failure, a watchdog timeout) deserve a short backoff so a congested
// machine isn't hammered, while deterministic sim bugs deserve to fail fast.
// RetryPolicy makes attempts, per-attempt deadline and backoff explicit and
// sharable between the sweep harness, fig_response and check_fuzz.
//
// Backoff is exponential with *deterministic* jitter: the jitter fraction is
// derived from (jitter_seed, task index, attempt) via a splitmix-style hash,
// never from wall-clock or a global RNG. Two runs of the same campaign
// produce the same backoff schedule, which keeps guarded-run traces and the
// kill-and-resume test reproducible.
#pragma once

#include <chrono>
#include <cstdint>

namespace pi2::durable {

struct RetryPolicy {
  /// Total attempts per task (first try included). 1 = no retries.
  int max_attempts = 2;
  /// Per-attempt deadline; zero disables the watchdog.
  std::chrono::milliseconds attempt_deadline{0};
  /// Base delay before the first retry (attempt index 1).
  std::chrono::milliseconds backoff_base{0};
  /// Multiplier applied per further attempt (2.0 = classic doubling).
  double backoff_multiplier = 2.0;
  /// Cap on any single backoff sleep.
  std::chrono::milliseconds backoff_max{10000};
  /// Jitter as a fraction of the computed delay (0.1 = +/-10%).
  double jitter_fraction = 0.1;
  /// Seed for the deterministic jitter hash (mix in the campaign seed).
  std::uint64_t jitter_seed = 0;

  [[nodiscard]] bool valid() const {
    return max_attempts >= 1 && backoff_multiplier >= 1.0 &&
           jitter_fraction >= 0.0 && jitter_fraction <= 1.0 &&
           attempt_deadline.count() >= 0 && backoff_base.count() >= 0 &&
           backoff_max.count() >= 0;
  }

  /// Delay to sleep before attempt `attempt` (1-based retry index: the
  /// sleep preceding the second attempt is backoff_before(i, 1)) of task
  /// `task_index`. Deterministic: depends only on the policy and arguments.
  [[nodiscard]] std::chrono::milliseconds backoff_before(
      std::uint64_t task_index, int attempt) const;
};

}  // namespace pi2::durable
