#include "durable/shutdown.hpp"

#include <csignal>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define PI2_DURABLE_POSIX 1
#endif

namespace pi2::durable {

std::atomic<bool> ShutdownController::flag_{false};
std::atomic<int> ShutdownController::signal_{0};
std::atomic<bool> ShutdownController::installed_{false};

namespace {

// Async-signal-safe: only atomics and _exit.
void handle_signal(int sig) {
  if (ShutdownController::requested()) {
#ifdef PI2_DURABLE_POSIX
    _exit(128 + sig);  // second signal: the user really means it
#endif
  }
  ShutdownController::request(sig);
}

}  // namespace

void ShutdownController::install() {
  bool expected = false;
  if (!installed_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    return;
  }
#ifdef PI2_DURABLE_POSIX
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: let blocking calls wake up
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#else
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
#endif
}

}  // namespace pi2::durable
